#!/usr/bin/env python
"""Live congestion monitoring of a streaming capture.

The paper's busy-time metric is computed offline, but its motivation is
the robust operation of *live* networks.  This example replays a
simulated capture through :class:`repro.core.OnlineCongestionMonitor`
frame by frame — exactly what a monitoring daemon sitting on an RFMon
interface would do — and prints a one-line status per second with the
congestion class transitions highlighted.

Usage::

    python examples/live_monitor.py
"""

from __future__ import annotations

from repro.core import CongestionLevel, PAPER_THRESHOLDS
from repro.core.online import OnlineCongestionMonitor
from repro.sim import LinearRamp, ScenarioConfig, run_scenario
from repro.sim.traffic import ModulatedRate


def main() -> None:
    duration = 30.0
    ramp = LinearRamp(1.0, 45.0, int(duration * 1e6))
    config = ScenarioConfig(
        n_stations=10,
        duration_s=duration,
        seed=19,
        room_width_m=36.0,
        room_depth_m=24.0,
        shadowing_sigma_db=6.0,
        path_loss_exponent=3.2,
        station_tx_power_dbm=12.0,
        obstructed_fraction=0.25,
        uplink=ModulatedRate(ramp, sigma=0.7, seed=5),
        downlink=ModulatedRate(ramp, sigma=0.7, seed=6),
    )
    print(f"simulating a {duration:.0f} s ramp ...")
    result = run_scenario(config)

    monitor = OnlineCongestionMonitor(thresholds=PAPER_THRESHOLDS)
    previous: CongestionLevel | None = None
    bar_scale = 50

    print("\nstreaming capture through the online monitor:\n")
    for row in result.trace.iter_rows():
        for observation in monitor.ingest_row(row):
            bar = "#" * int(
                min(observation.utilization_percent, 100.0) / 100 * bar_scale
            )
            marker = ""
            if observation.level != previous:
                marker = f"  <-- {observation.level.label.upper()}"
                previous = observation.level
            print(
                f"t={observation.second_index:3d}s "
                f"util={observation.utilization_percent:5.1f}% "
                f"frames={observation.frames:4d} |{bar:<{bar_scale}}|{marker}"
            )
    tail = monitor.flush()
    if tail is not None:
        print(f"t={tail.second_index:3d}s (partial) util={tail.utilization_percent:5.1f}%")

    occupancy = monitor.level_occupancy()
    print("\nsession congestion occupancy:")
    for level in CongestionLevel:
        print(f"  {level.label:22s} {occupancy[level]:6.1%}")


if __name__ == "__main__":
    main()
