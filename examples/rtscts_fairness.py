#!/usr/bin/env python
"""RTS/CTS minority-fairness experiment (paper §6.1).

The paper finds that when only a few nodes use the RTS/CTS handshake in
a congested network, those nodes fail to obtain fair channel access:
their deliveries depend on three successful frames instead of one.
This experiment sweeps the fraction of RTS/CTS stations under a
congested uplink and reports the fairness index
(goodput share / population share) of the handshake users.

Each sweep point is one ``repro.api`` experiment (the base experiment
is forked per fraction with ``.fix(rtscts_fraction=...)``); the buffered
trace is kept so the §6.1 fairness analysis can run on it directly.

Usage::

    python examples/rtscts_fairness.py
"""

from __future__ import annotations

from repro.api import Experiment
from repro.core import rts_cts_fairness
from repro.frames import FrameType
from repro.viz import bar_chart, table

FRACTIONS = (0.125, 0.25, 0.5, 1.0)

#: The congested-uplink cell every sweep point shares.
BASE = Experiment.scenario(
    "uniform",
    n_stations=16,
    duration_s=20.0,
    seed=53,
    uplink_pps=20.0,   # uplink-heavy: stations contend hard
    downlink_pps=2.0,
    obstructed_fraction=0.0,
).fix(
    room_width_m=36.0,
    room_depth_m=24.0,
    shadowing_sigma_db=6.0,
    path_loss_exponent=3.2,
    station_tx_power_dbm=12.0,
    rate_adaptation_kwargs={"up_threshold": 5, "down_threshold": 3},
).analyses("summary")  # fairness reads the trace directly; skip the full report


def run_fraction(fraction: float) -> dict:
    result = BASE.fix(rtscts_fraction=fraction).run(keep_trace=True)
    sim = result.scenario_result
    fairness = rts_cts_fairness(sim.trace, sim.roster)
    rts = len(sim.trace.only_type(FrameType.RTS))
    cts = len(sim.trace.only_type(FrameType.CTS))
    return {
        "rtscts_fraction": fraction,
        "pop_share": round(fairness.rtscts_population, 3),
        "goodput_share": round(fairness.rtscts_share, 3),
        "fairness_index": round(fairness.fairness_index, 3),
        "airtime_per_frame_us": round(fairness.rtscts_airtime_per_delivery_us),
        "overhead_ratio": round(fairness.airtime_overhead_ratio, 2),
        "rts_seen": rts,
        "cts_seen": cts,
    }


def main() -> None:
    rows = []
    for fraction in FRACTIONS:
        print(f"running with {fraction:.0%} RTS/CTS stations ...")
        rows.append(run_fraction(fraction))

    print()
    print(table(rows, title="RTS/CTS users' channel share under congestion"))
    print(
        bar_chart(
            [f"{r['rtscts_fraction']:.0%}" for r in rows],
            [r["overhead_ratio"] for r in rows],
            title="airtime cost per delivered frame vs plain users (1.0 = equal)",
        )
    )
    print(
        "Paper §6.1 finds the RTS/CTS minority is denied fair access.  In\n"
        "this reproduction the frame-count fairness index dips only slightly\n"
        "below 1 (our collision model has no hidden-terminal loss among the\n"
        "co-located stations), but the *airtime* cost per delivered frame\n"
        "shows the structural penalty directly: every handshake delivery\n"
        "pays RTS + CTS + two SIFS, ~1.5-1.7x the plain users' channel\n"
        "time — the efficiency deficit behind the paper's advice to avoid\n"
        "RTS/CTS during congestion.  See EXPERIMENTS.md for the deviation\n"
        "note."
    )


if __name__ == "__main__":
    main()
