#!/usr/bin/env python
"""Write a simulated capture to a real radiotap pcap and re-analyze it.

Demonstrates the byte-level interoperability path: the simulator's
sniffer trace is serialised to a genuine pcap file (linktype 127,
radiotap + 802.11 headers, the paper's 250-byte snap length), then
both the live trace and the pcap file are streamed through the
single-pass :mod:`repro.pipeline` — the pcap side straight from the
file path, chunk by chunk.  The figure-level results must match the
live trace exactly — the only information lost is what 802.11 itself
does not put on the air (ACK/CTS transmitter addresses).

Usage::

    python examples/pcap_roundtrip.py [output.pcap]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.pcap import PAPER_SNAPLEN, read_trace, write_trace
from repro.pipeline import run_all
from repro.sim import ConstantRate, ScenarioConfig, run_scenario


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("capture.pcap")

    config = ScenarioConfig(
        n_stations=8,
        duration_s=10.0,
        seed=13,
        uplink=ConstantRate(10.0),
        downlink=ConstantRate(16.0),
        obstructed_fraction=0.25,
    )
    print(f"simulating {config.duration_s:.0f} s ...")
    result = run_scenario(config)

    n = write_trace(result.trace, path, snaplen=PAPER_SNAPLEN)
    size_kb = path.stat().st_size / 1024
    print(f"wrote {n} frames to {path} ({size_kb:.0f} KiB, snaplen {PAPER_SNAPLEN})")

    loaded = read_trace(path)
    print(f"read back {len(loaded)} frames")

    live = run_all(result.trace, name="live")
    from_file = run_all(path, name="pcap")  # streamed straight from disk

    checks = {
        "frames": (live.summary.n_frames, from_file.summary.n_frames),
        "data frames": (live.summary.n_data, from_file.summary.n_data),
        "utilization mode %": (
            round(live.utilization.mode_percent(), 1),
            round(from_file.utilization.mode_percent(), 1),
        ),
        "peak throughput Mbps": (
            round(live.throughput.peak()[1], 4),
            round(from_file.throughput.peak()[1], 4),
        ),
        "unrecorded %": (
            round(live.unrecorded.unrecorded_percent, 2),
            round(from_file.unrecorded.unrecorded_percent, 2),
        ),
    }
    print()
    print(f"{'metric':24s} {'live':>12s} {'from pcap':>12s}")
    for name, (a, b) in checks.items():
        marker = "ok" if a == b else "MISMATCH"
        print(f"{name:24s} {a!s:>12s} {b!s:>12s}  {marker}")

    assert np.allclose(
        live.utilization.percent, from_file.utilization.percent
    ), "utilization mismatch after pcap round trip"
    print("\nround trip preserved every figure-level quantity.")


if __name__ == "__main__":
    main()
