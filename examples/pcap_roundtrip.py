#!/usr/bin/env python
"""Write a simulated capture to every interchange container and re-analyze.

Demonstrates the byte-level interoperability path: the simulator's
sniffer trace is serialised to a genuine radiotap capture (linktype
127, radiotap + 802.11 headers, the paper's 250-byte snap length) in
each container ``write_trace`` routes by extension — classic pcap,
gzipped pcap and RFC 1761 snoop — then the live trace and every file
are streamed through the single-pass :mod:`repro.pipeline`, the file
sides straight from their paths, chunk by chunk.  The figure-level
results must match the live trace exactly, and the containers must
match each other bit for bit — the only information lost is what
802.11 itself does not put on the air (ACK/CTS transmitter
addresses).

Usage::

    python examples/pcap_roundtrip.py [output.pcap]

The gzip and snoop variants are written next to ``output.pcap`` with
swapped extensions.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.frames import TRACE_SCHEMA
from repro.pcap import PAPER_SNAPLEN, read_trace, write_trace
from repro.pipeline import run_all
from repro.sim import ConstantRate, ScenarioConfig, run_scenario


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("capture.pcap")
    stem = path.name[: -len(".pcap")] if path.name.endswith(".pcap") else path.name
    variants = [
        path,
        path.with_name(f"{stem}.pcap.gz"),
        path.with_name(f"{stem}.snoop"),
    ]

    config = ScenarioConfig(
        n_stations=8,
        duration_s=10.0,
        seed=13,
        uplink=ConstantRate(10.0),
        downlink=ConstantRate(16.0),
        obstructed_fraction=0.25,
    )
    print(f"simulating {config.duration_s:.0f} s ...")
    result = run_scenario(config)

    for target in variants:
        n = write_trace(result.trace, target, snaplen=PAPER_SNAPLEN)
        size_kb = target.stat().st_size / 1024
        print(
            f"wrote {n} frames to {target} "
            f"({size_kb:.0f} KiB, snaplen {PAPER_SNAPLEN})"
        )

    # Interchange fidelity: every container decodes field-identically.
    reference = read_trace(variants[0])
    print(f"read back {len(reference)} frames")
    for target in variants[1:]:
        decoded = read_trace(target)
        for name, _ in TRACE_SCHEMA:
            assert np.array_equal(
                decoded.column(name), reference.column(name)
            ), f"{target}: column {name!r} differs from pcap"
        print(f"{target}: field-identical to {variants[0]}")

    live = run_all(result.trace, name="live")
    analyzed = {  # each streamed straight from disk
        target.name: run_all(target, name=target.name) for target in variants
    }

    print()
    header = f"{'metric':24s} {'live':>12s}"
    for name in analyzed:
        header += f" {name[-12:]:>12s}"
    print(header)

    def metrics(report):
        return {
            "frames": report.summary.n_frames,
            "data frames": report.summary.n_data,
            "utilization mode %": round(report.utilization.mode_percent(), 1),
            "peak throughput Mbps": round(report.throughput.peak()[1], 4),
            "unrecorded %": round(report.unrecorded.unrecorded_percent, 2),
        }

    live_metrics = metrics(live)
    file_metrics = {name: metrics(r) for name, r in analyzed.items()}
    for metric, value in live_metrics.items():
        row = f"{metric:24s} {value!s:>12s}"
        ok = True
        for name in analyzed:
            got = file_metrics[name][metric]
            ok = ok and got == value
            row += f" {got!s:>12s}"
        print(f"{row}  {'ok' if ok else 'MISMATCH'}")

    for name, report in analyzed.items():
        assert np.allclose(
            live.utilization.percent, report.utilization.percent
        ), f"utilization mismatch after {name} round trip"
    print("\nevery container preserved every figure-level quantity.")


if __name__ == "__main__":
    main()
