#!/usr/bin/env python
"""Full scaled reproduction of the paper's measurement campaign.

Simulates the two IETF sessions (day, plenary) plus the load ramp that
sweeps channel utilization, then regenerates the data behind every
table and figure in the paper, writing ASCII charts and CSV series into
``examples/results/``.

Usage::

    python examples/ietf_reproduction.py [--fast]

``--fast`` shrinks the simulated durations for a quick look.
"""

from __future__ import annotations

import argparse
import csv
from pathlib import Path

import numpy as np

from repro.core import (
    analyze_trace,
    dataset_summary,
    unrecorded_by_ap,
    user_association_series,
    utilization_series,
)
from repro.sim import (
    ietf_day_config,
    ietf_plenary_config,
    load_ramp_config,
    run_scenario,
)
from repro.viz import histogram_chart, line_chart, multi_line_chart, table


def _write_csv(path: Path, header: list[str], rows) -> None:
    with path.open("w", newline="") as fp:
        writer = csv.writer(fp)
        writer.writerow(header)
        writer.writerows(rows)


def _binned_csv(path: Path, series_map: dict) -> None:
    names = list(series_map)
    utils = sorted({u for s in series_map.values() for u in s.utilization})
    rows = []
    for u in utils:
        rows.append([u] + [series_map[n].value_at(u) for n in names])
    _write_csv(path, ["utilization"] + names, rows)


def reproduce(out: Path, fast: bool) -> None:
    session_s = 30.0 if fast else 90.0
    ramp_s = 60.0 if fast else 240.0
    out.mkdir(parents=True, exist_ok=True)

    print("simulating day session ...")
    day = run_scenario(ietf_day_config(duration_s=session_s))
    print("simulating plenary session ...")
    plenary = run_scenario(ietf_plenary_config(duration_s=session_s))
    print("simulating utilization ramp ...")
    ramp = run_scenario(load_ramp_config(duration_s=ramp_s))
    report = analyze_trace(ramp.trace, ramp.roster, name="ramp")

    # ---- Table 1 -------------------------------------------------------
    rows = [
        dataset_summary(day.trace.only_channel(ch), f"day/ch{ch}").as_row()
        for ch in day.config.channels
    ] + [
        dataset_summary(plenary.trace.only_channel(ch), f"plenary/ch{ch}").as_row()
        for ch in plenary.config.channels
    ]
    (out / "table1.txt").write_text(table(rows, title="Table 1 analogue"))
    print(table(rows, title="Table 1 analogue"))

    # ---- Figure 4 -------------------------------------------------------
    for name, result in (("day", day), ("plenary", plenary)):
        users = user_association_series(result.trace, result.roster, 10_000_000)
        _write_csv(
            out / f"fig4b_{name}.csv",
            ["interval", "users"],
            zip(users.column("interval"), users.column("users")),
        )
        unrec = unrecorded_by_ap(result.trace, result.roster)
        _write_csv(
            out / f"fig4c_{name}.csv",
            ["ap", "rank", "captured", "missing", "unrecorded_percent"],
            zip(*(unrec.column(c) for c in
                  ("ap", "rank", "captured", "missing", "unrecorded_percent"))),
        )

    # ---- Figure 5 -------------------------------------------------------
    chart = ""
    for name, result in (("day", day), ("plenary", plenary)):
        merged = np.concatenate(
            [
                utilization_series(result.trace.only_channel(ch)).percent
                for ch in result.config.channels
            ]
        )
        counts, _ = np.histogram(np.clip(merged, 0, 100), bins=np.arange(0, 101, 2))
        chart += histogram_chart(
            np.arange(0, 100, 2), counts,
            title=f"Fig 5c ({name}) utilization frequency", x_label="util %",
        )
        _write_csv(out / f"fig5c_{name}.csv", ["bin", "count"],
                   zip(np.arange(0, 100, 2), counts))
    (out / "fig5.txt").write_text(chart)

    # ---- Figures 6-15 from the ramp ------------------------------------
    band = lambda s: s.restricted(20, 100)  # noqa: E731 - local shorthand
    tput, gput = band(report.throughput.throughput_mbps), band(
        report.throughput.goodput_mbps
    )
    fig6 = multi_line_chart(
        tput.utilization,
        {"throughput": tput.value, "goodput": gput.value},
        title="Fig 6: Mbps vs utilization",
        x_label="utilization %",
    )
    peak_u, peak_v = report.throughput.peak()
    fig6 += f"\npeak {peak_v:.2f} Mbps @ {peak_u:.0f}% (paper: 4.9 @ 84%)\n"
    (out / "fig6.txt").write_text(fig6)
    print(fig6)
    _binned_csv(out / "fig6.csv", {
        "throughput": report.throughput.throughput_mbps,
        "goodput": report.throughput.goodput_mbps,
    })

    _binned_csv(out / "fig7.csv", {"rts": report.rts_cts.rts, "cts": report.rts_cts.cts})
    _binned_csv(out / "fig8.csv", {f"busy_{r:g}": report.busytime_share[r]
                                   for r in (1.0, 2.0, 5.5, 11.0)})
    _binned_csv(out / "fig9.csv", {f"bytes_{r:g}": report.bytes_per_rate[r]
                                   for r in (1.0, 2.0, 5.5, 11.0)})
    for fig, names in (
        ("fig10", ("S-1", "S-2", "S-5.5", "S-11")),
        ("fig11", ("XL-1", "XL-2", "XL-5.5", "XL-11")),
        ("fig12", ("S-1", "M-1", "L-1", "XL-1")),
        ("fig13", ("S-11", "M-11", "L-11", "XL-11")),
    ):
        _binned_csv(out / f"{fig}.csv",
                    {n: report.transmissions[n] for n in names})
    _binned_csv(out / "fig14.csv", {f"acked_{r:g}": report.reception[r]
                                    for r in (1.0, 2.0, 5.5, 11.0)})
    _binned_csv(out / "fig15.csv", {n: report.delays[n] for n in report.delays.names})

    print(f"wrote per-figure CSVs and charts to {out}/")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="short durations")
    parser.add_argument(
        "--out", default=Path(__file__).parent / "results", type=Path
    )
    args = parser.parse_args()
    reproduce(args.out, args.fast)


if __name__ == "__main__":
    main()
