#!/usr/bin/env python
"""Rate-adaptation policy study (the paper's §7 recommendation).

The paper concludes that loss-triggered rate adaptation (the ARF
family) is *detrimental* under congestion because it cannot tell
collision losses from channel-error losses, and suggests SNR-based
schemes instead.  This study runs the same congested cell under four
policies — ARF, AARF, an SNR oracle and fixed-11 — at several offered
loads and reports goodput, 1 Mbps airtime, and delivery ratio.

Built on ``repro.api``: one base experiment, forked per (policy, load)
cell with ``.fix(...)``; the buffered simulation is kept so the study
can read ground truth and per-station MAC counters directly.

Usage::

    python examples/rate_adaptation_study.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Experiment
from repro.core import goodput_per_second, utilization_series
from repro.frames import FrameType
from repro.viz import table

POLICIES = ("arf", "aarf", "snr", "fixed")
LOADS_PPS = (6.0, 14.0, 24.0)

#: The congested cell every (policy, load) point shares.
BASE = Experiment.scenario(
    "uniform",
    n_stations=12,
    duration_s=20.0,
    seed=41,
    obstructed_fraction=0.25,
).fix(
    room_width_m=36.0,
    room_depth_m=24.0,
    shadowing_sigma_db=6.0,
    path_loss_exponent=3.2,
    station_tx_power_dbm=12.0,
).analyses("summary")  # the study reads the sim directly; skip the full report


def run_cell(policy: str, downlink_pps: float) -> dict:
    experiment = BASE.fix(
        rate_algorithm=policy,
        rate_adaptation_kwargs=(
            {"up_threshold": 5, "down_threshold": 3}
            if policy in ("arf", "aarf")
            else {}
        ),
        uplink_pps=downlink_pps / 3.0,
        downlink_pps=downlink_pps,
    )
    sim = experiment.run(keep_trace=True).scenario_result
    truth = sim.ground_truth
    data = truth.only_type(FrameType.DATA)
    attempts = sum(s.mac.stats.data_attempts for s in sim.stations)
    attempts += sim.aps[0].mac.stats.data_attempts
    successes = sum(s.mac.stats.data_successes for s in sim.stations)
    successes += sim.aps[0].mac.stats.data_successes
    return {
        "policy": policy,
        "offered_pps": downlink_pps,
        "goodput_Mbps": round(float(goodput_per_second(truth).mean()), 3),
        "mean_util_%": round(float(utilization_series(truth).percent.mean()), 1),
        "at_1Mbps": round(float(np.mean(data.rate_code == 0)), 3),
        "delivery": round(successes / max(attempts, 1), 3),
    }


def main() -> None:
    rows = []
    for load in LOADS_PPS:
        for policy in POLICIES:
            print(f"running {policy} at {load:.0f} pps downlink ...")
            rows.append(run_cell(policy, load))

    print()
    print(table(rows, title="Rate adaptation under increasing congestion"))
    print(
        "Reading: under heavy load the ARF family shifts airtime to 1 Mbps\n"
        "(at_1Mbps column) and loses goodput, while the SNR oracle holds the\n"
        "rate because collisions carry no SNR signal — the paper's §7 point.\n"
        "Fixed-11 is the no-adaptation control: best when all links are\n"
        "clean, worst for the obstructed users who genuinely need 1-2 Mbps."
    )


if __name__ == "__main__":
    main()
