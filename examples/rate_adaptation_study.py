#!/usr/bin/env python
"""Rate-adaptation policy study (the paper's §7 recommendation).

The paper concludes that loss-triggered rate adaptation (the ARF
family) is *detrimental* under congestion because it cannot tell
collision losses from channel-error losses, and suggests SNR-based
schemes instead.  This study runs the same congested cell under four
policies — ARF, AARF, an SNR oracle and fixed-11 — at several offered
loads and reports goodput, 1 Mbps airtime, and delivery ratio.

Usage::

    python examples/rate_adaptation_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core import goodput_per_second, utilization_series
from repro.frames import FrameType
from repro.sim import ConstantRate, ScenarioConfig, run_scenario
from repro.viz import table

POLICIES = ("arf", "aarf", "snr", "fixed")
LOADS_PPS = (6.0, 14.0, 24.0)


def run_cell(policy: str, downlink_pps: float) -> dict:
    config = ScenarioConfig(
        n_stations=12,
        duration_s=20.0,
        seed=41,
        room_width_m=36.0,
        room_depth_m=24.0,
        shadowing_sigma_db=6.0,
        path_loss_exponent=3.2,
        station_tx_power_dbm=12.0,
        rate_algorithm=policy,
        rate_adaptation_kwargs=(
            {"up_threshold": 5, "down_threshold": 3}
            if policy in ("arf", "aarf")
            else {}
        ),
        obstructed_fraction=0.25,
        uplink=ConstantRate(downlink_pps / 3.0),
        downlink=ConstantRate(downlink_pps),
    )
    result = run_scenario(config)
    truth = result.ground_truth
    data = truth.only_type(FrameType.DATA)
    attempts = sum(s.mac.stats.data_attempts for s in result.stations)
    attempts += result.aps[0].mac.stats.data_attempts
    successes = sum(s.mac.stats.data_successes for s in result.stations)
    successes += result.aps[0].mac.stats.data_successes
    return {
        "policy": policy,
        "offered_pps": downlink_pps,
        "goodput_Mbps": round(float(goodput_per_second(truth).mean()), 3),
        "mean_util_%": round(float(utilization_series(truth).percent.mean()), 1),
        "at_1Mbps": round(float(np.mean(data.rate_code == 0)), 3),
        "delivery": round(successes / max(attempts, 1), 3),
    }


def main() -> None:
    rows = []
    for load in LOADS_PPS:
        for policy in POLICIES:
            print(f"running {policy} at {load:.0f} pps downlink ...")
            rows.append(run_cell(policy, load))

    print()
    print(table(rows, title="Rate adaptation under increasing congestion"))
    print(
        "Reading: under heavy load the ARF family shifts airtime to 1 Mbps\n"
        "(at_1Mbps column) and loses goodput, while the SNR oracle holds the\n"
        "rate because collisions carry no SNR signal — the paper's §7 point.\n"
        "Fixed-11 is the no-adaptation control: best when all links are\n"
        "clean, worst for the obstructed users who genuinely need 1-2 Mbps."
    )


if __name__ == "__main__":
    main()
