#!/usr/bin/env python
"""Quickstart: simulate a small congested WLAN and analyze it.

Runs a one-AP, eight-station 802.11b cell for 20 simulated seconds,
captures the traffic with a vicinity sniffer (exactly as the paper's
monitoring laptops did), and streams the capture once through
:func:`repro.pipeline.run_all` to get the full congestion analysis:
utilization, congestion classes, throughput/goodput, and the headline
link-layer effects.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import CongestionLevel
from repro.pipeline import run_all
from repro.sim import ConstantRate, ScenarioConfig, run_scenario
from repro.viz import line_chart, table


def main() -> None:
    config = ScenarioConfig(
        n_stations=8,
        n_aps=1,
        duration_s=20.0,
        seed=7,
        uplink=ConstantRate(8.0),
        downlink=ConstantRate(18.0),
        obstructed_fraction=0.25,   # a couple of users on marginal links
        rtscts_fraction=0.125,      # one RTS/CTS user, like the IETF floor
    )
    print(f"simulating {config.n_stations} stations for {config.duration_s:.0f} s ...")
    result = run_scenario(config)
    print(
        f"captured {len(result.trace)} of {len(result.ground_truth)} frames "
        f"({result.capture_ratio:.0%})"
    )

    report = run_all(result.trace, result.roster, name="quickstart")

    print()
    print(table([report.summary.as_row()], title="Capture summary (Table 1 style)"))

    series = report.utilization
    print(
        line_chart(
            series.seconds,
            series.clipped(),
            title="Channel utilization per second (Fig 5 style)",
            x_label="second",
            y_label="util %",
        )
    )

    print("Congestion state occupancy (paper §5.3 classes):")
    for level in CongestionLevel:
        share = report.level_occupancy[level]
        print(f"  {level.label:22s} {share:6.1%}")
    print(f"  thresholds: low {report.thresholds.low:.0f} %, "
          f"high {report.thresholds.high:.0f} % utilization")

    headline = report.headline()
    print()
    print("Headline (Fig 6 style):")
    print(f"  throughput peak     {headline['throughput_peak_mbps']:.2f} Mbps "
          f"at {headline['throughput_peak_utilization']:.0f} % utilization")
    print(f"  unrecorded frames   {headline['unrecorded_percent']:.1f} % "
          "(paper §4.4 atomicity estimate)")


if __name__ == "__main__":
    main()
