#!/usr/bin/env python
"""Quickstart: simulate a small congested WLAN and analyze it.

One ``repro.api`` experiment: a one-AP, eight-station 802.11b cell runs
for 20 simulated seconds, a vicinity sniffer captures the traffic
(exactly as the paper's monitoring laptops did), and the capture goes
once through the single-pass analysis pipeline for the full congestion
report: utilization, congestion classes, throughput/goodput, and the
headline link-layer effects.

The same experiment as a declarative spec file lives at
``examples/specs/quickstart.toml`` — run it with
``repro run examples/specs/quickstart.toml``.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Experiment
from repro.core import CongestionLevel
from repro.viz import line_chart, table


def main() -> None:
    experiment = Experiment.scenario(
        "uniform",
        n_stations=8,
        n_aps=1,
        duration_s=20.0,
        seed=7,
        uplink_pps=8.0,
        downlink_pps=18.0,
        obstructed_fraction=0.25,   # a couple of users on marginal links
        rtscts_fraction=0.125,      # one RTS/CTS user, like the IETF floor
    ).named("quickstart")

    spec = experiment.spec()
    print(f"simulating scenario {spec.scenario!r} for 20 s ...")
    result = experiment.run(keep_trace=True)

    sim = result.scenario_result
    print(
        f"captured {len(sim.trace)} of {len(sim.ground_truth)} frames "
        f"({sim.capture_ratio:.0%})"
    )

    report = result.report

    print()
    print(table([report.summary.as_row()], title="Capture summary (Table 1 style)"))

    series = report.utilization
    print(
        line_chart(
            series.seconds,
            series.clipped(),
            title="Channel utilization per second (Fig 5 style)",
            x_label="second",
            y_label="util %",
        )
    )

    print("Congestion state occupancy (paper §5.3 classes):")
    for level in CongestionLevel:
        share = report.level_occupancy[level]
        print(f"  {level.label:22s} {share:6.1%}")
    print(f"  thresholds: low {report.thresholds.low:.0f} %, "
          f"high {report.thresholds.high:.0f} % utilization")

    headline = report.headline()
    print()
    print("Headline (Fig 6 style):")
    print(f"  throughput peak     {headline['throughput_peak_mbps']:.2f} Mbps "
          f"at {headline['throughput_peak_utilization']:.0f} % utilization")
    print(f"  unrecorded frames   {headline['unrecorded_percent']:.1f} % "
          "(paper §4.4 atomicity estimate)")

    # Any experiment serializes to a re-runnable spec file:
    print()
    print("-- equivalent spec (repro run <file>.toml) " + "-" * 20)
    print(spec.to_toml(), end="")


if __name__ == "__main__":
    main()
