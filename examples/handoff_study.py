#!/usr/bin/env python
"""Roaming and infrastructure dynamics (paper §2 [15], §4.1, Fig 4b).

The IETF infrastructure was not static: clients handed off between APs
and the Airespace controllers rebalanced channels.  This study runs a
two-AP cell with heavy shadowing — so the naive nearest-AP association
is frequently wrong — first frozen, then with best-beacon roaming and
dynamic channel management enabled, and compares:

* how many stations end up on their strongest-beacon AP,
* per-station delivery (Jain fairness), and
* the association timeline the paper's Figure 4(b) plots.

Usage::

    python examples/handoff_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core import station_stats, user_association_series
from repro.sim import ConstantRate, ScenarioConfig, run_scenario
from repro.viz import table


def _config(roaming: bool, seed: int = 83) -> ScenarioConfig:
    return ScenarioConfig(
        n_stations=12,
        n_aps=2,
        channels=(1, 6),
        duration_s=25.0,
        seed=seed,
        room_width_m=50.0,
        room_depth_m=25.0,
        shadowing_sigma_db=8.0,
        uplink=ConstantRate(6.0),
        downlink=ConstantRate(8.0),
        roaming=roaming,
    )


def _evaluate(roaming: bool) -> dict:
    result = run_scenario(_config(roaming))
    # How many stations serve from their best-beacon AP?  Evaluate with
    # a fresh manager's scan logic even when roaming was off.
    from repro.sim import RoamingManager

    probe = RoamingManager(
        sim=result.sim,
        propagation=result.medium.propagation,
        aps=result.aps,
        stations=result.stations,
        downlink_router={},
        ap_tx_power_dbm=result.config.ap_tx_power_dbm,
    )
    on_best = sum(
        1
        for station in result.stations
        if probe.best_ap(station).node_id == station.ap_id
    )
    stats = station_stats(result.trace, result.roster)
    roams = (
        len(result.roaming_manager.roams) if result.roaming_manager else 0
    )
    return {
        "roaming": "on" if roaming else "off",
        "stations_on_best_ap": f"{on_best}/{result.config.n_stations}",
        "roams": roams,
        "jain_fairness": round(stats.fairness("acked_bytes"), 3),
        "total_acked_bytes": int(stats.table.column("acked_bytes").sum()),
        "_result": result,
    }


def main() -> None:
    rows = []
    for roaming in (False, True):
        print(f"running with roaming {'on' if roaming else 'off'} ...")
        rows.append(_evaluate(roaming))

    display = [{k: v for k, v in r.items() if not k.startswith("_")} for r in rows]
    print()
    print(table(display, title="Handoff study: frozen vs roaming association"))

    # Association timeline (Fig 4b analogue) for the roaming run.
    result = rows[1]["_result"]
    series = user_association_series(result.trace, result.roster, 5_000_000)
    users = series.column("users")
    print("active users per 5 s interval (roaming run):")
    for interval, count in zip(series.column("interval"), users):
        print(f"  t={int(interval) * 5:3d}s  {'#' * int(count)} {count}")

    ap_counts = {}
    for station in result.stations:
        ap_counts[station.ap_id] = ap_counts.get(station.ap_id, 0) + 1
    print(f"\nfinal stations per AP (roaming run): {ap_counts}")
    print(
        "\nReading: with heavy shadowing, distance-based association leaves"
        "\nseveral stations on the weaker AP; best-beacon roaming moves all"
        "\nof them (the Mishra et al. handoff behaviour the paper cites)."
        "\nNote the catch: SNR-greedy handoff is load-blind — it can pile"
        "\nstations onto one AP/channel and *reduce* total delivery, which"
        "\nis exactly why the IETF's Airespace controllers paired dynamic"
        "\nchannels with client load balancing (paper §4.1)."
    )


if __name__ == "__main__":
    main()
