"""Simulator trace-generation speed benchmark — the committed baseline.

Measures frames/second of *trace generation* (build + stream-consume,
the campaign hot path) plus peak RSS for named library scenarios, and
writes ``BENCH_sim.json``.  Each scenario runs in a fresh subprocess so
peak-RSS numbers are per-scenario, not cumulative.

The JSON includes a pure-Python *calibration score* so the regression
check is meaningful across machines: a committed baseline measured on a
fast workstation is scaled by the current machine's calibration ratio
before comparing.

Every scenario is measured once per fidelity (``default`` — the
golden-digest-pinned event-stepped engine — and ``fast``, the columnar
batch-stepped core); the JSON stores per-fidelity sections and the
regression check compares strictly like-for-like (same mode, same
fidelity, same scenario).  A speedup line reports fast vs default for
each scenario.

Usage::

    python benchmarks/bench_sim_speed.py                  # full, writes BENCH_sim.json
    python benchmarks/bench_sim_speed.py --quick          # short durations
    python benchmarks/bench_sim_speed.py --fidelity fast  # one engine only
    python benchmarks/bench_sim_speed.py --quick --check BENCH_sim.json
                                                          # fail on >20% fps regression

CI runs the ``--quick --check`` form (the ``bench-smoke`` job).
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import resource
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

#: scenario name -> (full duration_s, quick duration_s)
SCENARIOS = {
    "day": (20.0, 6.0),
    "hotspot-plenary": (20.0, 6.0),
    "ramp": (20.0, 6.0),
}

#: Engines measured (see ``repro.sim.FIDELITY_MODES``).
FIDELITIES = ("default", "fast")

#: Allowed frames/sec drop vs. the (calibration-scaled) baseline.
REGRESSION_TOLERANCE = 0.20


def calibration_score(iterations: int = 400_000) -> float:
    """Relative single-core Python speed (bigger = faster machine).

    A fixed pure-Python workload shaped like the simulator hot path
    (attribute-free arithmetic, math calls, list traffic); the ratio of
    two machines' scores tracks how their simulator fps relate, which
    lets a committed baseline travel between machines.
    """
    start = time.perf_counter()
    acc = 0.0
    values = [1.000003] * 64
    for i in range(iterations):
        acc += math.exp(-values[i & 63] * 1e-6) - 1.0
    elapsed = time.perf_counter() - start
    assert acc != 1.0  # keep the loop live
    return iterations / elapsed / 1e6


def measure_scenario(
    name: str, duration_s: float, fidelity: str = "default"
) -> dict[str, object]:
    """Build + stream one scenario to exhaustion; return its metrics.

    Best of two passes: identical fixed-seed runs, so the faster pass is
    the same work with less scheduler noise — that stabilises the CI
    regression check.
    """
    from repro.sim import build_scenario

    best = None
    for _ in range(2):
        built = build_scenario(name, duration_s=duration_s, fidelity=fidelity)
        start = time.perf_counter()
        frames_streamed = 0
        for chunk in built.stream(window_s=1.0):
            frames_streamed += len(chunk)
        elapsed = time.perf_counter() - start
        # Capture counters now and drop the scenario before the next
        # pass — keeping it alive would double the recorded peak RSS.
        counters = built.perf_counters
        del built
        if best is None or elapsed < best[0]:
            best = (elapsed, frames_streamed, counters)
    elapsed, frames_streamed, counters = best
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    frames = counters["frames_transmitted"]
    return {
        "duration_s": duration_s,
        "frames_transmitted": frames,
        "frames_captured": frames_streamed,
        "wall_s": round(elapsed, 3),
        "frames_per_sec": round(frames / elapsed, 1),
        "events_processed": counters["events_processed"],
        "events_cancelled": counters["events_cancelled"],
        "peak_rss_mb": round(peak_rss_mb, 1),
    }


def _run_child(name: str, duration_s: float, fidelity: str) -> dict[str, object]:
    """Run one scenario in a fresh interpreter for clean peak-RSS."""
    proc = subprocess.run(
        [sys.executable, __file__, "--_child", name, str(duration_s), fidelity],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def run_benchmark(quick: bool, fidelities: tuple[str, ...]) -> dict[str, object]:
    """Measure the quick durations always, plus the full ones unless --quick.

    Storing both modes in one JSON lets a fast CI job (``--quick
    --check``) compare against the committed full-run baseline without
    comparing different simulation durations against each other.  Each
    mode holds one section per fidelity, so engines are also never
    compared against each other by the regression gate.
    """
    modes = {}
    for mode in (("quick",) if quick else ("quick", "full")):
        sections: dict[str, dict] = {}
        for fidelity in fidelities:
            results = {}
            print(f"[{mode}/{fidelity}]")
            for name, (full, short) in SCENARIOS.items():
                duration = short if mode == "quick" else full
                results[name] = _run_child(name, duration, fidelity)
                print(
                    f"{name:>16}: {results[name]['frames_per_sec']:>9,.0f} frames/s "
                    f"({results[name]['frames_transmitted']} frames in "
                    f"{results[name]['wall_s']}s, peak RSS "
                    f"{results[name]['peak_rss_mb']} MB)"
                )
            sections[fidelity] = results
        if "default" in sections and "fast" in sections:
            speedups = ", ".join(
                f"{name} {sections['fast'][name]['frames_per_sec'] / sections['default'][name]['frames_per_sec']:.1f}x"
                for name in SCENARIOS
            )
            print(f"[{mode}] fast vs default speedup: {speedups}")
        modes[mode] = sections
    return {
        "schema": 3,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "calibration_score": round(calibration_score(), 3),
        "modes": modes,
    }


def _per_fidelity_modes(payload: dict) -> dict:
    """Normalise a results payload to mode → fidelity → scenario.

    Schema 2 files (pre-fidelity) stored scenarios directly under the
    mode; they compare as the ``default`` engine.
    """
    if payload.get("schema", 2) >= 3:
        return payload["modes"]
    return {
        mode: {"default": entries} for mode, entries in payload["modes"].items()
    }


def check_regression(current: dict, baseline_path: Path) -> int:
    """Exit code 1 if any scenario regressed >20% vs. the scaled baseline.

    Strictly like-for-like: only (mode, fidelity, scenario) triples
    present in both runs are compared — the fast engine is never gated
    against default numbers or vice versa.  Baseline frames/sec are
    scaled by the machines' calibration ratio so a baseline committed
    from a fast workstation remains meaningful on a slower CI runner.
    """
    baseline = json.loads(baseline_path.read_text())
    scale = current["calibration_score"] / baseline["calibration_score"]
    current_modes = _per_fidelity_modes(current)
    failed = False
    compared = 0
    for mode, fidelities in _per_fidelity_modes(baseline).items():
        got_mode = current_modes.get(mode)
        if got_mode is None:
            continue
        for fidelity, entries in fidelities.items():
            got_fidelity = got_mode.get(fidelity)
            if got_fidelity is None:
                continue
            for name, entry in entries.items():
                label = f"{mode}/{fidelity}/{name}"
                got = got_fidelity.get(name)
                if got is None:
                    print(f"{label}: missing from current run", file=sys.stderr)
                    failed = True
                    continue
                compared += 1
                floor = (
                    entry["frames_per_sec"] * scale * (1.0 - REGRESSION_TOLERANCE)
                )
                status = "ok" if got["frames_per_sec"] >= floor else "REGRESSION"
                print(
                    f"{label:>28}: {got['frames_per_sec']:>9,.0f} frames/s "
                    f"vs floor {floor:,.0f} (baseline "
                    f"{entry['frames_per_sec']:,.0f} × {scale:.2f} machine scale)"
                    f" — {status}"
                )
                if status != "ok":
                    failed = True
    if not compared:
        print("no comparable scenarios between runs", file=sys.stderr)
        return 1
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="short durations")
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_sim.json"),
        help="where to write the results JSON",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE_JSON",
        help="compare against a committed baseline; exit 1 on >20%% regression",
    )
    parser.add_argument(
        "--fidelity",
        choices=FIDELITIES + ("all",),
        default="all",
        help="which engine(s) to measure (default: all)",
    )
    parser.add_argument("--_child", nargs=3, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args._child:
        name, duration, fidelity = args._child
        print(json.dumps(measure_scenario(name, float(duration), fidelity)))
        return 0

    fidelities = FIDELITIES if args.fidelity == "all" else (args.fidelity,)
    current = run_benchmark(quick=args.quick, fidelities=fidelities)
    out_path = Path(args.out)
    out_path.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {out_path}")
    if args.check:
        return check_regression(current, Path(args.check))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
