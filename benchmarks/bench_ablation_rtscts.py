"""Ablation A2 — RTS/CTS minority penalty (paper §6.1).

The paper observes that when only a few nodes use RTS/CTS in a
congested cell, those nodes fail to gain their fair share of the
channel: their data delivery depends on *three* frame deliveries
(RTS, CTS, DATA) instead of one.  We sweep the RTS/CTS population
fraction under congestion and measure the fairness index
(goodput share / population share) of the RTS/CTS users.
"""

import numpy as np

from repro.core import rts_cts_fairness
from repro.sim import ConstantRate, ScenarioConfig, run_scenario
from repro.viz import table


def _config(fraction: float) -> ScenarioConfig:
    return ScenarioConfig(
        n_stations=12,
        n_aps=1,
        duration_s=25.0,
        seed=37,
        room_width_m=36.0,
        room_depth_m=24.0,
        shadowing_sigma_db=6.0,
        path_loss_exponent=3.2,
        station_tx_power_dbm=12.0,
        rate_adaptation_kwargs={"up_threshold": 5, "down_threshold": 3},
        rtscts_fraction=fraction,
        # Congested uplink: stations contend hard, which is where the
        # paper observed the handshake penalty.
        uplink=ConstantRate(16.0),
        downlink=ConstantRate(6.0),
    )


def _fairness(fraction: float) -> dict:
    result = run_scenario(_config(fraction))
    fairness = rts_cts_fairness(result.trace, result.roster)
    return {
        "rtscts_fraction": fraction,
        "population_share": round(fairness.rtscts_population, 3),
        "goodput_share": round(fairness.rtscts_share, 3),
        "fairness_index": round(fairness.fairness_index, 3),
        "airtime_overhead": round(fairness.airtime_overhead_ratio, 2),
    }


def test_ablation_rtscts_fairness(benchmark, report_file):
    minority = benchmark.pedantic(_fairness, args=(0.25,), rounds=1, iterations=1)
    rows = [minority, _fairness(0.5)]

    text = table(rows, title="A2: RTS/CTS users' share under congestion")
    text += (
        "\nPaper §6.1: a small RTS/CTS population is denied fair access.\n"
        "Our frame-count fairness index dips only slightly below 1 (no\n"
        "hidden-terminal loss among co-located stations in the model), but\n"
        "the airtime cost per delivered frame shows the structural penalty\n"
        "the handshake users pay (see EXPERIMENTS.md deviation note).\n"
    )
    report_file(text)

    # The minority RTS/CTS population obtains no more than its fair
    # share of deliveries...
    assert minority["fairness_index"] <= 1.0
    # ...while paying substantially more channel time per delivery.
    assert minority["airtime_overhead"] > 1.2
