"""Figure 10 — small (S) frame transmissions per second across rates.

Paper: S-11 counts dominate the other S categories at every congestion
level, and rise under high congestion (Cantieni et al.'s prediction
that small fast frames keep winning channel access); S-1 also grows as
rate adaptation pushes retries down the ladder.
"""

import numpy as np

from repro.core import figure10_categories, transmissions_vs_utilization
from repro.viz import multi_line_chart


def test_fig10_small_frames(benchmark, ramp_result, report_file):
    counts = benchmark(
        transmissions_vs_utilization,
        ramp_result.trace,
        figure10_categories(),
    )
    band = {name: counts[name].restricted(20, 100) for name in counts.names}
    text = multi_line_chart(
        band["S-11"].utilization,
        {name: band[name].value for name in counts.names},
        title="Fig 10 analogue: S-class frames/second per rate",
        x_label="utilization %",
    )

    def total(name):
        return float(np.nansum(counts[name].value * counts[name].count))

    totals = {name: total(name) for name in counts.names}
    text += f"\ntotals: { {k: round(v) for k, v in totals.items()} }\n"
    text += "Paper: S-11 >> S-1/S-2/S-5.5 at all levels.\n"
    report_file(text)

    # S-11 dominates the S class overall.
    assert totals["S-11"] > totals["S-1"]
    assert totals["S-11"] > totals["S-2"]
    assert totals["S-11"] > totals["S-5.5"]
    # S-11 counts grow with utilization from the idle floor into the
    # loaded bands (count-weighted band means; single bins are noisy).
    def band_mean(series, lo, hi):
        band = series.restricted(lo, hi)
        if band.count.sum() == 0:
            return float("nan")
        return float(np.average(band.value, weights=band.count))

    low = band_mean(counts["S-11"], 5, 30)
    high = band_mean(counts["S-11"], 55, 100)
    if not (np.isnan(low) or np.isnan(high)):
        assert high > low
