"""Figure 8 — channel busy-time share of each data rate vs utilization.

Paper: 1 Mbps frames occupy far more channel time than 11 Mbps frames
at almost all utilization levels, and their share *grows* across the
high-congestion knee (0.43 s -> 0.54 s of every second), which is the
direct mechanism of the Figure 6 throughput collapse.

Shape checks: 1 Mbps share grows from the moderate band to the high
band; 1 Mbps share exceeds the 11 Mbps share under high congestion;
2/5.5 Mbps shares stay small (the paper's F2).
"""

import numpy as np

from repro.pipeline import run_consumers
from repro.viz import multi_line_chart


def _busytime_share(trace):
    """Figure 8 series via the streaming pipeline's single pass."""
    return run_consumers(trace, ["busytime_share"])["busytime_share"]


def test_fig8_busytime_share(benchmark, ramp_result, report_file):
    shares = benchmark(_busytime_share, ramp_result.trace)

    band = {rate: shares[rate].restricted(20, 100) for rate in shares.rates}
    text = multi_line_chart(
        band[1.0].utilization,
        {f"{rate:g} Mbps": band[rate].value for rate in shares.rates},
        title="Fig 8 analogue: busy seconds per second, per rate",
        x_label="utilization %",
    )
    share_1_mod = shares[1.0].value_at(55)
    share_1_high = shares[1.0].value_at(95)
    text += (
        f"\n1 Mbps share: {share_1_mod:.2f} s at 55% -> {share_1_high:.2f} s at 95% "
        "(paper: 0.43 -> 0.54)\n"
        f"11 Mbps share at 95%: {shares[11.0].value_at(95):.2f} s\n"
    )
    report_file(text)

    # F4: the 1 Mbps share grows across the knee...
    assert share_1_high > share_1_mod
    # ...and dominates the 11 Mbps share under high congestion.
    assert share_1_high > shares[11.0].value_at(95)
    # F2: the middle rates stay marginal at every level.
    for rate in (2.0, 5.5):
        values = band[rate].value
        assert np.nanmean(values) < np.nanmean(band[1.0].value) + 0.05
