"""Figure 7 — RTS and CTS frames per second versus utilization.

Paper: RTS counts climb with utilization (5 -> 8 per second over the
80-84 % band) as collisions force more handshake attempts, then collapse
under high congestion when channel access dries up; CTS counts trail
RTS because RTS receptions fail.

Shape checks: RTS present (a minority of stations use the handshake),
CTS never exceeding RTS in any bin, and the handshake success ratio
degrading from the moderate band to the high band.
"""

import numpy as np

from repro.core import rts_cts_vs_utilization
from repro.viz import multi_line_chart


def test_fig7_rts_cts(benchmark, ramp_result, report_file):
    series = benchmark(rts_cts_vs_utilization, ramp_result.trace)
    rts = series.rts.restricted(20, 100)
    cts = series.cts.restricted(20, 100)

    text = multi_line_chart(
        rts.utilization,
        {"RTS": rts.value, "CTS": cts.value},
        title="Fig 7 analogue: RTS/CTS frames per second vs utilization",
        x_label="utilization %",
    )
    ratio = series.handshake_success_ratio()
    text += (
        f"\nhandshake success ratio: moderate band "
        f"{np.nanmean(ratio[(series.rts.utilization >= 40) & (series.rts.utilization <= 70)]):.2f}, "
        f"high band {np.nanmean(ratio[series.rts.utilization > 85]):.2f} "
        "(paper: CTS lags RTS increasingly under congestion)\n"
    )
    report_file(text)

    assert rts.value.sum() > 0, "RTS/CTS population produced no handshakes"
    # Every CTS answers an RTS, so in aggregate CTS <= RTS.  (Per-bin
    # this can flip when a handshake straddles a second boundary or the
    # sniffer missed the RTS — the same reason the paper needs its §4.4
    # lone-CTS inference — so the check is on totals.)
    total_rts = float(np.nansum(series.rts.value * series.rts.count))
    total_cts = float(np.nansum(series.cts.value * series.cts.count))
    assert total_cts <= total_rts * 1.05
    # More RTS activity under load than when idle.
    idle = series.rts.value_at(15)
    busy = np.nanmax(rts.value) if len(rts) else np.nan
    if not (np.isnan(idle) or np.isnan(busy)):
        assert busy >= idle
