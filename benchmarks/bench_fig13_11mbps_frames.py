"""Figure 13 — 11 Mbps frame transmissions per second across sizes.

Paper: a large number of data frames ride the highest rate; S-11 and
XL-11 counts increase with utilization during high congestion as
retransmissions multiply.
"""

import numpy as np

from repro.core import figure13_categories, transmissions_vs_utilization
from repro.viz import multi_line_chart


def test_fig13_11mbps_frames(benchmark, ramp_result, report_file):
    counts = benchmark(
        transmissions_vs_utilization,
        ramp_result.trace,
        figure13_categories(),
    )
    band = {name: counts[name].restricted(20, 100) for name in counts.names}
    text = multi_line_chart(
        band["S-11"].utilization,
        {name: band[name].value for name in counts.names},
        title="Fig 13 analogue: 11 Mbps frames/second per size class",
        x_label="utilization %",
    )

    def total(name):
        return float(np.nansum(counts[name].value * counts[name].count))

    totals = {name: total(name) for name in counts.names}
    text += f"\ntotals: { {k: round(v) for k, v in totals.items()} }\n"
    text += "Paper: S-11 and XL-11 dominate and rise with congestion.\n"
    report_file(text)

    # The traffic mix makes S-11 and XL-11 the heavyweight categories.
    assert totals["S-11"] > totals["M-11"]
    assert totals["XL-11"] > totals["L-11"]
    # Counts rise from the uncongested floor into the loaded bands.
    for name in ("S-11", "XL-11"):
        low = counts[name].value_at(25)
        busy = counts[name].value_at(75)
        if not (np.isnan(low) or np.isnan(busy)):
            assert busy > low
