"""Table 1 — the two IETF data sets (day, plenary) summarised.

Paper: two sessions, each captured on channels 1/6/11; 28.6M data
frames, 27.05M ACKs, 40k RTS and 17.5k CTS cumulatively, with minimal
RTS/CTS usage.  We regenerate the same summary rows from the scaled
scenarios and check the same qualitative facts: all three channels
present, ACK counts of the same order as data counts, RTS/CTS a small
minority.
"""

from repro.core import dataset_summary
from repro.viz import table


def _summarise(result, name):
    rows = []
    for channel in result.config.channels:
        sub = result.trace.only_channel(channel)
        summary = dataset_summary(sub, f"{name}/ch{channel}")
        rows.append(summary.as_row())
    rows.append(dataset_summary(result.trace, f"{name}/all").as_row())
    return rows


def test_table1_dataset_summary(benchmark, day_result, plenary_result, report_file):
    rows = benchmark(
        lambda: _summarise(day_result, "day") + _summarise(plenary_result, "plenary")
    )
    text = table(rows, title="Table 1 analogue: per-session, per-channel capture summary")
    text += (
        "\nPaper: day 11:53-17:30 and plenary 19:30-22:30 on channels"
        " 1/6/11; RTS/CTS usage minimal (40k RTS vs 28.6M data frames).\n"
    )
    report_file(text)

    day_all = rows[len(day_result.config.channels)]
    plenary_all = rows[-1]
    for row in (day_all, plenary_all):
        assert row["frames"] > 0
        # ACKs are the same order of magnitude as data frames.
        assert row["ack"] > 0.3 * row["data"]
        # RTS/CTS usage is a small minority, as at the IETF.
        assert row["rts"] + row["cts"] < 0.2 * row["data"]
    # All three channels contributed frames in both sessions.
    assert day_all["channels"] == "1/6/11"
    assert plenary_all["channels"] == "1/6/11"
