"""Figure 5(a/b/c) — utilization time series and frequency histogram.

Paper: day utilization mode ~55 %, plenary mode ~86 %; neither session
spends significant time at 0-30 % or 99-100 %, which is why the paper's
analysis restricts itself to the 30-99 % band.  Our scaled check: the
plenary mode exceeds the day mode, and the plenary concentrates mass in
the high-utilization band.
"""

import numpy as np

from repro.pipeline import run_consumers
from repro.viz import histogram_chart, line_chart


def _utilization(trace):
    """Per-channel utilization via the streaming pipeline's single pass."""
    return run_consumers(trace, ["utilization"])["utilization"]


def test_fig5_utilization(benchmark, day_result, plenary_result, report_file):
    """Utilization is a *per-channel* metric (Eq 8 normalises one
    channel's busy time); like the paper we compute it per channel and
    plot each channel's series."""
    day_ch1 = benchmark(_utilization, day_result.trace.only_channel(1))

    text = ""
    all_series = {}
    for name, result in (("day", day_result), ("plenary", plenary_result)):
        for channel in result.config.channels:
            series = _utilization(result.trace.only_channel(channel))
            all_series[(name, channel)] = series
            text += line_chart(
                series.seconds,
                series.clipped(),
                title=f"Fig 5a/b analogue ({name}, ch {channel}): "
                "utilization per second",
                x_label="second",
                y_label="util %",
            )
        merged = np.concatenate(
            [all_series[(name, ch)].percent for ch in result.config.channels]
        )
        hist_counts, _ = np.histogram(
            np.clip(merged, 0, 100), bins=np.arange(0, 105, 5)
        )
        text += histogram_chart(
            np.arange(0, 100, 5),
            hist_counts,
            title=f"Fig 5c analogue ({name}): utilization frequency, all channels",
            x_label="utilization %",
        )
        text += "\n"
    text += "Paper modes: ~55% day, ~86% plenary.\n"
    report_file(text)

    day_all = np.concatenate(
        [all_series[("day", ch)].percent for ch in day_result.config.channels]
    )
    plenary_all = np.concatenate(
        [all_series[("plenary", ch)].percent for ch in plenary_result.config.channels]
    )
    # Busy-session utilization above the day level, as at the IETF.
    day_busy = day_all[day_all > 10]
    plenary_busy = plenary_all[plenary_all > 10]
    assert plenary_busy.mean() > day_busy.mean()
    # The plenary pushes well into the high-utilization band.
    assert np.percentile(plenary_all, 75) > 40.0
    # Per-channel utilization is physical: bounded even when oversubscribed.
    assert day_all.max() < 130.0 and plenary_all.max() < 130.0
