"""Table 2 — IEEE 802.11b delay components.

This is an exactness audit rather than a measurement: every delay
component and the D_DATA(size)(rate) formula must match the paper's
published microsecond values.  The benchmark times the vectorised CBT
computation over the ramp trace (the hot path of the whole pipeline).
"""

import pytest

from repro.core import DOT11B_TIMING, trace_cbt_us
from repro.viz import table

PAPER_TABLE2 = {
    "D_DIFS": 50.0,
    "D_SIFS": 10.0,
    "D_RTS": 352.0,
    "D_CTS": 304.0,
    "D_ACK": 304.0,
    "D_BEACON": 304.0,
    "D_BO": 0.0,
    "D_PLCP": 192.0,
}


def test_table2_delay_components(benchmark, ramp_result, report_file):
    trace = ramp_result.trace
    cbt = benchmark(trace_cbt_us, trace)
    assert len(cbt) == len(trace)
    assert cbt.min() > 0

    rows = [
        {
            "component": name,
            "paper_us": PAPER_TABLE2[name],
            "ours_us": value,
            "match": "yes" if value == PAPER_TABLE2[name] else "NO",
        }
        for name, value in DOT11B_TIMING.as_table()
    ]
    formula = DOT11B_TIMING.data_frame_duration_us(1500, 11.0)
    rows.append(
        {
            "component": "D_DATA(1500)(11)",
            "paper_us": round(192 + 8 * 1534 / 11.0, 1),
            "ours_us": round(formula, 1),
            "match": "yes",
        }
    )
    report_file(table(rows, title="Table 2: delay components (paper vs ours)"))

    for name, value in DOT11B_TIMING.as_table():
        assert value == PAPER_TABLE2[name], name
    assert formula == pytest.approx(192 + 8 * 1534 / 11.0)
