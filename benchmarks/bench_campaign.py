"""Campaign runner: worker scaling and streamed-cell memory bounds.

A campaign fans scenario×seed cells across a process pool, each cell
streaming its live simulated capture straight into the single-pass
analysis pipeline.  This benchmark checks the two properties that make
campaigns usable at scale:

* **near-linear scaling** — the same grid on 2 workers beats 1 worker
  by a real margin (simulation is GIL-bound Python, so the pool buys
  true parallelism), with identical per-cell numbers either way;
* **bounded memory** — a streamed cell materialises no full-run trace
  and no per-frame ground truth; peak buffered rows stay around one
  drain window regardless of run length (the equivalence guarantee is
  tested in ``tests/pipeline/test_live_stream.py``).
"""

import os
import resource
import time

from repro.campaign import ParameterGrid, run_campaign
from repro.sim import ScenarioBuilder, load_ramp_config

#: Grid sized so per-cell work dominates pool startup: 6 cells of a
#: ~10-second ramp each take a second-plus of simulation.
GRID = ParameterGrid(
    "ramp",
    axes={"n_stations": [8, 12, 16]},
    seeds=2,
    fixed={"duration_s": 10.0},
)


def _rows(result):
    rows = [cell.as_row() for cell in result.cells]
    for row in rows:
        row.pop("wall_s")  # timing differs between runs, numbers must not
    return rows


def test_campaign_scales_with_workers(report_file):
    t0 = time.perf_counter()
    serial = run_campaign(GRID, workers=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_campaign(GRID, workers=2)
    parallel_s = time.perf_counter() - t0

    # -- contract: worker count never changes the numbers ---------------
    assert _rows(serial) == _rows(parallel)

    speedup = serial_s / parallel_s
    cores = os.cpu_count() or 1
    report_file(
        "Campaign runner scaling (6-cell ramp grid)\n"
        f"cells               : {len(serial)}\n"
        f"cpu cores           : {cores}\n"
        f"1 worker            : {serial_s:8.2f} s\n"
        f"2 workers           : {parallel_s:8.2f} s\n"
        f"speedup             : {speedup:8.2f}x\n"
    )

    if cores >= 2:
        # 2 workers over 6 balanced cells should approach 2x; 1.25
        # guards against pool startup and noisy CI machines.
        assert speedup > 1.25, f"campaign not scaling: {speedup:.2f}x"
    else:
        # A single-core box cannot show parallel speedup; require only
        # that the pool adds no pathological overhead.
        assert speedup > 0.5, f"pool overhead pathological: {speedup:.2f}x"


def test_store_resume_is_nearly_free(tmp_path, report_file):
    """A fully-stored campaign re-invocation does zero simulation work
    and costs key hashing + JSON reads — orders of magnitude below the
    cold run it replaces."""
    store_dir = tmp_path / "store"
    t0 = time.perf_counter()
    cold = run_campaign(GRID, workers=2, store_dir=store_dir)
    cold_s = time.perf_counter() - t0
    assert cold.dispatched == len(GRID)

    t0 = time.perf_counter()
    warm = run_campaign(GRID, workers=2, store_dir=store_dir)
    warm_s = time.perf_counter() - t0
    assert warm.dispatched == 0
    assert warm.store_hits == len(GRID)
    assert _rows(cold) == _rows(warm)

    report_file(
        "Campaign store: cold vs fully-stored re-invocation (6-cell grid)\n"
        f"cold (simulated)    : {cold_s:8.2f} s\n"
        f"warm (store-served) : {warm_s:8.2f} s\n"
        f"speedup             : {cold_s / warm_s:8.1f}x\n"
        f"cells dispatched    : {cold.dispatched} -> {warm.dispatched}\n"
    )
    # Generous bound: warm runs take ~100 ms of hashing/IO against tens
    # of seconds of simulation; 5x keeps slow CI boxes green.
    assert warm_s * 5 < cold_s, f"store hit not cheap: {warm_s:.2f}s vs {cold_s:.2f}s"


def test_streamed_cell_memory_stays_bounded(output_dir):
    """A long streamed scenario holds one drain window, not the run."""
    built = ScenarioBuilder(load_ramp_config(duration_s=60.0, seed=3)).build()
    rss_before_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    peak_buffered = 0
    total = 0
    for chunk in built.stream(chunk_frames=4096, window_s=1.0):
        total += len(chunk)
        peak_buffered = max(
            peak_buffered,
            sum(s.frames_buffered for s in built.sniffers),
        )

    rss_after_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    assert total == built.frames_captured
    # No full-run materialisation anywhere:
    assert len(built.medium.ground_truth) == 0
    assert sum(s.frames_buffered for s in built.sniffers) == 0
    # The buffer high-water mark is a couple of drain windows, far below
    # the full capture (~total frames).
    assert peak_buffered < max(2_000, total // 4), (
        f"buffered {peak_buffered} of {total} frames"
    )
    (output_dir / "campaign_memory.txt").write_text(
        "Streamed day-session memory profile\n"
        f"frames streamed     : {total}\n"
        f"peak buffered rows  : {peak_buffered}\n"
        f"ru_maxrss before    : {rss_before_kb} kB\n"
        f"ru_maxrss after     : {rss_after_kb} kB\n"
    )
