"""Ablation A1 — rate-adaptation policy under congestion (paper §7).

The paper's closing recommendation: loss-triggered adaptation (ARF)
misreads collision losses as channel errors and collapses the network;
SNR-based schemes "may offer some relief".  We run the same congested
scenario with four policies and compare delivered goodput.

Expected ordering under congestion: SNR-oracle >= ARF-family, and the
SNR-oracle spends far less airtime at 1 Mbps for the *unobstructed*
population.
"""

import numpy as np

from repro.core import goodput_per_second, utilization_series
from repro.sim import ConstantRate, ScenarioConfig, run_scenario
from repro.viz import table

_POLICIES = ("arf", "aarf", "snr", "fixed")


def _congested_config(policy: str) -> ScenarioConfig:
    return ScenarioConfig(
        n_stations=12,
        n_aps=1,
        duration_s=25.0,
        seed=31,
        room_width_m=36.0,
        room_depth_m=24.0,
        shadowing_sigma_db=6.0,
        path_loss_exponent=3.2,
        station_tx_power_dbm=12.0,
        rate_algorithm=policy,
        rate_adaptation_kwargs=(
            {"up_threshold": 5, "down_threshold": 3}
            if policy in ("arf", "aarf")
            else {}
        ),
        obstructed_fraction=0.25,
        uplink=ConstantRate(6.0),
        downlink=ConstantRate(20.0),
    )


def _run_policy(policy: str) -> dict:
    result = run_scenario(_congested_config(policy))
    truth = result.ground_truth
    gput = goodput_per_second(truth).mean()
    util = utilization_series(truth).percent.mean()
    from repro.frames import FrameType

    data = truth.only_type(FrameType.DATA)
    slow_fraction = float(np.mean(data.rate_code == 0)) if len(data) else 0.0
    return {
        "policy": policy,
        "goodput_Mbps": round(float(gput), 3),
        "mean_util_%": round(float(util), 1),
        "frames_at_1Mbps": round(slow_fraction, 3),
    }


def test_ablation_rate_adaptation(benchmark, report_file):
    rows = [_run_policy(p) for p in _POLICIES if p != "arf"]
    arf_row = benchmark.pedantic(_run_policy, args=("arf",), rounds=1, iterations=1)
    rows.insert(0, arf_row)

    text = table(rows, title="A1: rate-adaptation policy under congestion")
    text += (
        "\nPaper §7: loss-triggered adaptation responds to collisions by "
        "slowing down, which is detrimental; SNR-based schemes avoid it.\n"
    )
    report_file(text)

    by_policy = {r["policy"]: r for r in rows}
    # The SNR oracle must not collapse to 1 Mbps under collisions.
    assert by_policy["snr"]["frames_at_1Mbps"] <= by_policy["arf"]["frames_at_1Mbps"]
    # And it delivers at least as much goodput as ARF under congestion.
    assert by_policy["snr"]["goodput_Mbps"] >= 0.9 * by_policy["arf"]["goodput_Mbps"]
