"""Chaos smoke: a distributed campaign survives a SIGKILLed worker.

Drives the real coordinator/worker stack the way CI's ``chaos-smoke``
job does:

1. run a ~40-cell grid serially (no store) — the ground truth;
2. boot a :class:`repro.campaign.Coordinator` on an ephemeral loopback
   port and spawn two real ``repro campaign-worker`` subprocesses;
3. once the victim worker has completed at least one cell — and the
   campaign is still mid-run — SIGKILL it;
4. assert the survivor drains the grid: every cell resolved, zero
   failures, zero lost work;
5. assert the merged store equals the serial run cell for cell
   (everything except per-cell wall clock, which necessarily jitters)
   and that recomputation is bounded by one lease batch: only the
   dead worker's in-flight cells are ever redone, nothing it already
   completed is recomputed.

Exits non-zero with a diff on any violation.

Usage::

    python benchmarks/smoke_campaign_chaos.py [--workdir DIR]
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.campaign import Coordinator, ParameterGrid, run_campaign  # noqa: E402

#: 10 station counts x 4 seeds = 40 cells, each a short fast-fidelity run.
GRID = ParameterGrid(
    "ramp",
    axes={"n_stations": list(range(2, 12))},
    seeds=4,
    fixed={"duration_s": 1.0},
    fidelity="fast",
)

#: Cells per lease — the recomputation bound after a worker death.
BATCH = 2

#: Far longer than the run: a reclaim can only come from connection
#: death, never a lease timeout, so the recomputation bound is exact.
LEASE_S = 600.0

KILL_DEADLINE_S = 120.0
DRAIN_DEADLINE_S = 600.0


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check(ok: bool, message: str) -> None:
    if not ok:
        fail(message)
    print(f"ok: {message}")


def normalized(cells):
    """Cell results with the volatile wall-clock field zeroed."""
    return [dataclasses.replace(cell, elapsed_s=0.0) for cell in cells]


def spawn_worker(index: int, address: tuple[str, int], workdir: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    log = (workdir / f"worker-{index}.log").open("w")
    host, port = address
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "campaign-worker",
            "--connect",
            f"{host}:{port}",
            "--id",
            f"smoke-{index}",
        ],
        env=env,
        cwd=REPO,
        stdout=log,
        stderr=subprocess.STDOUT,
    )
    proc._smoke_log = log  # closed in the finally block
    return proc


def completed_by(coordinator: Coordinator, prefix: str) -> int:
    """Cells completed by workers whose id starts with ``prefix``."""
    return sum(
        stats.completed
        for name, stats in coordinator.state.workers.items()
        if name.startswith(prefix)
    )


def run(workdir: Path) -> None:
    n_cells = len(GRID)
    print(f"== serial ground truth ({n_cells} cells)")
    serial = run_campaign(GRID, workers=1)
    check(not serial.failed, f"serial run clean ({len(serial.cells)} cells)")

    store_dir = workdir / "store"
    print("== distributed run: coordinator + 2 workers, SIGKILL one mid-run")
    procs = []
    try:
        with Coordinator(
            GRID, store_dir, lease_s=LEASE_S, batch=BATCH
        ) as coordinator:
            print(f"coordinator listening on {coordinator.address}")
            procs = [
                spawn_worker(i, coordinator.address, workdir) for i in range(2)
            ]
            victim, survivor = procs

            # Wait for the victim to finish at least one cell, then
            # strike while the campaign is still mid-run.
            deadline = time.monotonic() + KILL_DEADLINE_S
            while True:
                if coordinator.finished:
                    fail("campaign drained before the worker could be killed")
                if completed_by(coordinator, "smoke-0") >= 1:
                    break
                if time.monotonic() > deadline:
                    fail("victim worker never completed a cell")
                time.sleep(0.05)
            before_kill = completed_by(coordinator, "smoke-0")
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
            print(
                f"SIGKILLed worker smoke-0 after {before_kill} completed "
                f"cell(s), {coordinator.state.outstanding} outstanding"
            )

            check(
                coordinator.wait(timeout=DRAIN_DEADLINE_S),
                "survivor drained the campaign",
            )
            result = coordinator.result()
            state = coordinator.state

        check(not result.failed, "no failed cells")
        check(
            len(result.cells) == n_cells,
            f"all {n_cells} cells resolved (got {len(result.cells)})",
        )
        check(result.store_hits == 0, "fresh store: zero store hits")
        check(result.quarantined == 0, "zero quarantined records")
        check(
            state.reclaims == 1,
            f"exactly one lease reclaimed (got {state.reclaims})",
        )
        recomputed = sum(1 for attempts in state.attempts if attempts > 0)
        check(
            recomputed <= BATCH,
            f"recomputation bounded by one lease batch: "
            f"{recomputed} cell(s) redone <= batch {BATCH}",
        )
        survivor_done = completed_by(coordinator, "smoke-1")
        check(
            completed_by(coordinator, "smoke-0") + survivor_done >= n_cells,
            f"every cell completed by a worker (victim "
            f"{completed_by(coordinator, 'smoke-0')}, survivor {survivor_done})",
        )

        mismatches = [
            (ours.cell.name, ours, theirs)
            for ours, theirs in zip(
                normalized(result.cells), normalized(serial.cells)
            )
            if ours != theirs
        ]
        if mismatches:
            for name, ours, theirs in mismatches[:5]:
                print(f"-- {name}\n  distributed: {ours}\n  serial:      {theirs}")
            fail(f"{len(mismatches)} cell(s) differ from the serial run")
        print(f"ok: all {n_cells} cells bit-identical to serial (modulo wall clock)")
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)
            proc._smoke_log.close()

    print("chaos smoke: PASS")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir",
        help="working directory (default: a fresh temp dir, removed on exit)",
    )
    args = parser.parse_args()
    if args.workdir:
        workdir = Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        run(workdir)
    else:
        with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
            run(Path(tmp))


if __name__ == "__main__":
    main()
