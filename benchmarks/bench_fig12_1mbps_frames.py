"""Figure 12 — 1 Mbps frame transmissions per second across sizes.

Paper: more S-1 than XL-1 frames overall, and both S-1 and XL-1 counts
increase under high congestion as multirate adaptation drags
retransmissions down to 1 Mbps.
"""

import numpy as np

from repro.core import figure12_categories, transmissions_vs_utilization
from repro.viz import multi_line_chart


def test_fig12_1mbps_frames(benchmark, ramp_result, report_file):
    counts = benchmark(
        transmissions_vs_utilization,
        ramp_result.trace,
        figure12_categories(),
    )
    band = {name: counts[name].restricted(20, 100) for name in counts.names}
    text = multi_line_chart(
        band["S-1"].utilization,
        {name: band[name].value for name in counts.names},
        title="Fig 12 analogue: 1 Mbps frames/second per size class",
        x_label="utilization %",
    )

    def total(name):
        return float(np.nansum(counts[name].value * counts[name].count))

    totals = {name: total(name) for name in counts.names}
    text += f"\ntotals: { {k: round(v) for k, v in totals.items()} }\n"
    text += "Paper: S-1 > XL-1; both rise under high congestion.\n"
    report_file(text)

    # 1 Mbps traffic exists (obstructed users + congestion fallback).
    assert totals["S-1"] + totals["XL-1"] > 0
    # The paper's growth claim is about the aggregate 1 Mbps population:
    # under high congestion rate fallback adds 1 Mbps retransmissions,
    # so total 1 Mbps frames/second must not collapse across the knee
    # (individual size classes can trade off against each other).
    moderate_total = sum(
        v for v in (counts[n].value_at(50) for n in counts.names) if not np.isnan(v)
    )
    high_total = sum(
        v for v in (counts[n].value_at(95) for n in counts.names) if not np.isnan(v)
    )
    assert high_total >= 0.8 * moderate_total
    grew = 0
    for name in counts.names:
        moderate, high = counts[name].value_at(50), counts[name].value_at(95)
        if not (np.isnan(moderate) or np.isnan(high)) and high > moderate:
            grew += 1
    assert grew >= 1  # at least one 1 Mbps category grows under congestion
