"""Fairness panel — Jain's index across congestion levels (§6.1 theme).

The paper's §6.1 fairness finding is about one population (RTS/CTS
users); this panel measures cell-wide per-station fairness (frames,
bytes, airtime) as congestion grows, checking that DCF's long-run
access parity survives saturation — the property that makes the Heusse
anomaly possible in the first place (slow stations keep winning equal
access and therefore disproportionate airtime).
"""

import numpy as np

from repro.core import station_stats, utilization_series
from repro.sim import ConstantRate, ScenarioConfig, run_scenario
from repro.viz import table


def _cell(downlink_pps: float, seed: int = 91) -> ScenarioConfig:
    return ScenarioConfig(
        n_stations=12,
        duration_s=15.0,
        seed=seed,
        room_width_m=36.0,
        room_depth_m=24.0,
        shadowing_sigma_db=6.0,
        path_loss_exponent=3.2,
        station_tx_power_dbm=12.0,
        obstructed_fraction=0.25,
        uplink=ConstantRate(downlink_pps / 2.0),
        downlink=ConstantRate(downlink_pps),
    )


def _measure(downlink_pps: float) -> dict:
    result = run_scenario(_cell(downlink_pps))
    stats = station_stats(result.trace, result.roster)
    util = utilization_series(result.trace).percent.mean()
    return {
        "downlink_pps": downlink_pps,
        "mean_util_%": round(float(util), 1),
        "jain_frames": round(stats.fairness("acked_frames"), 3),
        "jain_bytes": round(stats.fairness("acked_bytes"), 3),
        "jain_airtime": round(stats.fairness("airtime_us"), 3),
    }


def test_fairness_vs_congestion(benchmark, report_file):
    light = benchmark.pedantic(_measure, args=(4.0,), rounds=1, iterations=1)
    rows = [light, _measure(12.0), _measure(30.0)]

    text = table(rows, title="Jain fairness vs offered load (12-station cell)")
    text += (
        "\nThe index sits below 1 because the cell is heterogeneous by"
        "\nconstruction (obstructed stations offer less load); the key"
        "\nobservation is that DCF holds per-station service shares steady"
        "\nas the cell moves from idle to ~85% utilization — access-level"
        "\nfairness survives congestion even as total throughput collapses.\n"
    )
    report_file(text)

    for row in rows:
        for key in ("jain_frames", "jain_bytes", "jain_airtime"):
            assert 0.0 < row[key] <= 1.0
    # Frame-count fairness stays high even under load (DCF access parity).
    assert rows[-1]["jain_frames"] > 0.5
