"""Shared benchmark fixtures: cached scenario traces + report output.

Every bench consumes one of three session-cached traces:

* ``ramp_result``     — the offered-load ramp behind Figures 6-15
* ``day_result``      — the scaled IETF day-session analogue
* ``plenary_result``  — the scaled IETF plenary analogue

and writes its paper-vs-measured report (rows + ASCII chart) into
``benchmarks/output/`` so a run leaves an inspectable artifact per
table/figure.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import CongestionReport
from repro.pipeline import run_all
from repro.sim import (
    ScenarioResult,
    ietf_day_config,
    ietf_plenary_config,
    load_ramp_config,
    run_scenario,
)

#: Simulated durations; scaled from the paper's multi-hour sessions
#: (see EXPERIMENTS.md for the scale substitution).
RAMP_DURATION_S = 200.0
SESSION_DURATION_S = 60.0


@pytest.fixture(scope="session")
def ramp_result() -> ScenarioResult:
    """The utilization-sweeping workload (Figures 6-15)."""
    return run_scenario(load_ramp_config(duration_s=RAMP_DURATION_S, seed=11))


@pytest.fixture(scope="session")
def ramp_report(ramp_result) -> CongestionReport:
    """Full paper report, computed by the one-pass streaming pipeline
    (bit-compatible with ``analyze_trace``; see bench_pipeline.py)."""
    return run_all(ramp_result.trace, ramp_result.roster, name="ramp")


@pytest.fixture(scope="session")
def day_result() -> ScenarioResult:
    """Scaled day session: three channels, parallel meeting blocks."""
    return run_scenario(ietf_day_config(duration_s=SESSION_DURATION_S, seed=21))


@pytest.fixture(scope="session")
def plenary_result() -> ScenarioResult:
    """Scaled plenary session: one hall, heavy load."""
    return run_scenario(ietf_plenary_config(duration_s=SESSION_DURATION_S, seed=22))


@pytest.fixture(scope="session")
def output_dir() -> Path:
    path = Path(__file__).parent / "output"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture()
def report_file(output_dir, request):
    """A writer that saves this bench's report under its module name."""
    name = request.module.__name__.replace("bench_", "").replace("test_", "")

    def write(text: str) -> None:
        (output_dir / f"{name}.txt").write_text(text)

    return write
