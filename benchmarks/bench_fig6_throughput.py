"""Figure 6 — throughput and goodput versus channel utilization.

Paper: throughput climbs with utilization to ~4.9 Mbps at ~84 % (close
to the 11 Mbps theoretical maximum), then collapses to ~2.8 Mbps by
98 %; goodput tracks just below throughput (4.4 -> 2.6).  The collapse
is the paper's central exhibit for rate-adaptation misbehaviour.

Shape checks: rise through the moderate band, an interior peak, a
post-peak decline, goodput <= throughput everywhere, and the peak below
the Jun et al. ceiling.
"""

import numpy as np

from repro.baselines import theoretical_maximum_throughput
from repro.core import throughput_vs_utilization
from repro.viz import multi_line_chart


def test_fig6_throughput_goodput(benchmark, ramp_result, report_file):
    series = benchmark(throughput_vs_utilization, ramp_result.trace)
    tput, gput = series.throughput_mbps, series.goodput_mbps
    band_t = tput.restricted(20, 100)
    band_g = gput.restricted(20, 100)

    peak_util, peak_value = series.peak()
    tail = np.mean(band_t.value[-5:]) if len(band_t) >= 5 else float("nan")
    ceiling = theoretical_maximum_throughput(1400, 11.0).throughput_mbps

    text = multi_line_chart(
        band_t.utilization,
        {"throughput": band_t.value, "goodput": band_g.value},
        title="Fig 6 analogue: Mbps vs channel utilization",
        x_label="utilization %",
    )
    text += (
        f"\npeak {peak_value:.2f} Mbps at {peak_util:.0f}% "
        f"(paper: 4.9 at 84%), tail {tail:.2f} Mbps (paper: 2.8), "
        f"Jun TMT ceiling {ceiling:.2f} Mbps\n"
    )
    report_file(text)

    # Shape assertions (paper F1).
    assert np.all(band_g.value <= band_t.value + 1e-9)
    assert 40.0 <= peak_util <= 95.0              # interior peak
    low = band_t.value_at(30)
    if not np.isnan(low):
        assert peak_value > 1.5 * low              # rising leg
    assert peak_value < ceiling                    # below theoretical max
    if not np.isnan(tail):
        assert tail < peak_value                   # post-peak decline
