"""Analytical baseline cross-checks (paper §2, §5.2, §6.3).

* Jun et al. TMT: the Figure 6 ceiling — measured peak throughput must
  sit below the analytical maximum for the traffic mix.
* Heusse et al. anomaly: a 1 Mbps peer more than halves per-station
  throughput — the collapse mechanism in closed form.
* Cantieni et al.: S-11 frames have the best success probability under
  saturation — the §6.3 empirical observation, cross-checked both in
  the model and in the simulated trace.
* Beacon reliability (the authors' prior metric): correlates with
  busy-time utilization but is the weaker, indirect signal.
"""

import numpy as np

from repro.baselines import (
    FrameClass,
    anomaly_penalty,
    anomaly_throughput,
    beacon_reliability_series,
    multirate_dcf_model,
    theoretical_maximum_throughput,
    tmt_table,
)
from repro.core import throughput_vs_utilization, utilization_series
from repro.viz import table


def test_jun_tmt_ceiling(benchmark, ramp_result, report_file):
    points = benchmark(tmt_table)
    measured = throughput_vs_utilization(ramp_result.trace)
    _, peak = measured.peak()
    ceiling = theoretical_maximum_throughput(1400, 11.0).throughput_mbps

    rows = [
        {
            "size_B": p.size_bytes,
            "rate_Mbps": p.rate_mbps,
            "TMT_Mbps": round(p.throughput_mbps, 3),
        }
        for p in points
    ]
    text = table(rows, title="Jun et al. theoretical maximum throughput")
    text += (
        f"\nmeasured Fig-6 peak: {peak:.2f} Mbps; "
        f"11 Mbps/1400 B ceiling: {ceiling:.2f} Mbps "
        "(paper: observed 4.9 'closest to the achievable theoretical maximum')\n"
    )
    report_file(text)

    assert peak < ceiling
    # Published value check: 6.06 Mbps at 1500 B / 11 Mbps.
    assert abs(
        theoretical_maximum_throughput(1500, 11.0).throughput_mbps - 6.06
    ) < 0.1


def test_heusse_anomaly(benchmark, report_file):
    result = benchmark(anomaly_throughput, (11.0, 11.0, 11.0, 1.0))
    uniform = anomaly_throughput((11.0,) * 4)
    rows = [
        {
            "cell": "4 x 11 Mbps",
            "per_station_Mbps": round(uniform.per_station_mbps, 3),
        },
        {
            "cell": "3 x 11 + 1 x 1 Mbps",
            "per_station_Mbps": round(result.per_station_mbps, 3),
        },
    ]
    text = table(rows, title="Heusse et al. performance anomaly")
    text += (
        f"\npenalty factor: {anomaly_penalty(3, 1):.2f} "
        "(one slow peer more than halves everyone's throughput)\n"
    )
    report_file(text)
    assert result.per_station_mbps < uniform.per_station_mbps / 2


def test_cantieni_s11_advantage(benchmark, ramp_result, report_file):
    model = benchmark(
        multirate_dcf_model,
        (
            FrameClass(200, 11.0, 6),
            FrameClass(1400, 11.0, 6),
            FrameClass(200, 1.0, 6),
            FrameClass(1400, 1.0, 6),
        ),
        15.0,
    )
    rows = [
        {"class": name, "P(success)": round(p, 3)}
        for name, p in model.success_probability.items()
    ]
    text = table(rows, title="Cantieni et al. per-class success probability")
    text += (
        f"\ncollision probability p = {model.collision_probability:.3f}; "
        "paper §6.3: small 11 Mbps frames have the highest success probability\n"
    )
    report_file(text)

    probs = model.success_probability
    assert probs["200B@11"] == max(probs.values())


def test_beacon_reliability_vs_busytime(benchmark, plenary_result, report_file):
    trace = plenary_result.trace.only_channel(1)
    util = utilization_series(trace)
    series = benchmark(
        beacon_reliability_series,
        trace,
        plenary_result.roster,
        len(util),
        util.start_us,
    )
    corr = series.correlation_with(util.percent)
    text = (
        "Beacon-reliability baseline (Jardosh et al., E-WIND 2005)\n"
        f"correlation of (1 - reliability) with busy-time utilization: {corr:.2f}\n"
        "The prior metric tracks congestion, but busy-time measures it directly.\n"
    )
    report_file(text)
    # The two congestion signals must agree in direction.
    assert np.isnan(corr) or corr > -0.2
