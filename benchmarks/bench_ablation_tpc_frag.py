"""Ablations A3/A4 — the paper's other congestion countermeasures.

* **A3 transmit power control** (§7): "clients may choose to dynamically
  change the transmit power such that data frames are consistently
  transmitted at high data rates."  We run a cell with a 25 % obstructed
  population with and without closed-loop TPC and compare the mean data
  rate of the obstructed stations and cell goodput.
* **A4 fragmentation** (§2's frame-size adaptation, Modiano [16]):
  splitting large MSDUs on a high-BER link trades overhead for
  per-fragment survival.  We compare delivered bytes on marginal links
  with fragmentation off and at a 400 B threshold.
"""

import numpy as np

from repro.core import goodput_per_second
from repro.frames import FrameType
from repro.sim import ConstantRate, MacConfig, ScenarioConfig, run_scenario
from repro.viz import table


def _cell(power_control: bool, frag: int | None, seed: int = 67) -> ScenarioConfig:
    return ScenarioConfig(
        n_stations=10,
        duration_s=15.0,
        seed=seed,
        room_width_m=36.0,
        room_depth_m=24.0,
        shadowing_sigma_db=6.0,
        path_loss_exponent=3.2,
        station_tx_power_dbm=12.0,
        obstructed_fraction=0.3,
        power_control=power_control,
        mac_config=MacConfig(fragmentation_threshold=frag),
        uplink=ConstantRate(10.0),
        downlink=ConstantRate(6.0),
    )


def _run(power_control: bool, frag: int | None) -> dict:
    result = run_scenario(_cell(power_control, frag))
    truth = result.ground_truth
    data = truth.only_type(FrameType.DATA)
    obstructed = sorted(result.medium.propagation.node_extra_loss_db)
    from_obstructed = np.isin(data.src, obstructed)
    obstructed_rate = (
        float(np.mean(data.rate_mbps[from_obstructed]))
        if from_obstructed.any()
        else float("nan")
    )
    obstructed_delivered = sum(
        s.mac.stats.data_successes
        for s in result.stations
        if s.node_id in obstructed
    )
    return {
        "tpc": "on" if power_control else "off",
        "frag": frag or "-",
        "goodput_Mbps": round(float(goodput_per_second(truth).mean()), 3),
        "obstructed_mean_rate": round(obstructed_rate, 2),
        "obstructed_delivered": obstructed_delivered,
    }


def test_ablation_tpc_and_fragmentation(benchmark, report_file):
    baseline = benchmark.pedantic(_run, args=(False, None), rounds=1, iterations=1)
    rows = [
        baseline,
        _run(True, None),     # TPC only
        _run(False, 400),     # fragmentation only
        _run(True, 400),      # both
    ]
    text = table(rows, title="A3/A4: power control and fragmentation")
    text += (
        "\nPaper §7: raising transmit power keeps frames at high rates;"
        "\nfragmentation (Modiano-style frame sizing) trades overhead for"
        "\nper-fragment survival on marginal links.\n"
    )
    report_file(text)

    by_key = {(r["tpc"], r["frag"]): r for r in rows}
    # A3: TPC lifts the obstructed stations' mean data rate.
    assert (
        by_key[("on", "-")]["obstructed_mean_rate"]
        > by_key[("off", "-")]["obstructed_mean_rate"]
    )
    # A3: and does not hurt cell goodput.
    assert (
        by_key[("on", "-")]["goodput_Mbps"]
        >= 0.9 * by_key[("off", "-")]["goodput_Mbps"]
    )
    # A4: fragmentation helps the obstructed population deliver.
    assert (
        by_key[("off", 400)]["obstructed_delivered"]
        >= by_key[("off", "-")]["obstructed_delivered"]
    )
