"""Figure 4(b) — users associated with the network over time.

Paper: user counts averaged over 30-second intervals; peaks of 523
(day) and 325 (plenary); the population rises and falls with the
meeting schedule.  Our scaled check: the interval series is non-trivial
(population varies), its peak is bounded by the configured station
count, and the day session (staggered blocks) shows more variation than
a flat line.
"""

import numpy as np

from repro.core import user_association_series
from repro.viz import line_chart


def test_fig4b_user_counts(benchmark, day_result, plenary_result, report_file):
    interval_us = 10_000_000  # 10 s intervals for the 60 s scaled session
    day_series = benchmark(
        user_association_series, day_result.trace, day_result.roster, interval_us
    )
    plenary_series = user_association_series(
        plenary_result.trace, plenary_result.roster, interval_us
    )

    text = ""
    for name, series, result in (
        ("day", day_series, day_result),
        ("plenary", plenary_series, plenary_result),
    ):
        users = series.column("users")
        text += line_chart(
            series.column("interval"),
            users,
            title=f"Fig 4b analogue ({name}): active users per 10 s interval",
            x_label="interval",
            y_label="users",
        )
        text += (
            f"peak {users.max()} of {result.config.n_stations} stations "
            "(paper peaks: 523 day / 325 plenary of ~1138 attendees)\n\n"
        )
    report_file(text)

    for series, result in (
        (day_series, day_result),
        (plenary_series, plenary_result),
    ):
        users = series.column("users")
        assert users.max() > 0
        assert users.max() <= result.config.n_stations
    # The day session's staggered blocks make the population vary.
    assert day_series.column("users").std() > 0
