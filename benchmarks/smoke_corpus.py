"""End-to-end corpus smoke: generate → index → query → planned analysis.

Drives the real CLI (``python -m repro.tools corpus``) the way CI's
``corpus-smoke`` job does:

1. generate ~50 small captures cycling the interchange containers
   (pcap, pcap.gz, snoop, snoop.gz) across channels, hours and
   subdirectories;
2. ``corpus index`` and assert every capture is catalogued;
3. ``corpus query`` a channel + time-window predicate and assert the
   match count (derivable from the generation pattern);
4. ``corpus analyze`` cold, asserting everything dispatches, then warm,
   asserting **zero** captures dispatch;
5. delete exactly one stored analysis (JSON record + report sidecar)
   and re-run, asserting exactly one capture recomputes.

Exits non-zero with a diagnostic on any violation.

Usage::

    python benchmarks/smoke_corpus.py [--workdir DIR]
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

N_CAPTURES = 48  # divisible by the format/channel/hour cycles below
SUFFIXES = (".pcap", ".pcap.gz", ".snoop", ".snoop.gz")
CHANNELS = (1, 6, 11)

_ANALYZE_RE = re.compile(
    r"(?P<matched>\d+) matched, (?P<cached>\d+) cached, "
    r"(?P<dispatched>\d+) dispatched, (?P<failed>\d+) failed"
)


def run_cli(repo: Path, *argv: str) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro.tools", *argv],
        cwd=repo,
        env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        raise SystemExit(
            f"CLI {' '.join(argv)} failed ({result.returncode}):\n"
            f"{result.stderr}"
        )
    return result.stdout


def analyze_counts(output: str) -> dict[str, int]:
    match = _ANALYZE_RE.search(output)
    if match is None:
        raise SystemExit(f"no analyze summary in output: {output!r}")
    return {k: int(v) for k, v in match.groupdict().items()}


def generate(root: Path) -> None:
    from repro.frames import FrameRow, FrameType, Trace
    from repro.pcap import write_trace

    for i in range(N_CAPTURES):
        channel = CHANNELS[i % len(CHANNELS)]
        hour = i % 24
        t0 = (hour * 3_600 + i) * 1_000_000
        rows = []
        for pair in range(5):
            t = t0 + pair * 10_000
            rows.append(
                FrameRow(
                    time_us=t, ftype=FrameType.DATA, rate_mbps=11.0,
                    size=1000, src=10, dst=1, seq=pair, channel=channel,
                    snr_db=25.0,
                )
            )
            rows.append(
                FrameRow(
                    time_us=t + 1_400, ftype=FrameType.ACK, rate_mbps=1.0,
                    size=14, src=1, dst=10, channel=channel,
                )
            )
        suffix = SUFFIXES[i % len(SUFFIXES)]
        target = root / f"day{i % 4}" / f"capture-{i:02d}{suffix}"
        target.parent.mkdir(parents=True, exist_ok=True)
        write_trace(Trace.from_rows(rows), target)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir", default=None, help="scratch directory (default: temp)"
    )
    args = parser.parse_args()
    repo = Path(__file__).resolve().parent.parent
    workdir = Path(args.workdir) if args.workdir else Path(tempfile.mkdtemp())
    corpus = workdir / "corpus"
    if corpus.exists():
        shutil.rmtree(corpus)
    corpus.mkdir(parents=True)
    generate(corpus)

    t0 = time.perf_counter()
    indexed = run_cli(repo, "corpus", "index", str(corpus))
    index_s = time.perf_counter() - t0
    if f"{N_CAPTURES} capture(s) catalogued" not in indexed:
        raise SystemExit(f"index did not catalog {N_CAPTURES}: {indexed!r}")

    # Channel 6 is every i % 3 == 1 → 16 of 48; snoop-format captures
    # are the odd suffixes → half of those.
    queried = run_cli(
        repo, "corpus", "query", str(corpus), "--where", "channel=6"
    )
    if not queried.strip().endswith("16 matched"):
        raise SystemExit(f"channel query miscounted:\n{queried}")
    windowed = run_cli(
        repo, "corpus", "query", str(corpus),
        "--where", "overlaps=13:00-14:00",
    )
    if not windowed.strip().endswith("2 matched"):  # hours 13 and 37%24=13
        raise SystemExit(f"window query miscounted:\n{windowed}")

    t0 = time.perf_counter()
    cold = analyze_counts(
        run_cli(repo, "corpus", "analyze", str(corpus), "--workers", "2")
    )
    cold_s = time.perf_counter() - t0
    if cold != {
        "matched": N_CAPTURES, "cached": 0,
        "dispatched": N_CAPTURES, "failed": 0,
    }:
        raise SystemExit(f"cold analyze counts wrong: {cold}")

    t0 = time.perf_counter()
    warm = analyze_counts(
        run_cli(repo, "corpus", "analyze", str(corpus), "--workers", "2")
    )
    warm_s = time.perf_counter() - t0
    if warm != {
        "matched": N_CAPTURES, "cached": N_CAPTURES,
        "dispatched": 0, "failed": 0,
    }:
        raise SystemExit(f"warm analyze still dispatched work: {warm}")

    # Delete exactly one stored analysis (record + sidecar): the next
    # run must recompute exactly that one capture.
    store_dir = corpus / ".repro-corpus" / "analyses"
    records = sorted(store_dir.glob("*/*.json"))
    if len(records) != N_CAPTURES:
        raise SystemExit(
            f"expected {N_CAPTURES} analysis records, found {len(records)}"
        )
    victim = records[N_CAPTURES // 2]
    victim.unlink()
    sidecar = victim.with_name(
        victim.name[: -len(".json")] + ".report.pkl.gz"
    )
    sidecar.unlink()

    resumed = analyze_counts(
        run_cli(repo, "corpus", "analyze", str(corpus), "--workers", "2")
    )
    if resumed != {
        "matched": N_CAPTURES, "cached": N_CAPTURES - 1,
        "dispatched": 1, "failed": 0,
    }:
        raise SystemExit(f"did not recompute exactly one capture: {resumed}")

    print(
        "corpus smoke OK: "
        f"index {index_s:.1f}s ({N_CAPTURES} captures, 4 containers) | "
        f"cold analyze {cold_s:.1f}s | warm {warm_s:.1f}s dispatched 0 | "
        "dropped analysis recomputed exactly 1"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
