"""Figure 4(a) — frames sent/received by the most active APs.

Paper: the 15 most active APs carried 90.33 % (day) and 95.37 %
(plenary) of all frames — AP activity is heavily skewed.  Our scaled
scenarios have 6 and 3 APs; the qualitative check is the same skew: the
top half of the APs carries well over half of the traffic, and the
ranking is monotone.
"""

import numpy as np

from repro.core import ap_frame_ranking
from repro.viz import bar_chart


def test_fig4a_ap_ranking(benchmark, day_result, plenary_result, report_file):
    day_activity = benchmark(ap_frame_ranking, day_result.trace, day_result.roster)
    plenary_activity = ap_frame_ranking(plenary_result.trace, plenary_result.roster)

    text = ""
    for name, activity in (("day", day_activity), ("plenary", plenary_activity)):
        frames = activity.table.column("frames")
        labels = [f"AP {ap}" for ap in activity.table.column("ap")]
        text += bar_chart(
            labels, frames, title=f"Fig 4a analogue ({name}): frames per AP"
        )
        top_half = max(1, len(frames) // 2)
        text += (
            f"top-{top_half} APs carry "
            f"{activity.top_fraction(top_half):.1%} of AP frames "
            "(paper: top-15/152 carried 90-95%)\n\n"
        )
    report_file(text)

    for activity in (day_activity, plenary_activity):
        frames = activity.table.column("frames")
        assert np.all(np.diff(frames) <= 0)  # descending rank order
        # Skew: the busiest AP carries more than a uniform share would
        # give it (the paper's 152-AP deployment was heavily skewed;
        # with 3-6 APs the same effect shows as super-uniform top share).
        n_aps = len(frames)
        assert activity.top_fraction(1) > 1.0 / n_aps
