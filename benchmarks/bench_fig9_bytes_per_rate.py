"""Figure 9 — bytes transmitted per second at each rate vs utilization.

Paper: despite occupying roughly half the channel time of the 1 Mbps
frames, the 11 Mbps frames carry ~300 % more bytes at almost all
utilization levels.

Shape checks: the 11 Mbps byte volume exceeds the 1 Mbps byte volume
over the analysis band, and bytes-per-airtime at 11 Mbps dwarfs the
1 Mbps figure (the efficiency gap behind the paper's §7 advice).
"""

import numpy as np

from repro.core import busytime_share_vs_utilization, bytes_per_rate_vs_utilization
from repro.viz import multi_line_chart


def test_fig9_bytes_per_rate(benchmark, ramp_result, report_file):
    volumes = benchmark(bytes_per_rate_vs_utilization, ramp_result.trace)
    shares = busytime_share_vs_utilization(ramp_result.trace)

    band = {rate: volumes[rate].restricted(20, 100) for rate in volumes.rates}
    text = multi_line_chart(
        band[11.0].utilization,
        {f"{rate:g} Mbps": band[rate].value for rate in volumes.rates},
        title="Fig 9 analogue: bytes per second, per rate",
        x_label="utilization %",
    )

    def weighted_total(series):
        return float(np.nansum(series.value * series.count))

    bytes_11 = weighted_total(volumes[11.0])
    bytes_1 = weighted_total(volumes[1.0])
    busy_11 = weighted_total(shares[11.0])
    busy_1 = weighted_total(shares[1.0])
    text += (
        f"\ntotal bytes at 11 Mbps / 1 Mbps = {bytes_11 / max(bytes_1, 1):.1f}x "
        "(paper: ~4x, '300% more')\n"
        f"bytes per busy-second: 11 Mbps {bytes_11 / max(busy_11, 1e-9):,.0f}, "
        f"1 Mbps {bytes_1 / max(busy_1, 1e-9):,.0f}\n"
    )
    report_file(text)

    # 11 Mbps moves more bytes overall...
    assert bytes_11 > bytes_1
    # ...and is several times more efficient per unit of airtime.
    assert bytes_11 / max(busy_11, 1e-9) > 3 * bytes_1 / max(busy_1, 1e-9)
