"""Figure 4(c) — unrecorded-frame percentage for the most active APs.

Paper: the §4.4 atomicity rules put the unrecorded percentage at 3-15 %
(day) and 5-20 % (plenary) for the top APs.  Our check runs the same
estimator on the scaled sessions and additionally validates it against
simulator ground truth (which the paper could not do): the estimator
must report losses when the sniffers genuinely missed frames, within
sane bounds.
"""

import numpy as np

from repro.core import estimate_unrecorded, unrecorded_by_ap
from repro.viz import table


def test_fig4c_unrecorded_percentage(
    benchmark, day_result, plenary_result, report_file
):
    day_table = benchmark(
        unrecorded_by_ap, day_result.trace, day_result.roster, 15
    )
    plenary_table = unrecorded_by_ap(
        plenary_result.trace, plenary_result.roster, 15
    )

    text = ""
    for name, tbl, result in (
        ("day", day_table, day_result),
        ("plenary", plenary_table, plenary_result),
    ):
        text += table(
            tbl.to_rows(),
            title=f"Fig 4c analogue ({name}): unrecorded % per AP "
            "(paper: 3-15% day, 5-20% plenary)",
        )
        true_loss = 100.0 * (1.0 - result.capture_ratio)
        overall = estimate_unrecorded(result.trace)
        text += (
            f"estimator overall: {overall.unrecorded_percent:.1f}% | "
            f"ground-truth sniffer loss: {true_loss:.1f}%\n\n"
        )
    report_file(text)

    for tbl in (day_table, plenary_table):
        percents = tbl.column("unrecorded_percent")
        assert np.all(percents >= 0)
        assert np.all(percents <= 60)
    # Plenary (more load, more drops) loses at least as much as day.
    day_overall = estimate_unrecorded(day_result.trace).unrecorded_percent
    plenary_overall = estimate_unrecorded(plenary_result.trace).unrecorded_percent
    assert plenary_overall >= 0.5 * day_overall
    # The estimator reports nonzero loss when ground truth shows real loss.
    if day_result.capture_ratio < 0.98:
        assert day_overall > 0
