"""Figure 15 — acceptance delay for S-1, XL-1, S-11 and XL-11 frames.

Paper: delays rise with utilization; 1 Mbps frame delays far exceed
11 Mbps delays *independent of frame size* — even S-1 (small, slow)
waits longer than XL-11 (huge, fast).  This is the paper's most direct
evidence that transmitting faster is better under congestion.
"""

import numpy as np

from repro.core import acceptance_delay_vs_utilization, acceptance_delays
from repro.viz import multi_line_chart


def test_fig15_acceptance_delay(benchmark, ramp_result, report_file):
    series = benchmark(acceptance_delay_vs_utilization, ramp_result.trace)
    band = {name: series[name].restricted(20, 100) for name in series.names}
    text = multi_line_chart(
        band["S-11"].utilization,
        {name: band[name].value for name in series.names},
        title="Fig 15 analogue: acceptance delay (s) vs utilization",
        x_label="utilization %",
    )

    pooled = acceptance_delays(ramp_result.trace)
    slow = pooled.delay_us[pooled.rate_code == 0] / 1e6
    fast = pooled.delay_us[pooled.rate_code == 3] / 1e6
    text += (
        f"\npooled median delay: 1 Mbps {np.median(slow):.4f} s "
        f"({len(slow)} deliveries), 11 Mbps {np.median(fast):.4f} s "
        f"({len(fast)} deliveries)\n"
        "Paper: S-1 and XL-1 delays >> S-11 and XL-11 delays.\n"
    )
    report_file(text)

    # F5: the 1 Mbps population waits much longer than the 11 Mbps one.
    assert len(slow) > 0 and len(fast) > 0
    assert np.median(slow) > 2 * np.median(fast)
    # Delays rise with congestion: pooled mean over the high band
    # exceeds the uncongested band for the dominant categories.
    def band_mean(name, lo, hi):
        return series[name].restricted(lo, hi)

    grew = 0
    for name in series.names:
        low_band = band_mean(name, 10, 45)
        high_band = band_mean(name, 70, 100)
        if low_band.count.sum() >= 5 and high_band.count.sum() >= 5:
            low_mean = np.average(low_band.value, weights=low_band.count)
            high_mean = np.average(high_band.value, weights=high_band.count)
            if high_mean > low_mean:
                grew += 1
    assert grew >= 2  # most categories pay higher delays under congestion
