"""Figure 11 — extra-large (XL) frame transmissions across rates.

Paper: XL-11 dominates the XL class and its count increases during
congestion (the 11 Mbps frames' channel-access advantage); XL-2 and
XL-5.5 stay marginal.
"""

import numpy as np

from repro.core import figure11_categories, transmissions_vs_utilization
from repro.viz import multi_line_chart


def test_fig11_xl_frames(benchmark, ramp_result, report_file):
    counts = benchmark(
        transmissions_vs_utilization,
        ramp_result.trace,
        figure11_categories(),
    )
    band = {name: counts[name].restricted(20, 100) for name in counts.names}
    text = multi_line_chart(
        band["XL-11"].utilization,
        {name: band[name].value for name in counts.names},
        title="Fig 11 analogue: XL-class frames/second per rate",
        x_label="utilization %",
    )

    def total(name):
        return float(np.nansum(counts[name].value * counts[name].count))

    totals = {name: total(name) for name in counts.names}
    text += f"\ntotals: { {k: round(v) for k, v in totals.items()} }\n"
    text += "Paper: XL-11 dominates; XL-11 rises during congestion.\n"
    report_file(text)

    assert totals["XL-11"] > totals["XL-1"]
    assert totals["XL-11"] > totals["XL-2"]
    assert totals["XL-11"] > totals["XL-5.5"]
    # Counts rise from the uncongested floor into the moderate band.
    low = counts["XL-11"].value_at(25)
    mid = counts["XL-11"].value_at(70)
    if not (np.isnan(low) or np.isnan(mid)):
        assert mid > low
