"""One-pass streaming pipeline vs N independent analysis passes.

The paper derives every figure from the same trace, and the seed code
did exactly that: each ``repro.core`` function re-walked (re-sorted,
re-derived busy time for, re-ACK-matched) the whole capture, ~15 times
per report.  ``repro.pipeline.run_all`` walks the capture once and fans
chunks out to all consumers.  This benchmark measures both on the same
synthetic day-session trace and asserts:

* the one-pass report equals the N-pass report (the hard contract), and
* one pass is measurably faster than N passes.
"""

import time

import numpy as np

from repro.core import (
    CongestionClassifier,
    acceptance_delay_vs_utilization,
    busytime_share_vs_utilization,
    bytes_per_rate_vs_utilization,
    dataset_summary,
    estimate_unrecorded,
    first_attempt_ack_vs_utilization,
    rts_cts_vs_utilization,
    transmissions_vs_utilization,
    utilization_series,
)
from repro.pipeline import run_all


def n_pass_baseline(trace):
    """Every analysis as an independent full pass, as the seed ran them."""
    classifier = CongestionClassifier().fit(trace)
    return {
        "summary": dataset_summary(trace, "baseline"),
        "utilization": utilization_series(trace),
        "occupancy": classifier.occupancy(trace),
        "throughput": classifier.curves,
        "rts_cts": rts_cts_vs_utilization(trace),
        "busytime_share": busytime_share_vs_utilization(trace),
        "bytes_per_rate": bytes_per_rate_vs_utilization(trace),
        "transmissions": transmissions_vs_utilization(trace),
        "reception": first_attempt_ack_vs_utilization(trace),
        "delays": acceptance_delay_vs_utilization(trace),
        "unrecorded": estimate_unrecorded(trace),
    }


def _best_of(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_pipeline_one_pass_beats_n_pass(benchmark, day_result, report_file):
    trace = day_result.trace.sorted_by_time()

    n_pass_s, baseline = _best_of(lambda: n_pass_baseline(trace))
    one_pass_s, report = _best_of(lambda: run_all(trace, name="one-pass"))
    benchmark(run_all, trace, name="one-pass")

    # -- contract: same numbers ----------------------------------------
    assert np.allclose(
        baseline["utilization"].percent, report.utilization.percent
    )
    assert np.allclose(
        baseline["throughput"].throughput_mbps.value,
        report.throughput.throughput_mbps.value,
    )
    assert baseline["occupancy"] == report.level_occupancy
    assert (
        baseline["unrecorded"].unrecorded_percent
        == report.unrecorded.unrecorded_percent
    )
    for rate in (1.0, 2.0, 5.5, 11.0):
        assert np.allclose(
            baseline["busytime_share"][rate].value,
            report.busytime_share[rate].value,
        )

    speedup = n_pass_s / one_pass_s
    report_file(
        "One-pass streaming pipeline vs N independent passes\n"
        f"trace: synthetic day session, {len(trace)} frames, "
        f"{trace.duration_us / 1e6:.0f} s\n\n"
        f"N-pass (seed style) : {n_pass_s * 1e3:8.1f} ms\n"
        f"one-pass (pipeline) : {one_pass_s * 1e3:8.1f} ms\n"
        f"speedup             : {speedup:8.2f}x\n"
    )

    # The one-pass run must beat the N-pass run with comfortable margin
    # (observed ~3x; 1.3 guards against noisy CI machines).
    assert speedup > 1.3, f"pipeline not faster: {speedup:.2f}x"
