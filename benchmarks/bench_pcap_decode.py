"""pcap ingest micro-benchmark: vectorized decode vs the scalar codecs.

Generates a realistic simulated capture, reads it back twice — once
through the legacy per-record scalar path (struct unpack + codec per
frame, the behavioural reference kept as
:func:`repro.pcap.pcapio._decode_record_scalar`) and once through the
production numpy batch decoder — then verifies the two reads are
**byte-identical** across every trace column and reports the speedup.

Exits non-zero if the vectorized path is not strictly faster or the
outputs differ, so CI can run this as a gate::

    python benchmarks/bench_pcap_decode.py
    python benchmarks/bench_pcap_decode.py --frames 50000 --repeats 5
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.frames import TRACE_COLUMNS, Trace  # noqa: E402
from repro.pcap import read_trace, write_trace  # noqa: E402
from repro.pcap.pcapio import (  # noqa: E402
    _RowBuffer,
    _decode_record_scalar,
    _scan_records,
)
from repro.sim import build_scenario  # noqa: E402


def make_capture(path: Path, min_frames: int) -> int:
    """Simulate until at least ``min_frames`` are on disk."""
    traces = []
    total = 0
    seed = 7
    while total < min_frames:
        built = build_scenario(
            "uniform",
            n_stations=12,
            duration_s=8.0,
            seed=seed,
            rtscts_fraction=0.3,
        )
        trace = built.run().ground_truth
        traces.append(trace)
        total += len(trace)
        seed += 1
    merged = Trace.concatenate(traces) if len(traces) > 1 else traces[0]
    return write_trace(merged, path)


def read_scalar(path: Path) -> Trace:
    """The pre-vectorization reader: one struct/codec pass per record."""
    raw = path.read_bytes()[24:]
    offsets, consumed = _scan_records(raw)
    assert consumed == len(raw), "benchmark capture must be clean"
    rows = _RowBuffer()
    for offset in offsets:
        rows.append_row(
            _decode_record_scalar(raw, offset, 24 + offset, len(rows), path)
        )
    return rows.flush()


def bench(fn, path: Path, repeats: int) -> tuple[float, Trace]:
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(path)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=40_000)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench.pcap"
        n = make_capture(path, args.frames)
        size_mb = path.stat().st_size / 1e6
        print(f"capture: {n} frames, {size_mb:.1f} MB")

        scalar_s, scalar_trace = bench(read_scalar, path, args.repeats)
        vector_s, vector_trace = bench(read_trace, path, args.repeats)

    for name in TRACE_COLUMNS:
        a, b = scalar_trace.column(name), vector_trace.column(name)
        if a.dtype != b.dtype or not np.array_equal(a, b):
            print(f"MISMATCH in column {name!r}", file=sys.stderr)
            return 1

    speedup = scalar_s / vector_s
    print(
        f"scalar : {scalar_s * 1e3:8.1f} ms  ({n / scalar_s:>12,.0f} frames/s)"
    )
    print(
        f"vector : {vector_s * 1e3:8.1f} ms  ({n / vector_s:>12,.0f} frames/s)"
    )
    print(f"speedup: {speedup:.1f}x, outputs byte-identical")
    if speedup <= 1.0:
        print("vectorized decode is not faster", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
