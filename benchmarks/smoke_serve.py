"""End-to-end serve smoke: boot the daemon, feed it, diff against batch.

Drives the real CLI (``python -m repro serve``) the way CI's
``serve-smoke`` job does, with nothing but stdlib ``urllib``:

1. boot the daemon on ephemeral ports (``--port-file`` handshake);
2. create a push feed, upload a real radiotap pcap over HTTP, close it,
   and assert the served report is **byte-identical JSON** to a local
   batch ``run_all`` over the same file;
3. attach a simulated scenario feed and poll until it closes itself;
4. inject two faults — a corrupt frame batch (rejected, feed survives)
   and a truncated pcap (feed fails, typed error in ``/metrics``) —
   and assert the daemon keeps answering ``/health`` throughout;
5. ``POST /shutdown`` and assert the process drains and exits 0.

Exits non-zero on any violation.

Usage::

    python benchmarks/smoke_serve.py [--workdir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.pcap import write_trace                       # noqa: E402
from repro.pipeline import run_all                       # noqa: E402
from repro.serve import report_to_jsonable               # noqa: E402
from repro.sim import build_scenario                     # noqa: E402


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def request(base: str, method: str, path: str, body: bytes | None = None):
    req = urllib.request.Request(base + path, data=body, method=method)
    with urllib.request.urlopen(req, timeout=30) as response:
        return response.status, json.loads(response.read())


def poll_until(base: str, path: str, predicate, what: str, timeout_s: float = 120):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        _, payload = request(base, "GET", path)
        if predicate(payload):
            return payload
        time.sleep(0.1)
    fail(f"timed out waiting for {what}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default=None)
    args = parser.parse_args()
    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="serve-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)

    print("== building capture")
    built = build_scenario("uniform", n_stations=4, duration_s=4)
    pcap = workdir / "capture.pcap"
    n_frames = write_trace(built.run().trace, pcap)
    print(f"   {n_frames} frames -> {pcap}")

    port_file = workdir / "ports.json"
    if port_file.exists():
        port_file.unlink()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    print("== booting daemon")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", "0", "--port-file", str(port_file)],
        env=env, cwd=REPO,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        deadline = time.monotonic() + 60
        while not port_file.exists():
            if proc.poll() is not None:
                fail(f"daemon died at boot:\n{proc.stdout.read()}")
            if time.monotonic() > deadline:
                fail("daemon never wrote its port file")
            time.sleep(0.05)
        base = f"http://127.0.0.1:{json.loads(port_file.read_text())['http_port']}"
        print(f"   up at {base}")

        print("== pcap upload feed: served report must equal batch run_all")
        request(base, "POST", "/feeds", json.dumps({"name": "upload"}).encode())
        _, reply = request(base, "POST", "/feeds/upload/pcap", pcap.read_bytes())
        if reply["queued_frames"] != n_frames:
            fail(f"queued {reply['queued_frames']} of {n_frames} frames")
        _, info = request(base, "POST", "/feeds/upload/eof")
        if info["state"] != "closed":
            fail(f"upload feed state {info['state']}, wanted closed")
        _, served = request(base, "GET", "/feeds/upload/report")
        local = report_to_jsonable(run_all(str(pcap), name="upload"))
        if served != local:
            diff = [k for k in local if served.get(k) != local[k]]
            fail(f"served report differs from batch run_all in {diff}")
        print(f"   report identical over {n_frames} frames")

        print("== attached scenario feed")
        request(base, "POST", "/feeds", json.dumps(
            {"kind": "scenario", "scenario": "ramp",
             "params": {"duration_s": 2}, "name": "sim"}).encode())
        info = poll_until(base, "/feeds/sim",
                          lambda p: p["state"] != "running", "scenario feed")
        if info["state"] != "closed" or info["frames_in"] <= 0:
            fail(f"scenario feed ended {info['state']} ({info['frames_in']} frames)")
        print(f"   closed after {info['frames_in']} frames")

        print("== fault injection: corrupt batch is rejected, feed survives")
        request(base, "POST", "/feeds", json.dumps({"name": "victim"}).encode())
        try:
            request(base, "POST", "/feeds/victim/frames", b"\x00garbage")
            fail("corrupt batch was accepted")
        except urllib.error.HTTPError as error:
            if error.code != 400:
                fail(f"corrupt batch gave {error.code}, wanted 400")
        _, info = request(base, "GET", "/feeds/victim")
        if info["state"] != "running" or info["ingest_errors"] != 1:
            fail(f"victim feed {info['state']} ingest_errors={info['ingest_errors']}")

        print("== fault injection: truncated pcap fails its feed, typed")
        request(base, "POST", "/feeds", json.dumps({"name": "cut"}).encode())
        request(base, "POST", "/feeds/cut/pcap", pcap.read_bytes()[:-9])
        info = poll_until(base, "/feeds/cut",
                          lambda p: p["state"] != "running", "cut feed")
        if info["state"] != "failed":
            fail(f"truncated upload left state {info['state']}")
        if info["error"]["error_type"] != "TruncatedPcapError":
            fail(f"wrong error type {info['error']['error_type']}")
        _, metrics = request(base, "GET", "/metrics")
        if metrics["states"].get("failed") != 1:
            fail(f"metrics states {metrics['states']} missing the failure")
        _, health = request(base, "GET", "/health")
        if health["status"] != "ok":
            fail(f"daemon unhealthy after faults: {health}")
        print(f"   metrics: {metrics['states']}, daemon healthy")

        print("== graceful shutdown")
        status, reply = request(base, "POST", "/shutdown")
        if status != 202:
            fail(f"shutdown gave {status}")
        rc = proc.wait(timeout=60)
        if rc != 0:
            fail(f"daemon exited {rc}, wanted 0")
        print("   exit code 0")
        print("serve smoke OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        print(proc.stdout.read(), end="")


if __name__ == "__main__":
    raise SystemExit(main())
