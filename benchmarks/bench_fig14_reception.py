"""Figure 14 — frames successfully acknowledged at the first attempt.

Paper: the 11 Mbps first-attempt-ack count dominates all other rates,
dips in the contention band (80-84 %), and holds up under high
congestion because short fast frames keep a higher reception
probability while slow 1 Mbps frames flood the channel.
"""

import numpy as np

from repro.core import first_attempt_ack_vs_utilization
from repro.viz import multi_line_chart


def test_fig14_first_attempt_reception(benchmark, ramp_result, report_file):
    series = benchmark(first_attempt_ack_vs_utilization, ramp_result.trace)
    band = {rate: series[rate].restricted(20, 100) for rate in series.rates}
    text = multi_line_chart(
        band[11.0].utilization,
        {f"{rate:g} Mbps": band[rate].value for rate in series.rates},
        title="Fig 14 analogue: first-attempt acked frames/second per rate",
        x_label="utilization %",
    )

    def total(rate):
        return float(np.nansum(series[rate].value * series[rate].count))

    totals = {rate: total(rate) for rate in series.rates}
    text += f"\ntotals: { {f'{k:g}': round(v) for k, v in totals.items()} }\n"
    text += "Paper: 11 Mbps dominates; dip near 80-84%, recovery beyond.\n"
    report_file(text)

    # 11 Mbps dominates first-attempt receptions (F2 + Cantieni).
    assert totals[11.0] > totals[1.0]
    assert totals[11.0] > totals[2.0] + totals[5.5]
    # Reception rises from the idle floor into the moderate band.
    low = series[11.0].value_at(25)
    mid = series[11.0].value_at(65)
    if not (np.isnan(low) or np.isnan(mid)):
        assert mid > low
