"""End-to-end resume smoke: run → delete a cell → --resume → compare.

Drives the real CLI (`python -m repro.tools campaign`) the way CI's
``campaign-resume`` job does:

1. run a 4-cell grid into a fresh ``--store``;
2. delete exactly one cell record from the store;
3. re-run with ``--resume`` and assert the header shows precisely one
   cell recomputed (3 store hits);
4. assert the resumed summary matches the from-scratch summary —
   everything except the per-cell wall-clock column, which necessarily
   jitters for the one recomputed cell;
5. re-run once more and assert zero cells are dispatched (a fully
   stored campaign performs no simulation work).

Exits non-zero with a diff on any violation.

Usage::

    python benchmarks/smoke_campaign_resume.py [--workdir DIR]
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

CAMPAIGN_ARGS = [
    "--scenario",
    "ramp",
    "--vary",
    "n_stations=4,6",
    "--seeds",
    "2",
    "--fix",
    "duration_s=2.0",
    "--workers",
    "2",
]

_HEADER_RE = re.compile(
    r"\((?P<hits>\d+) from store, (?P<run>\d+) run, (?P<failed>\d+) failed\)"
)


def run_cli(repo: Path, extra: list[str]) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro.tools", "campaign", *CAMPAIGN_ARGS, *extra],
        cwd=repo,
        env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        raise SystemExit(
            f"campaign CLI failed ({result.returncode}):\n{result.stderr}"
        )
    return result.stdout


def header_counts(summary: str) -> dict[str, int]:
    match = _HEADER_RE.search(summary.splitlines()[0])
    if match is None:
        raise SystemExit(f"no store counts in header: {summary.splitlines()[0]!r}")
    return {k: int(v) for k, v in match.groupdict().items()}


def comparable(summary: str) -> str:
    """The summary minus the header line and the per-cell wall column."""
    lines = summary.splitlines()[1:]
    out = []
    wall_at: int | None = None
    for line in lines:
        if "wall_s" in line:  # table header: note where the column starts
            wall_at = line.index("wall_s")
        if wall_at is not None and len(line) > wall_at and "knee" not in line:
            line = line[:wall_at]
        out.append(line.rstrip())
    return "\n".join(out)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir", default=None, help="scratch directory (default: temp)"
    )
    args = parser.parse_args()
    repo = Path(__file__).resolve().parent.parent
    workdir = Path(args.workdir) if args.workdir else Path(tempfile.mkdtemp())
    workdir.mkdir(parents=True, exist_ok=True)
    store = workdir / "store"
    if store.exists():
        shutil.rmtree(store)

    t0 = time.perf_counter()
    scratch = run_cli(repo, ["--store", str(store)])
    cold_s = time.perf_counter() - t0
    counts = header_counts(scratch)
    assert counts == {"hits": 0, "run": 4, "failed": 0}, counts

    # Simulate a lost cell: remove exactly one result record.
    records = sorted(
        p
        for p in store.glob("*/*.json")
        if not p.name.endswith(".fail.json")
    )
    assert len(records) == 4, f"expected 4 records, found {len(records)}"
    records[1].unlink()

    t0 = time.perf_counter()
    resumed = run_cli(repo, ["--store", str(store), "--resume"])
    resume_s = time.perf_counter() - t0
    counts = header_counts(resumed)
    if counts != {"hits": 3, "run": 1, "failed": 0}:
        raise SystemExit(f"resume did not recompute exactly one cell: {counts}")

    if comparable(resumed) != comparable(scratch):
        import difflib

        diff = "\n".join(
            difflib.unified_diff(
                comparable(scratch).splitlines(),
                comparable(resumed).splitlines(),
                "from-scratch",
                "resumed",
                lineterm="",
            )
        )
        raise SystemExit(f"resumed summary diverged from scratch run:\n{diff}")

    warm = run_cli(repo, ["--store", str(store), "--resume"])
    counts = header_counts(warm)
    if counts != {"hits": 4, "run": 0, "failed": 0}:
        raise SystemExit(f"fully-stored campaign still dispatched work: {counts}")
    if comparable(warm) != comparable(scratch):
        raise SystemExit("fully-stored summary diverged from scratch run")

    print(
        "campaign-resume smoke OK: "
        f"cold {cold_s:.1f}s (4 cells) | resume {resume_s:.1f}s (1 cell) | "
        "fully-stored re-run dispatched 0 cells with identical summary"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
