"""Setup shim for offline editable installs (`python setup.py develop`).

The environment has no `wheel` package, so `pip install -e .` cannot
build the editable wheel; this shim lets setuptools install directly.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
