"""repro — reproduction of "Understanding Congestion in IEEE 802.11b
Wireless Networks" (Jardosh, Ramachandran, Almeroth, Belding-Royer;
IMC 2005).

Subpackages
-----------
``repro.core``      the paper's contribution: channel busy-time,
                    utilization, congestion classification and the §6
                    link-layer effect analyses.
``repro.frames``    802.11 frame model and columnar trace container.
``repro.sim``       discrete-event IEEE 802.11b DCF network simulator
                    (the testbed substitute that generates traces).
``repro.pcap``      pcap + radiotap + 802.11 header codec.
``repro.analysis``  numpy columnar tables, binning, knee detection.
``repro.baselines`` analytical comparators (Jun TMT, Heusse anomaly,
                    Cantieni finite-load model, beacon reliability).
``repro.viz``       ASCII chart rendering for terminal reports.

Quickstart
----------
>>> from repro.sim import ScenarioConfig, run_scenario
>>> from repro.core import analyze_trace
>>> result = run_scenario(ScenarioConfig(n_stations=8, duration_s=5))
>>> report = analyze_trace(result.trace, result.roster)
>>> report.thresholds.high  # doctest: +SKIP
84.0
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
