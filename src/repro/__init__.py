"""repro — reproduction of "Understanding Congestion in IEEE 802.11b
Wireless Networks" (Jardosh, Ramachandran, Almeroth, Belding-Royer;
IMC 2005).

The one front door is :mod:`repro.api` — experiments built fluently or
from declarative spec files, returning uniform typed results:

>>> from repro import Experiment
>>> exp = Experiment.scenario("ramp").vary(n_stations=[10, 20]).seeds(2)
>>> len(exp.cells())
4
>>> report = Experiment.scenario("uniform", n_stations=8,
...                              duration_s=5.0).run().report  # doctest: +SKIP

CLI: ``repro run study.toml`` (or ``python -m repro run study.toml``).

Subpackages
-----------
``repro.api``       unified experiment layer: specs, fluent builder,
                    typed results (start here).
``repro.core``      the paper's contribution: channel busy-time,
                    utilization, congestion classification and the §6
                    link-layer effect analyses.
``repro.pipeline``  single-pass streaming analysis executor.
``repro.sim``       discrete-event IEEE 802.11b DCF network simulator
                    with the named scenario library.
``repro.campaign``  parameter-grid sweeps: process pool + resumable
                    content-addressed store.
``repro.corpus``    capture library: snoop/gzip interchange,
                    content-addressed catalog, query-planned batches.
``repro.frames``    802.11 frame model and columnar trace container.
``repro.pcap``      pcap + radiotap + 802.11 header codec.
``repro.analysis``  numpy columnar tables, binning, knee detection.
``repro.baselines`` analytical comparators (Jun TMT, Heusse anomaly,
                    Cantieni finite-load model, beacon reliability).
``repro.viz``       ASCII chart rendering for terminal reports.

The deeper entry points (``repro.pipeline.run_all``,
``repro.campaign.run_campaign``, ``repro.sim.run_scenario`` ...) remain
first-class public API — the api layer routes to them unchanged.
"""

__version__ = "1.1.0"

#: Public name → defining submodule.  Resolved lazily (PEP 562) so that
#: importing :mod:`repro` costs nothing until a name is touched — in
#: particular, dependency-free corners like ``python -m repro.lint``
#: must import on a bare interpreter (no numpy, Python 3.10) even
#: though the analysis stack needs numpy and 3.11+.
_EXPORTS = {
    "Experiment": "repro.api",
    "ExperimentResult": "repro.api",
    "ExperimentSpec": "repro.api",
    "SpecError": "repro.api",
    "load_spec": "repro.api",
    "run_spec": "repro.api",
    "CampaignStore": "repro.campaign",
    "ParameterGrid": "repro.campaign",
    "render_campaign": "repro.campaign",
    "run_campaign": "repro.campaign",
    "CorpusIndex": "repro.corpus",
    "analyze_corpus": "repro.corpus",
    "analyze_trace": "repro.core",
    "render_report": "repro.core.render",
    "run_all": "repro.pipeline",
    "run_batch": "repro.pipeline",
    "ScenarioConfig": "repro.sim",
    "available_scenarios": "repro.sim",
    "build_scenario": "repro.sim",
    "run_scenario": "repro.sim",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: resolve each name once
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(__all__))


__all__ = [
    "CampaignStore",
    "CorpusIndex",
    "Experiment",
    "ExperimentResult",
    "ExperimentSpec",
    "ParameterGrid",
    "ScenarioConfig",
    "SpecError",
    "__version__",
    "analyze_corpus",
    "analyze_trace",
    "available_scenarios",
    "build_scenario",
    "load_spec",
    "render_campaign",
    "render_report",
    "run_all",
    "run_batch",
    "run_campaign",
    "run_scenario",
    "run_spec",
]
