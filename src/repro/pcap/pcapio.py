"""pcap file reader/writer for radiotap-encapsulated 802.11 traces.

Writes classic little-endian pcap (magic ``0xa1b2c3d4``, version 2.4)
with linktype 127 (IEEE802_11_RADIOTAP) — the same container a tethereal
RFMon capture like the paper's produces — and reads it back into a
:class:`repro.frames.Trace`.

Like the paper's capture (snap length 250 bytes, §4.2), packets may be
truncated on disk; the pcap record's ``orig_len`` preserves the true
on-air size, so frame sizes survive the round trip.

Information that genuinely does not exist on the air is lost exactly as
it was for the paper: ACK and CTS frames carry no transmitter address,
so those frames read back with ``src == NO_NODE``.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO

import numpy as np

from ..frames import FrameType, Trace, rate_to_code
from .dot11_codec import decode_frame, encode_frame
from .radiotap import RadiotapHeader

__all__ = ["write_trace", "read_trace", "PAPER_SNAPLEN", "LINKTYPE_RADIOTAP"]

_MAGIC = 0xA1B2C3D4
LINKTYPE_RADIOTAP = 127

#: The snap length the paper's sniffers used (§4.2).
PAPER_SNAPLEN = 250

_NOISE_FLOOR_DBM = -96


def _write_global_header(fp: BinaryIO, snaplen: int) -> None:
    fp.write(
        struct.pack("<IHHiIII", _MAGIC, 2, 4, 0, 0, snaplen, LINKTYPE_RADIOTAP)
    )


def write_trace(
    trace: Trace,
    path: str | Path,
    snaplen: int = PAPER_SNAPLEN,
    duration_fill: bool = True,
) -> int:
    """Write ``trace`` to ``path`` as a radiotap pcap; returns frame count.

    ``duration_fill`` populates the 802.11 Duration field with each
    frame's NAV-style remaining-exchange estimate (SIFS + ACK) so real
    tools display something sensible; it is not read back.
    """
    path = Path(path)
    with path.open("wb") as fp:
        _write_global_header(fp, snaplen)
        for row in trace.iter_rows():
            radiotap = RadiotapHeader(
                tsft_us=row.time_us,
                rate_mbps=row.rate_mbps,
                channel=row.channel,
                signal_dbm=int(round(_NOISE_FLOOR_DBM + row.snr_db)),
                noise_dbm=_NOISE_FLOOR_DBM,
            ).encode()
            body_size = 0
            if row.ftype in (FrameType.DATA, FrameType.MGMT, FrameType.BEACON):
                body_size = max(0, row.size - 24)
            duration = 10 + 304 if duration_fill else 0
            dot11 = encode_frame(
                ftype=row.ftype,
                src=row.src,
                dst=row.dst,
                seq=row.seq,
                retry=row.retry,
                body_size=body_size,
                duration_us=duration,
            )
            packet = radiotap + dot11
            incl = packet[:snaplen]
            ts_sec, ts_usec = divmod(row.time_us, 1_000_000)
            fp.write(
                struct.pack("<IIII", ts_sec, ts_usec, len(incl), len(packet))
            )
            fp.write(incl)
    return len(trace)


def read_trace(path: str | Path) -> Trace:
    """Read a radiotap pcap written by :func:`write_trace` into a Trace."""
    path = Path(path)
    data = path.read_bytes()
    if len(data) < 24:
        raise ValueError(f"{path}: not a pcap file (too short)")
    magic, _vmaj, _vmin, _tz, _sig, _snaplen, linktype = struct.unpack_from(
        "<IHHiIII", data, 0
    )
    if magic != _MAGIC:
        raise ValueError(f"{path}: bad pcap magic {magic:#x}")
    if linktype != LINKTYPE_RADIOTAP:
        raise ValueError(
            f"{path}: linktype {linktype}, expected radiotap ({LINKTYPE_RADIOTAP})"
        )

    time_l: list[int] = []
    ftype_l: list[int] = []
    rate_l: list[int] = []
    size_l: list[int] = []
    src_l: list[int] = []
    dst_l: list[int] = []
    retry_l: list[bool] = []
    channel_l: list[int] = []
    snr_l: list[float] = []
    seq_l: list[int] = []

    offset = 24
    while offset < len(data):
        if offset + 16 > len(data):
            raise ValueError(f"{path}: truncated record header at {offset}")
        ts_sec, ts_usec, incl_len, orig_len = struct.unpack_from(
            "<IIII", data, offset
        )
        offset += 16
        if offset + incl_len > len(data):
            raise ValueError(f"{path}: truncated record body at {offset}")
        packet = data[offset : offset + incl_len]
        offset += incl_len

        radiotap, rt_len = RadiotapHeader.decode(packet)
        frame = decode_frame(packet[rt_len:])
        if frame.ftype in (FrameType.DATA, FrameType.MGMT, FrameType.BEACON):
            # orig_len preserves the pre-snap size: radiotap + 24 + body.
            size = max(0, orig_len - rt_len - 24) + 24
        else:
            size = {FrameType.ACK: 14, FrameType.CTS: 14, FrameType.RTS: 20}[
                frame.ftype
            ]

        time_l.append(ts_sec * 1_000_000 + ts_usec)
        ftype_l.append(int(frame.ftype))
        rate_l.append(rate_to_code(radiotap.rate_mbps))
        size_l.append(size)
        src_l.append(frame.src)
        dst_l.append(frame.dst)
        retry_l.append(frame.retry)
        channel_l.append(radiotap.channel)
        snr_l.append(radiotap.snr_db)
        seq_l.append(frame.seq)

    return Trace(
        {
            "time_us": np.array(time_l, dtype=np.int64),
            "ftype": np.array(ftype_l, dtype=np.uint8),
            "rate_code": np.array(rate_l, dtype=np.uint8),
            "size": np.array(size_l, dtype=np.uint32),
            "src": np.array(src_l, dtype=np.uint16),
            "dst": np.array(dst_l, dtype=np.uint16),
            "retry": np.array(retry_l, dtype=np.bool_),
            "channel": np.array(channel_l, dtype=np.uint8),
            "snr_db": np.array(snr_l, dtype=np.float32),
            "seq": np.array(seq_l, dtype=np.uint16),
        }
    )
