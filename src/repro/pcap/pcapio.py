"""pcap file reader/writer for radiotap-encapsulated 802.11 traces.

Writes classic little-endian pcap (magic ``0xa1b2c3d4``, version 2.4)
with linktype 127 (IEEE802_11_RADIOTAP) — the same container a tethereal
RFMon capture like the paper's produces — and reads it back into a
:class:`repro.frames.Trace`.

Like the paper's capture (snap length 250 bytes, §4.2), packets may be
truncated on disk; the pcap record's ``orig_len`` preserves the true
on-air size, so frame sizes survive the round trip.

Information that genuinely does not exist on the air is lost exactly as
it was for the paper: ACK and CTS frames carry no transmitter address,
so those frames read back with ``src == NO_NODE``.

Interchange: :func:`read_trace_batches` sniffs the leading bytes and
transparently handles gzip-compressed captures and RFC 1761 snoop
captures (:mod:`repro.corpus.snoop`) in addition to plain pcap;
:func:`write_trace` routes on the path suffix (``.pcap`` /
``.pcap.gz`` / ``.snoop`` / ``.snoop.gz``).  For compressed captures
every reported byte offset is into the *decompressed* stream.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path
from typing import BinaryIO

import numpy as np

from ..frames import (
    BROADCAST,
    NO_NODE,
    TRACE_COLUMNS,
    TRACE_SCHEMA,
    FrameType,
    Trace,
    rate_to_code,
)
from ..frames.dot11 import RATE_CODES, frame_type_from_dot11
from .dot11_codec import decode_frame, encode_frame
from .radiotap import CHANNEL_FREQ_MHZ, RadiotapHeader
from .radiotap import _PRESENT as _RT_PRESENT

__all__ = [
    "write_trace",
    "read_trace",
    "read_trace_batches",
    "TruncatedPcapError",
    "PAPER_SNAPLEN",
    "LINKTYPE_RADIOTAP",
]


class TruncatedPcapError(ValueError):
    """A pcap ended mid-record or a record failed to decode.

    Carries where the damage starts (``byte_offset``) and how many
    frames decoded cleanly before it (``frames_read``) so callers —
    the streaming pipeline, the serve daemon, batch runs — can report
    the partial read instead of surfacing a raw ``struct.error``.
    ``compressed`` marks offsets into the decompressed stream of a
    gzipped capture (the on-disk file offset is not meaningful there).
    """

    def __init__(
        self,
        message: str,
        *,
        byte_offset: int,
        frames_read: int,
        compressed: bool = False,
    ) -> None:
        where = "decompressed byte offset" if compressed else "byte offset"
        super().__init__(
            f"{message} ({where} {byte_offset}, "
            f"{frames_read} frames read cleanly)"
        )
        self.byte_offset = byte_offset
        self.frames_read = frames_read
        self.compressed = compressed

_MAGIC = 0xA1B2C3D4
LINKTYPE_RADIOTAP = 127

_GZIP_MAGIC = b"\x1f\x8b"
#: RFC 1761 file ident (duplicated privately here so the pcap layer
#: never imports :mod:`repro.corpus` at module load).
_SNOOP_IDENT = b"snoop\x00\x00\x00"

#: The snap length the paper's sniffers used (§4.2).
PAPER_SNAPLEN = 250

_NOISE_FLOOR_DBM = -96


def _write_global_header(fp: BinaryIO, snaplen: int) -> None:
    fp.write(
        struct.pack("<IHHiIII", _MAGIC, 2, 4, 0, 0, snaplen, LINKTYPE_RADIOTAP)
    )


def _encode_packet(row, duration_fill: bool) -> bytes:
    """One trace row as radiotap + 802.11 bytes (shared with snoop)."""
    radiotap = RadiotapHeader(
        tsft_us=row.time_us,
        rate_mbps=row.rate_mbps,
        channel=row.channel,
        signal_dbm=int(round(_NOISE_FLOOR_DBM + row.snr_db)),
        noise_dbm=_NOISE_FLOOR_DBM,
    ).encode()
    body_size = 0
    if row.ftype in (FrameType.DATA, FrameType.MGMT, FrameType.BEACON):
        body_size = max(0, row.size - 24)
    duration = 10 + 304 if duration_fill else 0
    dot11 = encode_frame(
        ftype=row.ftype,
        src=row.src,
        dst=row.dst,
        seq=row.seq,
        retry=row.retry,
        body_size=body_size,
        duration_us=duration,
    )
    return radiotap + dot11


def _write_pcap_stream(
    fp: BinaryIO, trace: Trace, snaplen: int, duration_fill: bool
) -> int:
    _write_global_header(fp, snaplen)
    for row in trace.iter_rows():
        packet = _encode_packet(row, duration_fill)
        incl = packet[:snaplen]
        ts_sec, ts_usec = divmod(row.time_us, 1_000_000)
        fp.write(
            struct.pack("<IIII", ts_sec, ts_usec, len(incl), len(packet))
        )
        fp.write(incl)
    return len(trace)


def write_trace(
    trace: Trace,
    path: str | Path,
    snaplen: int = PAPER_SNAPLEN,
    duration_fill: bool = True,
) -> int:
    """Write ``trace`` to ``path``; returns frame count.

    The container is chosen by suffix: ``.snoop``/``.snoop.gz`` write
    RFC 1761 snoop (:func:`repro.corpus.snoop.write_snoop`), a ``.gz``
    suffix gzip-compresses, anything else is a plain radiotap pcap.
    Compressed output is byte-deterministic (gzip mtime pinned to 0).

    ``duration_fill`` populates the 802.11 Duration field with each
    frame's NAV-style remaining-exchange estimate (SIFS + ACK) so real
    tools display something sensible; it is not read back.
    """
    path = Path(path)
    name = path.name.lower()
    if name.endswith((".snoop", ".snoop.gz")):
        from ..corpus.snoop import write_snoop

        return write_snoop(
            trace, path, snaplen=snaplen, duration_fill=duration_fill
        )
    if name.endswith(".gz"):
        # filename="" and mtime=0 keep the member header free of the
        # output path and clock: identical traces compress to identical
        # bytes, so the corpus content hash is write-order independent.
        with path.open("wb") as raw, gzip.GzipFile(
            filename="", fileobj=raw, mode="wb", mtime=0
        ) as fp:
            return _write_pcap_stream(fp, trace, snaplen, duration_fill)
    with path.open("wb") as fp:
        return _write_pcap_stream(fp, trace, snaplen, duration_fill)


class _RowBuffer:
    """Decoded-record accumulator, flushed into Traces batch by batch.

    Holds a row-ordered mix of column-array chunks (the vectorized
    decoder's output) and scalar rows (the fallback decoder's output).
    Columns and dtypes come from the trace schema
    (:data:`repro.frames.TRACE_SCHEMA`) so the pcap layer never
    restates them.
    """

    def __init__(self) -> None:
        self._chunks: list[dict[str, np.ndarray]] = []
        self._scalar: dict[str, list] | None = None
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def append_row(self, values: dict) -> None:
        if self._scalar is None:
            self._scalar = {name: [] for name, _ in TRACE_SCHEMA}
        for name, _ in TRACE_SCHEMA:
            self._scalar[name].append(values[name])
        self._len += 1

    def append_chunk(self, cols: dict[str, np.ndarray]) -> None:
        self._seal()
        self._chunks.append(cols)
        self._len += len(cols["time_us"])

    def _seal(self) -> None:
        if self._scalar is not None:
            self._chunks.append(
                {
                    name: np.array(self._scalar[name], dtype=dtype)
                    for name, dtype in TRACE_SCHEMA
                }
            )
            self._scalar = None

    def take(self, count: int) -> Trace:
        """Remove and return the first ``count`` rows as a Trace."""
        self._seal()
        if len(self._chunks) == 1:
            merged = self._chunks[0]
        else:
            merged = {
                name: np.concatenate([c[name] for c in self._chunks])
                for name, _ in TRACE_SCHEMA
            }
        if count < self._len:
            rest = {name: col[count:] for name, col in merged.items()}
            merged = {name: col[:count] for name, col in merged.items()}
            self._chunks = [rest]
            self._len -= count
        else:
            self._chunks = []
            self._len = 0
        return Trace(
            {
                name: np.ascontiguousarray(merged[name], dtype=dtype)
                for name, dtype in TRACE_SCHEMA
            }
        )

    def flush(self) -> Trace:
        return self.take(self._len)


# --- vectorized record decoding --------------------------------------------
#
# Captures written by :func:`write_trace` have one fixed shape: a
# 24-byte radiotap header (version 0, the exact present-word
# ``radiotap._PRESENT``) followed by an 802.11 header from our codec.
# Records matching that shape are decoded wholesale — the byte stream is
# viewed as a numpy array, per-record field offsets become integer
# gathers, and one pass materialises every trace column for thousands of
# records.  Any record that does not match (foreign radiotap geometry,
# unknown type/subtype, alien MAC prefix, non-11b rate...) drops to the
# scalar codec path, which reproduces the legacy per-record behaviour —
# including which exception surfaces and with what offsets — exactly.

_RT_FIXED_LEN = 24  # radiotap header write_trace emits: 8 + QBBHHbb body

#: (dot11_type << 4 | subtype) -> FrameType value, 255 = undecodable.
_FT_TABLE = np.full(64, 255, dtype=np.uint8)
for _t in range(4):
    for _s in range(16):
        try:
            _FT_TABLE[_t * 16 + _s] = int(frame_type_from_dot11(_t, _s))
        except ValueError:
            pass

#: radiotap rate byte (0.5 Mbps units) -> trace rate code, 255 = invalid.
_RATE_TABLE = np.full(256, 255, dtype=np.uint8)
for _rate, _code in RATE_CODES.items():
    _RATE_TABLE[int(_rate * 2)] = _code

_FREQ_SORTED = np.array(sorted(CHANNEL_FREQ_MHZ.values()), dtype=np.uint16)
_FREQ_CHANNEL = np.array(
    [
        {f: c for c, f in CHANNEL_FREQ_MHZ.items()}[int(f)]
        for f in _FREQ_SORTED
    ],
    dtype=np.uint8,
)

#: Control-frame on-air sizes indexed by FrameType value.
_CTRL_SIZE = np.zeros(8, dtype=np.uint32)
_CTRL_SIZE[int(FrameType.ACK)] = 14
_CTRL_SIZE[int(FrameType.CTS)] = 14
_CTRL_SIZE[int(FrameType.RTS)] = 20

#: File-read granularity for the batched reader.
_CHUNK_BYTES = 4 << 20


def _scan_records(buf: bytes) -> tuple[list[int], int]:
    """Offsets of complete pcap records in ``buf`` and the bytes consumed."""
    offs: list[int] = []
    pos = 0
    limit = len(buf)
    from_bytes = int.from_bytes
    while pos + 16 <= limit:
        end = pos + 16 + from_bytes(buf[pos + 8 : pos + 12], "little")
        if end > limit:
            break
        offs.append(pos)
        pos = end
    return offs, pos


def _decode_block(u8: np.ndarray, offs: np.ndarray) -> tuple[dict, np.ndarray]:
    """Vector-decode the records at ``offs``; returns (columns, ok mask).

    Columns are full-length; positions where ``ok`` is False hold
    garbage and must be re-decoded by the scalar path.
    """
    last = len(u8) - 1
    hdr = u8[offs[:, None] + np.arange(16)].view("<u4")
    ts_sec = hdr[:, 0].astype(np.int64)
    ts_usec = hdr[:, 1].astype(np.int64)
    incl = hdr[:, 2].astype(np.int64)
    orig = hdr[:, 3].astype(np.int64)

    rt = u8[np.minimum(offs[:, None] + 16 + np.arange(24), last)]
    rt_len = rt[:, 2].astype(np.uint16) | (rt[:, 3].astype(np.uint16) << 8)
    present = (
        rt[:, 4].astype(np.uint32)
        | (rt[:, 5].astype(np.uint32) << 8)
        | (rt[:, 6].astype(np.uint32) << 16)
        | (rt[:, 7].astype(np.uint32) << 24)
    )
    ok = (
        (incl >= 34)
        & (rt[:, 0] == 0)
        & (rt_len == _RT_FIXED_LEN)
        & (present == np.uint32(_RT_PRESENT))
    )

    rate_code = _RATE_TABLE[rt[:, 17]]
    ok &= rate_code != 255
    freq = rt[:, 18].astype(np.uint16) | (rt[:, 19].astype(np.uint16) << 8)
    fidx = np.searchsorted(_FREQ_SORTED, freq)
    fidx_c = np.minimum(fidx, len(_FREQ_SORTED) - 1)
    ok &= _FREQ_SORTED[fidx_c] == freq
    channel = _FREQ_CHANNEL[fidx_c]
    snr = (
        rt[:, 22].astype(np.int8).astype(np.int16)
        - rt[:, 23].astype(np.int8).astype(np.int16)
    ).astype(np.float32)

    d11 = u8[np.minimum(offs[:, None] + 40 + np.arange(24), last)]
    fc = d11[:, 0].astype(np.uint16) | (d11[:, 1].astype(np.uint16) << 8)
    ftype = _FT_TABLE[((fc >> 2) & 0b11) * 16 + ((fc >> 4) & 0b1111)]
    ok &= ftype != 255
    retry = (fc & (1 << 11)) != 0

    is_data_cls = (
        (ftype == int(FrameType.DATA))
        | (ftype == int(FrameType.MGMT))
        | (ftype == int(FrameType.BEACON))
    )
    is_rts = ftype == int(FrameType.RTS)
    need = np.where(is_data_cls, 48, np.where(is_rts, 40, 34))
    ok &= incl >= need

    def mac_field(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        bcast = (block == 0xFF).all(axis=1)
        ours = (
            (block[:, 0] == 0x02)
            & (block[:, 1] == 0)
            & (block[:, 2] == 0)
            & (block[:, 3] == 0)
        )
        node = np.where(
            bcast,
            np.uint16(BROADCAST),
            (block[:, 4].astype(np.uint16) << 8) | block[:, 5].astype(np.uint16),
        )
        return node, bcast | ours

    dst, dst_ok = mac_field(d11[:, 4:10])
    ok &= dst_ok
    src2, src_ok = mac_field(d11[:, 10:16])
    ok &= src_ok | ~(is_data_cls | is_rts)
    src = np.where(is_data_cls | is_rts, src2, np.uint16(NO_NODE))

    seq_ctrl = d11[:, 22].astype(np.uint16) | (d11[:, 23].astype(np.uint16) << 8)
    seq = np.where(is_data_cls, seq_ctrl >> 4, np.uint16(0))

    # orig_len preserves the pre-snap size: radiotap + 24 + body.
    size = np.where(
        is_data_cls,
        np.maximum(orig - _RT_FIXED_LEN - 24, 0) + 24,
        _CTRL_SIZE[ftype & 0b111],
    ).astype(np.uint32)

    cols = {
        "time_us": ts_sec * 1_000_000 + ts_usec,
        "ftype": ftype,
        "rate_code": rate_code,
        "size": size,
        "src": src.astype(np.uint16),
        "dst": dst.astype(np.uint16),
        "retry": retry,
        "channel": channel,
        "snr_db": snr,
        "seq": seq.astype(np.uint16),
    }
    return cols, ok


#: Exceptions the radiotap/802.11 codecs raise on damaged bytes.  The
#: snoop reader reuses this tuple so both containers wrap codec
#: failures identically.
CODEC_ERRORS = (struct.error, ValueError, KeyError, IndexError)


def _decode_packet_parts(packet: bytes):
    """Decode a radiotap + 802.11 packet; codec exceptions propagate.

    Returns ``(radiotap, rt_len, frame)``.  Callers own the wrapping of
    :data:`CODEC_ERRORS` into their container's truncation error.
    """
    radiotap, rt_len = RadiotapHeader.decode(packet)
    frame = decode_frame(packet[rt_len:])
    return radiotap, rt_len, frame


def _row_from_packet(radiotap, rt_len, frame, orig_len, time_us) -> dict:
    """One decoded packet as a trace-row dict (shared with snoop).

    ``rate_to_code``'s bare ``ValueError`` for a well-formed record
    bearing a non-802.11b rate escapes deliberately — that is not
    truncation, it is an out-of-scope capture.
    """
    if frame.ftype in (FrameType.DATA, FrameType.MGMT, FrameType.BEACON):
        size = max(0, orig_len - rt_len - 24) + 24
    else:
        size = {FrameType.ACK: 14, FrameType.CTS: 14, FrameType.RTS: 20}[
            frame.ftype
        ]
    return {
        "time_us": time_us,
        "ftype": int(frame.ftype),
        "rate_code": rate_to_code(radiotap.rate_mbps),
        "size": size,
        "src": frame.src,
        "dst": frame.dst,
        "retry": frame.retry,
        "channel": radiotap.channel,
        "snr_db": radiotap.snr_db,
        "seq": frame.seq,
    }


def _decode_record_scalar(
    buf: bytes,
    pos: int,
    abs_offset: int,
    frames_read: int,
    path: Path,
    compressed: bool = False,
) -> dict:
    """Legacy per-record decode — the behavioural reference.

    Raises exactly what the historical loop raised: a
    :class:`TruncatedPcapError` (with the record's absolute byte offset)
    when the codecs reject the bytes, and ``rate_to_code``'s bare
    ``ValueError`` for a well-formed record bearing a non-802.11b rate.
    """
    ts_sec, ts_usec, incl_len, orig_len = struct.unpack_from("<IIII", buf, pos)
    packet = buf[pos + 16 : pos + 16 + incl_len]
    try:
        radiotap, rt_len, frame = _decode_packet_parts(packet)
    except CODEC_ERRORS as error:
        raise TruncatedPcapError(
            f"{path}: undecodable record "
            f"({type(error).__name__}: {error})",
            byte_offset=abs_offset,
            frames_read=frames_read,
            compressed=compressed,
        ) from error
    return _row_from_packet(
        radiotap, rt_len, frame, orig_len, ts_sec * 1_000_000 + ts_usec
    )


def read_trace_batches(
    path: str | Path, batch_frames: int = 131_072
):
    """Incrementally read a capture as bounded-size Traces.

    The container is detected from the leading bytes, never the name:
    plain radiotap pcap, RFC 1761 snoop (delegated to
    :func:`repro.corpus.snoop.read_snoop_batches`), and gzip-compressed
    variants of both.  For compressed captures, reads stream through
    :mod:`gzip` — the file is never fully decompressed in memory — and
    every reported byte offset is into the decompressed stream.

    The file is consumed in multi-megabyte slabs, so memory stays
    bounded no matter how large the capture is — the streaming
    pipeline's pcap source.  Records in the shape :func:`write_trace`
    emits are decoded in bulk via numpy gathers over the raw byte
    stream; anything else falls back, record by record, to the scalar
    codecs, which also own the error behaviour (damaged tails raise
    :class:`TruncatedPcapError` *after* the clean prefix is flushed).
    Frames are yielded in file order; captures written by
    :func:`write_trace` are time-ordered.
    """
    if batch_frames <= 0:
        raise ValueError("batch_frames must be positive")
    path = Path(path)
    with path.open("rb") as fp:
        head = fp.read(8)
    compressed = head.startswith(_GZIP_MAGIC)
    if compressed:
        try:
            with gzip.open(path, "rb") as zp:
                head = zp.read(8)
        except (EOFError, OSError) as error:
            raise TruncatedPcapError(
                f"{path}: corrupt gzip stream "
                f"({type(error).__name__}: {error})",
                byte_offset=0,
                frames_read=0,
                compressed=True,
            ) from error
    if head.startswith(_SNOOP_IDENT):
        from ..corpus.snoop import read_snoop_batches

        yield from read_snoop_batches(path, batch_frames)
        return
    yield from _read_pcap_batches(path, batch_frames, compressed)


def _read_pcap_batches(path: Path, batch_frames: int, compressed: bool):
    """The pcap body of :func:`read_trace_batches` (format pre-sniffed)."""
    with (gzip.open(path, "rb") if compressed else path.open("rb")) as fp:
        try:
            header = fp.read(24)
        except (EOFError, OSError) as error:
            raise TruncatedPcapError(
                f"{path}: corrupt gzip stream "
                f"({type(error).__name__}: {error})",
                byte_offset=0,
                frames_read=0,
                compressed=True,
            ) from error
        if len(header) < 24:
            raise ValueError(f"{path}: not a pcap file (too short)")
        magic, _vmaj, _vmin, _tz, _sig, _snaplen, linktype = struct.unpack(
            "<IHHiIII", header
        )
        if magic != _MAGIC:
            raise ValueError(f"{path}: bad pcap magic {magic:#x}")
        if linktype != LINKTYPE_RADIOTAP:
            raise ValueError(
                f"{path}: linktype {linktype}, expected radiotap "
                f"({LINKTYPE_RADIOTAP})"
            )

        rows = _RowBuffer()
        base = 24  # absolute (decompressed) offset of buf[0]
        buf = b""
        frames_read = 0
        eof = False
        while not eof:
            try:
                data = fp.read(_CHUNK_BYTES)
            except (EOFError, OSError) as error:
                if not compressed:
                    raise
                # The gzip stream itself died (truncated or corrupt
                # compressed bytes): everything decoded so far is a
                # clean prefix, exactly like an on-disk truncation.
                if len(rows):
                    yield rows.flush()
                raise TruncatedPcapError(
                    f"{path}: corrupt gzip stream "
                    f"({type(error).__name__}: {error})",
                    byte_offset=base + len(buf),
                    frames_read=frames_read,
                    compressed=True,
                ) from error
            if not data:
                eof = True
            else:
                buf = buf + data if buf else data
            rel_offs, consumed = _scan_records(buf)
            if not eof and not rel_offs:
                continue  # record longer than the slab: keep reading
            if rel_offs:
                offs = np.asarray(rel_offs, dtype=np.int64)
                u8 = np.frombuffer(buf, dtype=np.uint8)
                cols, ok = _decode_block(u8, offs)
                run_start = 0
                n_rec = len(offs)
                while run_start < n_rec:
                    run_ok = bool(ok[run_start])
                    run_end = run_start + 1
                    while run_end < n_rec and bool(ok[run_end]) == run_ok:
                        run_end += 1
                    if run_ok:
                        rows.append_chunk(
                            {
                                name: col[run_start:run_end]
                                for name, col in cols.items()
                            }
                        )
                        frames_read += run_end - run_start
                        while len(rows) >= batch_frames:
                            yield rows.take(batch_frames)
                    else:
                        for i in range(run_start, run_end):
                            try:
                                values = _decode_record_scalar(
                                    buf,
                                    int(offs[i]),
                                    base + int(offs[i]),
                                    frames_read,
                                    path,
                                    compressed,
                                )
                            except TruncatedPcapError:
                                if len(rows):
                                    yield rows.flush()
                                raise
                            rows.append_row(values)
                            frames_read += 1
                            if len(rows) >= batch_frames:
                                yield rows.take(batch_frames)
                    run_start = run_end
            buf = buf[consumed:]
            base += consumed
        if buf:
            # Damage found: flush the clean prefix first so streaming
            # callers keep every frame read so far.
            if len(buf) < 16:
                if len(rows):
                    yield rows.flush()
                raise TruncatedPcapError(
                    f"{path}: truncated record header",
                    byte_offset=base,
                    frames_read=frames_read,
                    compressed=compressed,
                )
            if len(rows):
                yield rows.flush()
            raise TruncatedPcapError(
                f"{path}: truncated record body",
                byte_offset=base + 16,
                frames_read=frames_read,
                compressed=compressed,
            )
        if len(rows):
            yield rows.flush()


def read_trace(path: str | Path) -> Trace:
    """Read a capture (pcap/snoop, optionally gzipped) into a Trace."""
    batches = list(read_trace_batches(path))
    if not batches:
        return Trace.empty()
    if len(batches) == 1:
        return batches[0]
    return Trace(
        {
            name: np.concatenate([b.column(name) for b in batches])
            for name in TRACE_COLUMNS
        }
    )
