"""pcap file reader/writer for radiotap-encapsulated 802.11 traces.

Writes classic little-endian pcap (magic ``0xa1b2c3d4``, version 2.4)
with linktype 127 (IEEE802_11_RADIOTAP) — the same container a tethereal
RFMon capture like the paper's produces — and reads it back into a
:class:`repro.frames.Trace`.

Like the paper's capture (snap length 250 bytes, §4.2), packets may be
truncated on disk; the pcap record's ``orig_len`` preserves the true
on-air size, so frame sizes survive the round trip.

Information that genuinely does not exist on the air is lost exactly as
it was for the paper: ACK and CTS frames carry no transmitter address,
so those frames read back with ``src == NO_NODE``.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO

import numpy as np

from ..frames import TRACE_COLUMNS, TRACE_SCHEMA, FrameType, Trace, rate_to_code
from .dot11_codec import decode_frame, encode_frame
from .radiotap import RadiotapHeader

__all__ = [
    "write_trace",
    "read_trace",
    "read_trace_batches",
    "TruncatedPcapError",
    "PAPER_SNAPLEN",
    "LINKTYPE_RADIOTAP",
]


class TruncatedPcapError(ValueError):
    """A pcap ended mid-record or a record failed to decode.

    Carries where the damage starts (``byte_offset``) and how many
    frames decoded cleanly before it (``frames_read``) so callers —
    the streaming pipeline, the serve daemon, batch runs — can report
    the partial read instead of surfacing a raw ``struct.error``.
    """

    def __init__(
        self, message: str, *, byte_offset: int, frames_read: int
    ) -> None:
        super().__init__(
            f"{message} (byte offset {byte_offset}, "
            f"{frames_read} frames read cleanly)"
        )
        self.byte_offset = byte_offset
        self.frames_read = frames_read

_MAGIC = 0xA1B2C3D4
LINKTYPE_RADIOTAP = 127

#: The snap length the paper's sniffers used (§4.2).
PAPER_SNAPLEN = 250

_NOISE_FLOOR_DBM = -96


def _write_global_header(fp: BinaryIO, snaplen: int) -> None:
    fp.write(
        struct.pack("<IHHiIII", _MAGIC, 2, 4, 0, 0, snaplen, LINKTYPE_RADIOTAP)
    )


def write_trace(
    trace: Trace,
    path: str | Path,
    snaplen: int = PAPER_SNAPLEN,
    duration_fill: bool = True,
) -> int:
    """Write ``trace`` to ``path`` as a radiotap pcap; returns frame count.

    ``duration_fill`` populates the 802.11 Duration field with each
    frame's NAV-style remaining-exchange estimate (SIFS + ACK) so real
    tools display something sensible; it is not read back.
    """
    path = Path(path)
    with path.open("wb") as fp:
        _write_global_header(fp, snaplen)
        for row in trace.iter_rows():
            radiotap = RadiotapHeader(
                tsft_us=row.time_us,
                rate_mbps=row.rate_mbps,
                channel=row.channel,
                signal_dbm=int(round(_NOISE_FLOOR_DBM + row.snr_db)),
                noise_dbm=_NOISE_FLOOR_DBM,
            ).encode()
            body_size = 0
            if row.ftype in (FrameType.DATA, FrameType.MGMT, FrameType.BEACON):
                body_size = max(0, row.size - 24)
            duration = 10 + 304 if duration_fill else 0
            dot11 = encode_frame(
                ftype=row.ftype,
                src=row.src,
                dst=row.dst,
                seq=row.seq,
                retry=row.retry,
                body_size=body_size,
                duration_us=duration,
            )
            packet = radiotap + dot11
            incl = packet[:snaplen]
            ts_sec, ts_usec = divmod(row.time_us, 1_000_000)
            fp.write(
                struct.pack("<IIII", ts_sec, ts_usec, len(incl), len(packet))
            )
            fp.write(incl)
    return len(trace)


class _RowBuffer:
    """Decoded-record accumulator, flushed into Traces batch by batch.

    Columns and dtypes come from the trace schema
    (:data:`repro.frames.TRACE_SCHEMA`) so the pcap layer never
    restates them.
    """

    def __init__(self) -> None:
        self.cols: dict[str, list] = {name: [] for name, _ in TRACE_SCHEMA}

    def __len__(self) -> int:
        return len(self.cols["time_us"])

    def flush(self) -> Trace:
        trace = Trace(
            {
                name: np.array(self.cols[name], dtype=dtype)
                for name, dtype in TRACE_SCHEMA
            }
        )
        self.__init__()
        return trace


def read_trace_batches(
    path: str | Path, batch_frames: int = 131_072
):
    """Incrementally read a radiotap pcap as bounded-size Traces.

    Records are decoded straight off the (buffered) file handle and
    yielded every ``batch_frames`` frames, so memory stays bounded no
    matter how large the capture is — the streaming pipeline's pcap
    source.  Frames are yielded in file order; captures written by
    :func:`write_trace` are time-ordered.
    """
    if batch_frames <= 0:
        raise ValueError("batch_frames must be positive")
    path = Path(path)
    with path.open("rb") as fp:
        header = fp.read(24)
        if len(header) < 24:
            raise ValueError(f"{path}: not a pcap file (too short)")
        magic, _vmaj, _vmin, _tz, _sig, _snaplen, linktype = struct.unpack(
            "<IHHiIII", header
        )
        if magic != _MAGIC:
            raise ValueError(f"{path}: bad pcap magic {magic:#x}")
        if linktype != LINKTYPE_RADIOTAP:
            raise ValueError(
                f"{path}: linktype {linktype}, expected radiotap "
                f"({LINKTYPE_RADIOTAP})"
            )

        rows = _RowBuffer()
        offset = 24
        frames_read = 0
        while True:
            record = fp.read(16)
            if not record:
                break
            if len(record) < 16:
                # Damage found: flush the clean prefix first so
                # streaming callers keep every frame read so far.
                if len(rows):
                    yield rows.flush()
                raise TruncatedPcapError(
                    f"{path}: truncated record header",
                    byte_offset=offset,
                    frames_read=frames_read,
                )
            ts_sec, ts_usec, incl_len, orig_len = struct.unpack("<IIII", record)
            packet = fp.read(incl_len)
            if len(packet) < incl_len:
                if len(rows):
                    yield rows.flush()
                raise TruncatedPcapError(
                    f"{path}: truncated record body",
                    byte_offset=offset + 16,
                    frames_read=frames_read,
                )

            try:
                radiotap, rt_len = RadiotapHeader.decode(packet)
                frame = decode_frame(packet[rt_len:])
            except (struct.error, ValueError, KeyError, IndexError) as error:
                if len(rows):
                    yield rows.flush()
                raise TruncatedPcapError(
                    f"{path}: undecodable record "
                    f"({type(error).__name__}: {error})",
                    byte_offset=offset,
                    frames_read=frames_read,
                ) from error
            offset += 16 + incl_len
            if frame.ftype in (FrameType.DATA, FrameType.MGMT, FrameType.BEACON):
                # orig_len preserves the pre-snap size: radiotap + 24 + body.
                size = max(0, orig_len - rt_len - 24) + 24
            else:
                size = {FrameType.ACK: 14, FrameType.CTS: 14, FrameType.RTS: 20}[
                    frame.ftype
                ]

            rows.cols["time_us"].append(ts_sec * 1_000_000 + ts_usec)
            rows.cols["ftype"].append(int(frame.ftype))
            rows.cols["rate_code"].append(rate_to_code(radiotap.rate_mbps))
            rows.cols["size"].append(size)
            rows.cols["src"].append(frame.src)
            rows.cols["dst"].append(frame.dst)
            rows.cols["retry"].append(frame.retry)
            rows.cols["channel"].append(radiotap.channel)
            rows.cols["snr_db"].append(radiotap.snr_db)
            rows.cols["seq"].append(frame.seq)
            frames_read += 1

            if len(rows) >= batch_frames:
                yield rows.flush()
        if len(rows):
            yield rows.flush()


def read_trace(path: str | Path) -> Trace:
    """Read a radiotap pcap written by :func:`write_trace` into a Trace."""
    batches = list(read_trace_batches(path))
    if not batches:
        return Trace.empty()
    if len(batches) == 1:
        return batches[0]
    return Trace(
        {
            name: np.concatenate([b.column(name) for b in batches])
            for name in TRACE_COLUMNS
        }
    )
