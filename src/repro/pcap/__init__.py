"""pcap + radiotap + 802.11 MAC codec (the scapy substitute).

Writes simulated traces as real radiotap pcap files and reads them back,
so the analysis front-end can ingest byte-level captures exactly as the
paper's tethereal-based pipeline did.
"""

from .dot11_codec import DecodedFrame, decode_frame, encode_frame, mac_to_node, node_to_mac
from .pcapio import (
    LINKTYPE_RADIOTAP,
    PAPER_SNAPLEN,
    TruncatedPcapError,
    read_trace,
    read_trace_batches,
    write_trace,
)
from .radiotap import CHANNEL_FREQ_MHZ, RadiotapHeader, channel_from_freq

__all__ = [
    "CHANNEL_FREQ_MHZ",
    "DecodedFrame",
    "LINKTYPE_RADIOTAP",
    "PAPER_SNAPLEN",
    "RadiotapHeader",
    "TruncatedPcapError",
    "channel_from_freq",
    "decode_frame",
    "encode_frame",
    "mac_to_node",
    "node_to_mac",
    "read_trace",
    "read_trace_batches",
    "write_trace",
]
