"""Radiotap header encode/decode (the RFMon side information, §4.2).

The paper's sniffers ran in RFMon mode, which prepends per-frame radio
metadata — timestamp, data rate, channel and signal/noise — to each
captured 802.11 frame.  The modern on-disk encoding of that metadata is
the radiotap header (pcap linktype 127); we implement the subset of
fields the paper's analysis uses:

* TSFT (bit 0)          — 64-bit microsecond timestamp
* Flags (bit 1)         — (emitted as 0; presence keeps parsers happy)
* Rate (bit 2)          — data rate in 0.5 Mbps units
* Channel (bit 3)       — frequency + flags
* Antenna signal (bit 5)— dBm, signed byte
* Antenna noise (bit 6) — dBm, signed byte

Field alignment follows the radiotap specification: every field is
aligned to its natural size from the start of the header body.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = ["RadiotapHeader", "CHANNEL_FREQ_MHZ", "channel_from_freq"]

_TSFT = 1 << 0
_FLAGS = 1 << 1
_RATE = 1 << 2
_CHANNEL = 1 << 3
_ANT_SIGNAL = 1 << 5
_ANT_NOISE = 1 << 6

_PRESENT = _TSFT | _FLAGS | _RATE | _CHANNEL | _ANT_SIGNAL | _ANT_NOISE

#: 2.4 GHz centre frequency of each 802.11b channel.
CHANNEL_FREQ_MHZ = {ch: 2407 + 5 * ch for ch in range(1, 14)}
CHANNEL_FREQ_MHZ[14] = 2484

#: Channel flags: 2 GHz spectrum + CCK modulation.
_CHAN_FLAGS_B = 0x00A0


def channel_from_freq(freq_mhz: int) -> int:
    """Map a 2.4 GHz centre frequency back to its channel number."""
    for channel, freq in CHANNEL_FREQ_MHZ.items():
        if freq == freq_mhz:
            return channel
    raise ValueError(f"not an 802.11b/g channel frequency: {freq_mhz} MHz")


@dataclass(frozen=True)
class RadiotapHeader:
    """Decoded radiotap fields for one captured frame."""

    tsft_us: int
    rate_mbps: float
    channel: int
    signal_dbm: int
    noise_dbm: int

    def encode(self) -> bytes:
        """Serialise to radiotap bytes (little-endian throughout)."""
        if not 0 <= self.tsft_us < 2**64:
            raise ValueError("TSFT out of range")
        rate_units = int(round(self.rate_mbps * 2))
        if not 0 < rate_units <= 0xFF:
            raise ValueError(f"rate {self.rate_mbps} Mbps not encodable")
        freq = CHANNEL_FREQ_MHZ.get(self.channel)
        if freq is None:
            raise ValueError(f"unknown channel {self.channel}")
        # Body: TSFT(8, align 8) Flags(1) Rate(1) Channel(2+2, align 2)
        #       Signal(1) Noise(1)  -> offsets 8..16, 16, 17, 18..22, 22, 23
        body = struct.pack(
            "<QBBHHbb",
            self.tsft_us,
            0,  # flags
            rate_units,
            freq,
            _CHAN_FLAGS_B,
            _clamp_dbm(self.signal_dbm),
            _clamp_dbm(self.noise_dbm),
        )
        header = struct.pack("<BBHI", 0, 0, 8 + len(body), _PRESENT)
        return header + body

    @classmethod
    def decode(cls, data: bytes) -> tuple["RadiotapHeader", int]:
        """Parse a radiotap header; returns (header, total_length)."""
        if len(data) < 8:
            raise ValueError("truncated radiotap header")
        version, _pad, length, present = struct.unpack_from("<BBHI", data, 0)
        if version != 0:
            raise ValueError(f"unsupported radiotap version {version}")
        if length > len(data):
            raise ValueError("radiotap length exceeds capture")
        if present & (1 << 31):
            raise ValueError("chained present words not supported")

        offset = 8
        tsft_us = 0
        rate_mbps = 1.0
        channel = 1
        signal_dbm = -50
        noise_dbm = -96

        def align(o: int, a: int) -> int:
            return (o + a - 1) & ~(a - 1)

        if present & _TSFT:
            offset = align(offset, 8)
            (tsft_us,) = struct.unpack_from("<Q", data, offset)
            offset += 8
        if present & _FLAGS:
            offset += 1
        if present & _RATE:
            rate_mbps = data[offset] / 2.0
            offset += 1
        if present & _CHANNEL:
            offset = align(offset, 2)
            (freq,) = struct.unpack_from("<H", data, offset)
            channel = channel_from_freq(freq)
            offset += 4  # freq + flags
        if present & (1 << 4):  # FHSS, unused but must be skipped
            offset += 2
        if present & _ANT_SIGNAL:
            (signal_dbm,) = struct.unpack_from("<b", data, offset)
            offset += 1
        if present & _ANT_NOISE:
            (noise_dbm,) = struct.unpack_from("<b", data, offset)
            offset += 1

        return (
            cls(
                tsft_us=tsft_us,
                rate_mbps=rate_mbps,
                channel=channel,
                signal_dbm=signal_dbm,
                noise_dbm=noise_dbm,
            ),
            length,
        )

    @property
    def snr_db(self) -> float:
        """Signal-to-noise ratio implied by the antenna fields."""
        return float(self.signal_dbm - self.noise_dbm)


def _clamp_dbm(value: int) -> int:
    return max(-128, min(127, int(value)))
