"""Minimal IEEE 802.11 MAC header codec.

Serialises the frame kinds the paper analyses into byte-exact 802.11
MAC headers (the format a real RFMon capture would contain) and parses
them back.  Node ids map to locally-administered MAC addresses
``02:00:00:00:xx:xx``.

Header layouts implemented:

* DATA / management: Frame Control, Duration, addr1 (RA), addr2 (TA),
  addr3 (BSSID), Sequence Control, then an opaque payload.
* RTS: FC, Duration, RA, TA.
* CTS / ACK: FC, Duration, RA (the 802.11 reason the paper's atomicity
  rules must *infer* the transmitter of a lone CTS or ACK).
* BEACON: management header + minimal fixed fields.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..frames import BROADCAST, NO_NODE, FrameType, frame_type_from_dot11

__all__ = ["node_to_mac", "mac_to_node", "encode_frame", "decode_frame", "DecodedFrame"]

_BCAST_MAC = b"\xff\xff\xff\xff\xff\xff"


def node_to_mac(node_id: int) -> bytes:
    """Map a simulator node id onto a deterministic MAC address."""
    if node_id == BROADCAST:
        return _BCAST_MAC
    if not 0 <= node_id < 0xFFFE:
        raise ValueError(f"node id out of range: {node_id}")
    return bytes([0x02, 0, 0, 0, (node_id >> 8) & 0xFF, node_id & 0xFF])


def mac_to_node(mac: bytes) -> int:
    """Inverse of :func:`node_to_mac`."""
    if mac == _BCAST_MAC:
        return BROADCAST
    if len(mac) != 6 or mac[0] != 0x02:
        raise ValueError(f"not a reproduction MAC address: {mac.hex()}")
    return (mac[4] << 8) | mac[5]


def _frame_control(ftype: FrameType, retry: bool) -> int:
    dot11_type, subtype = ftype.dot11_type_subtype
    fc = (dot11_type << 2) | (subtype << 4)
    if retry:
        fc |= 1 << 11
    return fc


@dataclass(frozen=True)
class DecodedFrame:
    """Fields recovered from an 802.11 MAC header."""

    ftype: FrameType
    src: int
    dst: int
    seq: int
    retry: bool
    body_size: int  # payload bytes after the MAC header


def encode_frame(
    ftype: FrameType,
    src: int,
    dst: int,
    seq: int = 0,
    retry: bool = False,
    body_size: int = 0,
    duration_us: int = 0,
) -> bytes:
    """Serialise one frame to 802.11 MAC bytes (payload zero-filled).

    ``body_size`` bytes of payload follow the header for data-bearing
    frames; control frames ignore it.
    """
    fc = _frame_control(ftype, retry)
    duration = min(max(int(duration_us), 0), 0x7FFF)
    if ftype == FrameType.ACK or ftype == FrameType.CTS:
        return struct.pack("<HH", fc, duration) + node_to_mac(dst)
    if ftype == FrameType.RTS:
        return (
            struct.pack("<HH", fc, duration)
            + node_to_mac(dst)
            + node_to_mac(src)
        )
    # DATA / MGMT / BEACON: full 24-byte header + sequence control.
    seq_ctrl = (int(seq) & 0x0FFF) << 4
    header = (
        struct.pack("<HH", fc, duration)
        + node_to_mac(dst)
        + node_to_mac(src)
        + node_to_mac(src)  # BSSID: transmitter side of the link
        + struct.pack("<H", seq_ctrl)
    )
    return header + bytes(int(body_size))


def decode_frame(data: bytes) -> DecodedFrame:
    """Parse 802.11 MAC bytes produced by :func:`encode_frame`.

    ACK and CTS frames carry no transmitter address on the air; their
    ``src`` decodes as :data:`repro.frames.NO_NODE`, exactly the
    information loss the paper's §4.4 atomicity inference works around.
    """
    if len(data) < 10:
        raise ValueError("frame too short for an 802.11 header")
    fc, _duration = struct.unpack_from("<HH", data, 0)
    dot11_type = (fc >> 2) & 0b11
    subtype = (fc >> 4) & 0b1111
    retry = bool(fc & (1 << 11))
    ftype = frame_type_from_dot11(dot11_type, subtype)

    if ftype in (FrameType.ACK, FrameType.CTS):
        dst = mac_to_node(data[4:10])
        return DecodedFrame(
            ftype=ftype, src=NO_NODE, dst=dst, seq=0, retry=retry, body_size=0
        )
    if ftype == FrameType.RTS:
        if len(data) < 16:
            raise ValueError("truncated RTS")
        dst = mac_to_node(data[4:10])
        src = mac_to_node(data[10:16])
        return DecodedFrame(
            ftype=ftype, src=src, dst=dst, seq=0, retry=retry, body_size=0
        )
    if len(data) < 24:
        raise ValueError("truncated data/management header")
    dst = mac_to_node(data[4:10])
    src = mac_to_node(data[10:16])
    (seq_ctrl,) = struct.unpack_from("<H", data, 22)
    return DecodedFrame(
        ftype=ftype,
        src=src,
        dst=dst,
        seq=seq_ctrl >> 4,
        retry=retry,
        body_size=len(data) - 24,
    )
