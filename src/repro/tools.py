"""Command-line interface: run specs, simulate, analyze, sweep, inspect.

Usage (``repro`` and ``python -m repro`` are the same program)::

    repro run study.toml --workers 4
    repro run study.toml --validate-only
    repro simulate out.pcap --stations 10 --duration 20
    repro analyze capture.pcap
    repro analyze day.pcap plenary.pcap --workers 2
    repro analyze captures/ 'sniffers/**/*.snoop' --workers 4
    repro corpus index captures/
    repro corpus query captures/ --where "channel=6 frames>10k"
    repro corpus analyze captures/ --where "overlaps=13:00-14:00"
    repro campaign --scenario ramp \\
        --vary n_stations=10,20,40 --seeds 2 --workers 4 \\
        --store campaign-store --resume
    repro campaign-status --store campaign-store \\
        --scenario ramp --vary n_stations=10,20,40 --seeds 2
    repro campaign-coordinator --store campaign-store \\
        --scenario ramp --vary n_stations=10,20,40 --seeds 2 --port 9300
    repro campaign-worker --connect 127.0.0.1:9300
    repro info capture.pcap
    repro serve --port 8433
    repro lint --baseline

``run`` executes a declarative experiment spec (TOML/JSON — see
:mod:`repro.api.spec`); the other subcommands are thin adapters over
the same :mod:`repro.api` layer.  ``simulate`` runs a scenario and
writes the sniffer capture as a real radiotap pcap; ``analyze`` streams
one or more pcaps through the single-pass :mod:`repro.pipeline` and
prints the rendered congestion report(s) — multiple captures are
analyzed in parallel; ``campaign`` sweeps a parameter grid over a
library scenario across a process pool (each cell streamed live
through the pipeline, bounded memory) and prints/saves the campaign
summary — with ``--store`` every finished cell persists immediately
(crash-safe) and ``--resume`` re-runs only missing cells;
``campaign-status`` lists done/pending/failed cells of a stored grid
(and the live cluster state when a coordinator is running over it);
``campaign-coordinator``/``campaign-worker`` run the same sweep as a
fault-tolerant cluster — workers lease cell batches over a socket and
may be killed, added or restarted freely (:mod:`repro.campaign.dispatch`);
``corpus`` manages an indexed capture library (content-addressed
catalog, catalog-only queries, query-planned batch analysis that skips
already-stored reports — see :mod:`repro.corpus`);
``info`` prints the Table-1 style summary only; ``serve`` runs the
always-on multi-feed analysis daemon (:mod:`repro.serve`); ``lint``
runs the AST-based determinism & protocol-safety analyzer
(:mod:`repro.lint`) against the committed ratchet baseline.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys

from .api import Experiment, SpecError
from .campaign import CampaignStore, ParameterGrid
from .core import dataset_summary
from .core.render import render_report
from .lint.cli import add_lint_arguments
from .lint.cli import run_from_args as _run_lint_args
from .pcap import read_trace, write_trace
from .pipeline import DEFAULT_CHUNK_FRAMES
from .sim import available_scenarios
from .viz import table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools",
        description="802.11b congestion-analysis toolkit (IMC 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run",
        help="execute a declarative experiment spec file (.toml/.json)",
    )
    run.add_argument("spec", help="spec file path (see repro.api.spec)")
    run.add_argument(
        "--workers", type=int, default=None, help="override [run] workers"
    )
    run.add_argument(
        "--store", default=None, metavar="DIR", help="override [run] store"
    )
    run.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="override [run] resume",
    )
    run.add_argument(
        "--retry-failed",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="override [run] retry_failed",
    )
    run.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override/add a [params] entry (repeatable)",
    )
    run.add_argument(
        "--fidelity",
        default=None,
        metavar="MODE",
        help="override the spec's simulation engine "
        "(see repro.sim.FIDELITY_MODES)",
    )
    run.add_argument(
        "--out", default=None, help="also write the rendered result here"
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable result summary instead of text",
    )
    run.add_argument(
        "--validate-only",
        action="store_true",
        help="parse + validate the spec (and count its cells), run nothing",
    )

    simulate = sub.add_parser(
        "simulate", help="run a scenario and write the capture as pcap"
    )
    simulate.add_argument("output", help="output .pcap path")
    simulate.add_argument("--stations", type=int, default=10)
    simulate.add_argument("--aps", type=int, default=1)
    simulate.add_argument("--duration", type=float, default=20.0, help="seconds")
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--uplink-pps", type=float, default=8.0)
    simulate.add_argument("--downlink-pps", type=float, default=18.0)
    simulate.add_argument(
        "--rate-algorithm", choices=("arf", "aarf", "snr", "fixed"), default="arf"
    )
    simulate.add_argument("--rtscts-fraction", type=float, default=0.0)
    simulate.add_argument("--obstructed-fraction", type=float, default=0.25)
    simulate.add_argument(
        "--fidelity",
        default="default",
        metavar="MODE",
        help="simulation engine (see repro.sim.FIDELITY_MODES)",
    )
    simulate.add_argument(
        "--profile",
        action="store_true",
        help="print a cProfile top-20 cumulative table after the run",
    )

    analyze = sub.add_parser(
        "analyze",
        help="full congestion report from one or more captures (single-pass pipeline)",
    )
    analyze.add_argument(
        "captures",
        nargs="+",
        help="capture file(s), directories or glob patterns "
        "(.pcap/.snoop, optionally .gz; expanded sorted)",
    )
    analyze.add_argument(
        "--name", default=None, help="report title (single capture only)"
    )
    analyze.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel analyses for multi-capture batches (default: pool size)",
    )
    analyze.add_argument(
        "--chunk-frames",
        type=int,
        default=DEFAULT_CHUNK_FRAMES,
        help="frames per streaming chunk",
    )

    corpus = sub.add_parser(
        "corpus",
        help="index, query and batch-analyze a capture library",
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)

    corpus_index = corpus_sub.add_parser(
        "index",
        help="build/refresh the content-addressed capture catalog",
    )
    corpus_index.add_argument("root", help="corpus directory")
    corpus_index.add_argument(
        "--verify",
        action="store_true",
        help="re-hash every capture even when its size+mtime match",
    )

    corpus_query = corpus_sub.add_parser(
        "query",
        help="list catalogued captures matching a predicate "
        "(answered from the catalog — capture files are not opened)",
    )
    corpus_query.add_argument("root", help="corpus directory")
    corpus_query.add_argument(
        "--where",
        default=None,
        metavar="QUERY",
        help='e.g. "channel=6 frames>10k overlaps=13:00-14:00" '
        "(see repro.corpus.query)",
    )
    corpus_query.add_argument(
        "--no-refresh",
        action="store_true",
        help="answer from the existing catalog without rescanning disk",
    )

    corpus_analyze = corpus_sub.add_parser(
        "analyze",
        help="query-planned batch analysis: stored reports are served, "
        "the rest dispatch largest-first",
    )
    corpus_analyze.add_argument("root", help="corpus directory")
    corpus_analyze.add_argument(
        "--where", default=None, metavar="QUERY", help="catalog predicate"
    )
    corpus_analyze.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel analyses (default: pool size)",
    )
    corpus_analyze.add_argument(
        "--chunk-frames",
        type=int,
        default=DEFAULT_CHUNK_FRAMES,
        help="frames per streaming chunk",
    )
    corpus_analyze.add_argument(
        "--no-refresh",
        action="store_true",
        help="trust the existing catalog without rescanning disk",
    )
    corpus_analyze.add_argument(
        "--report",
        action="store_true",
        help="print each capture's rendered report after the plan summary",
    )

    campaign = sub.add_parser(
        "campaign",
        help="sweep a parameter grid over a library scenario in parallel",
    )
    campaign.add_argument(
        "--scenario",
        default="ramp",
        help="library scenario name (see --list)",
    )
    campaign.add_argument(
        "--vary",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="sweep axis (repeatable), e.g. --vary n_stations=10,20,40",
    )
    campaign.add_argument(
        "--fix",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="parameter applied to every cell (repeatable)",
    )
    campaign.add_argument(
        "--seeds", type=int, default=1, help="seeds per grid point"
    )
    campaign.add_argument(
        "--fidelity",
        default=None,
        metavar="MODE",
        help="simulation engine for every cell "
        "(see repro.sim.FIDELITY_MODES; affects store keys)",
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: pool size; 1 = serial)",
    )
    campaign.add_argument(
        "--chunk-frames",
        type=int,
        default=DEFAULT_CHUNK_FRAMES,
        help="frames per streamed chunk inside each cell",
    )
    campaign.add_argument(
        "--out", default=None, help="also write the summary to this path"
    )
    campaign.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="content-addressed cell store: results persist as they "
        "complete (crash-safe), and --resume reuses them",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="answer cells already in --store without re-simulating",
    )
    campaign.add_argument(
        "--retry-failed",
        action="store_true",
        help="with --resume, re-run cells that previously failed",
    )
    campaign.add_argument(
        "--list",
        action="store_true",
        help="list library scenarios and exit",
    )
    campaign.add_argument(
        "--profile",
        action="store_true",
        help="print a cProfile top-20 cumulative table after the sweep "
        "(forces --workers 1 so cell work is visible to the profiler)",
    )
    campaign.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget: a cell still running at the "
        "deadline fails as type=Timeout instead of stalling its worker",
    )
    campaign.add_argument(
        "--dispatch",
        choices=("local", "distributed"),
        default="local",
        help="'local' = one process pool; 'distributed' = fault-tolerant "
        "coordinator + worker subprocesses (lease/heartbeat/retry; "
        "survives killed workers)",
    )

    status = sub.add_parser(
        "campaign-status",
        help="list done/pending/failed cells of a stored campaign grid",
    )
    status.add_argument(
        "--store", required=True, metavar="DIR", help="campaign store directory"
    )
    status.add_argument(
        "--scenario",
        default=None,
        help="grid scenario; with --vary/--fix/--seeds, pending cells "
        "are computed against this grid (omit to list store contents)",
    )
    status.add_argument(
        "--vary", action="append", default=[], metavar="KEY=V1,V2,..."
    )
    status.add_argument("--fix", action="append", default=[], metavar="KEY=VALUE")
    status.add_argument("--seeds", type=int, default=1)
    status.add_argument(
        "--fidelity",
        default=None,
        metavar="MODE",
        help="fidelity the campaign ran with (store keys include it)",
    )

    coordinator = sub.add_parser(
        "campaign-coordinator",
        help="serve a campaign grid to campaign-worker processes "
        "(lease-based fault-tolerant dispatch)",
    )
    coordinator.add_argument(
        "--store", required=True, metavar="DIR", help="campaign store directory"
    )
    coordinator.add_argument("--scenario", default="ramp")
    coordinator.add_argument(
        "--vary", action="append", default=[], metavar="KEY=V1,V2,..."
    )
    coordinator.add_argument(
        "--fix", action="append", default=[], metavar="KEY=VALUE"
    )
    coordinator.add_argument("--seeds", type=int, default=1)
    coordinator.add_argument("--fidelity", default=None, metavar="MODE")
    coordinator.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    coordinator.add_argument(
        "--port", type=int, default=0, help="listen port (0 = ephemeral)"
    )
    coordinator.add_argument(
        "--lease-s",
        type=float,
        default=30.0,
        help="lease lifetime without a heartbeat before cells are reclaimed",
    )
    coordinator.add_argument(
        "--batch", type=int, default=2, help="cells granted per lease"
    )
    coordinator.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="tries per cell before it is recorded as a permanent failure",
    )
    coordinator.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget enforced on the workers",
    )
    coordinator.add_argument(
        "--chunk-frames", type=int, default=DEFAULT_CHUNK_FRAMES
    )
    coordinator.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore (and overwrite) results already in the store",
    )
    coordinator.add_argument(
        "--retry-failed",
        action="store_true",
        help="re-dispatch cells whose store record is a failure",
    )
    coordinator.add_argument(
        "--out", default=None, help="also write the summary to this path"
    )

    worker = sub.add_parser(
        "campaign-worker",
        help="lease and simulate cells from a campaign-coordinator",
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (printed by campaign-coordinator)",
    )
    worker.add_argument(
        "--id", default=None, metavar="NAME", help="worker name for status output"
    )
    worker.add_argument(
        "--shard",
        default=None,
        metavar="DIR",
        help="override the shard directory the coordinator assigns",
    )
    worker.add_argument(
        "--connect-timeout-s",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="initial connect timeout (the session itself blocks)",
    )

    lint = sub.add_parser(
        "lint",
        help="AST-based determinism & protocol-safety analyzer",
    )
    add_lint_arguments(lint)

    info = sub.add_parser("info", help="capture summary only")
    info.add_argument("capture", help="input .pcap path")

    serve = sub.add_parser(
        "serve",
        help="run the always-on analysis daemon (HTTP JSON + TCP ingest)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8433,
        help="HTTP port (0 = ephemeral; see --port-file)",
    )
    serve.add_argument(
        "--ingest-port",
        type=int,
        default=0,
        metavar="PORT",
        help="TCP frame-batch ingest port (0 = ephemeral, -1 = disabled)",
    )
    serve.add_argument(
        "--chunk-frames",
        type=int,
        default=DEFAULT_CHUNK_FRAMES,
        help="frames per analysis segment",
    )
    serve.add_argument(
        "--queue-chunks",
        type=int,
        default=8,
        help="per-feed ingest queue bound, in segments (backpressure knob)",
    )
    serve.add_argument(
        "--max-feeds", type=int, default=64, help="concurrent feed limit"
    )
    serve.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write bound ports as JSON once listening "
        "(the reliable way to use ephemeral ports)",
    )

    return parser


def _parse_value(text: str):
    """CLI parameter literal: int, float, bool or bare string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for kind in (int, float):
        try:
            return kind(text)
        except ValueError:
            continue
    return text


def _parse_assignments(
    entries: list[str], multi: bool
) -> dict[str, object]:
    """Parse ``KEY=VALUE`` / ``KEY=V1,V2,...`` command-line entries."""
    out: dict[str, object] = {}
    for entry in entries:
        key, sep, rest = entry.partition("=")
        key = key.strip()
        if not sep or not key or not rest:
            raise ValueError(f"expected KEY=VALUE, got {entry!r}")
        if key in out:
            raise ValueError(f"duplicate parameter {key!r}")
        if multi:
            out[key] = [_parse_value(v) for v in rest.split(",") if v != ""]
        else:
            out[key] = _parse_value(rest)
    return out


def _profiled(enabled: bool, fidelity: str | None = None):
    """Context manager: cProfile the body and print the top-20 table.

    The evidence-gathering hook behind every perf PR: ``--profile`` on
    the ``simulate``/``campaign`` subcommands shows exactly where the
    simulator spends its time, cumulative-sorted.  The header names the
    fidelity mode so profiles from different engines (event-stepped
    default vs batch-stepped fast) are never confused side by side.
    """

    class _Profiler:
        def __enter__(self):
            self.profile = cProfile.Profile() if enabled else None
            if self.profile is not None:
                self.profile.enable()
            return self

        def __exit__(self, exc_type, exc, tb):
            # Print even when the body raised: a slow-then-crashed run
            # is exactly when the profile is most wanted.
            if self.profile is not None:
                self.profile.disable()
                label = f" [fidelity={fidelity or 'default'}]"
                print(
                    f"\n-- cProfile{label}: top 20 by cumulative time " + "-" * 24
                )
                stats = pstats.Stats(self.profile, stream=sys.stdout)
                stats.strip_dirs().sort_stats("cumulative").print_stats(20)
            return False

    return _Profiler()


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        experiment = Experiment.from_spec(args.spec)
        overrides = _parse_assignments(args.set, multi=False)
        if overrides:
            experiment = experiment.fix(**overrides)
        if args.fidelity is not None:
            experiment = experiment.fidelity(args.fidelity)
        experiment = experiment.validate()
    except (SpecError, ValueError, TypeError, KeyError) as error:
        print(f"spec error: {_error_text(error)}", file=sys.stderr)
        return 2
    spec = experiment.spec()
    if args.validate_only:
        if spec.mode == "campaign":
            detail = f"{len(experiment.cells())} cells"
        elif spec.mode == "analysis":
            detail = f"{len(spec.pcaps)} capture(s)"
        else:
            detail = "1 run"
        print(f"{args.spec}: OK ({spec.mode}, {detail})")
        return 0
    try:
        result = experiment.run(
            workers=args.workers,
            store_dir=args.store,
            resume=args.resume,
            retry_failed=args.retry_failed,
        )
    except (SpecError, ValueError, TypeError, OSError) as error:
        print(f"spec error: {_error_text(error)}", file=sys.stderr)
        return 2
    text = result.to_json() + "\n" if args.json else result.render()
    print(text, end="" if text.endswith("\n") else "\n")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"result written to {args.out}", file=sys.stderr)
    rc = 0
    if result.campaign is not None and result.campaign.failed:
        print(
            f"{len(result.campaign.failed)} cell(s) failed", file=sys.stderr
        )
        rc = 1
    for name, report in result.reports.items():
        if report.summary.n_frames == 0:
            print(f"{name}: empty capture", file=sys.stderr)
            rc = 1
    for failure in result.failures:
        print(
            f"{failure.source}: analysis failed "
            f"[{failure.error_type}: {failure.error}]",
            file=sys.stderr,
        )
        rc = 1
    return rc


def _error_text(error: BaseException) -> str:
    """KeyError reprs its arg (quotes the whole message); unwrap it."""
    if isinstance(error, KeyError) and error.args:
        return str(error.args[0])
    return str(error)


def _cmd_simulate(args: argparse.Namespace) -> int:
    experiment = Experiment.scenario(
        "uniform",
        n_stations=args.stations,
        n_aps=args.aps,
        duration_s=args.duration,
        seed=args.seed,
        uplink_pps=args.uplink_pps,
        downlink_pps=args.downlink_pps,
        rate_algorithm=args.rate_algorithm,
        rtscts_fraction=args.rtscts_fraction,
        obstructed_fraction=args.obstructed_fraction,
    ).analyses("summary")  # buffered run; only the cheap summary consumer
    if args.fidelity != "default":
        experiment = experiment.fidelity(args.fidelity)
    with _profiled(args.profile, args.fidelity):
        result = experiment.run(keep_trace=True).scenario_result
    n = write_trace(result.trace, args.output)
    print(
        f"wrote {n} frames to {args.output} "
        f"(captured {result.capture_ratio:.0%} of "
        f"{len(result.ground_truth)} transmitted)"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.workers is not None and args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.chunk_frames < 1:
        print("--chunk-frames must be >= 1", file=sys.stderr)
        return 2
    # Hand paths (not traces) to the api layer: each worker streams its
    # capture from disk in bounded chunks, so decode parallelises with
    # --workers and memory stays flat however many captures are named.
    # Directories and glob patterns expand (sorted) inside the spec
    # layer; the name is applied only when exactly one capture results.
    experiment = Experiment.pcaps(*args.captures)
    if args.name:
        experiment = experiment.named(args.name)
    try:
        result = experiment.run(
            workers=args.workers, chunk_frames=args.chunk_frames
        )
    except SpecError as error:
        print(str(error), file=sys.stderr)
        return 2
    printed = 0
    empty: list[str] = []
    failed = {f.name: f for f in result.failures}
    for name, path in result.sources:
        if name in failed:
            continue
        report = result.reports[name]
        if report.summary.n_frames == 0:
            empty.append(path)
            continue
        if printed:
            print()
        print(render_report(report))
        printed += 1
    for path in empty:
        print(f"{path}: empty capture", file=sys.stderr)
    for failure in result.failures:
        print(
            f"{failure.source}: analysis failed "
            f"[{failure.error_type}: {failure.error}]",
            file=sys.stderr,
        )
    return 1 if empty or result.failures else 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from .corpus import CorpusError, CorpusIndex, analyze_corpus, filter_records

    try:
        if args.corpus_command == "index":
            index = CorpusIndex(args.root)
            stats = index.refresh(verify=args.verify)
            records = index.records()
            print(
                f"{args.root}: {len(records)} capture(s) catalogued "
                f"({stats.summary()})"
            )
            return 0
        if args.corpus_command == "query":
            index = CorpusIndex(args.root)
            if not args.no_refresh:
                index.refresh()
            matched = filter_records(index.records(), args.where)
            for record in matched:
                suffix = ".gz" if record.compressed else ""
                channels = ",".join(str(c) for c in record.channels) or "-"
                print(
                    f"{record.path}  {record.file_format}{suffix}  "
                    f"{record.n_frames} frames  ch {channels}  {record.status}"
                )
            print(f"{len(matched)} matched")
            return 0
        # corpus analyze
        if args.workers is not None and args.workers < 1:
            print("--workers must be >= 1", file=sys.stderr)
            return 2
        if args.chunk_frames < 1:
            print("--chunk-frames must be >= 1", file=sys.stderr)
            return 2
        analysis = analyze_corpus(
            args.root,
            args.where,
            workers=args.workers,
            chunk_frames=args.chunk_frames,
            refresh=not args.no_refresh,
        )
    except CorpusError as error:
        print(f"corpus error: {error}", file=sys.stderr)
        return 2
    print(
        f"{analysis.matched} matched, {analysis.cached} cached, "
        f"{analysis.dispatched} dispatched, {len(analysis.failures)} failed"
    )
    for path, status in sorted(analysis.skipped.items()):
        print(f"{path}: skipped ({status})", file=sys.stderr)
    for path in sorted(analysis.failures):
        failure = analysis.failures[path]
        print(
            f"{path}: analysis failed "
            f"[{failure.error_type}: {failure.error}]",
            file=sys.stderr,
        )
    if args.report:
        for path in sorted(analysis.reports):
            print()
            print(render_report(analysis.reports[path]))
    return 1 if analysis.failures else 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.list:
        print("\n".join(available_scenarios()))
        return 0
    if args.seeds < 1:
        print("--seeds must be >= 1", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.chunk_frames < 1:
        print("--chunk-frames must be >= 1", file=sys.stderr)
        return 2
    if (args.resume or args.retry_failed) and not args.store:
        print("--resume/--retry-failed require --store DIR", file=sys.stderr)
        return 2
    workers = args.workers
    if args.profile and workers != 1:
        print(
            "--profile forces --workers 1 (a process pool would hide "
            "cell work from the profiler)",
            file=sys.stderr,
        )
        workers = 1
    try:
        axes = _parse_assignments(args.vary, multi=True)
        fixed = _parse_assignments(args.fix, multi=False)
        experiment = (
            Experiment.scenario(args.scenario)
            .fix(**fixed)
            .vary(**axes)
            .seeds(args.seeds)
        )
        if args.fidelity is not None:
            experiment = experiment.fidelity(args.fidelity)
        with _profiled(args.profile, args.fidelity):
            result = experiment.run(
                workers=workers,
                chunk_frames=args.chunk_frames,
                store_dir=args.store,
                resume=args.resume,
                retry_failed=args.retry_failed,
                timeout_s=args.timeout_s,
                dispatch=args.dispatch,
            )
    except (ValueError, TypeError) as error:
        print(f"campaign error: {_error_text(error)}", file=sys.stderr)
        return 2
    text = result.render(title=f"Campaign [{args.scenario}]")
    print(text, end="")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"summary written to {args.out}", file=sys.stderr)
    if result.campaign.failed:
        print(
            f"{len(result.campaign.failed)} cell(s) failed"
            + (
                f"; retry with --store {args.store} --resume --retry-failed"
                if args.store
                else ""
            ),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_campaign_coordinator(args: argparse.Namespace) -> int:
    from .campaign import ParameterGrid, render_campaign
    from .campaign.dispatch import Coordinator

    if args.seeds < 1:
        print("--seeds must be >= 1", file=sys.stderr)
        return 2
    try:
        grid = ParameterGrid(
            args.scenario,
            axes=_parse_assignments(args.vary, multi=True),
            seeds=args.seeds,
            fixed=_parse_assignments(args.fix, multi=False),
            fidelity=args.fidelity,
        )
        grid.validate()
        with Coordinator(
            grid,
            args.store,
            host=args.host,
            port=args.port,
            lease_s=args.lease_s,
            batch=args.batch,
            max_attempts=args.max_attempts,
            resume=not args.no_resume,
            retry_failed=args.retry_failed,
            chunk_frames=args.chunk_frames,
            timeout_s=args.timeout_s,
        ) as coordinator:
            host, port = coordinator.address
            print(
                f"coordinator listening on {host}:{port} "
                f"({coordinator.state.outstanding} of "
                f"{coordinator.state.n_cells} cells to run) — start workers "
                f"with: repro campaign-worker --connect {host}:{port}",
                file=sys.stderr,
            )
            try:
                while not coordinator.wait(timeout=1.0):
                    pass
            except KeyboardInterrupt:
                print(
                    "interrupted; finished cells are in the store and a "
                    "re-run resumes from them",
                    file=sys.stderr,
                )
                return 130
            result = coordinator.result()
    except (ValueError, TypeError, OSError) as error:
        print(f"campaign error: {_error_text(error)}", file=sys.stderr)
        return 2
    text = render_campaign(result, title=f"Campaign [{args.scenario}]")
    print(text, end="")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"summary written to {args.out}", file=sys.stderr)
    return 1 if result.failed else 0


def _cmd_campaign_worker(args: argparse.Namespace) -> int:
    from .campaign.worker import run_worker

    host, sep, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
        if not sep or not host:
            raise ValueError
    except ValueError:
        print(
            f"--connect expects HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    try:
        completed = run_worker(
            host,
            port,
            worker_id=args.id,
            shard_dir=args.shard,
            connect_timeout_s=args.connect_timeout_s,
        )
    except (ConnectionError, TimeoutError, OSError) as error:
        print(f"worker: coordinator unreachable ({error})", file=sys.stderr)
        return 1
    print(f"worker done: {completed} cell(s) computed", file=sys.stderr)
    return 0


def _render_cluster_state(store_dir: str) -> bool:
    """Print the coordinator's live status file, if one exists."""
    import json
    from pathlib import Path

    from .campaign.dispatch import STATE_FILENAME

    path = Path(store_dir) / STATE_FILENAME
    try:
        state = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    host, port = state.get("address", ["?", "?"])
    print(
        f"cluster [{state.get('phase', '?')}] coordinator {host}:{port} — "
        f"{state.get('done', 0)}/{state.get('cells', 0)} done, "
        f"{state.get('failed', 0)} failed, {state.get('ready', 0)} ready, "
        f"{state.get('leased', 0)} leased, {state.get('delayed', 0)} "
        f"backing off ({state.get('reclaims', 0)} lease reclaims, "
        f"{state.get('retries', 0)} retries)"
    )
    for lease in state.get("leases", []):
        print(
            f"  lease {lease['lease']:6s} {lease['worker']}: "
            f"cells {lease['cells']} (expires in {lease['expires_in_s']}s)"
        )
    for name, stats in state.get("workers", {}).items():
        print(
            f"  worker {name}: {stats['completed']} completed, "
            f"{stats['failed']} failed, last seen {stats['idle_s']}s ago"
        )
    if state.get("quarantined"):
        print(f"  {state['quarantined']} corrupt record(s) quarantined")
    return True


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    store = CampaignStore(args.store)
    _render_cluster_state(args.store)
    if args.scenario is not None:
        if args.scenario not in available_scenarios():
            print(f"unknown scenario {args.scenario!r}", file=sys.stderr)
            return 2
        try:
            grid = ParameterGrid(
                args.scenario,
                axes=_parse_assignments(args.vary, multi=True),
                seeds=args.seeds,
                fixed=_parse_assignments(args.fix, multi=False),
                fidelity=args.fidelity,
            )
        except (ValueError, TypeError) as error:
            print(f"campaign error: {error}", file=sys.stderr)
            return 2
        status = store.status(grid.cells())
        counts = status.counts
        print(
            f"{args.store}: {counts['done']} done, {counts['pending']} "
            f"pending, {counts['failed']} failed of {len(grid)} cells"
        )
        for label, cells in (("done", status.done), ("pending", status.pending)):
            for cell in cells:
                print(f"  {label:8s} {cell.name}")
        for failure in status.failed:
            message = failure.error.splitlines()[0] if failure.error else ""
            print(f"  {'failed':8s} {failure.name}  [{failure.error_type}: {message}]")
        if store.quarantined:
            print(
                f"  {store.quarantined} corrupt record(s) quarantined "
                "(*.corrupt — inspect before re-running)"
            )
        return 0
    # No grid given: inventory whatever the store holds.
    n_done = n_failed = 0
    for record in store.records():
        name = record.get("cell", {}).get("name", record.get("key", "?"))
        if record["kind"] == "result":
            n_done += 1
            print(f"  {'done':8s} {name}")
        else:
            n_failed += 1
            error = record.get("error", {})
            print(
                f"  {'failed':8s} {name}  "
                f"[{error.get('type', '?')}: {error.get('message', '')}]"
            )
    print(f"{args.store}: {n_done} done, {n_failed} failed")
    if store.quarantined:
        print(
            f"  {store.quarantined} corrupt record(s) quarantined "
            "(*.corrupt — inspect before re-running)"
        )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    trace = read_trace(args.capture)
    summary = dataset_summary(trace, args.capture)
    print(table([summary.as_row()], title="Capture summary"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import serve_main

    try:
        return asyncio.run(
            serve_main(
                args.host,
                args.port,
                None if args.ingest_port < 0 else args.ingest_port,
                chunk_frames=args.chunk_frames,
                queue_chunks=args.queue_chunks,
                max_feeds=args.max_feeds,
                port_file=args.port_file,
            )
        )
    except KeyboardInterrupt:  # signal handler not installable: still drain
        return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    return _run_lint_args(args)


_COMMANDS = {
    "run": _cmd_run,
    "simulate": _cmd_simulate,
    "analyze": _cmd_analyze,
    "corpus": _cmd_corpus,
    "campaign": _cmd_campaign,
    "campaign-status": _cmd_campaign_status,
    "campaign-coordinator": _cmd_campaign_coordinator,
    "campaign-worker": _cmd_campaign_worker,
    "lint": _cmd_lint,
    "info": _cmd_info,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream closed early (e.g. `... | head`): not an error,
        # but Python would print a traceback at interpreter shutdown
        # unless stdout is detached from the dead pipe first.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
