"""The one value object every lint layer exchanges: a :class:`Finding`.

A finding is immutable and orderable (path, line, col, rule) so output
and baselines are deterministic, and it knows its own *baseline key* —
``rule:path`` — the granularity the ratchet counts at.  Line numbers
deliberately stay out of the key: moving code around must not read as
"new finding", only genuinely adding one may.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SEVERITIES", "Finding"]

#: Valid severities, strongest first (order matters for summaries).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  #: repo-relative posix path
    line: int  #: 1-based
    col: int  #: 0-based (ast convention)
    rule: str
    severity: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"finding severity must be one of {SEVERITIES}, "
                f"got {self.severity!r}"
            )

    @property
    def key(self) -> str:
        """Baseline identity: counts ratchet per (rule, file)."""
        return f"{self.rule}:{self.path}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def to_jsonable(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "key": self.key,
        }
