"""Inline suppressions: ``# repro: lint-ok[rule-id] <why>``.

A suppression *requires a reason* — the pragma exists to record a
human judgement ("this wall-clock read is operator-facing, never feeds
the simulation"), not to silence the tool.  A reasonless or malformed
pragma is itself a finding, and so is a pragma that suppresses
nothing: stale suppressions rot into lies about the code.

Syntax, anywhere in a comment::

    do_thing()  # repro: lint-ok[det-wall-clock] status stamp, not sim state
    # repro: lint-ok[async-open, async-sleep] startup path, loop not live yet
    next_line_is_covered()

A pragma on its own line covers the following line; a trailing pragma
covers its own line.  Rule ids are validated against the registry with
"did you mean ...?" on typos (:mod:`repro._suggest`).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["PRAGMA_RE", "Pragma", "parse_pragmas"]

PRAGMA_RE = re.compile(
    r"#\s*repro:\s*lint-ok\s*"  # the marker
    r"(?:\[(?P<rules>[^\]]*)\])?"  # [rule-a, rule-b] (missing = malformed)
    r"[ \t]*(?P<reason>[^#]*)"  # everything up to a further comment
)

#: A reason must carry some substance, not a stray character.
MIN_REASON_CHARS = 8


@dataclass
class Pragma:
    """One parsed suppression comment."""

    line: int  #: 1-based line the comment sits on
    rules: tuple[str, ...]
    reason: str
    own_line: bool  #: comment-only line → covers ``line + 1``
    problems: tuple[str, ...] = ()  #: malformations (reported, not applied)
    used: bool = field(default=False, compare=False)

    @property
    def valid(self) -> bool:
        return not self.problems

    def covers(self, line: int, rule: str) -> bool:
        """Does this pragma suppress ``rule`` findings on ``line``?"""
        if not self.valid or rule not in self.rules:
            return False
        return line == self.line or (self.own_line and line == self.line + 1)


def _comment_tokens(source: str) -> list[tuple[int, int, str]]:
    """(line, col, text) of every real comment token in ``source``.

    Tokenizing (rather than a plain-text line scan) means pragma
    examples inside string literals and docstrings — this repo
    documents the syntax in several places — are never mistaken for
    live suppressions.
    """
    comments: list[tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # the engine reports the file as parse-error separately
    return comments


def parse_pragmas(source: str) -> list[Pragma]:
    """Extract every ``lint-ok`` pragma (including malformed ones)."""
    pragmas: list[Pragma] = []
    lines = source.splitlines()
    for lineno, col, text in _comment_tokens(source):
        prefix = lines[lineno - 1][:col] if lineno <= len(lines) else ""
        for match in PRAGMA_RE.finditer(text):
            raw_rules = match.group("rules")
            reason = (match.group("reason") or "").strip()
            problems: list[str] = []
            rules: tuple[str, ...] = ()
            if raw_rules is None:
                problems.append(
                    "missing [rule-id] bracket — write "
                    "`# repro: lint-ok[rule-id] <why>`"
                )
            else:
                rules = tuple(
                    r.strip() for r in raw_rules.split(",") if r.strip()
                )
                if not rules:
                    problems.append("empty [rule-id] bracket")
            if len(reason) < MIN_REASON_CHARS:
                problems.append(
                    "a suppression requires a reason (min "
                    f"{MIN_REASON_CHARS} chars) — say *why* the finding "
                    "does not apply here"
                )
            own_line = match.start() == 0 and prefix.strip() == ""
            pragmas.append(
                Pragma(
                    line=lineno,
                    rules=rules,
                    reason=reason,
                    own_line=own_line,
                    problems=tuple(problems),
                )
            )
    return pragmas
