"""Small AST helpers shared by every rule module (stdlib ``ast`` only)."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "assigned_names",
    "call_has_argument",
    "calls_within",
    "dotted_name",
    "iter_async_calls",
    "walk_outside_functions",
]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    The workhorse of every call-pattern rule: resolves the *textual*
    call target (``np.random.default_rng``, ``time.sleep``) without
    any import resolution — by design, so the rules stay honest about
    what they match and fixtures stay trivial.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_has_argument(call: ast.Call, *, keyword: str, min_args: int) -> bool:
    """True if the call passes ``keyword=`` or at least ``min_args``
    positional arguments (i.e. the parameter was supplied either way).
    A ``**kwargs`` splat is given the benefit of the doubt."""
    if len(call.args) >= min_args:
        return True
    for kw in call.keywords:
        if kw.arg == keyword or kw.arg is None:
            return True
    return False


def calls_within(
    body: list[ast.stmt], *, into_functions: bool = False
) -> Iterator[ast.Call]:
    """Yield Call nodes lexically inside ``body``.

    With ``into_functions=False`` (the default), nested function and
    lambda bodies are *not* descended into: a sync helper defined
    inside an ``async def`` is typically an executor target, not code
    that runs on the event loop.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call):
            yield node
        if not into_functions and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def iter_async_calls(
    tree: ast.AST,
) -> Iterator[tuple[ast.AsyncFunctionDef, ast.Call]]:
    """Every Call that executes on the event loop: ``(async def, call)``
    pairs, excluding calls inside nested sync defs/lambdas (executor
    targets).  Nested ``async def`` bodies are visited on their own."""
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            for call in calls_within(node.body):
                yield node, call


def walk_outside_functions(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function defs."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def assigned_names(target: ast.AST) -> Iterator[str]:
    """Names bound by an assignment target (tuples unpacked)."""
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            yield node.id
