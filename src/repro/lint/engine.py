"""The analysis engine: parse once, run every rule, apply pragmas.

One :func:`run_lint` call walks the scanned tree (``src/`` and
``tests/``), parses each file a single time, runs every per-file rule
whose scope matches, runs project rules once over the whole tree, then
applies the suppression pass:

* findings covered by a *valid* pragma are dropped (the pragma is
  marked used),
* malformed pragmas, pragmas naming unknown rule ids, and pragmas
  that suppressed nothing become findings themselves (``pragma-*``),
* a file that fails to parse yields one ``parse-error`` finding
  instead of crashing the run.

Everything is pure stdlib and deterministic: same tree in, same
findings out, in the same order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .._suggest import unknown_name_message
from .findings import Finding
from .pragmas import Pragma, parse_pragmas
from .rules import RULES

__all__ = ["FileContext", "LintResult", "ProjectContext", "run_lint"]

#: Directories scanned relative to the repo root.
SCAN_DIRS = ("src", "tests")


@dataclass
class FileContext:
    """Everything a per-file rule may look at."""

    root: Path
    path: str  #: repo-relative posix path
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


class ProjectContext:
    """Whole-tree view for project rules; parses lazily, caches."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self._cache: dict[str, FileContext | None] = {}

    def parse(self, rel: str) -> FileContext | None:
        """FileContext for a repo-relative path, None if absent/broken."""
        if rel not in self._cache:
            full = self.root / rel
            try:
                source = full.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=rel)
            except (OSError, SyntaxError, UnicodeDecodeError):
                self._cache[rel] = None
            else:
                self._cache[rel] = FileContext(
                    root=self.root, path=rel, source=source, tree=tree
                )
        return self._cache[rel]


@dataclass
class LintResult:
    findings: list[Finding]
    files_scanned: int

    @property
    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.key] = out.get(finding.key, 0) + 1
        return out


def discover_files(root: Path, paths: Sequence[str] | None = None) -> list[str]:
    """Repo-relative posix paths of every Python file to scan.

    ``paths`` (files or directories, absolute or root-relative)
    restricts the walk; by default the whole ``src``/``tests`` tree is
    scanned.
    """
    if paths:
        wanted: list[str] = []
        for entry in paths:
            full = Path(entry)
            if not full.is_absolute():
                full = root / entry
            if full.is_dir():
                wanted.extend(
                    p.relative_to(root).as_posix()
                    for p in sorted(full.rglob("*.py"))
                )
            elif full.suffix == ".py":
                wanted.append(full.resolve().relative_to(root.resolve()).as_posix())
        return sorted(set(wanted))
    found: list[str] = []
    for base in SCAN_DIRS:
        base_dir = root / base
        if base_dir.is_dir():
            found.extend(
                p.relative_to(root).as_posix()
                for p in sorted(base_dir.rglob("*.py"))
            )
    return found


def _apply_pragmas(
    ctx: FileContext, findings: list[Finding]
) -> tuple[list[Finding], list[Finding]]:
    """Split one file's findings into (kept, suppressed); emit meta
    findings for malformed / unknown-rule / unused pragmas."""
    pragmas: list[Pragma] = parse_pragmas(ctx.source)
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        covering = [
            p for p in pragmas if p.covers(finding.line, finding.rule)
        ]
        if covering:
            for pragma in covering:
                pragma.used = True
            suppressed.append(finding)
        else:
            kept.append(finding)

    for pragma in pragmas:
        for problem in pragma.problems:
            kept.append(
                Finding(
                    path=ctx.path,
                    line=pragma.line,
                    col=0,
                    rule="pragma-malformed",
                    severity=RULES["pragma-malformed"].severity,
                    message=f"malformed lint-ok pragma: {problem}",
                )
            )
        for rule_id in pragma.rules:
            if rule_id not in RULES:
                kept.append(
                    Finding(
                        path=ctx.path,
                        line=pragma.line,
                        col=0,
                        rule="pragma-unknown-rule",
                        severity=RULES["pragma-unknown-rule"].severity,
                        message=unknown_name_message(
                            "lint rule", rule_id, RULES
                        ),
                    )
                )
        if pragma.valid and not pragma.used:
            kept.append(
                Finding(
                    path=ctx.path,
                    line=pragma.line,
                    col=0,
                    rule="pragma-unused",
                    severity=RULES["pragma-unused"].severity,
                    message=(
                        "lint-ok pragma suppresses nothing "
                        f"(rules: {', '.join(pragma.rules)}) — stale "
                        "suppressions misdocument the code; remove it"
                    ),
                )
            )
    return kept, suppressed


def run_lint(
    root: str | Path,
    paths: Sequence[str] | None = None,
    *,
    select: Iterable[str] | None = None,
) -> LintResult:
    """Lint the tree under ``root``; see module docstring.

    ``select`` restricts *reported* findings to the given rule ids
    (every rule still runs, so pragma bookkeeping stays correct).
    Unknown ids in ``select`` raise ``ValueError`` with a
    did-you-mean.
    """
    root = Path(root)
    selected: set[str] | None = None
    if select is not None:
        selected = set(select)
        for rule_id in sorted(selected):
            if rule_id not in RULES:
                raise ValueError(
                    unknown_name_message("lint rule", rule_id, RULES)
                )

    project = ProjectContext(root)
    rel_paths = discover_files(root, paths)
    per_file: dict[str, list[Finding]] = {rel: [] for rel in rel_paths}

    for rel in rel_paths:
        ctx = project.parse(rel)
        if ctx is None:
            full = root / rel
            message = "unreadable file"
            try:
                ast.parse(full.read_text(encoding="utf-8"), filename=rel)
            except SyntaxError as error:
                message = f"syntax error: {error.msg} (line {error.lineno})"
            except (OSError, UnicodeDecodeError) as error:
                message = f"unreadable file: {error}"
            per_file[rel].append(
                Finding(
                    path=rel,
                    line=1,
                    col=0,
                    rule="parse-error",
                    severity=RULES["parse-error"].severity,
                    message=message,
                )
            )
            continue
        for spec in RULES.values():
            if spec.check is None or spec.project:
                continue
            if spec.scope is not None and not spec.scope(rel):
                continue
            per_file[rel].extend(spec.check(ctx))

    # Project rules: one pass over the whole tree.  Their findings are
    # attributed to (and pragma-suppressible in) the file they point at.
    for spec in RULES.values():
        if spec.check is None or not spec.project:
            continue
        for finding in spec.check(project):
            per_file.setdefault(finding.path, []).append(finding)

    findings: list[Finding] = []
    for rel, file_findings in per_file.items():
        ctx = project.parse(rel)
        if ctx is None:
            findings.extend(file_findings)  # parse-error entries
            continue
        kept, _suppressed = _apply_pragmas(ctx, file_findings)
        findings.extend(kept)

    if selected is not None:
        findings = [f for f in findings if f.rule in selected]
    return LintResult(findings=sorted(findings), files_scanned=len(rel_paths))
