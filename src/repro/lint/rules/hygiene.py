"""Test-hygiene rules: tier-1 stays fast and timing-independent.

A fixed ``time.sleep`` in a test is either wasted wall-clock (the
condition was already true) or a flake (the machine was slower than
the constant).  Tier-1 polls through ``tests/waiting.wait_until`` —
deadline-bounded, adaptive, and the single sanctioned sleep site
(carrying the pragma that proves the rule is watching).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import dotted_name
from ..findings import Finding
from . import in_dirs, make, rule


@rule(
    "test-sleep",
    family="test-hygiene",
    severity="warning",
    summary="wall-clock `time.sleep` in a tier-1 test",
    scope=in_dirs("tests/"),
)
def check_test_sleep(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and dotted_name(node.func) == "time.sleep":
            yield make(
                ctx,
                "test-sleep",
                node,
                "fixed sleep in a tier-1 test (slow when the condition "
                "is already true, flaky when the machine is slow) — "
                "poll with `tests.waiting.wait_until(predicate, ...)`",
            )
