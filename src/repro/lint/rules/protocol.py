"""Protocol-schema rule: one declared registry, zero vocabulary drift.

The campaign dispatch protocol (``campaign/dispatch.py`` sender +
state machine, ``campaign/worker.py`` client) and the serve ingest
protocol (``serve/protocol.py``) speak in string ``op`` codes and
4-byte frame magics.  All of them are declared once, in
:mod:`repro.protocol_registry`; this *project* rule statically
cross-checks the three protocol sources against that declaration:

* every ``op`` literal — ``{"op": "lease", ...}`` construction, or a
  comparison against ``op`` / ``<expr>.get("op")`` — must be a
  registered op (typos get a "did you mean ...?"),
* every 4-byte bytes literal in a protocol file must be a registered
  magic (protocol files import their magic, they don't re-mint it),
* every registered op must be *used* by at least one protocol file —
  a handler removed while its message stays declared (or vice versa)
  is exactly the drift this rule exists to catch.

The registry is read by AST, never imported: the rule works on any
interpreter with no dependencies, including over fixture trees.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from . import make, rule

REGISTRY_PATH = "src/repro/protocol_registry.py"

#: The protocol sources this rule polices.
PROTOCOL_PATHS = (
    "src/repro/campaign/dispatch.py",
    "src/repro/campaign/worker.py",
    "src/repro/serve/protocol.py",
)


def _suggest_hint(name: str, options) -> str:
    from ..._suggest import suggest

    close = suggest(name, options)
    return f" — did you mean {', '.join(repr(c) for c in close)}?" if close else ""


def _load_registry(tree: ast.Module):
    """Extract op/magic declarations (with key line numbers) by AST."""
    ops: dict[str, int] = {}
    magics: set[str] = set()
    magic_consts: list[tuple[str, bytes, ast.AST]] = []
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if target.id == "DISPATCH_OPS" and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    ops[key.value] = key.lineno
        elif target.id == "WIRE_MAGICS" and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    magics.add(key.value)
        elif target.id.endswith("MAGIC") and isinstance(node.value, ast.Constant):
            if isinstance(node.value.value, bytes):
                magic_consts.append((target.id, node.value.value, node))
    return ops, magics, magic_consts


def _is_op_expr(node: ast.expr) -> bool:
    """Is this expression "the op of a message"?

    Two spellings by convention: a variable named exactly ``op``, or
    ``<expr>.get("op")``.
    """
    if isinstance(node, ast.Name) and node.id == "op":
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == "op"
    ):
        return True
    return False


def _op_literals(tree: ast.Module) -> Iterator[tuple[str, ast.AST]]:
    """Every string literal used as an op value, with its node."""
    for node in ast.walk(tree):
        # {"op": "lease", ...} — message construction.
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "op"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    yield value.value, value
        # op == "grant" / message.get("op") != "welcome" — handling.
        elif isinstance(node, ast.Compare):
            sides = [node.left, *node.comparators]
            if not any(_is_op_expr(side) for side in sides):
                continue
            for side, cmp_op in zip(sides[1:], node.ops):
                if isinstance(cmp_op, (ast.Eq, ast.NotEq)):
                    if isinstance(side, ast.Constant) and isinstance(
                        side.value, str
                    ):
                        yield side.value, side
                elif isinstance(cmp_op, (ast.In, ast.NotIn)):
                    # op in ("done", "wait")
                    if isinstance(side, (ast.Tuple, ast.List, ast.Set)):
                        for el in side.elts:
                            if isinstance(el, ast.Constant) and isinstance(
                                el.value, str
                            ):
                                yield el.value, el


def _bytes_literals(tree: ast.Module) -> Iterator[tuple[bytes, ast.AST]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, bytes):
            if len(node.value) == 4:
                yield node.value, node


@rule(
    "proto-op-unknown",
    family="protocol-schema",
    severity="error",
    summary="message op literal not declared in protocol_registry",
    project=True,
)
def check_protocol(project) -> Iterator[Finding]:
    """The whole cross-check lives here; it yields findings under all
    three ``proto-*`` ids (they ratchet independently)."""
    registry_ctx = project.parse(REGISTRY_PATH)
    if registry_ctx is None:
        return  # tree without a registry (fixture roots): nothing to check
    ops, magics, magic_consts = _load_registry(registry_ctx.tree)

    for const_name, value, node in magic_consts:
        try:
            decoded = value.decode("ascii")
        except UnicodeDecodeError:
            decoded = ""
        if decoded not in magics:
            yield make(
                registry_ctx,
                "proto-magic",
                node,
                f"registry constant {const_name} = {value!r} is not a "
                "WIRE_MAGICS key — declare it there too",
            )

    used: set[str] = set()
    for rel in PROTOCOL_PATHS:
        ctx = project.parse(rel)
        if ctx is None:
            continue
        for op_value, node in _op_literals(ctx.tree):
            used.add(op_value)
            if op_value not in ops:
                yield make(
                    ctx,
                    "proto-op-unknown",
                    node,
                    f"op {op_value!r} is not declared in "
                    f"protocol_registry.DISPATCH_OPS"
                    + _suggest_hint(op_value, ops),
                )
        for value, node in _bytes_literals(ctx.tree):
            try:
                decoded = value.decode("ascii")
            except UnicodeDecodeError:
                decoded = ""
            if decoded not in magics:
                yield make(
                    ctx,
                    "proto-magic",
                    node,
                    f"4-byte literal {value!r} looks like an undeclared "
                    "frame magic — declare it in "
                    "protocol_registry.WIRE_MAGICS and import it",
                )

    for op_value, lineno in sorted(ops.items()):
        if op_value not in used:
            yield make(
                registry_ctx,
                "proto-op-unused",
                lineno,
                f"registered op {op_value!r} is used by no protocol "
                "file — drifted handler/message vocabulary (remove it "
                "or wire it back up)",
            )


# The two sibling ids yielded by check_protocol above.
@rule(
    "proto-magic",
    family="protocol-schema",
    severity="error",
    summary="4-byte frame-magic literal not declared in WIRE_MAGICS",
    project=True,
)
def _proto_magic_marker(project):
    return iter(())  # findings are produced by check_protocol


@rule(
    "proto-op-unused",
    family="protocol-schema",
    severity="warning",
    summary="registered op never used by any protocol file (drift)",
    project=True,
)
def _proto_unused_marker(project):
    return iter(())  # findings are produced by check_protocol
