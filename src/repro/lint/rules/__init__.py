"""The pluggable rule registry.

Every rule is a :class:`Rule` record registered by id via the
:func:`rule` decorator.  Adding a rule is: write a generator that
yields findings from a file (or project) context, decorate it, and
drop one positive + one negative fixture into ``tests/lint/`` — the
engine, CLI, pragma layer, baseline ratchet and ``--list-rules``
catalog all pick it up from the registry.

Two rule shapes exist:

* **per-file** (the default): ``check(ctx)`` is called once per
  scanned file whose repo-relative path satisfies ``scope``; ``ctx``
  carries ``path``/``tree``/``source``/``lines``.
* **project** (``project=True``): ``check(project)`` is called once
  per run with the whole-tree context — for cross-file invariants
  like the protocol schema.

Some ids (the ``pragma-*`` meta rules and ``parse-error``) are
implemented by the engine itself and registered here with
``check=None`` so they participate in suppression validation,
``--select`` and the catalog like any other rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..findings import Finding

__all__ = ["RULES", "Rule", "in_dirs", "make", "rule"]


@dataclass(frozen=True)
class Rule:
    id: str
    family: str
    severity: str
    summary: str
    check: Callable | None
    scope: Callable[[str], bool] | None = None
    project: bool = False


#: The registry itself: rule id → :class:`Rule`.
RULES: dict[str, Rule] = {}


def rule(
    id: str,
    *,
    family: str,
    severity: str,
    summary: str,
    scope: Callable[[str], bool] | None = None,
    project: bool = False,
) -> Callable:
    """Register a rule check function under ``id``."""

    def wrap(fn: Callable) -> Callable:
        if id in RULES:
            raise ValueError(f"duplicate lint rule id {id!r}")
        RULES[id] = Rule(
            id=id,
            family=family,
            severity=severity,
            summary=summary,
            check=fn,
            scope=scope,
            project=project,
        )
        return fn

    return wrap


def register_meta(id: str, *, family: str, severity: str, summary: str) -> None:
    """Register an engine-implemented rule (no check function)."""
    RULES[id] = Rule(
        id=id, family=family, severity=severity, summary=summary, check=None
    )


def in_dirs(*prefixes: str) -> Callable[[str], bool]:
    """Scope predicate: path lives under one of the given directories."""

    def applies(path: str) -> bool:
        return any(path.startswith(prefix) for prefix in prefixes)

    return applies


def make(ctx, rule_id: str, node, message: str) -> Finding:
    """Build a finding for ``rule_id`` at an AST node (or bare line)."""
    spec = RULES[rule_id]
    line = getattr(node, "lineno", node if isinstance(node, int) else 1)
    col = getattr(node, "col_offset", 0)
    return Finding(
        path=ctx.path,
        line=line,
        col=col,
        rule=rule_id,
        severity=spec.severity,
        message=message,
    )


def iter_rules(ids: Iterable[str] | None = None) -> list[Rule]:
    """Registry view, optionally restricted to ``ids``, catalog order."""
    if ids is None:
        return list(RULES.values())
    wanted = set(ids)
    return [spec for spec in RULES.values() if spec.id in wanted]


# Engine-implemented meta rules (see repro/lint/engine.py).
register_meta(
    "parse-error",
    family="engine",
    severity="error",
    summary="a scanned file failed to parse as Python",
)
register_meta(
    "pragma-malformed",
    family="pragma",
    severity="error",
    summary="a lint-ok pragma without a [rule-id] bracket or a reason",
)
register_meta(
    "pragma-unknown-rule",
    family="pragma",
    severity="error",
    summary="a lint-ok pragma naming a rule id that does not exist",
)
register_meta(
    "pragma-unused",
    family="pragma",
    severity="warning",
    summary="a lint-ok pragma that suppresses nothing (stale)",
)

# Importing the family modules populates the registry.
from . import (  # noqa: E402  (registration happens at import)
    blocking,
    determinism,
    exceptions,
    hygiene,
    protocol,
    resources,
)
