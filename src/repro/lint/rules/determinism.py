"""Determinism rules: seed-driven RNG discipline, no wall-clock reads.

The reproduction's first invariant is that a (scenario, params, seed)
cell is a pure function: golden-trace digests, the content-addressed
campaign store and distributed-dispatch idempotency all depend on it.
These rules fence the code paths that execute cells — the simulator
package and the campaign package — against the three classic leaks:

* the stdlib ``random`` module (global, seedless by default),
* numpy's legacy module-level RNG (``np.random.<fn>`` shares hidden
  global state across everything in the process),
* unseeded ``np.random.default_rng()`` (fresh OS entropy per call),
* wall-clock reads (``time.time``, ``datetime.now``) leaking into
  results or keys.  Monotonic timing (``perf_counter``/``monotonic``)
  stays allowed: elapsed-time fields are declared volatile and the
  store compares modulo them.

Wall-clock-legitimate sites (the coordinator's operator-facing status
file stamp) carry a reasoned ``lint-ok`` pragma — that is the
allowlist, kept next to the code it excuses.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import dotted_name
from ..findings import Finding
from . import in_dirs, make, rule

#: Cell-execution paths: the simulator, and the campaign layer that
#: hashes, dispatches and replays cells.
SCOPE = in_dirs("src/repro/sim/", "src/repro/campaign/")

#: numpy legacy module-level RNG functions (hidden shared global state).
NP_GLOBAL_FNS = frozenset(
    {
        "beta",
        "binomial",
        "bytes",
        "choice",
        "exponential",
        "gamma",
        "get_state",
        "normal",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "seed",
        "set_state",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)

#: Call targets that read the wall clock (both import spellings).
WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_DEFAULT_RNG = ("np.random.default_rng", "numpy.random.default_rng")


@rule(
    "det-stdlib-random",
    family="determinism",
    severity="error",
    summary="stdlib `random` imported on a cell-execution path",
    scope=SCOPE,
)
def check_stdlib_random(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    yield make(
                        ctx,
                        "det-stdlib-random",
                        node,
                        "stdlib `random` is process-global and seedless "
                        "by default — use a seeded "
                        "`np.random.default_rng(seed)` threaded from the "
                        "cell seed",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and (node.module or "").split(".")[0] == "random":
                yield make(
                    ctx,
                    "det-stdlib-random",
                    node,
                    "importing from stdlib `random` — use a seeded "
                    "`np.random.default_rng(seed)` instead",
                )


@rule(
    "det-np-global",
    family="determinism",
    severity="error",
    summary="numpy legacy module-level RNG (shared hidden state)",
    scope=SCOPE,
)
def check_np_global(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        parts = name.split(".")
        if (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] in NP_GLOBAL_FNS
        ):
            yield make(
                ctx,
                "det-np-global",
                node,
                f"`{name}` draws from numpy's hidden module-level RNG — "
                "every draw must come from an explicitly seeded "
                "Generator owned by the cell",
            )


@rule(
    "det-unseeded-rng",
    family="determinism",
    severity="error",
    summary="`np.random.default_rng()` without a seed (OS entropy)",
    scope=SCOPE,
)
def check_unseeded_rng(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name in _DEFAULT_RNG and not node.args and not node.keywords:
            yield make(
                ctx,
                "det-unseeded-rng",
                node,
                "`default_rng()` with no seed pulls fresh OS entropy — "
                "derive the seed from the cell's declared seed",
            )


@rule(
    "det-wall-clock",
    family="determinism",
    severity="error",
    summary="wall-clock read (`time.time`, `datetime.now`) on a "
    "cell-execution path",
    scope=SCOPE,
)
def check_wall_clock(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name in WALL_CLOCK:
            yield make(
                ctx,
                "det-wall-clock",
                node,
                f"`{name}()` reads the wall clock — results and store "
                "keys must not depend on when a cell ran "
                "(perf_counter/monotonic for elapsed timing is fine); "
                "operator-facing sites take a reasoned lint-ok pragma",
            )
