"""Resource-safety rules: sockets must not be able to hang forever.

A ``socket.create_connection`` without a timeout blocks until the
kernel gives up (minutes, or never against a blackholed address) —
exactly how a campaign worker wedged forever against an unreachable
coordinator.  Every connect names a timeout; a deliberately blocking
session restores blocking mode *after* the connect succeeds
(``sock.settimeout(None)``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import call_has_argument, dotted_name
from ..findings import Finding
from . import in_dirs, make, rule


@rule(
    "sock-no-timeout",
    family="resource-safety",
    severity="error",
    summary="`socket.create_connection` without a connect timeout",
    scope=in_dirs("src/"),
)
def check_connect_timeout(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if dotted_name(node.func) != "socket.create_connection":
            continue
        # Signature: create_connection(address, timeout=..., ...) —
        # a second positional argument *is* the timeout.
        if not call_has_argument(node, keyword="timeout", min_args=2):
            yield make(
                ctx,
                "sock-no-timeout",
                node,
                "connect without a timeout hangs forever against an "
                "unreachable peer — pass `timeout=`, then "
                "`sock.settimeout(None)` if the session itself should "
                "block",
            )
