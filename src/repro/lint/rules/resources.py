"""Resource-safety rules: sockets must not hang, captures must close.

A ``socket.create_connection`` without a timeout blocks until the
kernel gives up (minutes, or never against a blackholed address) —
exactly how a campaign worker wedged forever against an unreachable
coordinator.  Every connect names a timeout; a deliberately blocking
session restores blocking mode *after* the connect succeeds
(``sock.settimeout(None)``).

Capture I/O in :mod:`repro.pcap` and :mod:`repro.corpus` opens many
files per run (corpus refresh walks every capture; batch analysis
streams dozens in parallel workers).  A handle left to the garbage
collector keeps its descriptor until finalization — under a process
pool that is long enough to exhaust the fd table, and on failure paths
it pins temp files that atomic-write cleanup wants to unlink.  So
every ``open``/``gzip.open``/``gzip.GzipFile`` (and ``Path.open``)
there must be governed by a ``with`` statement.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import call_has_argument, dotted_name
from ..findings import Finding
from . import in_dirs, make, rule


@rule(
    "sock-no-timeout",
    family="resource-safety",
    severity="error",
    summary="`socket.create_connection` without a connect timeout",
    scope=in_dirs("src/"),
)
def check_connect_timeout(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if dotted_name(node.func) != "socket.create_connection":
            continue
        # Signature: create_connection(address, timeout=..., ...) —
        # a second positional argument *is* the timeout.
        if not call_has_argument(node, keyword="timeout", min_args=2):
            yield make(
                ctx,
                "sock-no-timeout",
                node,
                "connect without a timeout hangs forever against an "
                "unreachable peer — pass `timeout=`, then "
                "`sock.settimeout(None)` if the session itself should "
                "block",
            )


def _is_opener(node: ast.Call) -> bool:
    name = dotted_name(node.func)
    if name is None:
        return False
    return (
        name in ("open", "gzip.open", "gzip.GzipFile", "os.fdopen")
        or name.endswith(".open")
    )


@rule(
    "capture-open-no-ctx",
    family="resource-safety",
    severity="error",
    summary="a capture/catalog file opened outside a `with` statement",
    scope=in_dirs("src/repro/pcap/", "src/repro/corpus/"),
)
def check_capture_open_ctx(ctx) -> Iterator[Finding]:
    # Any opener call anywhere inside a with-item's context expression
    # is governed: that covers `with open(...) as fp`, the conditional
    # `with (gzip.open(p) if z else p.open())`, and the wrapping form
    # `with gzip.GzipFile(fileobj=raw)` where `raw` came from a
    # sibling with-item.
    governed: set[int] = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            for sub in ast.walk(item.context_expr):
                if isinstance(sub, ast.Call):
                    governed.add(id(sub))
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or id(node) in governed:
            continue
        if _is_opener(node):
            yield make(
                ctx,
                "capture-open-no-ctx",
                node,
                "capture I/O outside a context manager leaks the "
                "descriptor until GC finalization — wrap the open in "
                "`with ... as fp:` (parallel workers stream many "
                "captures; leaked fds accumulate per process)",
            )
