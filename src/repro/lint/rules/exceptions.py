"""Exception-hygiene rules.

Two invariants, everywhere in the codebase:

* no bare ``except:`` — it swallows ``KeyboardInterrupt`` and
  ``SystemExit``, turning Ctrl-C into a hang (name the exceptions, or
  use ``except Exception`` when a broad net is genuinely wanted);
* every ``except BaseException`` body must re-raise — the only
  legitimate use in this repo is cleanup-then-reraise around atomic
  writes (``store.py``/``merge.py``), where the temp file is unlinked
  and the original exception continues.  A swallowing handler would
  eat ``KeyboardInterrupt`` *and* corrupt the crash-safety story.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import walk_outside_functions
from ..findings import Finding
from . import in_dirs, make, rule

SCOPE = in_dirs("src/", "tests/")


def _names_base_exception(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id == "BaseException"
    if isinstance(node, ast.Tuple):
        return any(_names_base_exception(el) for el in node.elts)
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler body (outside nested defs) contain a raise?"""
    return any(
        isinstance(node, ast.Raise)
        for node in walk_outside_functions(handler.body)
    )


@rule(
    "exc-bare",
    family="exception-hygiene",
    severity="error",
    summary="bare `except:` (swallows KeyboardInterrupt/SystemExit)",
    scope=SCOPE,
)
def check_bare_except(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield make(
                ctx,
                "exc-bare",
                node,
                "bare `except:` catches KeyboardInterrupt and "
                "SystemExit — name the exceptions (or `except "
                "Exception` for a deliberate broad net)",
            )


@rule(
    "exc-swallow",
    family="exception-hygiene",
    severity="error",
    summary="`except BaseException` body that does not re-raise",
    scope=SCOPE,
)
def check_swallowed_base_exception(ctx) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if _names_base_exception(node.type) and not _reraises(node):
            yield make(
                ctx,
                "exc-swallow",
                node,
                "`except BaseException` must re-raise — the sanctioned "
                "pattern is cleanup-then-`raise` (atomic-write temp "
                "file removal); swallowing eats Ctrl-C",
            )
