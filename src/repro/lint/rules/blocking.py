"""Asyncio-blocking rules: nothing synchronous on the serve event loop.

The serve daemon's liveness contract — every feed keeps streaming
while any one feed stalls or fails — holds only while no coroutine
blocks the loop.  These rules flag the classic blockers *lexically
inside ``async def`` bodies* under ``src/repro/serve/``.  Calls inside
nested sync ``def``/``lambda`` bodies are exempt: that is exactly the
``run_in_executor`` offload pattern the fix should use.
"""

from __future__ import annotations

from typing import Iterator

from ..astutil import dotted_name, iter_async_calls
from ..findings import Finding
from . import in_dirs, make, rule

SCOPE = in_dirs("src/repro/serve/")

_SUBPROCESS = ("subprocess.run", "subprocess.call", "subprocess.check_call",
               "subprocess.check_output", "subprocess.Popen")


@rule(
    "async-sleep",
    family="async-blocking",
    severity="error",
    summary="`time.sleep` inside an async def (stalls the event loop)",
    scope=SCOPE,
)
def check_async_sleep(ctx) -> Iterator[Finding]:
    for fn, call in iter_async_calls(ctx.tree):
        if dotted_name(call.func) == "time.sleep":
            yield make(
                ctx,
                "async-sleep",
                call,
                f"`time.sleep` in `async def {fn.name}` freezes every "
                "feed on the loop — use `await asyncio.sleep(...)`",
            )


@rule(
    "async-open",
    family="async-blocking",
    severity="error",
    summary="sync `open()` inside an async def (blocking disk I/O)",
    scope=SCOPE,
)
def check_async_open(ctx) -> Iterator[Finding]:
    import ast

    for fn, call in iter_async_calls(ctx.tree):
        if isinstance(call.func, ast.Name) and call.func.id == "open":
            yield make(
                ctx,
                "async-open",
                call,
                f"blocking `open()` in `async def {fn.name}` — offload "
                "the whole write via "
                "`await loop.run_in_executor(None, ...)` (or annotate "
                "with a reasoned lint-ok pragma and a size bound)",
            )


@rule(
    "async-subprocess",
    family="async-blocking",
    severity="error",
    summary="sync subprocess call inside an async def",
    scope=SCOPE,
)
def check_async_subprocess(ctx) -> Iterator[Finding]:
    for fn, call in iter_async_calls(ctx.tree):
        if dotted_name(call.func) in _SUBPROCESS:
            yield make(
                ctx,
                "async-subprocess",
                call,
                f"sync subprocess call in `async def {fn.name}` — use "
                "`asyncio.create_subprocess_exec` or executor-offload",
            )


@rule(
    "async-socket",
    family="async-blocking",
    severity="error",
    summary="sync `socket.*` call inside an async def",
    scope=SCOPE,
)
def check_async_socket(ctx) -> Iterator[Finding]:
    for fn, call in iter_async_calls(ctx.tree):
        name = dotted_name(call.func)
        if name is not None and name.startswith("socket."):
            yield make(
                ctx,
                "async-socket",
                call,
                f"sync `{name}` in `async def {fn.name}` blocks the "
                "loop — use asyncio streams (`asyncio.open_connection` "
                "/ `start_server`)",
            )
