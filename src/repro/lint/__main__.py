"""``python -m repro.lint`` — the dependency-free analyzer entry.

Identical to ``repro lint`` (both call :func:`repro.lint.cli.main`),
but importable on a bare interpreter: the lint package and the lazy
:mod:`repro` package ``__init__`` pull in no numpy and no 3.11-only
stdlib, so the CI ``lint-gate`` job runs this form on Python 3.10
with nothing installed.
"""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
