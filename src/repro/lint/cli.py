"""CLI for the analyzer: ``repro lint`` and ``python -m repro.lint``.

Both entries share this module: :func:`add_lint_arguments` installs
the flags on whatever parser hosts the verb, and :func:`run_from_args`
executes it.  The standalone module form exists so the linter runs on
any interpreter with zero third-party imports (the CI ``lint-gate``
job exercises it on a bare Python 3.10 with no numpy installed).

Exit codes: 0 clean (or everything grandfathered by the baseline),
1 findings (new findings, in baseline mode), 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    compare,
    load_baseline,
    write_baseline,
)
from .engine import run_lint
from .findings import Finding
from .rules import RULES

__all__ = ["add_lint_arguments", "main", "run_from_args"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``lint`` flags on ``parser`` (shared by both CLIs)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/ and tests/)",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="repository root (default: walk up from cwd to pyproject.toml)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="PATH",
        help="ratchet mode: fail only on findings beyond the committed "
        f"baseline (default path: {DEFAULT_BASELINE} under --root)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current counts as the new baseline and exit 0 "
        "(an explicit human decision — check mode never widens it)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE-ID",
        help="report only these rule ids (repeatable; did-you-mean on typos)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (id, severity, summary) and exit",
    )


def find_root(start: Path | None = None) -> Path | None:
    """Nearest ancestor of ``start`` (default cwd) with a pyproject.toml."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def _rule_catalog() -> str:
    lines = ["rule id              sev      summary"]
    for spec in sorted(RULES.values(), key=lambda s: (s.family, s.id)):
        lines.append(f"{spec.id:<20s} {spec.severity:<8s} {spec.summary}")
    return "\n".join(lines)


def _render_text(
    findings: list[Finding],
    *,
    files_scanned: int,
    new_keys: set[str] | None,
    improved: dict | None,
) -> str:
    lines = []
    for finding in findings:
        suffix = ""
        if new_keys is not None:
            suffix = (
                "  (NEW)" if finding.key in new_keys else "  (grandfathered)"
            )
        lines.append(finding.render() + suffix)
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    lines.append(
        f"{len(findings)} finding(s) ({errors} error, {warnings} warning) "
        f"across {files_scanned} file(s)"
    )
    if improved:
        lines.append(
            f"ratchet: {len(improved)} baseline key(s) improved — run "
            "`repro lint --write-baseline` to lock the win in"
        )
    return "\n".join(lines)


def run_from_args(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(_rule_catalog())
        return 0

    root = Path(args.root).resolve() if args.root else find_root()
    if root is None:
        print(
            "repro lint: cannot find the repository root (no "
            "pyproject.toml above cwd) — pass --root DIR",
            file=sys.stderr,
        )
        return 2
    if not root.is_dir():
        print(f"repro lint: --root {root} is not a directory", file=sys.stderr)
        return 2

    try:
        result = run_lint(root, args.paths or None, select=args.select or None)
    except ValueError as error:  # unknown --select id, with did-you-mean
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    counts = result.counts

    baseline_path = args.baseline
    if baseline_path is None and args.write_baseline:
        baseline_path = DEFAULT_BASELINE
    if baseline_path is not None:
        baseline_file = Path(baseline_path)
        if not baseline_file.is_absolute():
            baseline_file = root / baseline_file

    if args.write_baseline:
        write_baseline(baseline_file, counts)
        print(
            f"baseline written: {baseline_file} "
            f"({len(counts)} key(s), {len(result.findings)} finding(s))"
        )
        return 0

    new_keys: set[str] | None = None
    improved: dict | None = None
    ok = not result.findings
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_file)
        except BaselineError as error:
            print(f"repro lint: {error}", file=sys.stderr)
            return 2
        delta = compare(counts, baseline)
        new_keys = set(delta.new)
        improved = delta.improved
        ok = delta.ok

    if args.format == "json":
        payload = {
            "ok": ok,
            "files_scanned": result.files_scanned,
            "findings": [f.to_jsonable() for f in result.findings],
            "counts": dict(sorted(counts.items())),
        }
        if new_keys is not None:
            payload["new"] = sorted(new_keys)
            payload["improved"] = {
                k: {"live": live, "grandfathered": grand}
                for k, (live, grand) in (improved or {}).items()
            }
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        print(
            _render_text(
                result.findings,
                files_scanned=result.files_scanned,
                new_keys=new_keys,
                improved=improved,
            )
        )
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism & protocol-safety analyzer "
        "(stdlib-only; see docs/ARCHITECTURE.md 'Static analysis')",
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))
