"""The ratcheting baseline: counts may only ever go down.

The committed ``lint-baseline.json`` records, per ``rule:path`` key,
how many findings are *grandfathered* — known, accepted, waiting to be
fixed.  A check run fails the moment any key's live count exceeds its
grandfathered count (a **new** finding), and merely *notes* keys whose
live count dropped (an **improvement**) so ``--write-baseline`` can
lock the win in.  Keys are (rule, file) — not line numbers — so moving
code never reads as a new finding, only genuinely adding one does.

The file itself is deterministic (sorted keys, no timestamps): writing
it twice from the same tree is byte-identical, exactly like every
other artifact this repo commits.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "DEFAULT_BASELINE",
    "BaselineDelta",
    "BaselineError",
    "compare",
    "load_baseline",
    "write_baseline",
]

DEFAULT_BASELINE = "lint-baseline.json"
_VERSION = 1


class BaselineError(ValueError):
    """A baseline file that cannot be read or has the wrong shape."""


def load_baseline(path: str | Path) -> dict[str, int]:
    """Grandfathered counts from a baseline file; ``{}`` if absent."""
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return {}
    except OSError as error:
        raise BaselineError(f"unreadable baseline {path}: {error}") from None
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as error:
        raise BaselineError(f"corrupt baseline {path}: {error}") from None
    if not isinstance(payload, dict) or not isinstance(
        payload.get("counts"), dict
    ):
        raise BaselineError(
            f"baseline {path} must be an object with a 'counts' mapping"
        )
    counts: dict[str, int] = {}
    for key, value in payload["counts"].items():
        if not isinstance(key, str) or not isinstance(value, int) or value < 1:
            raise BaselineError(
                f"baseline {path}: bad entry {key!r}: {value!r} "
                "(counts are positive integers keyed by 'rule:path')"
            )
        counts[key] = value
    return counts


def write_baseline(path: str | Path, counts: dict[str, int]) -> None:
    """Write the baseline deterministically (sorted, no timestamps)."""
    payload = {
        "version": _VERSION,
        "comment": (
            "Grandfathered `repro lint` findings, counted per rule:path. "
            "The ratchet: counts may only decrease. Regenerate with "
            "`repro lint --write-baseline` after fixing findings."
        ),
        "counts": {k: counts[k] for k in sorted(counts) if counts[k] > 0},
    }
    Path(path).write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )


@dataclass
class BaselineDelta:
    """Live counts vs grandfathered counts."""

    #: key → (live, grandfathered) where live > grandfathered: FAIL.
    new: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: key → (live, grandfathered) where live < grandfathered: ratchet.
    improved: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.new


def compare(current: dict[str, int], baseline: dict[str, int]) -> BaselineDelta:
    delta = BaselineDelta()
    for key in sorted(set(current) | set(baseline)):
        live = current.get(key, 0)
        grandfathered = baseline.get(key, 0)
        if live > grandfathered:
            delta.new[key] = (live, grandfathered)
        elif live < grandfathered:
            delta.improved[key] = (live, grandfathered)
    return delta
