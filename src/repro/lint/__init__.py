"""repro.lint — AST-based determinism & protocol-safety analyzer.

Machine-checks the invariants the rest of the repo only enforces by
convention and by after-the-fact tests: seed-driven RNG discipline and
no wall-clock reads on cell-execution paths, nothing blocking on the
serve event loop, exception hygiene, one declared wire-protocol
vocabulary, sleep-free tier-1 tests, and timeouts on socket connects.

Run it::

    repro lint --baseline          # ratchet check (what CI runs)
    python -m repro.lint           # same tool, stdlib-only entry
    repro lint --list-rules        # the catalog

Suppress a finding *with a reason*::

    stamp = time.time()  # repro: lint-ok[det-wall-clock] status file stamp

See ``docs/ARCHITECTURE.md`` ("Static analysis") for the rule catalog,
baseline ratchet workflow and how to add a rule.  The package imports
no third-party modules — it must run anywhere, first.
"""

from __future__ import annotations

from .baseline import (
    DEFAULT_BASELINE,
    BaselineDelta,
    BaselineError,
    compare,
    load_baseline,
    write_baseline,
)
from .engine import FileContext, LintResult, ProjectContext, run_lint
from .findings import Finding
from .pragmas import Pragma, parse_pragmas
from .rules import RULES, Rule, rule

__all__ = [
    "DEFAULT_BASELINE",
    "BaselineDelta",
    "BaselineError",
    "FileContext",
    "Finding",
    "LintResult",
    "Pragma",
    "ProjectContext",
    "RULES",
    "Rule",
    "compare",
    "load_baseline",
    "parse_pragmas",
    "rule",
    "run_lint",
    "write_baseline",
]
