"""ASCII chart rendering for terminal reports.

The benchmark harness regenerates the paper's figures as data series;
these renderers turn them into terminal plots so a run's output can be
eyeballed against the paper without matplotlib (unavailable offline).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["line_chart", "multi_line_chart", "bar_chart", "histogram_chart", "table"]

_MARKS = "*o+x#@%&"


def _scale(values: np.ndarray, lo: float, hi: float, steps: int) -> np.ndarray:
    if hi <= lo:
        return np.zeros(len(values), dtype=np.int64)
    return np.clip(
        ((values - lo) / (hi - lo) * (steps - 1)).round().astype(np.int64),
        0,
        steps - 1,
    )


def line_chart(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 70,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Single-series scatter/line chart."""
    return multi_line_chart(
        x, {y_label or "y": y}, width=width, height=height, title=title, x_label=x_label
    )


def multi_line_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 70,
    height: int = 16,
    title: str = "",
    x_label: str = "",
) -> str:
    """Several named series over a shared x axis, one mark per series."""
    x = np.asarray(x, dtype=np.float64)
    if len(x) == 0 or not series:
        return f"{title}\n(no data)\n"
    ys = {name: np.asarray(v, dtype=np.float64) for name, v in series.items()}
    finite_vals = np.concatenate(
        [v[np.isfinite(v)] for v in ys.values() if np.isfinite(v).any()]
        or [np.zeros(1)]
    )
    y_lo, y_hi = 0.0, float(finite_vals.max()) if len(finite_vals) else 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(x.min()), float(x.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for mark_idx, (name, y) in enumerate(ys.items()):
        mark = _MARKS[mark_idx % len(_MARKS)]
        n = min(len(x), len(y))
        finite = np.isfinite(y[:n])
        cols = _scale(x[:n][finite], x_lo, x_hi, width)
        rows = _scale(y[:n][finite], y_lo, y_hi, height)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = mark

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(ys)
    )
    lines.append(legend)
    lines.append(f"{y_hi:10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_lo:10.3g} +" + "-" * width)
    lines.append(
        " " * 12 + f"{x_lo:<10.3g}" + " " * max(0, width - 20) + f"{x_hi:>10.3g}"
    )
    if x_label:
        lines.append(" " * 12 + x_label.center(width))
    return "\n".join(lines) + "\n"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bar chart with one row per label."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return f"{title}\n(no data)\n"
    peak = float(np.nanmax(values)) or 1.0
    label_width = max((len(str(l)) for l in labels), default=4)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * int(round((value / peak) * width)) if np.isfinite(value) else "?"
        lines.append(f"{str(label):>{label_width}} | {bar} {value:.4g}")
    return "\n".join(lines) + "\n"


def histogram_chart(
    bin_lefts: Sequence[float],
    counts: Sequence[int],
    width: int = 70,
    height: int = 12,
    title: str = "",
    x_label: str = "",
) -> str:
    """Vertical histogram (Fig 5c style)."""
    counts = np.asarray(counts, dtype=np.float64)
    bin_lefts = np.asarray(bin_lefts, dtype=np.float64)
    if counts.sum() == 0:
        return f"{title}\n(no data)\n"
    # Re-bin onto the chart width.
    edges = np.linspace(bin_lefts.min(), bin_lefts.max() + 1e-9, width + 1)
    col_counts = np.zeros(width)
    for left, count in zip(bin_lefts, counts):
        col = min(int(np.searchsorted(edges, left, side="right")) - 1, width - 1)
        col_counts[max(col, 0)] += count
    peak = col_counts.max() or 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = peak * level / height
        rows.append(
            "".join("#" if c >= threshold else " " for c in col_counts)
        )
    lines = [title] if title else []
    lines.append(f"{int(peak):>8} +" + "-" * width)
    for row in rows:
        lines.append(" " * 9 + "|" + row)
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10
        + f"{bin_lefts.min():<8.3g}"
        + " " * max(0, width - 16)
        + f"{bin_lefts.max():>8.3g}"
    )
    if x_label:
        lines.append(" " * 10 + x_label.center(width))
    return "\n".join(lines) + "\n"


def table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Fixed-width text table from a list of row dicts."""
    if not rows:
        return f"{title}\n(no rows)\n"
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in rows)) for c in columns
    }
    lines = [title] if title else []
    lines.append("  ".join(str(c).ljust(widths[c]) for c in columns))
    lines.append("  ".join("-" * widths[c] for c in columns))
    for r in rows:
        lines.append("  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines) + "\n"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
