"""ASCII chart rendering for terminal figure reports."""

from .ascii_charts import bar_chart, histogram_chart, line_chart, multi_line_chart, table

__all__ = ["bar_chart", "histogram_chart", "line_chart", "multi_line_chart", "table"]
