"""Declared registry of every repro wire-protocol identifier.

Single source of truth for the message vocabulary that crosses process
boundaries: the frame magics that name each protocol on the wire and
the ``op`` strings of the campaign dispatch protocol.  Three layers
consume it:

* **Runtime senders** — :func:`repro.campaign.dispatch.send_message`
  refuses to transmit an op that is not declared here, so a typo'd
  message dies at the sender with a "did you mean ...?" instead of as a
  confusing ``error`` reply (or silent drop) at the peer.
* **Protocol modules** — :mod:`repro.campaign.dispatch` and
  :mod:`repro.serve.protocol` import their magics from here rather
  than re-declaring the literals.
* **Static analysis** — the ``proto-*`` rules of :mod:`repro.lint`
  cross-check every op/magic literal that appears in the protocol
  sources against this registry, flagging typos and handler/message
  drift before they ship.

This module is stdlib-only and import-light on purpose: the lint
engine must be able to read it on any interpreter, and nothing here
may drag in numpy or the simulator.
"""

from __future__ import annotations

__all__ = ["BATCH_MAGIC", "DISPATCH_MAGIC", "DISPATCH_OPS", "WIRE_MAGICS"]

#: Campaign dispatch: length-prefixed JSON request/reply messages.
DISPATCH_MAGIC = b"RPJ1"

#: Serve ingest: length-prefixed columnar frame batches.
BATCH_MAGIC = b"RPF1"

#: Every frame magic any repro socket may carry, by its ASCII name.
WIRE_MAGICS = {
    "RPJ1": "campaign dispatch — framed JSON request/reply",
    "RPF1": "serve ingest — framed columnar trace batches",
}

#: The dispatch protocol's full message vocabulary (``op`` values).
#: Requests travel worker → coordinator; replies coordinator → worker.
DISPATCH_OPS = {
    # requests
    "hello": "introduce a worker; replied with: welcome",
    "lease": "ask for a batch of cells; replied with: grant | wait | done",
    "heartbeat": "extend a live lease; replied with: ok | gone",
    "complete": "report one finished cell; replied with: ok",
    "fail": "report one failed attempt; replied with: ok",
    "status": "ask for a progress snapshot; replied with: status",
    "bye": "clean disconnect (no reply expected)",
    # replies
    "welcome": "hello accepted: worker identity, salt, options, shard",
    "grant": "a lease: id, lifetime and the granted cell batch",
    "wait": "no dispatchable cells right now; retry after a hint",
    "done": "every cell is resolved; the worker may exit",
    "gone": "the heartbeat's lease no longer exists (reclaimed)",
    "ok": "request absorbed (may carry duplicate/final/lease_valid)",
    "error": "malformed or unknown request; diagnostic attached",
}
