"""Single-pass streaming executor and the one-call facades.

``analyze_trace`` computes every figure of the paper, but each core
analysis re-walks the whole trace — sorting it, re-deriving per-frame
busy time, re-matching ACKs — so a full report costs ~15 passes.  The
executor walks the stream **once**: per chunk it derives the shared
per-frame state (second index, channel busy-time, DATA-ACK matching),
accumulates total busy time, and fans the chunk out to every consumer.
Finalization then assembles exactly the objects the core functions
return.

    from repro.pipeline import run_all
    report = run_all(trace, roster)          # == analyze_trace(trace, roster)

Multi-trace batches (one report per capture session, like the paper's
day/plenary splits) run in parallel via :func:`run_batch`.

>>> from repro.frames import FrameRow, FrameType, Trace
>>> rows = [
...     FrameRow(time_us=t * 250_000, ftype=FrameType.DATA,
...              rate_mbps=11.0, size=1000, src=10, dst=1)
...     for t in range(8)
... ]
>>> report = run_all(Trace.from_rows(rows), name="doc")
>>> report.summary.n_frames
8
>>> len(report.utilization)
2
"""

from __future__ import annotations

import copy
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..core.report import CongestionReport
from ..core.acking import ack_match_pairs
from ..core.busytime import trace_cbt_us
from ..core.timing import DOT11B_TIMING, TimingParameters
from ..core.utilization import UtilizationSeries
from ..frames import NodeRoster, Trace
from .accumulate import SecondAccumulator
from .consumers import Consumer  # noqa: F401  (registers default consumers)
from .registry import DEFAULT_CONSUMERS, ROSTER_CONSUMERS, create_consumers
from .stream import (
    DEFAULT_CHUNK_FRAMES,
    Chunk,
    StreamContext,
    UnsortedStreamError,
    as_stream,
    trace_chunks,
)

__all__ = [
    "PipelineExecutor",
    "FailedAnalysis",
    "assemble_report",
    "run_all",
    "run_consumers",
    "run_batch",
]


def _match_chunk(trace: Trace, next_segment: Trace | None):
    """DATA-ACK matching for one chunk, looking one frame ahead.

    Applies :func:`repro.core.acking.ack_match_pairs` — the same rule
    :func:`repro.core.match_acks` uses — over the concatenated stream:
    the chunk's last frame is judged against the first frame of the
    next segment.
    """
    n = len(trace)
    acked = np.zeros(n, dtype=np.bool_)
    ack_time = np.full(n, -1, dtype=np.int64)
    ftype = trace.ftype
    if n > 1:
        hit = ack_match_pairs(
            ftype[:-1],
            ftype[1:],
            trace.src[:-1],
            trace.dst[1:],
            trace.channel[:-1],
            trace.channel[1:],
        )
        idx = np.nonzero(hit)[0]
        acked[idx] = True
        ack_time[idx] = trace.time_us[idx + 1]
    if next_segment is not None and bool(
        ack_match_pairs(
            ftype[-1:],
            next_segment.ftype[:1],
            trace.src[-1:],
            next_segment.dst[:1],
            trace.channel[-1:],
            next_segment.channel[:1],
        )[0]
    ):
        acked[-1] = True
        ack_time[-1] = int(next_segment.time_us[0])
    return acked, ack_time


class PipelineExecutor:
    """Drive a set of consumers over a stream — one-shot or incremental.

    ``consumers`` is an ordered list of :class:`Consumer` instances
    with unique names; any ``requires`` must name another consumer in
    the set (finalization runs in dependency order).

    Two driving styles share the exact same per-chunk machinery:

    * **one-shot** — :meth:`run` walks an entire source and returns the
      finalized results (the historical batch interface);
    * **incremental** — :meth:`feed` pushes time-sorted segments one at
      a time (a live feed), :meth:`snapshot` returns at any moment the
      results a batch run over everything fed so far would produce, and
      :meth:`close` ends the stream and finalizes for good.

    The incremental contract is exact, not approximate: after
    ``feed(c1) ... feed(ck)``, ``snapshot()`` equals
    ``PipelineExecutor(...).run(iter([c1, ..., ck]))`` field for field
    (one segment is always held back for DATA-ACK lookahead across the
    boundary; ``snapshot`` folds it in on a deep-copied state so the
    live pass is never disturbed).
    """

    def __init__(
        self,
        consumers: Sequence[Consumer],
        *,
        name: str = "trace",
        timing: TimingParameters = DOT11B_TIMING,
        roster: NodeRoster | None = None,
        min_count: int = 1,
        chunk_frames: int = DEFAULT_CHUNK_FRAMES,
    ) -> None:
        names = [c.name for c in consumers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate consumer names: {names}")
        for consumer in consumers:
            for dep in consumer.requires:
                if dep not in names:
                    raise ValueError(
                        f"consumer {consumer.name!r} requires {dep!r}, "
                        "which is not part of this run"
                    )
        self.consumers = list(consumers)
        self.chunk_frames = chunk_frames
        self._ctx_args = dict(
            name=name, timing=timing, roster=roster, min_count=min_count
        )
        self.reset()

    # -- incremental protocol ---------------------------------------------

    def reset(self) -> None:
        """Start a fresh pass: new context, fresh consumer state."""
        self.ctx = StreamContext(**self._ctx_args)
        for consumer in self.consumers:
            consumer.start(self.ctx)
        self._busy = SecondAccumulator()
        self._max_second = -1
        self._start_row = 0
        self._index = 0
        self._tail_time: int | None = None
        self._pending: Trace | None = None
        self._need_ack = any(c.needs_ack_match for c in self.consumers)
        self._need_cbt = any(c.needs_cbt for c in self.consumers)
        self._results: dict[str, object] | None = None
        self.frames_fed = 0

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has finalized this pass."""
        return self._results is not None

    def feed(self, segment: Trace) -> int:
        """Push one time-sorted segment of a live stream; returns its size.

        Segments must be non-overlapping and globally ordered (an
        out-of-order segment raises :class:`UnsortedStreamError`).
        The segment is held back until the next ``feed``/``close`` so
        DATA-ACK pairs straddling the boundary match exactly as in a
        batch pass.  Empty segments are ignored.
        """
        if self.closed:
            raise RuntimeError(
                "executor already closed; call reset() for a new stream"
            )
        if len(segment) == 0:
            return 0
        if not segment.is_time_sorted():
            raise UnsortedStreamError("stream segments must be time-sorted")
        first = int(segment.time_us[0])
        if self._tail_time is not None and first < self._tail_time:
            raise UnsortedStreamError(
                "stream segments must be non-overlapping and ordered: "
                f"segment starts at {first} before previous end "
                f"{self._tail_time}"
            )
        if self._pending is not None:
            self._consume_segment(self._pending, segment)
        self._pending = segment
        self._tail_time = int(segment.time_us[-1])
        self.frames_fed += len(segment)
        return len(segment)

    def snapshot(self) -> dict[str, object]:
        """Results of a batch run over everything fed so far.

        The live pass state (consumers, accumulators, the held-back
        lookahead segment) is deep-copied and the copy is closed, so
        feeding may continue afterwards; a snapshot at stream position
        *k* equals :meth:`run` over the first *k* segments exactly.
        After :meth:`close` this returns the final results.
        """
        if self.closed:
            return self._results
        clone = copy.deepcopy(self)
        return clone.close()

    def close(self) -> dict[str, object]:
        """End the stream: fold in the held-back segment and finalize."""
        if self.closed:
            return self._results
        if self._pending is not None:
            pending, self._pending = self._pending, None
            self._consume_segment(pending, None)
        self.ctx.n_seconds = self._max_second + 1
        if self._need_cbt:
            self.ctx.utilization = UtilizationSeries(
                start_us=int(self.ctx.start_us or 0),
                percent=self._busy.totals(self.ctx.n_seconds)
                / 1_000_000.0
                * 100.0,
            )
        self._results = self._finalize()
        return self._results

    def _consume_segment(self, segment: Trace, next_segment: Trace | None):
        """Fold one segment into every consumer (the shared chunk body)."""
        ctx = self.ctx
        if ctx.start_us is None:
            ctx.start_us = int(segment.time_us[0])
        second = ((segment.time_us - ctx.start_us) // 1_000_000).astype(
            np.int64
        )
        if self._need_cbt:
            cbt = trace_cbt_us(segment, ctx.timing)
            self._busy.add(second, weights=cbt)
        else:  # no consumer reads busy time or utilization
            cbt = None
        if self._need_ack:
            acked, ack_time = _match_chunk(segment, next_segment)
        else:  # no consumer in this run reads ACK-match state
            acked = ack_time = None
        chunk = Chunk(
            trace=segment,
            index=self._index,
            start_row=self._start_row,
            second=second,
            cbt_us=cbt,
            acked=acked,
            ack_time_us=ack_time,
        )
        for consumer in self.consumers:
            consumer.consume(chunk)
        self._max_second = int(second[-1])
        self._start_row += len(segment)
        self._index += 1

    # -- one-shot -----------------------------------------------------------

    def run(self, source) -> dict[str, object]:
        """Stream ``source`` through every consumer; return results by name.

        ``source`` may be a :class:`~repro.frames.Trace`, a pcap path,
        or any iterable of time-sorted trace segments.  An executor may
        be reused: each call starts from a fresh context and fresh
        consumer state.  A pcap whose disorder exceeds the streaming
        reader's per-batch sort falls back to a load-and-sort pass.
        """
        try:
            return self._run(source)
        except UnsortedStreamError:
            if not isinstance(source, (str, Path)):
                raise
            from ..pcap import read_trace

            return self._run(
                trace_chunks(read_trace(source), self.chunk_frames)
            )

    def _run(self, source) -> dict[str, object]:
        self.reset()
        for segment in as_stream(source, self.chunk_frames):
            self.feed(segment)
        return self.close()

    def _finalize(self) -> dict[str, object]:
        results: dict[str, object] = {}
        pending = list(self.consumers)
        while pending:
            progressed = False
            for consumer in list(pending):
                if all(dep in results for dep in consumer.requires):
                    results[consumer.name] = consumer.finalize(self.ctx, results)
                    pending.remove(consumer)
                    progressed = True
            if not progressed:
                cycle = [c.name for c in pending]
                raise ValueError(f"consumer dependency cycle: {cycle}")
        return results


def run_consumers(
    source,
    names: Sequence[str],
    *,
    name: str = "trace",
    timing: TimingParameters = DOT11B_TIMING,
    roster: NodeRoster | None = None,
    min_count: int = 1,
    chunk_frames: int = DEFAULT_CHUNK_FRAMES,
) -> dict[str, object]:
    """One-pass run of the named registered consumers over ``source``."""
    executor = PipelineExecutor(
        create_consumers(names),
        name=name,
        timing=timing,
        roster=roster,
        min_count=min_count,
        chunk_frames=chunk_frames,
    )
    return executor.run(source)


def assemble_report(
    results: Mapping[str, object], name: str = "trace"
) -> CongestionReport:
    """Build a :class:`CongestionReport` from full-run consumer results.

    ``results`` must hold every :data:`DEFAULT_CONSUMERS` entry (the
    roster analyses are optional) — the dict :meth:`PipelineExecutor.run`,
    :meth:`~PipelineExecutor.snapshot` or :meth:`~PipelineExecutor.close`
    returns for a default consumer set.  This is the assembly
    :func:`run_all` performs; the serve layer reuses it to turn rolling
    snapshots into reports.
    """
    congestion = results["congestion"]
    return CongestionReport(
        name=name,
        summary=results["summary"],
        utilization=results["utilization"],
        thresholds=congestion.thresholds,
        level_occupancy=congestion.level_occupancy,
        throughput=congestion.classifier.curves,
        rts_cts=results["rts_cts"],
        busytime_share=results["busytime_share"],
        bytes_per_rate=results["bytes_per_rate"],
        transmissions=results["transmissions"],
        reception=results["reception"],
        delays=results["delays"],
        unrecorded=results["unrecorded"],
        ap_activity=results.get("ap_activity"),
        unrecorded_per_ap=results.get("unrecorded_per_ap"),
        user_series=results.get("user_series"),
    )


def run_all(
    source,
    roster: NodeRoster | None = None,
    name: str = "trace",
    timing: TimingParameters = DOT11B_TIMING,
    min_count: int = 1,
    chunk_frames: int = DEFAULT_CHUNK_FRAMES,
) -> CongestionReport:
    """Single-pass equivalent of :func:`repro.core.analyze_trace`.

    Walks ``source`` once and returns the identical
    :class:`~repro.core.report.CongestionReport` — same numbers, one
    trace traversal instead of ~15.
    """
    names = DEFAULT_CONSUMERS + (ROSTER_CONSUMERS if roster is not None else ())
    results = run_consumers(
        source,
        names,
        name=name,
        timing=timing,
        roster=roster,
        min_count=min_count,
        chunk_frames=chunk_frames,
    )
    return assemble_report(results, name=name)


@dataclass(frozen=True)
class FailedAnalysis:
    """One capture of a batch whose analysis raised.

    Mirrors the campaign runner's ``FailedCell``: the batch completes
    without the failing capture, and the record carries enough to
    diagnose and retry (error type, message, full traceback).
    """

    name: str
    source: str
    error_type: str
    error: str
    traceback: str


def _run_batch_item(item) -> tuple[str, object]:
    """Module-level batch worker (picklable for process pools)."""
    trace_name, source, capture_errors, kwargs = item
    try:
        return trace_name, run_all(source, name=trace_name, **kwargs)
    except Exception as error:
        if not capture_errors:
            raise
        return trace_name, FailedAnalysis(
            name=trace_name,
            source=str(source) if isinstance(source, (str, Path)) else type(source).__name__,
            error_type=type(error).__name__,
            error=str(error),
            traceback=_traceback.format_exc(),
        )


def run_batch(
    traces=None,
    roster: NodeRoster | None = None,
    *,
    corpus: str | Path | None = None,
    where: str | None = None,
    max_workers: int | None = None,
    mode: str | None = None,
    timing: TimingParameters = DOT11B_TIMING,
    min_count: int = 1,
    chunk_frames: int = DEFAULT_CHUNK_FRAMES,
    on_error: str = "capture",
) -> dict[str, CongestionReport | FailedAnalysis]:
    """Analyze many captures in parallel, one single-pass run each.

    ``traces`` may be a mapping ``{name: source}``, a sequence of
    ``(name, source)`` pairs, or a bare sequence of sources (named
    ``trace-0`` .. ``trace-N``).  Sources are anything :func:`run_all`
    accepts.  Results preserve input order.

    Alternatively pass ``corpus=`` (an indexed capture directory,
    optionally filtered with ``where=``): the batch is then *planned*
    by :func:`repro.corpus.analyze_corpus` — captures with stored
    reports are skipped, the rest dispatch largest-first — and results
    are keyed by corpus-relative path.

    One capture raising (a truncated pcap, an unsortable feed) does
    **not** abort the batch: its entry becomes a :class:`FailedAnalysis`
    record and every other capture still returns its report.  Pass
    ``on_error="raise"`` for the historical all-or-nothing behaviour.

    ``mode`` picks the worker pool: ``"process"`` (true parallelism —
    pcap decode is GIL-bound Python) or ``"thread"`` (no pickling of
    in-memory traces).  Default: processes when every source is a
    path, threads otherwise.
    """
    if on_error not in ("capture", "raise"):
        raise ValueError(
            f"on_error must be 'capture' or 'raise', got {on_error!r}"
        )
    if corpus is not None:
        if traces is not None or roster is not None:
            raise ValueError(
                "corpus= replaces traces/roster: pass one or the other"
            )
        from ..corpus import analyze_corpus

        analysis = analyze_corpus(
            corpus,
            where,
            workers=max_workers,
            chunk_frames=chunk_frames,
            timing=timing,
            min_count=min_count,
            on_error=on_error,
        )
        return analysis.results
    if traces is None:
        raise TypeError("run_batch() needs traces (or corpus=)")
    if where is not None:
        raise ValueError("where= only applies with corpus=")
    if isinstance(traces, Mapping):
        items = list(traces.items())
    else:
        items = []
        for i, entry in enumerate(traces):
            if isinstance(entry, tuple) and len(entry) == 2:
                items.append(entry)
            else:
                items.append((f"trace-{i}", entry))
    names = [name for name, _ in items]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(
            f"duplicate batch names {dupes}: results are keyed by name"
        )
    kwargs = dict(
        roster=roster,
        timing=timing,
        min_count=min_count,
        chunk_frames=chunk_frames,
    )
    capture_errors = on_error == "capture"
    jobs = [(name, source, capture_errors, kwargs) for name, source in items]

    if mode is not None and mode not in ("process", "thread"):
        raise ValueError(f"mode must be 'process' or 'thread', got {mode!r}")
    if len(jobs) <= 1 or max_workers == 1:
        return dict(map(_run_batch_item, jobs))
    if mode is None:
        all_paths = all(isinstance(s, (str, Path)) for _, s in items)
        mode = "process" if all_paths else "thread"
    pool_cls = ProcessPoolExecutor if mode == "process" else ThreadPoolExecutor
    with pool_cls(max_workers=max_workers) as pool:
        return dict(pool.map(_run_batch_item, jobs))
