"""Growable per-second aggregation buffers for streaming consumers.

Every "per second" quantity in the paper — busy time, bits, frame
counts, per-rate/per-category splits — is a weighted histogram over
second indices.  A :class:`SecondAccumulator` lets a consumer add one
chunk's contribution at a time without knowing the trace duration in
advance; capacity grows geometrically, so a full pass stays O(frames).

>>> import numpy as np
>>> acc = SecondAccumulator()
>>> acc.add(np.array([0, 0, 2]), weights=np.array([1.0, 2.0, 5.0]))
>>> acc.add(np.array([2]))
>>> acc.totals(4)
array([3., 0., 6., 0.])
"""

from __future__ import annotations

import numpy as np

__all__ = ["SecondAccumulator"]


class SecondAccumulator:
    """Accumulate per-second (optionally per-column) weighted counts.

    ``width`` > 1 adds a second axis — e.g. 4 rate codes or 16 frame
    categories — addressed by the ``cols`` argument of :meth:`add`.
    """

    def __init__(self, width: int = 1) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        self._width = int(width)
        self._flat = np.zeros(0, dtype=np.float64)

    def _ensure(self, flat_len: int) -> None:
        if flat_len > len(self._flat):
            grown = np.zeros(max(flat_len, 2 * len(self._flat)), dtype=np.float64)
            grown[: len(self._flat)] = self._flat
            self._flat = grown

    def add(
        self,
        seconds: np.ndarray,
        weights: np.ndarray | None = None,
        cols: np.ndarray | None = None,
    ) -> None:
        """Add one chunk's contribution.

        ``seconds`` are non-negative int second indices; ``weights``
        default to 1 per entry (a count); ``cols`` select the second
        axis when ``width`` > 1.
        """
        if len(seconds) == 0:
            return
        seconds = np.asarray(seconds, dtype=np.int64)
        if cols is None:
            flat = seconds * self._width
        else:
            flat = seconds * self._width + np.asarray(cols, dtype=np.int64)
        binned = np.bincount(flat, weights=weights)
        self._ensure(len(binned))
        self._flat[: len(binned)] += binned

    def totals(self, n_seconds: int) -> np.ndarray:
        """The accumulated table, padded/truncated to ``n_seconds``.

        Returns shape ``(n_seconds,)`` when ``width`` is 1, else
        ``(n_seconds, width)``.
        """
        out = np.zeros(n_seconds * self._width, dtype=np.float64)
        take = min(len(self._flat), len(out))
        out[:take] = self._flat[:take]
        if self._width == 1:
            return out
        return out.reshape(n_seconds, self._width)
