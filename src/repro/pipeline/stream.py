"""Chunked record sources and the per-chunk view the executor fans out.

The pipeline walks a capture exactly once, in bounded-size chunks, so
multi-hour (multi-million-frame) traces never need to be resident as
per-analysis temporaries.  A *source* is anything that yields
time-sorted :class:`~repro.frames.Trace` segments:

* :func:`trace_chunks` — slice an in-memory trace (sorting it once);
* :func:`pcap_chunks` — a radiotap pcap file, via :mod:`repro.pcap`;
* :func:`scenario_chunks` — a *live* simulated vicinity-sniffer feed
  from :mod:`repro.sim`, drained in bounded batches as the simulation
  advances (never a full-run trace);
* any generator of your own (e.g. a live RFMon reader) that yields
  sorted, non-overlapping trace segments.

The executor wraps each segment in a :class:`Chunk` carrying the shared
per-frame derivations every consumer needs — channel busy-time, second
index, DATA-ACK matching — computed once per pass instead of once per
analysis.

>>> from repro.frames import FrameRow, FrameType, Trace
>>> rows = [
...     FrameRow(time_us=t * 1000, ftype=FrameType.DATA,
...              rate_mbps=11.0, size=1000, src=10, dst=1)
...     for t in range(8)
... ]
>>> [len(c) for c in trace_chunks(Trace.from_rows(rows), chunk_frames=3)]
[3, 3, 2]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from ..frames import FrameType, NodeRoster, Trace
from ..core.timing import DOT11B_TIMING, TimingParameters
from ..pcap import TruncatedPcapError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.utilization import UtilizationSeries

__all__ = [
    "DEFAULT_CHUNK_FRAMES",
    "Chunk",
    "StreamContext",
    "TruncatedPcapError",
    "UnsortedStreamError",
    "trace_chunks",
    "pcap_chunks",
    "scenario_chunks",
    "as_stream",
]


class UnsortedStreamError(ValueError):
    """A streaming source turned out not to be globally time-ordered.

    Raised mid-stream, after earlier segments may already have been
    consumed; the executor catches it for path sources and restarts
    with a load-and-sort pass.
    """

#: Default frames per chunk: large enough that numpy kernels amortise
#: their dispatch cost, small enough that per-chunk temporaries stay in
#: cache-friendly territory (~10 MB of derived arrays).
DEFAULT_CHUNK_FRAMES = 131_072


@dataclass
class StreamContext:
    """Per-run facts shared by every consumer.

    ``start_us`` is fixed when the first frame is seen; ``n_seconds``
    and ``utilization`` become available only after the pass completes
    (the executor fills them in before calling ``finalize``).
    """

    name: str = "trace"
    timing: TimingParameters = DOT11B_TIMING
    roster: NodeRoster | None = None
    min_count: int = 1
    start_us: int | None = None
    n_seconds: int = 0
    utilization: "UtilizationSeries | None" = None


@dataclass
class Chunk:
    """One time-ordered slice of the stream plus shared derivations.

    All arrays are parallel to ``trace`` rows.  ``acked`` and
    ``ack_time_us`` reproduce :func:`repro.core.match_acks` exactly,
    including DATA-ACK pairs that straddle the chunk boundary (the
    executor looks one frame ahead into the next segment); they are
    ``None`` when no consumer in the run declares ``needs_ack_match``,
    as is ``cbt_us`` when none declares ``needs_cbt``.
    """

    trace: Trace
    index: int                 # chunk number within the stream
    start_row: int             # global row offset of this chunk's first frame
    second: np.ndarray         # int64 second index relative to stream start
    cbt_us: np.ndarray         # float64 per-frame channel busy-time (Eq 2-6)
    acked: np.ndarray          # bool: DATA immediately followed by its ACK
    ack_time_us: np.ndarray    # int64 matching-ACK timestamp (-1 unmatched)
    is_data: np.ndarray = field(default=None)  # bool: ftype == DATA

    def __post_init__(self) -> None:
        if self.is_data is None:
            self.is_data = self.trace.ftype == int(FrameType.DATA)

    def __len__(self) -> int:
        return len(self.trace)

    @property
    def is_first(self) -> bool:
        return self.index == 0


def trace_chunks(
    trace: Trace,
    chunk_frames: int = DEFAULT_CHUNK_FRAMES,
    sort: bool = True,
) -> Iterator[Trace]:
    """Yield ``trace`` as time-sorted segments of ``chunk_frames`` rows.

    Sorting happens once up front (stable, like ``analyze_trace``);
    the yielded segments are zero-copy views of the sorted columns.
    """
    if chunk_frames <= 0:
        raise ValueError("chunk_frames must be positive")
    if sort and not trace.is_time_sorted():
        trace = trace.sorted_by_time()
    for lo in range(0, len(trace), chunk_frames):
        yield trace.slice_rows(lo, min(lo + chunk_frames, len(trace)))


def pcap_chunks(
    path: str | Path, chunk_frames: int = DEFAULT_CHUNK_FRAMES
) -> Iterator[Trace]:
    """Stream a radiotap pcap straight from disk in bounded batches.

    Records are decoded incrementally (memory stays bounded regardless
    of capture size).  Each batch is stably time-sorted before being
    yielded, so local disorder — e.g. merged multi-sniffer captures
    with small clock skew — streams fine; only disorder wider than a
    batch raises :class:`UnsortedStreamError` (the executor falls back
    to load-and-sort for path sources; do the same by hand with
    ``trace_chunks(read_trace(path))``).

    A capture with a truncated or corrupt tail yields every cleanly
    decoded batch first, then raises :class:`TruncatedPcapError`
    (byte offset + frames read) — callers see the intact prefix and a
    typed failure, never a raw ``struct.error``.
    """
    from ..pcap import read_trace_batches

    last_time: int | None = None
    for batch in read_trace_batches(path, batch_frames=chunk_frames):
        if not batch.is_time_sorted():
            batch = batch.sorted_by_time()
        if last_time is not None and int(batch.time_us[0]) < last_time:
            raise UnsortedStreamError(
                f"{path}: records out of time order beyond one batch; "
                "load-and-sort with trace_chunks(read_trace(path))"
            )
        last_time = int(batch.time_us[-1])
        yield batch


def scenario_chunks(
    config, chunk_frames: int = DEFAULT_CHUNK_FRAMES, window_s: float = 1.0
) -> Iterator[Trace]:
    """Run a :mod:`repro.sim` scenario *live* and stream its capture.

    The simulation advances window by window and each sniffer's buffer
    is drained as frames settle, so chunks flow out while the scenario
    runs and memory stays bounded by one drain window — a day-long
    multi-million-frame session never materialises a full
    :class:`~repro.frames.Trace` (and records no per-frame ground
    truth).  The chunk concatenation equals
    ``run_scenario(config).trace.sorted_by_time()`` — the order every
    analysis works on — so analyses match the buffered path exactly.
    """
    from ..sim import stream_scenario

    yield from stream_scenario(
        config, chunk_frames=chunk_frames, window_s=window_s
    )


def as_stream(
    source, chunk_frames: int = DEFAULT_CHUNK_FRAMES
) -> Iterable[Trace]:
    """Normalise any supported source into an iterable of trace segments.

    Accepts a :class:`Trace`, a pcap path, or an iterable of segments
    (passed through as-is; the executor validates time ordering).
    """
    if isinstance(source, Trace):
        return trace_chunks(source, chunk_frames)
    if isinstance(source, (str, Path)):
        return pcap_chunks(source, chunk_frames)
    return source
