"""Single-pass streaming analysis pipeline.

The paper derives **every** figure from the same sniffer trace; this
subsystem computes them all in one chunked traversal instead of one
pass per analysis.  See ``docs/ARCHITECTURE.md`` for the design and a
worked custom-consumer example.

Quick use::

    from repro.pipeline import run_all, run_batch

    report = run_all(trace, roster)            # == analyze_trace(...)
    reports = run_batch({"day": day, "plenary": plenary})

Extension points:

* :class:`Consumer` + :func:`register_consumer` — add a metric to the
  single pass without touching the executor;
* :func:`run_consumers` — run a subset of metrics by name;
* :mod:`repro.pipeline.stream` sources — feed traces, pcap files or
  live segment generators.
"""

from .accumulate import SecondAccumulator
from .consumers import (
    ApActivityConsumer,
    BusytimeShareConsumer,
    BytesPerRateConsumer,
    CongestionConsumer,
    CongestionResult,
    Consumer,
    DelayConsumer,
    ReceptionConsumer,
    RtsCtsConsumer,
    SummaryConsumer,
    ThroughputConsumer,
    TransmissionsConsumer,
    UnrecordedByApConsumer,
    UnrecordedConsumer,
    UserSeriesConsumer,
    UtilizationConsumer,
)
from .executor import (
    FailedAnalysis,
    PipelineExecutor,
    assemble_report,
    run_all,
    run_batch,
    run_consumers,
)
from .registry import (
    DEFAULT_CONSUMERS,
    ROSTER_CONSUMERS,
    available_consumers,
    consumer_factory,
    create_consumers,
    register_consumer,
    resolve_consumer_names,
)
from .stream import (
    DEFAULT_CHUNK_FRAMES,
    Chunk,
    StreamContext,
    TruncatedPcapError,
    UnsortedStreamError,
    as_stream,
    pcap_chunks,
    scenario_chunks,
    trace_chunks,
)

__all__ = [
    "ApActivityConsumer",
    "BusytimeShareConsumer",
    "BytesPerRateConsumer",
    "Chunk",
    "CongestionConsumer",
    "CongestionResult",
    "Consumer",
    "DEFAULT_CHUNK_FRAMES",
    "DEFAULT_CONSUMERS",
    "DelayConsumer",
    "FailedAnalysis",
    "PipelineExecutor",
    "ROSTER_CONSUMERS",
    "ReceptionConsumer",
    "RtsCtsConsumer",
    "SecondAccumulator",
    "StreamContext",
    "SummaryConsumer",
    "ThroughputConsumer",
    "TransmissionsConsumer",
    "TruncatedPcapError",
    "UnrecordedByApConsumer",
    "UnrecordedConsumer",
    "UnsortedStreamError",
    "UserSeriesConsumer",
    "UtilizationConsumer",
    "as_stream",
    "assemble_report",
    "available_consumers",
    "consumer_factory",
    "create_consumers",
    "pcap_chunks",
    "register_consumer",
    "resolve_consumer_names",
    "run_all",
    "run_batch",
    "run_consumers",
    "scenario_chunks",
    "trace_chunks",
]
