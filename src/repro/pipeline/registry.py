"""Consumer registry: drop-in metrics without touching the executor.

A consumer registers a factory under a unique name; the executor and
facades build consumer sets by name.  New analyses plug into the
single-pass run by registering themselves — nothing in the executor
changes:

    from repro.pipeline import Consumer, register_consumer

    @register_consumer("my_metric")
    class MyMetric(Consumer):
        name = "my_metric"
        ...

``requires`` on a consumer names other consumers whose finalized
results it needs; the executor finalizes in dependency order and passes
them in.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from .._suggest import unknown_name_message

__all__ = [
    "register_consumer",
    "consumer_factory",
    "create_consumers",
    "available_consumers",
    "resolve_consumer_names",
    "DEFAULT_CONSUMERS",
    "ROSTER_CONSUMERS",
]

_FACTORIES: dict[str, Callable[[], "object"]] = {}

#: Names run by :func:`repro.pipeline.run_all` on every trace, in
#: report order.
DEFAULT_CONSUMERS = (
    "summary",
    "utilization",
    "throughput",
    "congestion",
    "rts_cts",
    "busytime_share",
    "bytes_per_rate",
    "transmissions",
    "reception",
    "delays",
    "unrecorded",
)

#: Names additionally run when a :class:`~repro.frames.NodeRoster` is
#: supplied (the paper's AP-aware Figure 4 analyses).
ROSTER_CONSUMERS = (
    "ap_activity",
    "unrecorded_per_ap",
    "user_series",
)


def register_consumer(name: str, factory: Callable[[], object] | None = None):
    """Register a consumer factory (usable as a decorator).

    ``factory`` is any zero-argument callable returning a consumer —
    typically the consumer class itself.
    """

    def _register(fac: Callable[[], object]):
        if name in _FACTORIES:
            raise ValueError(f"consumer {name!r} is already registered")
        _FACTORIES[name] = fac
        return fac

    if factory is not None:
        return _register(factory)
    return _register


def consumer_factory(name: str) -> Callable[[], object]:
    """Look up one factory by name (KeyError with the known names)."""
    try:
        return _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown consumer {name!r}; registered: {sorted(_FACTORIES)}"
        ) from None


def create_consumers(names: Iterable[str]) -> list:
    """Instantiate a fresh consumer per name, preserving order."""
    return [consumer_factory(name)() for name in names]


def available_consumers() -> tuple[str, ...]:
    """All registered consumer names, sorted."""
    return tuple(sorted(_FACTORIES))


def resolve_consumer_names(
    names: Sequence[str] | None, *, roster: bool = False
) -> tuple[str, ...]:
    """Expand an analysis selection into registered consumer names.

    ``None``, ``()`` and ``("all",)`` mean the full default set —
    :data:`DEFAULT_CONSUMERS` plus :data:`ROSTER_CONSUMERS` when a
    roster is available.  Anything else is validated against the
    registry; unknown names raise ``KeyError`` with a
    "did you mean ...?" suggestion.
    """
    if not names or tuple(names) == ("all",):
        return DEFAULT_CONSUMERS + (ROSTER_CONSUMERS if roster else ())
    resolved: list[str] = []
    for name in names:
        if name not in _FACTORIES:
            raise KeyError(
                unknown_name_message("analysis", name, sorted(_FACTORIES))
            )
        if name not in resolved:
            resolved.append(name)
    return tuple(resolved)
