"""Streaming consumers wrapping every :mod:`repro.core` analysis.

Each consumer adapts one paper analysis to the single-pass protocol:

* ``start(ctx)``    — reset state for a new stream;
* ``consume(chunk)`` — fold one chunk's frames into running aggregates;
* ``finalize(ctx, deps)`` — assemble exactly the object the wrapped
  ``repro.core`` function returns.

Equivalence with the batch functions is a hard contract (verified by
``tests/pipeline/test_equivalence.py``): consumers accumulate the same
per-second / per-delivery quantities the core computes, and share the
core's own rule and finalization helpers (``ack_match_pairs``,
``control_frame_mask``, ``CHAIN_TIMEOUT_US``, ``bin_by_utilization``,
``bin_deliveries``, ``fit_curves``, ``ranking_from_counts``,
``ap_table_from_counts``) so the rules live in one place.  The one
remaining intentional restatement is the chunk-carrying form of the
§4.4 atomicity rules in :class:`UnrecordedConsumer` and the retry-chain
loop in :class:`DelayConsumer`; the equivalence tests pin both to the
core, with dedicated chunk-boundary cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..analysis import ColumnTable, bin_by_utilization
from ..core.ap_stats import ApActivity, DatasetSummary, ranking_from_counts
from ..core.categories import ALL_CATEGORIES, Category
from ..core.congestion import (
    CongestionClassifier,
    CongestionLevel,
    CongestionThresholds,
)
from ..core.delay import (
    CHAIN_TIMEOUT_US,
    FIGURE15_CATEGORIES,
    AcceptanceDelays,
    DelaySeries,
    bin_deliveries,
)
from ..core.rate_share import RateShareSeries
from ..core.reception import ReceptionSeries
from ..core.rts_cts import RtsCtsSeries
from ..core.throughput import ThroughputSeries, control_frame_mask, frame_bits
from ..core.transmissions import CategoryCounts
from ..core.unrecorded import UnrecordedEstimate, ap_table_from_counts
from ..frames import DOT11_RATES_MBPS, FrameType
from .accumulate import SecondAccumulator
from .registry import register_consumer
from .stream import Chunk, StreamContext

__all__ = [
    "Consumer",
    "CongestionResult",
    "SummaryConsumer",
    "UtilizationConsumer",
    "ThroughputConsumer",
    "CongestionConsumer",
    "RtsCtsConsumer",
    "BusytimeShareConsumer",
    "BytesPerRateConsumer",
    "TransmissionsConsumer",
    "ReceptionConsumer",
    "DelayConsumer",
    "UnrecordedConsumer",
    "ApActivityConsumer",
    "UnrecordedByApConsumer",
    "UserSeriesConsumer",
]


class Consumer:
    """Base streaming consumer.

    Subclasses set ``name`` (registry key) and optionally ``requires``
    — names of consumers whose finalized results they need; the
    executor finalizes in dependency order and passes them via
    ``deps``.

    ``needs_ack_match`` and ``needs_cbt`` default to True
    (``chunk.acked``/``chunk.ack_time_us``, ``chunk.cbt_us`` and
    ``ctx.utilization`` are always populated); consumers that never
    read them set the flag False so that runs composed entirely of
    such consumers skip the DATA-ACK matching / busy-time work.
    """

    name: str = ""
    requires: tuple[str, ...] = ()
    needs_ack_match: bool = True
    needs_cbt: bool = True

    def start(self, ctx: StreamContext) -> None:
        """Reset state before the first chunk."""

    def consume(self, chunk: Chunk) -> None:
        """Fold one chunk into the running aggregates."""

    def finalize(self, ctx: StreamContext, deps: Mapping[str, object]):
        """Assemble the analysis result after the pass completes."""
        raise NotImplementedError


@register_consumer("summary")
class SummaryConsumer(Consumer):
    """Table 1 / §4.3 dataset summary (``dataset_summary``)."""

    name = "summary"
    needs_ack_match = False
    needs_cbt = False

    _COUNTED = (
        FrameType.DATA,
        FrameType.ACK,
        FrameType.RTS,
        FrameType.CTS,
        FrameType.BEACON,
    )

    def start(self, ctx: StreamContext) -> None:
        self._n = 0
        self._counts = {ft: 0 for ft in self._COUNTED}
        self._channels: set[int] = set()
        self._last_us = 0

    def consume(self, chunk: Chunk) -> None:
        ftype = chunk.trace.ftype
        self._n += len(chunk)
        for ft in self._COUNTED:
            self._counts[ft] += int(np.count_nonzero(ftype == int(ft)))
        self._channels.update(int(c) for c in np.unique(chunk.trace.channel))
        self._last_us = int(chunk.trace.time_us[-1])

    def finalize(self, ctx: StreamContext, deps) -> DatasetSummary:
        start = int(ctx.start_us or 0)
        duration_s = (self._last_us - start) / 1e6 if self._n else 0.0
        return DatasetSummary(
            name=ctx.name,
            channels=tuple(sorted(self._channels)),
            start_us=start,
            duration_s=duration_s,
            n_frames=self._n,
            n_data=self._counts[FrameType.DATA],
            n_ack=self._counts[FrameType.ACK],
            n_rts=self._counts[FrameType.RTS],
            n_cts=self._counts[FrameType.CTS],
            n_beacon=self._counts[FrameType.BEACON],
        )


@register_consumer("utilization")
class UtilizationConsumer(Consumer):
    """Figure 5 per-second utilization (``utilization_series``).

    The executor itself accumulates total busy time per second (every
    binned consumer needs it); this consumer just publishes the series.
    """

    name = "utilization"
    needs_ack_match = False

    def finalize(self, ctx: StreamContext, deps):
        return ctx.utilization


@register_consumer("throughput")
class ThroughputConsumer(Consumer):
    """Figure 6 throughput/goodput curves (``throughput_vs_utilization``).

    ``analyze_trace`` fits the congestion classifier on curves binned
    with ``min_count=1``; this consumer mirrors that, independent of
    ``ctx.min_count``.
    """

    name = "throughput"

    def start(self, ctx: StreamContext) -> None:
        self._bits = SecondAccumulator()
        self._good_bits = SecondAccumulator()

    def consume(self, chunk: Chunk) -> None:
        bits = frame_bits(chunk.trace)
        good = control_frame_mask(chunk.trace.ftype) | chunk.acked
        self._bits.add(chunk.second, weights=bits)
        self._good_bits.add(chunk.second, weights=np.where(good, bits, 0.0))

    def finalize(self, ctx: StreamContext, deps) -> ThroughputSeries:
        util = ctx.utilization
        n = len(util)
        tput = self._bits.totals(n) / 1e6
        gput = self._good_bits.totals(n) / 1e6
        return ThroughputSeries(
            throughput_mbps=bin_by_utilization(util.percent, tput, min_count=1),
            goodput_mbps=bin_by_utilization(util.percent, gput, min_count=1),
            utilization=util,
        )


@dataclass(frozen=True)
class CongestionResult:
    """§5.3 classification payload for one stream."""

    thresholds: CongestionThresholds
    level_occupancy: dict[CongestionLevel, float]
    classifier: CongestionClassifier


@register_consumer("congestion")
class CongestionConsumer(Consumer):
    """§5.3 knee-derived thresholds + per-level occupancy.

    Pure finalize-time work: reuses the throughput consumer's curves
    via ``CongestionClassifier.fit_curves``.
    """

    name = "congestion"
    requires = ("throughput",)
    needs_ack_match = False

    def finalize(self, ctx: StreamContext, deps) -> CongestionResult:
        classifier = CongestionClassifier().fit_curves(deps["throughput"])
        levels = classifier.classify_percent(ctx.utilization.percent)
        n = max(len(levels), 1)
        occupancy = {
            level: float(np.count_nonzero(levels == int(level))) / n
            for level in CongestionLevel
        }
        assert classifier.thresholds is not None
        return CongestionResult(
            thresholds=classifier.thresholds,
            level_occupancy=occupancy,
            classifier=classifier,
        )


@register_consumer("rts_cts")
class RtsCtsConsumer(Consumer):
    """Figure 7 RTS/CTS rates (``rts_cts_vs_utilization``)."""

    name = "rts_cts"
    needs_ack_match = False

    def start(self, ctx: StreamContext) -> None:
        self._rts = SecondAccumulator()
        self._cts = SecondAccumulator()

    def consume(self, chunk: Chunk) -> None:
        ftype = chunk.trace.ftype
        self._rts.add(chunk.second[ftype == int(FrameType.RTS)])
        self._cts.add(chunk.second[ftype == int(FrameType.CTS)])

    def finalize(self, ctx: StreamContext, deps) -> RtsCtsSeries:
        util = ctx.utilization
        n = len(util)
        return RtsCtsSeries(
            rts=bin_by_utilization(
                util.percent, self._rts.totals(n), min_count=ctx.min_count
            ),
            cts=bin_by_utilization(
                util.percent, self._cts.totals(n), min_count=ctx.min_count
            ),
        )


class _PerRateConsumer(Consumer):
    """Shared shape for the Figures 8/9/14 per-rate series."""

    def start(self, ctx: StreamContext) -> None:
        self._acc = SecondAccumulator(width=len(DOT11_RATES_MBPS))

    def _per_second(self, totals: np.ndarray, code: int) -> np.ndarray:
        return totals[:, code]

    def _series(self, ctx: StreamContext) -> dict[float, "np.ndarray"]:
        util = ctx.utilization
        totals = self._acc.totals(len(util))
        return {
            rate: bin_by_utilization(
                util.percent,
                self._per_second(totals, code),
                min_count=ctx.min_count,
            )
            for code, rate in enumerate(DOT11_RATES_MBPS)
        }


@register_consumer("busytime_share")
class BusytimeShareConsumer(_PerRateConsumer):
    """Figure 8 per-rate busy-time share (``busytime_share_vs_utilization``)."""

    name = "busytime_share"
    needs_ack_match = False

    def consume(self, chunk: Chunk) -> None:
        mask = chunk.is_data
        self._acc.add(
            chunk.second[mask],
            weights=chunk.cbt_us[mask],
            cols=chunk.trace.rate_code[mask],
        )

    def _per_second(self, totals: np.ndarray, code: int) -> np.ndarray:
        return totals[:, code] / 1e6  # busy seconds per second

    def finalize(self, ctx: StreamContext, deps) -> RateShareSeries:
        return RateShareSeries(per_rate=self._series(ctx))


@register_consumer("bytes_per_rate")
class BytesPerRateConsumer(_PerRateConsumer):
    """Figure 9 per-rate byte volume (``bytes_per_rate_vs_utilization``)."""

    name = "bytes_per_rate"
    needs_ack_match = False

    def consume(self, chunk: Chunk) -> None:
        mask = chunk.is_data
        self._acc.add(
            chunk.second[mask],
            weights=chunk.trace.size[mask].astype(np.float64),
            cols=chunk.trace.rate_code[mask],
        )

    def finalize(self, ctx: StreamContext, deps) -> RateShareSeries:
        return RateShareSeries(per_rate=self._series(ctx))


@register_consumer("reception")
class ReceptionConsumer(_PerRateConsumer):
    """Figure 14 first-attempt receptions (``first_attempt_ack_vs_utilization``)."""

    name = "reception"

    def consume(self, chunk: Chunk) -> None:
        qualifying = chunk.acked & chunk.is_data & ~chunk.trace.retry
        self._acc.add(
            chunk.second[qualifying], cols=chunk.trace.rate_code[qualifying]
        )

    def finalize(self, ctx: StreamContext, deps) -> ReceptionSeries:
        return ReceptionSeries(per_rate=self._series(ctx))


@register_consumer("transmissions")
class TransmissionsConsumer(Consumer):
    """Figures 10-13 per-category counts (``transmissions_vs_utilization``)."""

    name = "transmissions"
    needs_ack_match = False

    def __init__(self, categories: tuple[Category, ...] = ALL_CATEGORIES) -> None:
        self.categories = categories

    def start(self, ctx: StreamContext) -> None:
        self._acc = SecondAccumulator(width=16)

    def consume(self, chunk: Chunk) -> None:
        mask = chunk.is_data
        codes = (
            chunk.trace.rate_code[mask].astype(np.int64) * 4
            + chunk.trace.size_class[mask].astype(np.int64)
        )
        self._acc.add(chunk.second[mask], cols=codes)

    def finalize(self, ctx: StreamContext, deps) -> CategoryCounts:
        util = ctx.utilization
        totals = self._acc.totals(len(util))
        out = {
            cat.name: bin_by_utilization(
                util.percent,
                totals[:, cat.rate_code * 4 + int(cat.size_class)],
                min_count=ctx.min_count,
            )
            for cat in self.categories
        }
        return CategoryCounts(per_category=out)


@register_consumer("delays")
class DelayConsumer(Consumer):
    """Figure 15 acceptance delays (``acceptance_delay_vs_utilization``).

    Retry chains are keyed by (src, dst, seq); the chain table persists
    across chunks, so chunking never splits a delivery.
    """

    name = "delays"

    def __init__(
        self, categories: tuple[Category, ...] = FIGURE15_CATEGORIES
    ) -> None:
        self.categories = categories

    def start(self, ctx: StreamContext) -> None:
        self._open_chains: dict[int, int] = {}
        self._firsts: list[int] = []
        self._delays: list[float] = []
        self._sizes: list[int] = []
        self._rates: list[int] = []

    def consume(self, chunk: Chunk) -> None:
        trace = chunk.trace
        src = trace.src.astype(np.int64)
        dst = trace.dst.astype(np.int64)
        key = (src << 28) | (dst << 12) | trace.seq.astype(np.int64)
        time_us = trace.time_us
        retry = trace.retry
        acked = chunk.acked
        ack_time = chunk.ack_time_us
        size = trace.size
        rate_code = trace.rate_code
        chains = self._open_chains
        for row in np.nonzero(chunk.is_data)[0]:
            k = int(key[row])
            now = int(time_us[row])
            known = chains.get(k)
            if not retry[row] or known is None or now - known > CHAIN_TIMEOUT_US:
                chains[k] = now
            if acked[row]:
                t0 = chains.pop(k)
                self._delays.append(float(int(ack_time[row]) - t0))
                self._firsts.append(t0)
                self._sizes.append(int(size[row]))
                self._rates.append(int(rate_code[row]))

    def finalize(self, ctx: StreamContext, deps) -> DelaySeries:
        deliveries = AcceptanceDelays(
            first_attempt_us=np.array(self._firsts, dtype=np.int64),
            delay_us=np.array(self._delays, dtype=np.float64),
            size=np.array(self._sizes, dtype=np.int64),
            rate_code=np.array(self._rates, dtype=np.int64),
        )
        return bin_deliveries(
            deliveries, ctx.utilization, self.categories, ctx.min_count
        )


@register_consumer("unrecorded")
class UnrecordedConsumer(Consumer):
    """§4.4 unrecorded-frame estimate (``estimate_unrecorded``).

    The three DCF atomicity rules inspect consecutive frame pairs; the
    consumer carries the last frame of each chunk so pairs straddling a
    chunk boundary are judged exactly once.
    """

    name = "unrecorded"
    needs_ack_match = False
    needs_cbt = False

    def start(self, ctx: StreamContext) -> None:
        self._total = 0
        self._missing_rts = 0
        self._missing_cts = 0
        self._missing_src: list[np.ndarray] = []
        self._missing_dst: list[np.ndarray] = []
        self._carry: tuple[int, int, int] | None = None  # (ftype, src, dst)

    def consume(self, chunk: Chunk) -> None:
        trace = chunk.trace
        ftype = trace.ftype.astype(np.int64)
        src = trace.src.astype(np.int64)
        dst = trace.dst.astype(np.int64)

        if self._carry is None:
            # Very first frame of the stream: an opening ACK or CTS
            # implies a predecessor the sniffer never recorded.
            if ftype[0] == int(FrameType.ACK):
                self._missing_src.append(np.array([dst[0]]))
                self._missing_dst.append(np.array([src[0]]))
            if ftype[0] == int(FrameType.CTS):
                self._missing_rts += 1
            prev_type, prev_src, prev_dst = ftype[:-1], src[:-1], dst[:-1]
            cur_type, cur_src, cur_dst = ftype[1:], src[1:], dst[1:]
        else:
            cf, cs, cd = self._carry
            prev_type = np.concatenate([[cf], ftype[:-1]])
            prev_src = np.concatenate([[cs], src[:-1]])
            prev_dst = np.concatenate([[cd], dst[:-1]])
            cur_type, cur_src, cur_dst = ftype, src, dst

        # DATA-ACK: an ACK not preceded by its DATA implies missing DATA.
        lone_ack = (cur_type == int(FrameType.ACK)) & ~(
            (prev_type == int(FrameType.DATA)) & (prev_src == cur_dst)
        )
        self._missing_src.append(cur_dst[lone_ack])
        self._missing_dst.append(cur_src[lone_ack])

        # RTS-CTS: a CTS not preceded by its RTS implies a missing RTS.
        lone_cts = (cur_type == int(FrameType.CTS)) & ~(
            (prev_type == int(FrameType.RTS)) & (prev_src == cur_dst)
        )
        self._missing_rts += int(np.count_nonzero(lone_cts))

        # RTS-CTS-DATA: RTS directly followed by its DATA skipped the CTS.
        self._missing_cts += int(
            np.count_nonzero(
                (prev_type == int(FrameType.RTS))
                & (cur_type == int(FrameType.DATA))
                & (cur_src == prev_src)
                & (cur_dst == prev_dst)
            )
        )

        self._total += len(chunk)
        self._carry = (int(ftype[-1]), int(src[-1]), int(dst[-1]))

    def finalize(self, ctx: StreamContext, deps) -> UnrecordedEstimate:
        if self._total < 2:  # the core's degenerate-trace rule
            empty = np.empty(0, dtype=np.int64)
            return UnrecordedEstimate(self._total, 0, 0, 0, empty, empty)
        missing_src = (
            np.concatenate(self._missing_src)
            if self._missing_src
            else np.empty(0, dtype=np.int64)
        )
        missing_dst = (
            np.concatenate(self._missing_dst)
            if self._missing_dst
            else np.empty(0, dtype=np.int64)
        )
        return UnrecordedEstimate(
            captured_frames=self._total,
            missing_data=len(missing_src),
            missing_rts=self._missing_rts,
            missing_cts=self._missing_cts,
            missing_data_src=missing_src.astype(np.int64),
            missing_data_dst=missing_dst.astype(np.int64),
        )


class _RosterConsumer(Consumer):
    """Base for the AP-aware Figure 4 consumers (roster required)."""

    def start(self, ctx: StreamContext) -> None:
        if ctx.roster is None:
            raise ValueError(f"consumer {self.name!r} needs a NodeRoster")


@register_consumer("ap_activity")
class ApActivityConsumer(_RosterConsumer):
    """Figure 4a per-AP frame ranking (``ap_frame_ranking``)."""

    name = "ap_activity"
    needs_ack_match = False
    needs_cbt = False

    def start(self, ctx: StreamContext) -> None:
        super().start(ctx)
        self._ap_ids = np.array(ctx.roster.ap_ids, dtype=np.int64)
        self._counts = np.zeros(len(self._ap_ids), dtype=np.int64)

    def consume(self, chunk: Chunk) -> None:
        src = chunk.trace.src.astype(np.int64)
        dst = chunk.trace.dst.astype(np.int64)
        for i, ap in enumerate(self._ap_ids):
            self._counts[i] += int(np.count_nonzero((src == ap) | (dst == ap)))

    def finalize(self, ctx: StreamContext, deps) -> ApActivity:
        return ranking_from_counts(self._ap_ids, self._counts)


@register_consumer("unrecorded_per_ap")
class UnrecordedByApConsumer(_RosterConsumer):
    """Figure 4c per-AP unrecorded share (``unrecorded_by_ap``).

    Reuses the ap_activity counts (same captured-frames definition) and
    the unrecorded estimate's reconstructed (src, dst) attributions.
    """

    name = "unrecorded_per_ap"
    requires = ("unrecorded", "ap_activity")
    needs_ack_match = False
    needs_cbt = False

    def __init__(self, top_n: int = 15) -> None:
        self.top_n = top_n

    def finalize(self, ctx: StreamContext, deps) -> ColumnTable:
        estimate: UnrecordedEstimate = deps["unrecorded"]
        activity: ApActivity = deps["ap_activity"]
        ap_ids = np.array(ctx.roster.ap_ids, dtype=np.int64)
        by_ap = dict(
            zip(
                activity.table.column("ap").tolist(),
                activity.table.column("frames").tolist(),
            )
        )
        captured = np.array([by_ap.get(int(ap), 0) for ap in ap_ids], dtype=np.int64)
        missing = np.array(
            [
                int(
                    np.count_nonzero(
                        (estimate.missing_data_src == ap)
                        | (estimate.missing_data_dst == ap)
                    )
                )
                for ap in ap_ids
            ],
            dtype=np.int64,
        )
        return ap_table_from_counts(ap_ids, captured, missing, self.top_n)


@register_consumer("user_series")
class UserSeriesConsumer(_RosterConsumer):
    """Figure 4b active-user census (``user_association_series``)."""

    name = "user_series"
    needs_ack_match = False
    needs_cbt = False

    def __init__(self, interval_us: int = 30_000_000) -> None:
        self.interval_us = interval_us

    def start(self, ctx: StreamContext) -> None:
        super().start(ctx)
        self._ctx = ctx  # start_us is filled in before the first chunk
        self._ap_set = np.array(ctx.roster.ap_ids, dtype=np.int64)
        self._station_set = np.array(ctx.roster.station_ids, dtype=np.int64)
        self._seen: set[tuple[int, int]] = set()
        self._max_interval = -1

    def consume(self, chunk: Chunk) -> None:
        trace = chunk.trace
        src = trace.src.astype(np.int64)
        dst = trace.dst.astype(np.int64)
        src_is_ap = np.isin(src, self._ap_set)
        dst_is_ap = np.isin(dst, self._ap_set)
        station = np.where(
            src_is_ap & ~dst_is_ap, dst, np.where(dst_is_ap & ~src_is_ap, src, -1)
        )
        station = np.where(np.isin(station, self._station_set), station, -1)
        interval = (
            (trace.time_us - int(self._ctx.start_us)) // self.interval_us
        ).astype(np.int64)
        self._max_interval = max(self._max_interval, int(interval[-1]))
        valid = station >= 0
        if np.any(valid):
            pairs = np.unique(
                np.stack([interval[valid], station[valid]], axis=1), axis=0
            )
            self._seen.update((int(a), int(b)) for a, b in pairs)

    def finalize(self, ctx: StreamContext, deps) -> ColumnTable:
        if self._max_interval < 0:
            return ColumnTable(
                {
                    "interval": np.empty(0, dtype=np.int64),
                    "users": np.empty(0, dtype=np.int64),
                }
            )
        n_intervals = self._max_interval + 1
        users = np.zeros(n_intervals, dtype=np.int64)
        for interval, _station in self._seen:
            if 0 <= interval < n_intervals:
                users[interval] += 1
        return ColumnTable(
            {"interval": np.arange(n_intervals), "users": users}
        )
