"""Length-prefixed wire framing shared by every repro socket protocol.

One frame on the wire is::

    [4-byte magic][4-byte big-endian payload length][payload]

The serve daemon's frame-batch ingest (:mod:`repro.serve.protocol`,
magic ``RPF1``) and the distributed-campaign dispatch protocol
(:mod:`repro.campaign.dispatch`, magic ``RPJ1``) both ride this
framing; each protocol picks its own magic and payload cap so a client
speaking the wrong protocol — or a corrupt length prefix — fails loudly
at the header instead of decoding shifted garbage or allocating
unbounded memory.

This module is transport-agnostic: :func:`encode_frame` and
:func:`header_length` are pure bytes-in/bytes-out (the asyncio serve
path uses them with ``StreamReader.readexactly``), while
:func:`send_frame` / :func:`recv_frame` are helpers for plain blocking
``socket`` objects (the campaign dispatch protocol is synchronous).
"""

from __future__ import annotations

import socket
import struct

__all__ = [
    "HEADER_BYTES",
    "FrameError",
    "encode_frame",
    "header_length",
    "send_frame",
    "recv_frame",
]

#: Bytes of framing ahead of every payload: 4 magic + 4 length.
HEADER_BYTES = 8


class FrameError(ValueError):
    """A frame that cannot be parsed (bad magic or a silly length)."""


def encode_frame(payload: bytes, magic: bytes) -> bytes:
    """Wrap ``payload`` in magic + big-endian length framing."""
    if len(magic) != 4:
        raise ValueError(f"frame magic must be 4 bytes, got {magic!r}")
    return magic + struct.pack(">I", len(payload)) + payload


def header_length(
    header: bytes,
    *,
    magic: bytes,
    max_bytes: int,
    error: type[FrameError] = FrameError,
) -> int:
    """Validate an 8-byte frame header and return the payload length.

    ``error`` lets a protocol raise its own :class:`FrameError`
    subclass (e.g. the serve layer's ``FrameBatchError``) so existing
    ``except`` clauses keep working.
    """
    if len(header) != HEADER_BYTES:
        raise error(
            f"frame header must be {HEADER_BYTES} bytes, got {len(header)}"
        )
    if header[:4] != magic:
        raise error(f"bad frame magic {header[:4]!r} (expected {magic!r})")
    (length,) = struct.unpack(">I", header[4:])
    if length > max_bytes:
        raise error(f"frame length {length} exceeds cap {max_bytes}")
    return length


# -- blocking-socket helpers ----------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at byte zero.

    EOF *inside* a frame is a dropped connection, not a clean close, so
    it raises :class:`ConnectionResetError` — the caller must never see
    a short frame as a complete one.
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None
            raise ConnectionResetError(
                f"connection dropped mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: bytes, magic: bytes) -> None:
    """Send one complete frame on a blocking socket."""
    sock.sendall(encode_frame(payload, magic))


def recv_frame(
    sock: socket.socket,
    *,
    magic: bytes,
    max_bytes: int,
    error: type[FrameError] = FrameError,
) -> bytes | None:
    """Receive one frame's payload; ``None`` on clean EOF between frames."""
    header = _recv_exact(sock, HEADER_BYTES)
    if header is None:
        return None
    length = header_length(header, magic=magic, max_bytes=max_bytes, error=error)
    if length == 0:
        return b""
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ConnectionResetError("connection dropped before frame payload")
    return payload
