"""Station roaming / AP handoff (paper §2, citing Mishra et al. [15]).

Conference clients reassociate when another AP's beacons come in
stronger than their serving AP's — the handoff behaviour Mishra et al.
measured and the reason the paper's Figure 4(b) association counts
move.  The manager periodically "scans" (evaluates beacon SNR from
every AP via the propagation model, which is what a real scan measures)
and moves a station when a candidate beats its serving AP by a
hysteresis margin, with a per-station cooldown against ping-ponging.

A roam re-targets the station's MAC channel, updates the AP association
lists and the downlink router, and emits a reassociation MGMT frame —
so captures show the handoff exactly as a sniffer would.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..frames import FrameType
from .engine import Simulator
from .node import AccessPoint, Station
from .propagation import PropagationModel

__all__ = ["Roam", "RoamingConfig", "RoamingManager"]


@dataclass(frozen=True)
class Roam:
    """One recorded handoff."""

    time_us: int
    station_id: int
    old_ap: int
    new_ap: int


@dataclass(frozen=True)
class RoamingConfig:
    """Handoff policy parameters."""

    scan_interval_us: int = 2_000_000
    hysteresis_db: float = 4.0        # candidate must beat serving by this
    cooldown_us: int = 10_000_000

    def __post_init__(self) -> None:
        if self.scan_interval_us <= 0 or self.cooldown_us < 0:
            raise ValueError("intervals must be positive")
        if self.hysteresis_db < 0:
            raise ValueError("hysteresis must be non-negative")


class RoamingManager:
    """Periodic best-AP evaluation and reassociation for all stations."""

    def __init__(
        self,
        sim: Simulator,
        propagation: PropagationModel,
        aps: list[AccessPoint],
        stations: list[Station],
        downlink_router: dict[int, AccessPoint],
        config: RoamingConfig | None = None,
        ap_tx_power_dbm: float = 18.0,
    ) -> None:
        self.sim = sim
        self.propagation = propagation
        self.aps = aps
        self.stations = stations
        self.router = downlink_router
        self.config = config or RoamingConfig()
        self.ap_tx_power_dbm = ap_tx_power_dbm
        self.roams: list[Roam] = []
        self._last_roam: dict[int, int] = {}
        sim.schedule_in(self.config.scan_interval_us, self._scan)

    # -- measurement --------------------------------------------------------

    def beacon_snr_db(self, station: Station, ap: AccessPoint) -> float:
        """Long-run beacon SNR of ``ap`` at ``station`` (a scan result)."""
        rx = self.propagation.received_power_dbm(
            self.ap_tx_power_dbm,
            ap.mac.position,
            station.mac.position,
            tx_id=ap.node_id,
            rx_id=station.node_id,
        )
        return rx - self.propagation.noise_floor_dbm

    def best_ap(self, station: Station) -> AccessPoint:
        """The AP with the strongest beacons at this station."""
        return max(self.aps, key=lambda ap: self.beacon_snr_db(station, ap))

    # -- the scan/roam loop -------------------------------------------------

    def _scan(self) -> None:
        now = self.sim.now_us
        for station in self.stations:
            last = self._last_roam.get(station.node_id)
            if last is not None and now - last < self.config.cooldown_us:
                continue
            serving = next(
                (ap for ap in self.aps if ap.node_id == station.ap_id), None
            )
            if serving is None:
                continue
            candidate = self.best_ap(station)
            if candidate.node_id == serving.node_id:
                continue
            gain = self.beacon_snr_db(station, candidate) - self.beacon_snr_db(
                station, serving
            )
            if gain >= self.config.hysteresis_db:
                self._roam(station, serving, candidate)
        self.sim.schedule_in(self.config.scan_interval_us, self._scan)

    def _roam(
        self, station: Station, old: AccessPoint, new: AccessPoint
    ) -> None:
        if station.node_id in old.stations:
            old.stations.remove(station.node_id)
        new.associate(station.node_id)
        station.ap_id = new.node_id
        station.mac.channel = new.channel
        self.router[station.node_id] = new
        # Reassociation management exchange, visible to sniffers.
        station.mac.enqueue(new.node_id, 64, FrameType.MGMT)
        self._last_roam[station.node_id] = self.sim.now_us
        self.roams.append(
            Roam(
                time_us=self.sim.now_us,
                station_id=station.node_id,
                old_ap=old.node_id,
                new_ap=new.node_id,
            )
        )
