"""Vicinity sniffer capture model (paper §4.2, §4.4).

A sniffer is a passive medium listener on one channel (the paper ran one
Netgate radio per channel in RFMon mode).  It records every frame it
decodes, with the RFMon side information the paper used: timestamp,
rate, channel and SNR.  Frames go unrecorded for the paper's three
reasons, all of which this model produces:

1. **Bit errors** — decoding is sampled from the PHY error model at the
   sniffer's own SINR, so distant or collided frames are lost.
2. **Hardware drops under load** — commodity radios drop frames when
   capture rates spike [Yeo et al.]; modelled as a drop probability that
   grows linearly with the number of frames captured in the last 100 ms.
3. **Hidden terminals** — transmitters below the sniffer's sensitivity
   are never heard at all (this falls out of the propagation model).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..frames import FrameType, Trace
from .engine import Simulator
from .medium import Medium, SimFrame
from .propagation import Position

__all__ = ["SnifferConfig", "Sniffer", "ground_truth_trace"]


@dataclass(frozen=True)
class SnifferConfig:
    """Capture-model parameters.

    ``drop_per_frame`` is the per-captured-frame increment of the drop
    probability over the trailing ``load_window_us``; with the default
    2e-4 and a 100 ms window, 500 frames/s of capture load produces a
    1 % drop rate and 5000 frames/s produces 10 % — the range the paper
    observed (3-20 % unrecorded)."""

    sensitivity_dbm: float = -92.0
    drop_floor: float = 0.005
    drop_per_frame: float = 2e-4
    drop_ceiling: float = 0.35
    load_window_us: int = 100_000


class Sniffer:
    """Passive capture device; attach to a medium like any listener."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: int,
        position: Position,
        channel: int,
        rng: np.random.Generator,
        config: SnifferConfig | None = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.position = position
        self.channel = channel
        self.rng = rng
        self.config = config or SnifferConfig()
        self.sense_threshold_dbm = self.config.sensitivity_dbm
        # Capture cards decode what they can hear; the configured
        # sensitivity is the decode gate too (unlike MACs, which sense
        # at -85 dBm but decode down to the noise floor).
        self.decode_threshold_dbm = self.config.sensitivity_dbm
        self._recent: deque[int] = deque()
        self.hardware_drops = 0
        self._captured_total = 0
        # Row buffers, converted to a Trace at the end of a run — or
        # drained incrementally (bounded memory) by a live stream.
        self._time: list[int] = []
        self._ftype: list[int] = []
        self._rate: list[int] = []
        self._size: list[int] = []
        self._src: list[int] = []
        self._dst: list[int] = []
        self._retry: list[bool] = []
        self._snr: list[float] = []
        self._seq: list[int] = []
        medium.attach(self)

    # -- medium listener interface (passive) ------------------------------

    def on_medium_busy(self) -> None:
        pass

    def on_medium_idle(self) -> None:
        pass

    def on_frame_received(self, frame: SimFrame, snr_db: float) -> None:
        """A frame decoded at the sniffer; apply the hardware-drop model."""
        now = self.sim.now_us
        window_start = now - self.config.load_window_us
        recent = self._recent
        while recent and recent[0] < window_start:
            recent.popleft()
        p_drop = min(
            self.config.drop_ceiling,
            self.config.drop_floor + self.config.drop_per_frame * len(recent),
        )
        recent.append(now)
        if self.rng.random() < p_drop:
            self.hardware_drops += 1
            return
        self._record(now, frame, snr_db)

    def _record(self, now: int, frame: SimFrame, snr_db: float) -> None:
        from ..frames import rate_to_code

        # Timestamp the frame at its start of transmission, like a
        # capture card stamping the preamble.
        self._time.append(now - frame.duration_us)
        self._ftype.append(int(frame.ftype))
        self._rate.append(rate_to_code(frame.rate_mbps))
        self._size.append(frame.size)
        self._src.append(frame.src)
        self._dst.append(frame.dst)
        self._retry.append(frame.retry)
        self._snr.append(snr_db)
        self._seq.append(frame.seq)
        self._captured_total += 1

    # -- output --------------------------------------------------------

    @property
    def frames_captured(self) -> int:
        """Total frames recorded over the run (drained or still buffered)."""
        return self._captured_total

    @property
    def frames_buffered(self) -> int:
        """Rows currently held in the buffer (shrinks as a stream drains)."""
        return len(self._time)

    def _buffer_columns(self) -> dict[str, np.ndarray]:
        return {
            "time_us": np.array(self._time, dtype=np.int64),
            "ftype": np.array(self._ftype, dtype=np.uint8),
            "rate_code": np.array(self._rate, dtype=np.uint8),
            "size": np.array(self._size, dtype=np.uint32),
            "src": np.array(self._src, dtype=np.uint16),
            "dst": np.array(self._dst, dtype=np.uint16),
            "retry": np.array(self._retry, dtype=np.bool_),
            "channel": np.full(len(self._time), self.channel, dtype=np.uint8),
            "snr_db": np.array(self._snr, dtype=np.float32),
            "seq": np.array(self._seq, dtype=np.uint16),
        }

    def _clear_buffer(self) -> None:
        self._time, self._ftype, self._rate = [], [], []
        self._size, self._src, self._dst = [], [], []
        self._retry, self._snr, self._seq = [], [], []

    def to_trace(self) -> Trace:
        """Materialise the current capture buffer as a :class:`Trace`."""
        return Trace(self._buffer_columns()).sorted_by_time()

    def drain_trace(self, before_us: int | None = None) -> Trace:
        """Remove and return buffered rows with ``time_us < before_us``.

        The live-capture hook: a streaming scenario run drains each
        sniffer once per simulated window, so buffers hold one window of
        rows instead of the whole run.  Rows at or after the watermark
        stay buffered for a later drain (a frame's timestamp is its
        transmission *start*, so rows land slightly out of record order
        and a too-eager cut would misorder the stream).  ``None`` drains
        everything.  The returned trace is stably time-sorted, matching
        the ordering :meth:`to_trace` would have produced over the full
        run.
        """
        if before_us is None:
            trace = self.to_trace()
            self._clear_buffer()
            return trace
        cols = self._buffer_columns()
        keep = cols["time_us"] >= before_us
        drained = Trace(
            {name: col[~keep] for name, col in cols.items()}
        ).sorted_by_time()
        if keep.any():
            self._time = cols["time_us"][keep].tolist()
            self._ftype = cols["ftype"][keep].tolist()
            self._rate = cols["rate_code"][keep].tolist()
            self._size = cols["size"][keep].tolist()
            self._src = cols["src"][keep].tolist()
            self._dst = cols["dst"][keep].tolist()
            self._retry = cols["retry"][keep].tolist()
            self._snr = cols["snr_db"][keep].tolist()
            self._seq = cols["seq"][keep].tolist()
        else:
            self._clear_buffer()
        return drained


def ground_truth_trace(medium: Medium) -> Trace:
    """Every frame actually transmitted, as an ideal (lossless) trace.

    SNR is not meaningful for ground truth and is recorded as 40 dB.
    """
    from ..frames import rate_to_code

    records = medium.ground_truth
    n = len(records)
    time = np.empty(n, dtype=np.int64)
    ftype = np.empty(n, dtype=np.uint8)
    rate = np.empty(n, dtype=np.uint8)
    size = np.empty(n, dtype=np.uint32)
    src = np.empty(n, dtype=np.uint16)
    dst = np.empty(n, dtype=np.uint16)
    retry = np.empty(n, dtype=np.bool_)
    channel = np.empty(n, dtype=np.uint8)
    seq = np.empty(n, dtype=np.uint16)
    for i, (start_us, frame) in enumerate(records):
        time[i] = start_us
        ftype[i] = int(frame.ftype)
        rate[i] = rate_to_code(frame.rate_mbps)
        size[i] = frame.size
        src[i] = frame.src
        dst[i] = frame.dst
        retry[i] = frame.retry
        channel[i] = frame.channel
        seq[i] = frame.seq
    return Trace(
        {
            "time_us": time,
            "ftype": ftype,
            "rate_code": rate,
            "size": size,
            "src": src,
            "dst": dst,
            "retry": retry,
            "channel": channel,
            "snr_db": np.full(n, 40.0, dtype=np.float32),
            "seq": seq,
        }
    ).sorted_by_time()
