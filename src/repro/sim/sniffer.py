"""Vicinity sniffer capture model (paper §4.2, §4.4).

A sniffer is a passive medium listener on one channel (the paper ran one
Netgate radio per channel in RFMon mode).  It records every frame it
decodes, with the RFMon side information the paper used: timestamp,
rate, channel and SNR.  Frames go unrecorded for the paper's three
reasons, all of which this model produces:

1. **Bit errors** — decoding is sampled from the PHY error model at the
   sniffer's own SINR, so distant or collided frames are lost.
2. **Hardware drops under load** — commodity radios drop frames when
   capture rates spike [Yeo et al.]; modelled as a drop probability that
   grows linearly with the number of frames captured in the last 100 ms.
3. **Hidden terminals** — transmitters below the sniffer's sensitivity
   are never heard at all (this falls out of the propagation model).

Captured fields are appended straight into geometrically-grown
preallocated numpy column buffers — no per-frame Python row objects —
so ``to_trace``/``drain_trace`` assemble output from array slices
instead of converting Python lists, and a draining stream compacts the
columns in place.  Buffer capacity therefore tracks the *peak
undrained* window, not the run length.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..frames import FrameType, Trace, rate_to_code
from .engine import Simulator
from .medium import Medium, SimFrame
from .propagation import Position

__all__ = ["SnifferConfig", "Sniffer", "ground_truth_trace"]

#: Initial per-column buffer capacity; doubles when full.
_INITIAL_CAPACITY = 1024


@dataclass(frozen=True)
class SnifferConfig:
    """Capture-model parameters.

    ``drop_per_frame`` is the per-captured-frame increment of the drop
    probability over the trailing ``load_window_us``; with the default
    2e-4 and a 100 ms window, 500 frames/s of capture load produces a
    1 % drop rate and 5000 frames/s produces 10 % — the range the paper
    observed (3-20 % unrecorded)."""

    sensitivity_dbm: float = -92.0
    drop_floor: float = 0.005
    drop_per_frame: float = 2e-4
    drop_ceiling: float = 0.35
    load_window_us: int = 100_000


#: (attribute, trace column, dtype) for the captured column buffers,
#: trace-schema order minus ``channel`` (constant per sniffer,
#: synthesized on output) — see ``repro.frames.TRACE_SCHEMA``.
_CAPTURE_COLUMNS = (
    ("_time", "time_us", np.int64),
    ("_ftype", "ftype", np.uint8),
    ("_rate", "rate_code", np.uint8),
    ("_size", "size", np.uint32),
    ("_src", "src", np.uint16),
    ("_dst", "dst", np.uint16),
    ("_retry", "retry", np.bool_),
    ("_snr", "snr_db", np.float32),
    ("_seq", "seq", np.uint16),
)


class Sniffer:
    """Passive capture device; attach to a medium like any listener."""

    #: Sniffers never consult carrier sense (``on_medium_busy``/``idle``
    #: are no-ops and nothing queries their busy state), so the medium
    #: skips their sense bookkeeping entirely.
    medium_passive = True

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: int,
        position: Position,
        channel: int,
        rng: np.random.Generator,
        config: SnifferConfig | None = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.position = position
        self.channel = channel
        self.rng = rng
        self.config = config or SnifferConfig()
        self.sense_threshold_dbm = self.config.sensitivity_dbm
        # Capture cards decode what they can hear; the configured
        # sensitivity is the decode gate too (unlike MACs, which sense
        # at -85 dBm but decode down to the noise floor).
        self.decode_threshold_dbm = self.config.sensitivity_dbm
        self._recent: deque[int] = deque()
        # Hot-path copies of the frozen config's drop-model fields.
        self._load_window_us = self.config.load_window_us
        self._drop_floor = self.config.drop_floor
        self._drop_per_frame = self.config.drop_per_frame
        self._drop_ceiling = self.config.drop_ceiling
        self.hardware_drops = 0
        self._captured_total = 0
        # Columnar capture buffers: preallocated, geometrically grown,
        # compacted in place by a draining stream.
        self._n = 0
        self._capacity = _INITIAL_CAPACITY
        for attr, _, dtype in _CAPTURE_COLUMNS:
            setattr(self, attr, np.empty(_INITIAL_CAPACITY, dtype=dtype))
        medium.attach(self)

    # -- medium listener interface (passive) ------------------------------

    def on_medium_busy(self) -> None:
        pass

    def on_medium_idle(self) -> None:
        pass

    def on_frame_received(self, frame: SimFrame, snr_db: float) -> None:
        """A frame decoded at the sniffer; apply the hardware-drop model."""
        now = self.sim.now_us
        window_start = now - self._load_window_us
        recent = self._recent
        while recent and recent[0] < window_start:
            recent.popleft()
        p_drop = min(
            self._drop_ceiling,
            self._drop_floor + self._drop_per_frame * len(recent),
        )
        recent.append(now)
        if self.rng.random() < p_drop:
            self.hardware_drops += 1
            return
        self._record(now, frame, snr_db)

    def _record(self, now: int, frame: SimFrame, snr_db: float) -> None:
        i = self._n
        if i == self._capacity:
            self._grow()
        # Timestamp the frame at its start of transmission, like a
        # capture card stamping the preamble.
        self._time[i] = now - frame.duration_us
        self._ftype[i] = frame.ftype
        self._rate[i] = rate_to_code(frame.rate_mbps)
        self._size[i] = frame.size
        self._src[i] = frame.src
        self._dst[i] = frame.dst
        self._retry[i] = frame.retry
        self._snr[i] = snr_db
        self._seq[i] = frame.seq
        self._n = i + 1
        self._captured_total += 1

    def _grow(self) -> None:
        self._capacity *= 2
        for attr, _, dtype in _CAPTURE_COLUMNS:
            grown = np.empty(self._capacity, dtype=dtype)
            grown[: self._n] = getattr(self, attr)
            setattr(self, attr, grown)

    # -- output --------------------------------------------------------

    @property
    def frames_captured(self) -> int:
        """Total frames recorded over the run (drained or still buffered)."""
        return self._captured_total

    @property
    def frames_buffered(self) -> int:
        """Rows currently held in the buffer (shrinks as a stream drains)."""
        return self._n

    @property
    def buffer_capacity(self) -> int:
        """Allocated rows per column (tracks the peak undrained window)."""
        return self._capacity

    def _output_columns(self, mask: np.ndarray | None) -> dict[str, np.ndarray]:
        """Trace columns for the selected buffered rows.

        Output never aliases the live buffers: full slices are copied
        explicitly, boolean-mask selection copies by construction.
        """
        n = self._n
        if mask is None:
            cols = {
                name: getattr(self, attr)[:n].copy()
                for attr, name, _ in _CAPTURE_COLUMNS
            }
            count = n
        else:
            cols = {
                name: getattr(self, attr)[:n][mask]
                for attr, name, _ in _CAPTURE_COLUMNS
            }
            count = int(mask.sum())
        cols["channel"] = np.full(count, self.channel, dtype=np.uint8)
        return cols

    def to_trace(self) -> Trace:
        """Materialise the current capture buffer as a :class:`Trace`."""
        return Trace(self._output_columns(None)).sorted_by_time()

    def drain_trace(self, before_us: int | None = None) -> Trace:
        """Remove and return buffered rows with ``time_us < before_us``.

        The live-capture hook: a streaming scenario run drains each
        sniffer once per simulated window, so buffers hold one window of
        rows instead of the whole run.  The watermark is strictly
        exclusive: a row with ``time_us == before_us`` stays buffered
        now and is drained by the first later call whose watermark
        exceeds it — exactly once across consecutive drains, never
        zero or twice.  (Rows at or after the watermark must stay
        because a frame's timestamp is its transmission *start*, so
        rows land slightly out of record order and a too-eager cut
        would misorder the stream.)  ``None`` drains everything.  The
        returned trace is stably time-sorted, matching the ordering
        :meth:`to_trace` would have produced over the full run.  Kept
        rows are compacted to the front of the column buffers in
        place; no Python-object row conversion happens either way.
        """
        n = self._n
        if before_us is None:
            trace = self.to_trace()
            self._n = 0
            return trace
        keep = self._time[:n] >= before_us
        drained = Trace(self._output_columns(~keep)).sorted_by_time()
        kept = int(keep.sum())
        if kept:
            for attr, _, _ in _CAPTURE_COLUMNS:
                col = getattr(self, attr)
                col[:kept] = col[:n][keep]
        self._n = kept
        return drained


def ground_truth_trace(medium: Medium) -> Trace:
    """Every frame actually transmitted, as an ideal (lossless) trace.

    SNR is not meaningful for ground truth and is recorded as 40 dB.
    """
    records = medium.ground_truth
    n = len(records)
    time = np.empty(n, dtype=np.int64)
    ftype = np.empty(n, dtype=np.uint8)
    rate = np.empty(n, dtype=np.uint8)
    size = np.empty(n, dtype=np.uint32)
    src = np.empty(n, dtype=np.uint16)
    dst = np.empty(n, dtype=np.uint16)
    retry = np.empty(n, dtype=np.bool_)
    channel = np.empty(n, dtype=np.uint8)
    seq = np.empty(n, dtype=np.uint16)
    for i, (start_us, frame) in enumerate(records):
        time[i] = start_us
        ftype[i] = int(frame.ftype)
        rate[i] = rate_to_code(frame.rate_mbps)
        size[i] = frame.size
        src[i] = frame.src
        dst[i] = frame.dst
        retry[i] = frame.retry
        channel[i] = frame.channel
        seq[i] = frame.seq
    return Trace(
        {
            "time_us": time,
            "ftype": ftype,
            "rate_code": rate,
            "size": size,
            "src": src,
            "dst": dst,
            "retry": retry,
            "channel": channel,
            "snr_db": np.full(n, 40.0, dtype=np.float32),
            "seq": seq,
        }
    ).sorted_by_time()
