"""Discrete-event IEEE 802.11b DCF network simulator.

The trace-producing substitute for the paper's IETF-62 testbed: DCF
MACs with pluggable rate adaptation contend on a shared medium with
path-loss/shadowing propagation, collisions and capture, while passive
sniffers record what a vicinity-sniffing laptop would have captured.
"""

from .builder import (
    MAX_FRAME_AIRTIME_US,
    BuiltScenario,
    CalibratedObstruction,
    ExplicitPlacement,
    ExplicitPopulation,
    FractionPopulation,
    HotspotPlacement,
    PoissonProgram,
    RoomPlacement,
    ScenarioBuilder,
    StationRole,
)
from .channel_manager import ChannelManager, ChannelManagerConfig, ChannelSwitch
from .dcf import DcfMac, MacConfig, MacStats
from .engine import EventHandle, Simulator
from .fastpath import FIDELITY_MODES, FastBuiltScenario
from .medium import Medium, SimFrame, Transmission
from .node import BEACON_INTERVAL_US, AccessPoint, Station
from .phy import BASIC_RATE_MBPS, PhyModel, snr_db_to_linear
from .power_control import PowerControlConfig, TransmitPowerControl
from .propagation import Position, PropagationModel
from .roaming import Roam, RoamingConfig, RoamingManager
from .rate_adaptation import (
    AarfRateAdaptation,
    ArfRateAdaptation,
    FixedRate,
    RateAdaptation,
    SnrOracleRateAdaptation,
    make_rate_adaptation,
)
from .scenarios import (
    RAMP_MIX,
    ScenarioConfig,
    ScenarioResult,
    ietf_day_config,
    ietf_plenary_config,
    load_ramp_config,
    run_scenario,
    stream_scenario,
)
from .library import (
    SCENARIO_LIBRARY,
    UnknownParameterError,
    available_scenarios,
    build_scenario,
    hidden_terminal_config,
    hotspot_plenary_config,
    co_channel_config,
    register_scenario,
    roaming_storm_config,
    scenario_builder,
    scenario_config,
    scenario_parameters,
    uniform_config,
    validate_scenario_params,
)
from .sniffer import Sniffer, SnifferConfig, ground_truth_trace
from .topology import place_aps, place_stations, sniffer_position
from .traffic import (
    BULK_MIX,
    ClosedLoopSource,
    ModulatedRate,
    ScaledRate,
    CONFERENCE_MIX,
    VOICE_MIX,
    WEB_MIX,
    ConstantRate,
    LinearRamp,
    PoissonSource,
    StepSchedule,
    class_mixture,
    uniform_sizes,
)

__all__ = [
    "AarfRateAdaptation",
    "AccessPoint",
    "ArfRateAdaptation",
    "BASIC_RATE_MBPS",
    "BEACON_INTERVAL_US",
    "BULK_MIX",
    "BuiltScenario",
    "CalibratedObstruction",
    "ChannelManager",
    "ClosedLoopSource",
    "ChannelManagerConfig",
    "ChannelSwitch",
    "CONFERENCE_MIX",
    "ConstantRate",
    "DcfMac",
    "EventHandle",
    "ExplicitPlacement",
    "ExplicitPopulation",
    "FIDELITY_MODES",
    "FastBuiltScenario",
    "FixedRate",
    "FractionPopulation",
    "HotspotPlacement",
    "LinearRamp",
    "MAX_FRAME_AIRTIME_US",
    "MacConfig",
    "MacStats",
    "Medium",
    "ModulatedRate",
    "PhyModel",
    "PoissonProgram",
    "PoissonSource",
    "Position",
    "PowerControlConfig",
    "PropagationModel",
    "RAMP_MIX",
    "RateAdaptation",
    "Roam",
    "RoamingConfig",
    "RoamingManager",
    "RoomPlacement",
    "SCENARIO_LIBRARY",
    "ScenarioBuilder",
    "ScenarioConfig",
    "ScenarioResult",
    "SimFrame",
    "Simulator",
    "Sniffer",
    "ScaledRate",
    "SnifferConfig",
    "SnrOracleRateAdaptation",
    "Station",
    "StationRole",
    "StepSchedule",
    "Transmission",
    "TransmitPowerControl",
    "UnknownParameterError",
    "VOICE_MIX",
    "WEB_MIX",
    "available_scenarios",
    "build_scenario",
    "class_mixture",
    "co_channel_config",
    "ground_truth_trace",
    "hidden_terminal_config",
    "hotspot_plenary_config",
    "ietf_day_config",
    "ietf_plenary_config",
    "load_ramp_config",
    "make_rate_adaptation",
    "place_aps",
    "place_stations",
    "register_scenario",
    "roaming_storm_config",
    "run_scenario",
    "scenario_builder",
    "scenario_config",
    "scenario_parameters",
    "sniffer_position",
    "stream_scenario",
    "uniform_config",
    "uniform_sizes",
    "validate_scenario_params",
]
