"""IEEE 802.11b DCF MAC state machine (paper §3).

Implements CSMA/CA as the paper describes it: carrier sense, DIFS
deferral, exponential backoff with freeze/resume, optional RTS/CTS
handshake above a size threshold, SIFS-spaced ACK/CTS responses, NAV
virtual carrier sense from overheard RTS/CTS, retry with contention-
window growth (31 -> 255 slot times by default, the paper's MaxBO
range) and a retry limit, plus pluggable multirate adaptation consulted
on every attempt.

Fidelity notes: timing is event-accurate at microsecond granularity;
slot-boundary alignment and EIFS are simplified (backoff resumes DIFS
after the medium goes idle), which does not affect any quantity the
paper measures at one-second granularity.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..frames import FrameType, BROADCAST
from .engine import EventHandle, Simulator
from .medium import Medium, SimFrame
from .phy import BASIC_RATE_MBPS, PhyModel
from .propagation import Position
from .power_control import TransmitPowerControl
from .rate_adaptation import FixedRate, RateAdaptation

__all__ = ["MacConfig", "MacStats", "DcfMac"]

#: Backoff draws fetched per speculative batch.  The MAC's generator is
#: consumed by nothing but backoff draws, and numpy's bounded-integer
#: fill walks the bit stream identically for vector and scalar requests,
#: so a batch at a fixed contention window yields the exact scalar
#: sequence.  When the window changes mid-batch the generator is rewound
#: and the consumed prefix replayed scalar-style (see ``_draw_backoff``).
_BACKOFF_BATCH = 32


@dataclass(frozen=True)
class MacConfig:
    """DCF parameters; defaults follow the paper's §3 description."""

    sifs_us: int = 10
    difs_us: int = 50
    slot_us: int = 20
    cw_min: int = 31
    cw_max: int = 255              # paper: MaxBO grows 31 -> 255 slots
    retry_limit: int = 7
    rts_threshold: int | None = None  # None disables RTS/CTS (the default)
    #: MSDUs larger than this are split into fragments delivered as a
    #: SIFS-spaced burst with per-fragment ACKs (802.11 fragmentation);
    #: None disables fragmentation.  Smaller fragments survive bit
    #: errors better at the cost of per-fragment overhead — the frame
    #: size adaptation studied by Modiano [16] and others the paper
    #: cites in §2.
    fragmentation_threshold: int | None = None
    ack_timeout_margin_us: int = 60
    queue_limit: int = 200


@dataclass
class MacStats:
    """Counters a MAC accumulates over a run (ground-truth diagnostics)."""

    data_attempts: int = 0
    data_successes: int = 0
    data_drops: int = 0
    rts_attempts: int = 0
    cts_received: int = 0
    queue_overflows: int = 0
    delivered_frames: int = 0     # frames received as addressee
    delivered_bytes: int = 0

    @property
    def delivery_ratio(self) -> float:
        if self.data_attempts == 0:
            return 0.0
        return self.data_successes / self.data_attempts


class _State(enum.Enum):
    IDLE = "idle"
    CONTEND = "contend"
    TX = "tx"
    WAIT_CTS = "wait_cts"
    WAIT_ACK = "wait_ack"


@dataclass
class _Pending:
    """The MSDU currently being delivered."""

    dst: int
    size: int                      # size of the *current* fragment
    seq: int
    retries: int = 0
    rate_mbps: float = 11.0
    ftype: FrameType = FrameType.DATA
    fragments: list[int] | None = None   # remaining fragment sizes
    fragment_index: int = 0


class DcfMac:
    """One node's DCF MAC entity, attached to a :class:`Medium`."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        phy: PhyModel,
        node_id: int,
        position: Position,
        channel: int,
        rng: np.random.Generator,
        config: MacConfig | None = None,
        rate_adaptation: RateAdaptation | None = None,
        tx_power_dbm: float = 15.0,
        sense_threshold_dbm: float = -85.0,
        on_data_delivered: Callable[[SimFrame], None] | None = None,
        power_control: TransmitPowerControl | None = None,
        on_msdu_complete: Callable[[int, bool], None] | None = None,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.phy = phy
        self.node_id = node_id
        self.position = position
        self._channel = channel
        self.rng = rng
        self.config = config or MacConfig()
        self.rate_adaptation = rate_adaptation or FixedRate(11.0)
        self.tx_power_dbm = tx_power_dbm
        self.sense_threshold_dbm = sense_threshold_dbm
        self.power_control = power_control
        self.on_data_delivered = on_data_delivered
        #: Overhearing a frame addressed elsewhere with no NAV field is a
        #: provable no-op for this MAC (its rate adaptation ignores SNR
        #: feedback and it runs no power control), so the medium may skip
        #: the delivery callback entirely.  Recomputed nowhere: swapping
        #: ``rate_adaptation``/``power_control`` mid-run is unsupported.
        #: False when the adaptation scheme inherits the base class's
        #: no-op SNR hook — reception then skips the dead call.
        self._ra_wants_snr = (
            type(self.rate_adaptation).on_feedback_snr
            is not RateAdaptation.on_feedback_snr
        )
        self.overhear_noop = not self._ra_wants_snr and power_control is None
        #: Called with (dst, success) when an MSDU finishes: all
        #: fragments acknowledged (True) or dropped at the retry limit
        #: (False).  Closed-loop traffic sources hang off this.
        self.on_msdu_complete = on_msdu_complete
        self.stats = MacStats()

        self._queue: deque[tuple[int, int, FrameType]] = deque()
        #: Mirrors ``_state is CONTEND`` (maintained by the ``_state``
        #: property).  The medium peeks it to skip busy/idle callbacks
        #: whose own first statement would be the not-contending return.
        self.in_contention = False
        self._state = _State.IDLE
        self._pending: _Pending | None = None
        self._cw = self.config.cw_min
        self._backoff_slots = 0
        self._backoff_event: EventHandle | None = None
        # Speculative backoff-draw batch (see _draw_backoff).
        self._bo_cache: np.ndarray | None = None
        self._bo_state: dict | None = None
        self._bo_bound = 0
        self._bo_pos = 0
        self._timeout_event: EventHandle | None = None
        self._nav_until = 0
        self._nav_event: EventHandle | None = None
        self._resume_started_at: int | None = None
        self._seq_counter = 0
        # Set when another station started transmitting in the very
        # microsecond our own backoff expired: a real radio cannot
        # sense a same-slot start before its own transmission begins,
        # so it must transmit anyway — this is precisely how DCF
        # collisions happen.
        self._transmit_despite_busy = False
        # Hot-path constants (config and PHY are frozen after init).
        cfg = self.config
        self._sifs_us = cfg.sifs_us
        self._difs_us = cfg.difs_us
        self._slot_us = cfg.slot_us
        self._cts_duration_us = phy.control_duration_us(FrameType.CTS)
        self._ack_duration_us = phy.control_duration_us(FrameType.ACK)
        medium.attach(self)

    @property
    def _state(self) -> _State:
        return self._state_value

    @_state.setter
    def _state(self, value: _State) -> None:
        self._state_value = value
        self.in_contention = value is _State.CONTEND

    @property
    def channel(self) -> int:
        return self._channel

    @channel.setter
    def channel(self, value: int) -> None:
        """Re-targeting a MAC's channel (roaming, channel management)
        invalidates the medium's cached delivery plans."""
        self._channel = value
        self.medium.notify_topology_changed()

    # -- upper-layer interface -------------------------------------------

    def enqueue(self, dst: int, size: int, ftype: FrameType = FrameType.DATA) -> bool:
        """Queue an MSDU for delivery; returns False on queue overflow."""
        if len(self._queue) >= self.config.queue_limit:
            self.stats.queue_overflows += 1
            return False
        self._queue.append((dst, size, ftype))
        if self._state == _State.IDLE:
            self._begin_next()
        return True

    def enqueue_front(self, dst: int, size: int, ftype: FrameType) -> None:
        """Queue-jumping insert, used for beacons."""
        self._queue.appendleft((dst, size, ftype))
        if self._state == _State.IDLE:
            self._begin_next()

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    # -- contention --------------------------------------------------------

    def _begin_next(self) -> None:
        if not self._queue:
            self._state = _State.IDLE
            return
        dst, size, ftype = self._queue.popleft()
        self._seq_counter = (self._seq_counter + 1) % 4096
        rate = (
            BASIC_RATE_MBPS
            if ftype == FrameType.BEACON
            else self.rate_adaptation.rate_for(dst)
        )
        fragments = self._fragment_sizes(size, ftype, dst)
        self._pending = _Pending(
            dst=dst,
            size=fragments[0] if fragments else size,
            seq=self._seq_counter,
            rate_mbps=rate,
            ftype=ftype,
            fragments=fragments,
        )
        self._cw = self.config.cw_min
        self._draw_backoff()
        self._state = _State.CONTEND
        self._try_resume()

    def _fragment_sizes(
        self, size: int, ftype: FrameType, dst: int
    ) -> list[int] | None:
        """Split an MSDU into fragment sizes, or None when not fragmenting."""
        threshold = self.config.fragmentation_threshold
        if (
            threshold is None
            or ftype != FrameType.DATA
            or dst == BROADCAST
            or size <= threshold
        ):
            return None
        sizes = [threshold] * (size // threshold)
        if size % threshold:
            sizes.append(size % threshold)
        return sizes

    def _draw_backoff(self) -> None:
        """Next backoff count — batched, but stream-identical to scalar.

        Draws come from a speculative block of ``_BACKOFF_BATCH`` values
        at the current bound.  Most draws happen at cw_min (every fresh
        MSDU resets the window), so the block usually survives to
        exhaustion and one vectorized call replaces 32 scalar ones.  On
        a bound change (retry doubling) the generator is rewound to the
        pre-batch state and the consumed prefix replayed at the old
        bound, leaving the stream exactly where per-call draws would
        have — the golden-trace digests pin this equivalence.
        """
        bound = self._cw + 1
        cache = self._bo_cache
        if cache is not None and self._bo_bound == bound and self._bo_pos < len(cache):
            self._backoff_slots = int(cache[self._bo_pos])
            self._bo_pos += 1
            return
        rng = self.rng
        if cache is not None and self._bo_pos < len(cache):
            rng.bit_generator.state = self._bo_state
            old_bound = self._bo_bound
            for _ in range(self._bo_pos):
                rng.integers(0, old_bound)
        self._bo_state = rng.bit_generator.state
        cache = rng.integers(0, bound, size=_BACKOFF_BATCH)
        self._bo_cache = cache
        self._bo_bound = bound
        self._bo_pos = 1
        self._backoff_slots = int(cache[0])

    def _physical_idle(self) -> bool:
        return self.medium.is_idle(self)

    def _try_resume(self) -> None:
        """(Re)arm the backoff-completion timer if the medium allows."""
        if self._state != _State.CONTEND:
            return
        now = self.sim.now_us
        if self._nav_until > now:
            if self._nav_event is None or not self._nav_event.pending:
                self._nav_event = self.sim.schedule_at(
                    self._nav_until, self._try_resume
                )
            return
        if not self._physical_idle():
            return  # on_medium_idle will call us back
        if self._backoff_event is not None and self._backoff_event.pending:
            return  # already counting down
        delay = self._difs_us + self._backoff_slots * self._slot_us
        self._resume_started_at = now
        self._backoff_event = self.sim.schedule_in(delay, self._backoff_done)

    def on_medium_busy(self) -> None:
        """Medium callback: freeze a running backoff countdown."""
        if self._state != _State.CONTEND:
            return
        if self._backoff_event is not None and self._backoff_event.pending:
            if self._backoff_event.time_us <= self.sim.now_us:
                # Backoff expired in this very slot: the concurrent
                # starter is not yet sensible to our radio.  Let the
                # pending completion fire and transmit into the
                # collision (the DCF vulnerability window).
                self._transmit_despite_busy = True
                return
            self._backoff_event.cancel()
            elapsed = self.sim.now_us - (self._resume_started_at or 0)
            slots_consumed = max(0, (elapsed - self._difs_us)) // self._slot_us
            self._backoff_slots = max(0, self._backoff_slots - int(slots_consumed))
        self._backoff_event = None

    def on_medium_idle(self) -> None:
        """Medium callback: resume the countdown after DIFS."""
        if self._state == _State.CONTEND:
            self._try_resume()

    def _backoff_done(self) -> None:
        self._backoff_event = None
        transmit_anyway = self._transmit_despite_busy
        self._transmit_despite_busy = False
        if self._state != _State.CONTEND or self._pending is None:
            return
        if self._nav_until > self.sim.now_us or (
            not self._physical_idle() and not transmit_anyway
        ):
            self._try_resume()
            return
        pending = self._pending
        use_rts = (
            self.config.rts_threshold is not None
            and pending.ftype == FrameType.DATA
            and pending.size >= self.config.rts_threshold
        )
        if use_rts:
            self._send_rts(pending)
        else:
            self._send_data(pending)

    # -- transmission legs --------------------------------------------------

    def _data_duration_us(self, pending: _Pending) -> int:
        return self.phy.data_duration_us(pending.size, pending.rate_mbps)

    def _send_rts(self, pending: _Pending) -> None:
        cfg = self.config
        data_dur = self._data_duration_us(pending)
        nav = (
            3 * cfg.sifs_us
            + self.phy.control_duration_us(FrameType.CTS)
            + data_dur
            + self.phy.control_duration_us(FrameType.ACK)
        )
        frame = SimFrame(
            ftype=FrameType.RTS,
            src=self.node_id,
            dst=pending.dst,
            size=20,
            rate_mbps=BASIC_RATE_MBPS,
            seq=pending.seq,
            retry=pending.retries > 0,
            channel=self.channel,
            nav_us=nav,
        )
        self.stats.rts_attempts += 1
        self._state = _State.TX
        self.medium.transmit(self, frame, self._power_toward(pending.dst))
        timeout = (
            frame.duration_us
            + cfg.sifs_us
            + self.phy.control_duration_us(FrameType.CTS)
            + cfg.ack_timeout_margin_us
        )
        self._state = _State.WAIT_CTS
        self._timeout_event = self.sim.schedule_timeout_in(
            timeout, self._handshake_timeout
        )

    def _send_data(self, pending: _Pending) -> None:
        frame = SimFrame(
            ftype=pending.ftype,
            src=self.node_id,
            dst=pending.dst,
            size=pending.size,
            rate_mbps=pending.rate_mbps,
            seq=pending.seq,
            retry=pending.retries > 0,
            channel=self._channel,
        )
        if pending.ftype == FrameType.DATA:
            self.stats.data_attempts += 1
        duration = self.medium.transmit(
            self, frame, self._power_toward(pending.dst)
        ).frame.duration_us
        if pending.dst == BROADCAST:
            # Broadcasts are not acknowledged: done at the end of the tx.
            self._state = _State.TX
            self.sim.schedule_in(duration, self._broadcast_done)
            return
        timeout = (
            duration
            + self._sifs_us
            + self._ack_duration_us
            + self.config.ack_timeout_margin_us
        )
        self._state = _State.WAIT_ACK
        self._timeout_event = self.sim.schedule_timeout_in(timeout, self._ack_timeout)

    def _broadcast_done(self) -> None:
        self._pending = None
        self._begin_next()

    # -- outcomes --------------------------------------------------------

    def _ack_timeout(self) -> None:
        self._timeout_event = None
        if self._state != _State.WAIT_ACK or self._pending is None:
            return
        pending = self._pending
        self.rate_adaptation.on_failure(pending.dst)
        self._retry_or_drop(pending)

    def _handshake_timeout(self) -> None:
        self._timeout_event = None
        if self._state != _State.WAIT_CTS or self._pending is None:
            return
        pending = self._pending
        # A lost handshake is a channel-access failure, not a data-rate
        # failure; classic ARF implementations still count it.
        self.rate_adaptation.on_failure(pending.dst)
        self._retry_or_drop(pending)

    def _retry_or_drop(self, pending: _Pending) -> None:
        pending.retries += 1
        if pending.retries > self.config.retry_limit:
            self.stats.data_drops += 1
            self._pending = None
            if self.on_msdu_complete is not None and pending.ftype == FrameType.DATA:
                self.on_msdu_complete(pending.dst, False)
            self._begin_next()
            return
        self._cw = min((self._cw + 1) * 2 - 1, self.config.cw_max)
        pending.rate_mbps = (
            BASIC_RATE_MBPS
            if pending.ftype == FrameType.BEACON
            else self.rate_adaptation.rate_for(pending.dst)
        )
        self._draw_backoff()
        self._state = _State.CONTEND
        self._try_resume()

    def _fragment_or_success(self) -> None:
        """An ACK arrived: continue the fragment burst or finish the MSDU."""
        pending = self._pending
        if (
            pending is not None
            and pending.fragments is not None
            and pending.fragment_index < len(pending.fragments) - 1
        ):
            if self._timeout_event is not None:
                self._timeout_event.cancel()
                self._timeout_event = None
            self.rate_adaptation.on_success(pending.dst)
            pending.fragment_index += 1
            pending.size = pending.fragments[pending.fragment_index]
            pending.retries = 0
            self._cw = self.config.cw_min
            # The burst holds the channel: next fragment after SIFS.
            self.sim.schedule_in(
                self.config.sifs_us,
                lambda: self._send_fragment_continuation(pending),
            )
            return
        self._success()

    def _send_fragment_continuation(self, pending: _Pending) -> None:
        if self._pending is not pending:
            return  # superseded by a timeout-driven retry path
        self._send_data(pending)

    def _success(self) -> None:
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        pending = self._pending
        if pending is not None:
            self.rate_adaptation.on_success(pending.dst)
            if pending.ftype == FrameType.DATA:
                self.stats.data_successes += 1
        self._pending = None
        if (
            pending is not None
            and self.on_msdu_complete is not None
            and pending.ftype == FrameType.DATA
        ):
            self.on_msdu_complete(pending.dst, True)
        self._begin_next()

    # -- reception --------------------------------------------------------

    def _power_toward(self, dst: int) -> float:
        """Per-destination transmit power (closed-loop when TPC is on)."""
        if self.power_control is not None and dst != BROADCAST:
            return self.power_control.power_for(dst)
        return self.tx_power_dbm

    def on_frame_received(self, frame: SimFrame, snr_db: float) -> None:
        """Medium callback: a frame decoded successfully at this node."""
        if self._ra_wants_snr:
            self.rate_adaptation.on_feedback_snr(frame.src, snr_db)
        if self.power_control is not None:
            self.power_control.on_feedback_snr(frame.src, snr_db)

        if frame.dst != self.node_id:
            if frame.nav_us > 0:
                self._set_nav(self.sim.now_us + frame.nav_us)
            return

        if frame.ftype in (FrameType.DATA, FrameType.MGMT):
            self.stats.delivered_frames += 1
            self.stats.delivered_bytes += frame.size
            self._respond(FrameType.ACK, frame.src)
            if self.on_data_delivered is not None:
                self.on_data_delivered(frame)
        elif frame.ftype == FrameType.ACK:
            if self._state == _State.WAIT_ACK:
                self._fragment_or_success()
        elif frame.ftype == FrameType.CTS:
            if self._state == _State.WAIT_CTS and self._pending is not None:
                self.stats.cts_received += 1
                if self._timeout_event is not None:
                    self._timeout_event.cancel()
                pending = self._pending
                self.sim.schedule_in(
                    self.config.sifs_us, lambda: self._send_data_after_cts(pending)
                )
        elif frame.ftype == FrameType.RTS:
            self._respond(FrameType.CTS, frame.src, nav_us=frame.nav_us)

    def _send_data_after_cts(self, pending: _Pending) -> None:
        if self._pending is not pending:
            return  # superseded (timeout fired in the SIFS gap)
        self._send_data(pending)

    def _respond(self, ftype: FrameType, dst: int, nav_us: int = 0) -> None:
        """SIFS-spaced control response (ACK or CTS)."""
        remaining_nav = 0
        if ftype == FrameType.CTS and nav_us > 0:
            # CTS re-advertises the remaining reservation.
            remaining_nav = max(
                0,
                nav_us
                - self.config.sifs_us
                - self.phy.control_duration_us(FrameType.CTS),
            )
        frame = SimFrame(
            ftype=ftype,
            src=self.node_id,
            dst=dst,
            size=14,
            rate_mbps=BASIC_RATE_MBPS,
            channel=self._channel,
            nav_us=remaining_nav,
        )
        self.sim.schedule_in(
            self._sifs_us,
            lambda: self.medium.transmit(self, frame, self._power_toward(dst)),
        )

    def _set_nav(self, until_us: int) -> None:
        if until_us > self._nav_until:
            self._nav_until = until_us
            if self._state == _State.CONTEND:
                self._try_resume()
