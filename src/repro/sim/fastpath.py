"""Columnar batch-stepped DCF core — the ``fidelity="fast"`` engine.

The default simulator is a discrete-event machine: every backoff slot,
ACK and timeout is one Python callback, which pins it near ~36 us of
order-frozen work per frame (see BENCH_sim.json history).  This module
trades byte-identical event ordering for throughput: it steps a whole
channel cell per *window epoch* (default one second, matching the
paper's analysis granularity) with every per-frame quantity held in
numpy arrays.

What stays exact
----------------
* Topology, roles, placements, associations, obstruction shadowing:
  the fast engine wraps a normally built :class:`~repro.sim.builder.
  BuiltScenario`, so the builder's seeded RNG streams are consumed
  identically and the network is the same network the default engine
  would simulate.
* The PHY: frame durations (paper Table 2), the BER/processing-gain
  ladder and per-frame success probabilities reuse
  :class:`~repro.sim.phy.PhyModel` arithmetic, vectorised.
* Arrival processes: per-flow Poisson counts per 100 ms sub-slice with
  order-statistics uniform placement — an exact Poisson process for
  the same rate schedules.
* The capture model: sniffer audibility, SNR-dependent decode and the
  load-proportional hardware-drop law from
  :class:`~repro.sim.sniffer.SnifferConfig`.

What is relaxed (and validated statistically instead of by digest)
------------------------------------------------------------------
* RNG draw order and event interleaving: frames are serialised per
  window with a vectorised Lindley recursion
  (``start_i = max(arrival_i, finish_{i-1})``), not one event per slot.
* Contention: collisions are sampled from a hidden-terminal coupling
  model — per-source airtime measured over recent windows against the
  carrier-sense graph — instead of per-slot medium arbitration.
* Rate selection: each link transmits at the highest rate whose frame
  error probability clears a target — the stationary point ARF hovers
  around — instead of per-ACK ladder moves.

``tests/sim/test_fast_fidelity.py`` holds the contract: delivery
ratio, channel utilization and busy-time share must agree with the
default engine within bootstrap confidence bands across seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..frames import (
    ACK_FRAME_BYTES,
    BEACON_BODY_BYTES,
    BROADCAST,
    CTS_FRAME_BYTES,
    DOT11_RATES_MBPS,
    RTS_FRAME_BYTES,
    FrameType,
    NodeRoster,
    Trace,
    rate_to_code,
)
from .builder import MAX_FRAME_AIRTIME_US, _DEFAULT_CHUNK_FRAMES, BuiltScenario
from .node import BEACON_INTERVAL_US
from .phy import BASIC_RATE_MBPS

__all__ = ["FIDELITY_MODES", "FastBuiltScenario"]

#: The engine fidelities a scenario can be built at.
FIDELITY_MODES = ("default", "fast")

#: Draws pre-sampled from the configured size mixture at init; window
#: steps bootstrap-resample this pool instead of calling the scalar
#: sampler once per frame.
_SIZE_POOL = 4096

#: Rate-schedule evaluation granularity inside a window.  100 ms keeps
#: ``LinearRamp`` faithful and divides the 1 s ``ModulatedRate`` epoch.
_SUBSLICE_US = 100_000

#: EWMA weight for the measured per-source airtime that drives the
#: next window's hidden-terminal collision probability.
_BUSY_EWMA = 0.5

#: Hidden-terminal vulnerability factor.  A frame of duration T is lost
#: when a station hidden from its transmitter starts anywhere inside
#: ``T + T_hidden`` — roughly twice its own airtime for comparable
#: frame lengths — so overlap probability is ``1 - exp(-k * busy)``
#: against the hidden cohort's busy fraction.  k sits a notch above
#: the geometric ~2 because the event engine charges an overlapping
#: interferer's full power for the whole frame (see Medium._finish),
#: which is harsher than proportional-overlap corruption.  Calibrated
#: on uniform n={3,10,20} x seeds {7,21,42} against the default
#: engine's delivery ratios.
_HIDDEN_COUPLING = 2.5

#: Probability that a retry reuses the job-level hidden-collision draw
#: instead of a fresh one.  Hidden pairs cannot see each other, so
#: after a collision both sides retry into the same interference and
#: re-collide — the retry storms that saturate hidden victims in the
#: event engine.  1.0 would doom a colliding job for all its retries;
#: 0.0 would make attempts independent.
_HIDDEN_PERSIST = 0.8

#: Reference frame size and PER target for the per-link rate choice —
#: the stationary point of the default engine's SNR-oracle policy.
#: The oracle seeds at 11 Mbps and tracks a noisy EWMA of observed
#: (interference-depressed) SNR, so its effective choice is a notch
#: more aggressive than the clean steady state; the PER target is
#: calibrated against its measured retry rates.
_RATE_REF_SIZE = 1000
_RATE_TARGET_PER = 0.1

#: Association/probe management frame emitted at activity start.
_MGMT_BYTES = 64

_DATA = int(FrameType.DATA)
_MGMT = int(FrameType.MGMT)
_BEACON = int(FrameType.BEACON)


def _log1p_neg_ber(phy, snr_db: float, rate_mbps: float) -> float:
    """log(1 - BER) with PhyModel's clamp, as used by its success laws."""
    ber = phy.bit_error_rate(snr_db, rate_mbps)
    return math.log1p(-min(ber, 1 - 1e-12))


@dataclass
class _FastMediumStats:
    """Stands in for ``ScenarioResult.medium`` after a fast run."""

    frames_transmitted: int = 0


class _ChannelCell:
    """Mutable per-channel scheduling state carried across windows."""

    __slots__ = ("busy_until", "backlog", "row_buffer", "truth_buffer", "src_busy")

    def __init__(self, max_id: int) -> None:
        self.busy_until = 0
        #: Jobs whose service did not start before the window closed:
        #: dict of flow/arrival/size/seq/ftype arrays, or None.
        self.backlog: dict[str, np.ndarray] | None = None
        #: Emitted rows whose timestamps run past the released horizon.
        self.row_buffer: list[dict[str, np.ndarray]] = []
        self.truth_buffer: list[dict[str, np.ndarray]] = []
        #: EWMA per-source transmit airtime fraction from past windows;
        #: drives the hidden-terminal loss term of the next window.
        self.src_busy = np.zeros(max_id, dtype=np.float64)


class FastBuiltScenario:
    """A built scenario that runs on the columnar fast engine.

    Exposes the same surface as :class:`~repro.sim.builder.
    BuiltScenario` — ``run()``, ``stream()``, ``roster``,
    ``perf_counters`` and the headline counters — so campaigns,
    benchmarks and the pipeline drive either engine unchanged.
    """

    fidelity = "fast"

    def __init__(self, built: BuiltScenario) -> None:
        self._built = built
        self.config = built.config
        self.phy = built.phy
        self.sim = built.sim
        self._consumed = False
        self._rng = np.random.default_rng([int(built.config.seed), 0xFA57])

        self.frames_transmitted = 0
        self.frames_captured = 0
        self._offered = 0
        self._data_attempts = 0
        self._data_successes = 0
        self._data_drops = 0
        self._queue_overflows = 0
        self._windows_stepped = 0
        self._jobs_batched = 0

        self._extract_topology(built)

    # ------------------------------------------------------------------
    # topology extraction (runs once, scalar math is fine here)
    # ------------------------------------------------------------------

    def _extract_topology(self, built: BuiltScenario) -> None:
        config = built.config
        propagation = built.propagation
        noise = propagation.noise_floor_dbm
        phy = built.phy

        macs = {ap.node_id: ap.mac for ap in built.aps}
        macs.update({s.node_id: s.mac for s in built.stations})

        def link_power(tx_id: int, rx_id: int) -> float:
            tx, rx = macs[tx_id], macs[rx_id]
            return propagation.received_power_dbm(
                tx.tx_power_dbm, tx.position, rx.position, tx_id=tx_id, rx_id=rx_id
            )

        def link_decodes(power: float, rx_id: int) -> bool:
            # Mirror the medium's decode gate: below the receiver's
            # decode floor a frame is pure noise regardless of BER.
            floor = getattr(
                macs[rx_id], "decode_threshold_dbm", noise + 1.0
            )
            return power >= floor

        # Bootstrap pool for the configured size mixture: the scalar
        # sampler runs _SIZE_POOL times at init, then windows resample
        # the pool with vectorised integer draws.
        pool_rng = np.random.default_rng([int(config.seed), 0x512E])
        sampler = config.size_mix
        self._size_pool = np.fromiter(
            (sampler(pool_rng) for _ in range(_SIZE_POOL)),
            dtype=np.int64,
            count=_SIZE_POOL,
        )

        # Hidden-pair matrix.  A transmission from s collides when a
        # node h that cannot carrier-sense s starts mid-frame, or when
        # s itself starts over an in-flight frame it cannot sense — so
        # the vulnerable set for s is symmetric: pairs where either
        # side fails to sense the other.  Overlap analysis of the event
        # engine shows this is essentially its *only* collision source
        # (same-slot backoff ties are ~one in thousands of frames).
        # Losses are fed by each window's measured per-source airtime
        # (see _step_cell).
        ids = sorted(macs)
        self._max_id = max(ids) + 1
        cant_sense = np.zeros((self._max_id, self._max_id), dtype=bool)
        for s_id in ids:
            s_mac = macs[s_id]
            for h_id in ids:
                if h_id == s_id:
                    continue
                power = propagation.received_power_dbm(
                    macs[h_id].tx_power_dbm,
                    macs[h_id].position,
                    s_mac.position,
                    tx_id=h_id,
                    rx_id=s_id,
                )
                if power < s_mac.sense_threshold_dbm:
                    cant_sense[s_id, h_id] = True
        self._hidden = cant_sense | cant_sense.T

        # Channel visibility: the share of the room that carrier-senses
        # each node.  A transmission only occupies the *shared* channel
        # timeline to the extent other contenders defer to it — a badly
        # shadowed station nobody senses transmits in parallel with
        # everyone else (that is what being hidden means), so its
        # airtime must not serialise against the cohort's.
        n_others = max(len(ids) - 1, 1)
        self._visibility = np.ones(self._max_id, dtype=np.float64)
        for s_id in ids:
            unseen = int(cant_sense[:, s_id].sum())
            self._visibility[s_id] = max(1.0 - unseen / n_others, 0.05)

        # Sniffer-side per-node decode terms.  Sniffers are co-located
        # (one per channel at the same position), so one geometry pass
        # covers every channel.
        sniffer = built.sniffers[0]
        self._sniff_cfg = sniffer.config
        max_id = max(macs) + 1
        self._sniff_snr = np.zeros(max_id, dtype=np.float64)
        self._sniff_audible = np.zeros(max_id, dtype=bool)
        #: log(1-BER) at the sniffer per node and 802.11b rate code;
        #: column 0 (1 Mbps) also covers PLCP headers + control bodies.
        self._sniff_lr = np.zeros((max_id, len(DOT11_RATES_MBPS)), dtype=np.float64)
        for node_id, mac in macs.items():
            power = propagation.received_power_dbm(
                mac.tx_power_dbm,
                mac.position,
                sniffer.position,
                tx_id=node_id,
                rx_id=sniffer.node_id,
            )
            snr = power - noise
            self._sniff_snr[node_id] = snr
            self._sniff_audible[node_id] = power >= self._sniff_cfg.sensitivity_dbm
            for code, rate in enumerate(DOT11_RATES_MBPS):
                self._sniff_lr[node_id, code] = _log1p_neg_ber(phy, snr, rate)

        # -- flows: uplink + downlink per station, one beacon flow per AP
        flow_src: list[int] = []
        flow_dst: list[int] = []
        flow_rate: list[float] = []
        flow_chan: list[int] = []
        flow_rts: list[bool] = []
        flow_l1: list[float] = []   # link log(1-BER) at 1 Mbps (header)
        flow_lr: list[float] = []   # link log(1-BER) at the flow rate
        flow_p_ack: list[float] = []
        flow_p_hand: list[float] = []
        flow_hidw: list[np.ndarray] = []
        self._schedules: list[object] = []
        self._activity: list[tuple[int, int]] = []

        def frame_success(snr_db: float, rate: float, bits: float) -> float:
            return math.exp(
                48.0 * _log1p_neg_ber(phy, snr_db, BASIC_RATE_MBPS)
                + bits * _log1p_neg_ber(phy, snr_db, rate)
            )

        def hidden_weights(src, dst, rate, fwd_power):
            """Per-interferer loss probability given a hidden overlap.

            A station is usually hidden *because* its signal is weak, and
            a weak interferer rarely corrupts — the capture effect.  The
            weight is the extra frame loss at the receiver with the
            interferer's power added to the noise floor (SINR), so storm
            traffic from a barely-audible corner of the room discounts
            itself while a strong hidden peer scores ~1.
            """
            bits = 8.0 * (34 + _RATE_REF_SIZE)
            row = np.zeros(self._max_id, dtype=np.float64)
            p_clean = frame_success(fwd_power - noise, rate, bits)
            for h in ids:
                if h == src or not self._hidden[src, h]:
                    continue
                if h == dst:
                    row[h] = 1.0       # the receiver itself transmitting
                    continue
                interference = link_power(h, dst)
                snr_eff = fwd_power - 10.0 * math.log10(
                    10.0 ** (noise / 10.0) + 10.0 ** (interference / 10.0)
                )
                p_eff = frame_success(snr_eff, rate, bits)
                row[h] = min(1.0, max(0.0, 1.0 - p_eff / max(p_clean, 1e-12)))
            return row

        def add_flow(src, dst, channel, schedule, window, rts, beacon=False):
            if beacon:
                snr, rate = 40.0, BASIC_RATE_MBPS
            else:
                snr = link_power(src, dst) - noise
                rate = phy.best_rate_for_snr(
                    snr, size_bytes=_RATE_REF_SIZE, target_per=_RATE_TARGET_PER
                )
            flow_src.append(src)
            flow_dst.append(dst)
            flow_rate.append(rate)
            flow_chan.append(channel)
            flow_rts.append(rts)
            flow_l1.append(_log1p_neg_ber(phy, snr, BASIC_RATE_MBPS))
            flow_lr.append(_log1p_neg_ber(phy, snr, rate))
            if beacon:
                flow_p_ack.append(1.0)
                flow_p_hand.append(1.0)
                flow_hidw.append(np.zeros(self._max_id, dtype=np.float64))
            else:
                # The medium's decode gate: a frame (or its ACK/CTS)
                # below the receiver's decode floor never succeeds,
                # whatever the BER says — this is what makes a badly
                # shadowed station's link *dead* rather than lossy,
                # and its retry storms are real traffic.
                fwd_power = link_power(src, dst)
                rev_power = link_power(dst, src)
                rev = rev_power - noise
                alive = float(
                    link_decodes(fwd_power, dst) and link_decodes(rev_power, src)
                )
                flow_p_ack.append(
                    alive * phy.control_success_probability(rev, FrameType.ACK)
                )
                flow_p_hand.append(
                    alive
                    * phy.control_success_probability(snr, FrameType.RTS)
                    * phy.control_success_probability(rev, FrameType.CTS)
                )
                flow_hidw.append(hidden_weights(src, dst, rate, fwd_power))
            self._schedules.append(schedule)
            self._activity.append(window)

        duration_us = config.duration_us
        for j, station in enumerate(built.stations):
            up = built.sources[2 * j]
            down = built.sources[2 * j + 1]
            start = int(up.start_us)
            end = duration_us if up.end_us is None else int(up.end_us)
            window = (start, end)
            add_flow(
                station.node_id, station.ap_id, station.mac.channel,
                up.schedule, window, built.roles[j].uses_rtscts,
            )
            add_flow(
                station.ap_id, station.node_id, station.mac.channel,
                down.schedule, window, False,
            )
        self._n_traffic_flows = len(flow_src)
        self._beacon_offsets: list[int] = []
        for ap in built.aps:
            add_flow(
                ap.node_id, BROADCAST, ap.channel,
                None, (0, duration_us), False, beacon=True,
            )
            self._beacon_offsets.append(
                int(self._rng.integers(0, BEACON_INTERVAL_US))
            )

        self.flow_src = np.array(flow_src, dtype=np.int64)
        self.flow_dst = np.array(flow_dst, dtype=np.int64)
        self.flow_rate_code = np.array(
            [rate_to_code(r) for r in flow_rate], dtype=np.int64
        )
        self.flow_chan = np.array(flow_chan, dtype=np.int64)
        self.flow_rts = np.array(flow_rts, dtype=bool)
        self.flow_l1 = np.array(flow_l1, dtype=np.float64)
        self.flow_lr = np.array(flow_lr, dtype=np.float64)
        self.flow_p_ack = np.array(flow_p_ack, dtype=np.float64)
        self.flow_p_hand = np.array(flow_p_hand, dtype=np.float64)
        self.flow_hidw = np.array(flow_hidw, dtype=np.float64)
        self._rates_by_code = np.array(DOT11_RATES_MBPS, dtype=np.float64)

        self._seq_counter = np.zeros(max_id, dtype=np.int64)

        mac_cfg = config.mac_config
        self._sifs = int(mac_cfg.sifs_us)
        self._difs = int(mac_cfg.difs_us)
        self._slot = int(mac_cfg.slot_us)
        self._retry_limit = int(mac_cfg.retry_limit)
        self._queue_limit = int(mac_cfg.queue_limit)
        self._ack_margin = int(mac_cfg.ack_timeout_margin_us)
        self._ack_dur = phy.control_duration_us(FrameType.ACK)
        self._cts_dur = phy.control_duration_us(FrameType.CTS)
        self._rts_dur = phy.control_duration_us(FrameType.RTS)
        self._beacon_dur = phy.control_duration_us(FrameType.BEACON)
        # Contention-window ladder per attempt: 31, 63, 127, 255, 255...
        ladder, cw = [], mac_cfg.cw_min
        for _ in range(self._retry_limit + 1):
            ladder.append(cw)
            cw = min((cw + 1) * 2 - 1, mac_cfg.cw_max)
        self._cw_ladder = np.array(ladder, dtype=np.float64)

        self._channels = [int(c) for c in config.channels]
        self._cells = {c: _ChannelCell(self._max_id) for c in self._channels}
        self._chan_flows = {
            c: np.flatnonzero(self.flow_chan == c) for c in self._channels
        }

    # ------------------------------------------------------------------
    # public surface (BuiltScenario parity)
    # ------------------------------------------------------------------

    @property
    def roster(self) -> NodeRoster:
        return self._built.roster

    @property
    def offered_packets(self) -> int:
        return self._offered

    @property
    def capture_ratio(self) -> float:
        total = self.frames_transmitted
        return self.frames_captured / total if total else 0.0

    @property
    def delivery_ratio(self) -> float:
        if not self._data_attempts:
            return 0.0
        return self._data_successes / self._data_attempts

    @property
    def perf_counters(self) -> dict[str, int]:
        """Batch-engine diagnostics.

        The event-loop counters are structurally zero here — nothing is
        heap-scheduled — while ``slot_epochs`` and ``batched_jobs``
        report the columnar work instead, so profiles and benchmark
        reports can tell the two engine shapes apart.
        """
        return {
            "frames_transmitted": self.frames_transmitted,
            "events_processed": 0,
            "events_cancelled": 0,
            "events_pending": 0,
            "slot_epochs": self._windows_stepped,
            "batched_jobs": self._jobs_batched,
        }

    def _consume(self) -> None:
        if self._consumed:
            raise RuntimeError(
                "this FastBuiltScenario has already run; build a fresh one"
            )
        self._consumed = True

    def run(self):
        """Run to completion; return a buffered :class:`ScenarioResult`."""
        from .scenarios import ScenarioResult

        self._consume()
        capture: list[Trace] = []
        truth_rows: list[dict[str, np.ndarray]] = []
        for chunk, truth in self._window_loop(1_000_000, keep_truth=True):
            if len(chunk):
                capture.append(chunk)
            truth_rows.extend(truth)
        trace = Trace.concatenate(capture) if capture else Trace.empty()
        ground = self._rows_to_trace(truth_rows).sorted_by_time()
        return ScenarioResult(
            trace=trace,
            ground_truth=ground,
            roster=self.roster,
            stations=self._built.stations,
            aps=self._built.aps,
            sniffers=self._built.sniffers,
            medium=_FastMediumStats(frames_transmitted=self.frames_transmitted),
            sim=self.sim,
            config=self.config,
        )

    def stream(
        self,
        chunk_frames: int = _DEFAULT_CHUNK_FRAMES,
        window_s: float = 1.0,
        drain_guard_us: int = MAX_FRAME_AIRTIME_US,
        record_ground_truth: bool = False,
    ):
        """Yield the capture as bounded, globally time-sorted chunks."""
        if chunk_frames <= 0:
            raise ValueError("chunk_frames must be positive")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self._consume()
        window_us = max(int(window_s * 1_000_000), 1)
        for chunk, _ in self._window_loop(window_us, keep_truth=False):
            for lo in range(0, len(chunk), chunk_frames):
                part = chunk.slice_rows(lo, min(lo + chunk_frames, len(chunk)))
                if len(part):
                    yield part

    # ------------------------------------------------------------------
    # the window loop
    # ------------------------------------------------------------------

    def _window_loop(self, window_us: int, keep_truth: bool):
        duration = self.config.duration_us
        t0 = 0
        while t0 < duration:
            t1 = min(t0 + window_us, duration)
            final = t1 >= duration
            released: list[dict[str, np.ndarray]] = []
            truth_released: list[dict[str, np.ndarray]] = []
            for channel in self._channels:
                cell = self._cells[channel]
                self._step_cell(cell, channel, t0, t1, keep_truth)
                released.extend(self._release(cell.row_buffer, t1, final))
                if keep_truth:
                    truth_released.extend(
                        self._release(cell.truth_buffer, t1, final)
                    )
            self._windows_stepped += 1
            chunk = self._rows_to_trace(released).sorted_by_time()
            yield chunk, truth_released
            t0 = t1

    @staticmethod
    def _release(
        buffer: list[dict[str, np.ndarray]], until_us: int, everything: bool
    ) -> list[dict[str, np.ndarray]]:
        """Pop rows with ``time_us < until_us`` out of a cell buffer.

        Rows later than the window horizon stay buffered so the merged
        multi-channel stream is globally time-sorted: a backed-up
        channel may compute rows seconds ahead of a quiet one.
        """
        released: list[dict[str, np.ndarray]] = []
        kept: list[dict[str, np.ndarray]] = []
        for rows in buffer:
            if everything:
                released.append(rows)
                continue
            mask = rows["time_us"] < until_us
            if mask.all():
                released.append(rows)
            elif mask.any():
                released.append({k: v[mask] for k, v in rows.items()})
                kept.append({k: v[~mask] for k, v in rows.items()})
            else:
                kept.append(rows)
        buffer[:] = kept
        return released

    @staticmethod
    def _rows_to_trace(rows: list[dict[str, np.ndarray]]) -> Trace:
        if not rows:
            return Trace.empty()
        return Trace(
            {name: np.concatenate([r[name] for r in rows]) for name in rows[0]}
        )

    # -- one channel, one window ----------------------------------------

    def _step_cell(
        self, cell: _ChannelCell, channel: int, t0: int, t1: int, keep_truth: bool
    ) -> None:
        rng = self._rng
        jflow, jarr, jsize, jftype = self._generate_arrivals(
            self._chan_flows[channel], t0, t1
        )

        n_backlog = 0
        jseq_backlog = np.empty(0, dtype=np.int64)
        if cell.backlog is not None:
            b = cell.backlog
            n_backlog = len(b["flow"])
            jflow = np.concatenate([b["flow"], jflow])
            jarr = np.concatenate([b["arrival"], jarr])
            jsize = np.concatenate([b["size"], jsize])
            jftype = np.concatenate([b["ftype"], jftype])
            jseq_backlog = b["seq"]
            cell.backlog = None

        n = len(jflow)
        if n == 0:
            cell.busy_until = max(cell.busy_until, t0)
            cell.src_busy *= 1.0 - _BUSY_EWMA
            return

        order = np.argsort(jarr, kind="stable")
        jflow, jarr = jflow[order], jarr[order]
        jsize, jftype = jsize[order], jftype[order]

        # Sequence numbers: backlogged jobs keep the ones assigned at
        # their original arrival; fresh jobs get per-source modulo-4096
        # MSDU counters in arrival order, mirroring the per-MAC counter.
        jseq = np.empty(n, dtype=np.int64)
        fresh_pos = np.flatnonzero(order >= n_backlog)
        back_pos = np.flatnonzero(order < n_backlog)
        jseq[back_pos] = jseq_backlog[order[back_pos]]
        if len(fresh_pos):
            jseq[fresh_pos] = self._assign_seqs(self.flow_src[jflow[fresh_pos]])

        self._jobs_batched += n

        is_beacon = jftype == _BEACON
        is_data = jftype == _DATA
        use_rts = self.flow_rts[jflow] & ~is_beacon
        rate_code = np.where(is_beacon, 0, self.flow_rate_code[jflow])
        rate = self._rates_by_code[rate_code]
        timing = self.phy.timing
        data_dur = np.where(
            is_beacon,
            float(self._beacon_dur),
            np.round(
                timing.plcp_us + 8.0 * (timing.mac_overhead_bytes + jsize) / rate
            ),
        ).astype(np.int64)

        # -- per-attempt success draws ----------------------------------
        body_bits = 8.0 * (timing.mac_overhead_bytes + jsize)
        p_frame = np.exp(
            48.0 * self.flow_l1[jflow] + body_bits * self.flow_lr[jflow]
        )

        # Hidden-terminal losses — the engine's collision model.  A
        # transmitter cannot defer to stations it cannot sense (nor
        # they to it), so its frame is clobbered in proportion to the
        # hidden cohort's airtime measured over recent windows.
        # RTS/CTS flows are vulnerable only at the short handshake — the
        # CTS silences hidden stations for the data leg, which is the
        # paper's motivation for the handshake.
        jsrc = self.flow_src[jflow]
        hid_exposure = self.flow_hidw[jflow] @ cell.src_busy
        no_hid = np.exp(-_HIDDEN_COUPLING * hid_exposure)[:, None]

        A = self._retry_limit + 1
        link_p = (p_frame * self.flow_p_ack[jflow])[:, None]

        # Hidden collisions are sticky across a job's retries: the two
        # sides of a hidden pair cannot coordinate, so both retry into
        # the same interference.  Each attempt reuses the job-level
        # uniform with probability _HIDDEN_PERSIST, else redraws.
        u_job = rng.random(n)[:, None]
        u_att = rng.random((n, A))
        sticky = rng.random((n, A)) < _HIDDEN_PERSIST
        hid_ok = np.where(sticky, u_job, u_att) < no_hid

        # RTS flows resolve contention at the handshake (the CTS
        # silences hidden stations for the data leg); plain flows are
        # exposed at the data frame itself.
        link_hand = np.where(
            use_rts[:, None], self.flow_p_hand[jflow][:, None], 1.0
        )
        hand_ok = (rng.random((n, A)) < link_hand) & (
            hid_ok | ~use_rts[:, None]
        )
        attempt_ok = (
            hand_ok
            & (rng.random((n, A)) < link_p)
            & (hid_ok | use_rts[:, None])
        )
        attempt_ok[is_beacon] = True       # broadcasts never retry
        delivered = attempt_ok.any(axis=1)
        natt = np.where(delivered, attempt_ok.argmax(axis=1) + 1, A)
        natt = np.where(is_beacon, 1, natt)

        used = np.arange(A)[None, :] < natt[:, None]
        success = attempt_ok & used
        backoff = np.floor(
            rng.random((n, A)) * (self._cw_ladder[None, :] + 1.0)
        ).astype(np.int64)

        # -- per-attempt durations --------------------------------------
        pre = self._difs + backoff * self._slot
        rts_leg = np.where(
            use_rts[:, None],
            np.where(
                hand_ok,
                self._rts_dur + self._sifs + self._cts_dur + self._sifs,
                self._rts_dur + self._sifs + self._cts_dur + self._ack_margin,
            ),
            0,
        )
        data_reached = ~use_rts[:, None] | hand_ok
        ack_tail = np.where(
            success,
            self._sifs + self._ack_dur,
            self._sifs + self._ack_dur + self._ack_margin,
        )
        ack_tail[is_beacon] = 0
        data_leg = np.where(data_reached, data_dur[:, None] + ack_tail, 0)
        att_dur = np.where(used, pre + rts_leg + data_leg, 0)
        service = att_dur.sum(axis=1)

        # -- serialise the channel (vectorised Lindley recursion) -------
        # Each job's full airtime stamps its emitted rows, but it only
        # advances the shared channel clock by its visibility-scaled
        # share: transmissions nobody senses overlap instead of
        # queueing, which is how the event engine's channel airtime
        # exceeds 1.0 under hidden-terminal storms.
        base = max(cell.busy_until, t0)
        arr_eff = np.maximum(jarr, base)
        service_eff = service * self._visibility[jsrc]
        cum = np.cumsum(service_eff)
        finish = (
            np.maximum.accumulate(arr_eff - np.concatenate(([0], cum[:-1]))) + cum
        )
        start = finish - service_eff

        kept = start < t1
        if not kept.all():
            spill_idx = np.flatnonzero(~kept)
            # MAC queue cap on the carried backlog: jobs are in arrival
            # order, so per-source drop-tail beyond queue_limit matches
            # the event engine's 200-deep instantaneous queue.
            hold = self._cap_backlog(self.flow_src[jflow[spill_idx]])
            spill_idx = spill_idx[hold]
            cell.backlog = {
                "flow": jflow[spill_idx],
                "arrival": jarr[spill_idx],
                "size": jsize[spill_idx],
                "seq": jseq[spill_idx],
                "ftype": jftype[spill_idx],
            }
        n_kept = int(np.count_nonzero(kept))
        if n_kept == 0:
            cell.busy_until = max(base, t1)
            cell.src_busy *= 1.0 - _BUSY_EWMA
            return
        cell.busy_until = max(t1, int(finish[kept][-1]))

        # Per-source transmit airtime this window feeds the next
        # window's hidden-terminal exposure.  Only the transmitter-side
        # legs count: RTS frames plus reached data/beacon frames.
        # Spilled jobs count too: the event engine does not serialise
        # hidden transmissions, so its channel airtime can exceed 1.0
        # under saturation — demanded airtime, not served airtime, is
        # what a hidden listener is exposed to.
        tx_us = (
            (used & use_rts[:, None]).astype(np.float64) * self._rts_dur
            + (used & data_reached).astype(np.float64) * data_dur[:, None]
        ).sum(axis=1)
        busy_frac = (
            np.bincount(jsrc, weights=tx_us, minlength=self._max_id)
            / float(t1 - t0)
        )
        cell.src_busy = (
            (1.0 - _BUSY_EWMA) * cell.src_busy + _BUSY_EWMA * busy_frac
        )

        self._emit_rows(
            cell, channel, keep_truth,
            jflow[kept], jsize[kept], jseq[kept], jftype[kept],
            rate_code[kept], data_dur[kept], is_beacon[kept], use_rts[kept],
            used[kept], success[kept], hand_ok[kept],
            att_dur[kept], backoff[kept], start[kept],
            delivered[kept], is_data[kept],
        )

    # -- arrivals --------------------------------------------------------

    def _generate_arrivals(self, flows: np.ndarray, t0: int, t1: int):
        """Poisson data + beacons + activity-start MGMT for [t0, t1)."""
        rng = self._rng
        jf: list[np.ndarray] = []
        ja: list[np.ndarray] = []
        js: list[np.ndarray] = []
        jt: list[np.ndarray] = []

        for fi in flows:
            fi = int(fi)
            if fi >= self._n_traffic_flows:          # beacon flow
                offset = self._beacon_offsets[fi - self._n_traffic_flows]
                if t0 <= offset:
                    first = offset
                else:
                    periods = -(-(t0 - offset) // BEACON_INTERVAL_US)
                    first = offset + periods * BEACON_INTERVAL_US
                times = np.arange(first, t1, BEACON_INTERVAL_US, dtype=np.int64)
                if len(times):
                    jf.append(np.full(len(times), fi, dtype=np.int64))
                    ja.append(times)
                    js.append(
                        np.full(len(times), BEACON_BODY_BYTES, dtype=np.int64)
                    )
                    jt.append(np.full(len(times), _BEACON, dtype=np.int64))
                continue

            start, end = self._activity[fi]
            # Association management frame right at activity start
            # (uplink flows sit at even indices).
            if fi % 2 == 0 and t0 <= start < t1 and start < end:
                jf.append(np.array([fi], dtype=np.int64))
                ja.append(np.array([start], dtype=np.int64))
                js.append(np.array([_MGMT_BYTES], dtype=np.int64))
                jt.append(np.array([_MGMT], dtype=np.int64))

            lo, hi = max(t0, start), min(t1, end)
            if hi <= lo:
                continue
            schedule = self._schedules[fi]
            edges = np.arange(lo, hi, _SUBSLICE_US, dtype=np.int64)
            widths = np.minimum(edges + _SUBSLICE_US, hi) - edges
            rates = np.array(
                [schedule.rate_at(int(e + w // 2)) for e, w in zip(edges, widths)],
                dtype=np.float64,
            )
            counts = rng.poisson(np.maximum(rates, 0.0) * (widths / 1e6))
            total = int(counts.sum())
            if not total:
                continue
            base = np.repeat(edges, counts)
            width = np.repeat(widths, counts)
            times = (base + rng.random(total) * width).astype(np.int64)
            jf.append(np.full(total, fi, dtype=np.int64))
            ja.append(times)
            js.append(self._size_pool[rng.integers(0, _SIZE_POOL, total)])
            jt.append(np.full(total, _DATA, dtype=np.int64))
            self._offered += total

        if not jf:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty, empty
        return (
            np.concatenate(jf),
            np.concatenate(ja),
            np.concatenate(js),
            np.concatenate(jt),
        )

    def _assign_seqs(self, src_ids: np.ndarray) -> np.ndarray:
        """Per-source modulo-4096 MSDU counters, grouped per window."""
        seqs = np.empty(len(src_ids), dtype=np.int64)
        order = np.argsort(src_ids, kind="stable")
        sorted_src = src_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_src)) + 1
        start = 0
        for end in [*boundaries.tolist(), len(sorted_src)]:
            if end <= start:
                continue
            src = int(sorted_src[start])
            count = end - start
            base = int(self._seq_counter[src])
            seqs[order[start:end]] = (base + 1 + np.arange(count)) % 4096
            self._seq_counter[src] = (base + count) % 4096
            start = end
        return seqs

    def _cap_backlog(self, spill_src: np.ndarray) -> np.ndarray:
        """Keep-mask limiting each source's carried backlog (drop-tail).

        ``spill_src`` is in arrival order, so ranking each job within
        its source and cutting at ``queue_limit`` drops the latest
        arrivals — what a full MAC queue does.
        """
        keep = np.ones(len(spill_src), dtype=bool)
        order = np.argsort(spill_src, kind="stable")
        sorted_src = spill_src[order]
        boundaries = np.flatnonzero(np.diff(sorted_src)) + 1
        start = 0
        for end in [*boundaries.tolist(), len(sorted_src)]:
            count = end - start
            if count > self._queue_limit:
                keep[order[start + self._queue_limit : end]] = False
                self._queue_overflows += count - self._queue_limit
            start = end
        return keep

    # -- row emission ----------------------------------------------------

    def _emit_rows(
        self, cell, channel, keep_truth,
        jflow, jsize, jseq, jftype, rate_code, data_dur, is_beacon, use_rts,
        used, success, hand_ok, att_dur, backoff, start, delivered, is_data,
    ) -> None:
        n, A = used.shape
        src = self.flow_src[jflow]
        dst = self.flow_dst[jflow]
        basic_code = rate_to_code(BASIC_RATE_MBPS)

        att_start = start[:, None] + np.cumsum(att_dur, axis=1) - att_dur
        pre = self._difs + backoff * self._slot
        retry_bit = np.broadcast_to(np.arange(A)[None, :] > 0, used.shape)

        cols: dict[str, list[np.ndarray]] = {
            k: []
            for k in (
                "time_us", "ftype", "rate_code", "size", "src", "dst",
                "retry", "seq",
            )
        }

        def add(mask, time2d, ftype_rows, rc_rows, size_rows, src_rows,
                dst_rows, retry2d, seq_rows):
            ji, ai = np.nonzero(mask)
            count = len(ji)
            if not count:
                return
            cols["time_us"].append(time2d[ji, ai].astype(np.int64))
            cols["ftype"].append(np.broadcast_to(ftype_rows, (n,))[ji])
            cols["rate_code"].append(np.broadcast_to(rc_rows, (n,))[ji])
            cols["size"].append(np.broadcast_to(size_rows, (n,))[ji])
            cols["src"].append(src_rows[ji])
            cols["dst"].append(dst_rows[ji])
            if retry2d is None:
                cols["retry"].append(np.zeros(count, dtype=bool))
            else:
                cols["retry"].append(retry2d[ji, ai])
            if seq_rows is None:
                cols["seq"].append(np.zeros(count, dtype=np.int64))
            else:
                cols["seq"].append(seq_rows[ji])

        # RTS attempts (every used attempt of an RTS job).
        rts_mask = used & use_rts[:, None]
        rts_time = att_start + pre
        add(rts_mask, rts_time, np.int64(int(FrameType.RTS)),
            np.int64(basic_code), np.int64(RTS_FRAME_BYTES),
            src, dst, retry_bit, jseq)

        # CTS responses where the handshake succeeded.
        cts_mask = rts_mask & hand_ok
        cts_time = rts_time + self._rts_dur + self._sifs
        add(cts_mask, cts_time, np.int64(int(FrameType.CTS)),
            np.int64(basic_code), np.int64(CTS_FRAME_BYTES),
            dst, src, None, None)

        # DATA / MGMT / BEACON transmissions.
        data_mask = used & (~use_rts[:, None] | hand_ok)
        data_time = np.where(
            use_rts[:, None],
            cts_time + self._cts_dur + self._sifs,
            att_start + pre,
        )
        add(data_mask, data_time, jftype, rate_code, jsize,
            src, dst, retry_bit, jseq)

        # ACKs for delivered attempts (broadcasts are never acked).
        ack_mask = success & ~is_beacon[:, None]
        ack_time = data_time + data_dur[:, None] + self._sifs
        add(ack_mask, ack_time, np.int64(int(FrameType.ACK)),
            np.int64(basic_code), np.int64(ACK_FRAME_BYTES),
            dst, src, None, None)

        if not cols["time_us"]:
            return
        time_us = np.concatenate(cols["time_us"])
        ftype = np.concatenate(cols["ftype"])
        rcodes = np.concatenate(cols["rate_code"])
        sizes = np.concatenate(cols["size"])
        srcs = np.concatenate(cols["src"])
        dsts = np.concatenate(cols["dst"])
        retries = np.concatenate(cols["retry"])
        seqs = np.concatenate(cols["seq"])
        n_rows = len(time_us)
        self.frames_transmitted += n_rows

        # -- MAC stats ---------------------------------------------------
        self._data_attempts += int((data_mask & is_data[:, None]).sum())
        self._data_successes += int((delivered & is_data).sum())
        self._data_drops += int((~delivered & is_data).sum())

        # -- capture filter ---------------------------------------------
        audible = self._sniff_audible[srcs]
        is_payload = (ftype == _DATA) | (ftype == _MGMT)
        ctrl_size = np.where(
            ftype == int(FrameType.RTS), RTS_FRAME_BYTES, ACK_FRAME_BYTES
        )
        l1 = self._sniff_lr[srcs, 0]
        lr = self._sniff_lr[srcs, np.minimum(rcodes, len(DOT11_RATES_MBPS) - 1)]
        body_bits = 8.0 * (self.phy.timing.mac_overhead_bytes + sizes)
        p_decode = np.where(
            is_payload,
            np.exp(48.0 * l1 + body_bits * lr),
            np.exp(8.0 * ctrl_size * l1),
        )
        span_us = max(int(time_us.max() - time_us.min()), 100_000)
        cfg = self._sniff_cfg
        rate_100ms = float(audible.sum()) * 100_000.0 / span_us
        p_drop = min(
            cfg.drop_ceiling, cfg.drop_floor + cfg.drop_per_frame * rate_100ms
        )
        u = self._rng.random(n_rows)
        captured = audible & (u < p_decode * (1.0 - p_drop))
        self.frames_captured += int(captured.sum())

        rows = {
            "time_us": time_us,
            "ftype": ftype.astype(np.uint8),
            "rate_code": rcodes.astype(np.uint8),
            "size": sizes.astype(np.uint32),
            "src": srcs.astype(np.uint16),
            "dst": dsts.astype(np.uint16),
            "retry": retries.astype(bool),
            "channel": np.full(n_rows, channel, dtype=np.uint8),
            "snr_db": self._sniff_snr[srcs].astype(np.float32),
            "seq": (seqs % 4096).astype(np.uint16),
        }
        cap_order = np.argsort(time_us[captured], kind="stable")
        cell.row_buffer.append(
            {k: v[captured][cap_order] for k, v in rows.items()}
        )
        if keep_truth:
            order = np.argsort(time_us, kind="stable")
            truth = {k: v[order] for k, v in rows.items()}
            truth["snr_db"] = np.full(n_rows, 40.0, dtype=np.float32)
            cell.truth_buffer.append(truth)
