"""Discrete-event simulation engine.

A minimal, fast event loop: integer-microsecond virtual clock, a binary
heap of ``(time, sequence, callback)`` entries, and O(1) cancellation via
tombstoning.  Ties break in scheduling order, which keeps runs
deterministic for a fixed seed.

Cancelled events do not linger: when tombstones outnumber live entries
the heap is compacted in place, so cancel-heavy workloads (RTS/CTS
handshakes cancel a timeout per delivered frame) keep the heap — and
every subsequent push/pop — proportional to *pending* work.

ACK/CTS timeouts get a dedicated side heap (:meth:`Simulator.
schedule_timeout_in`).  They are the churn pathology of a DCF run: one
is pushed per data frame and almost every one is cancelled a few
milliseconds later, so routing them through the main heap makes every
unrelated push/pop pay log(timeouts) and drives most compactions.  The
side heap is keyed by the *same* ``(time, sequence)`` counter and the
drain loop always fires the globally smallest key, so the executed
event order — and therefore every RNG stream — is bit-identical to the
single-heap engine.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["EventHandle", "Simulator"]

#: Compaction never triggers below this many tombstones — tiny heaps are
#: cheap to scan anyway and rebuilding them would be pure overhead.
_COMPACT_MIN_TOMBSTONES = 64


class EventHandle:
    """Handle to a scheduled event; ``cancel()`` tombstones it."""

    __slots__ = ("time_us", "callback", "cancelled", "_sim", "_in_timeout_heap")

    def __init__(
        self,
        time_us: int,
        callback: Callable[[], None],
        sim: "Simulator | None" = None,
    ) -> None:
        self.time_us = time_us
        self.callback: Callable[[], None] | None = callback
        self.cancelled = False
        self._sim = sim
        self._in_timeout_heap = False

    def cancel(self) -> None:
        """Prevent the event from firing (safe to call repeatedly)."""
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = None
        sim = self._sim
        if sim is not None:
            sim._note_cancel(self._in_timeout_heap)

    @property
    def pending(self) -> bool:
        return not self.cancelled


class Simulator:
    """Event loop with an integer microsecond clock.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(10, lambda: fired.append(sim.now_us))
    >>> sim.run_until(100)
    >>> fired
    [10]
    """

    def __init__(self) -> None:
        self.now_us: int = 0
        self._heap: list[tuple[int, int, EventHandle]] = []
        self._timeout_heap: list[tuple[int, int, EventHandle]] = []
        self._sequence = 0
        self._processed = 0
        self._cancelled = 0
        self._tombstones = 0  # cancelled entries still sitting in the heap
        self._timeout_tombstones = 0

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed

    @property
    def events_cancelled(self) -> int:
        """Number of events cancelled before firing (diagnostics)."""
        return self._cancelled

    @property
    def events_pending(self) -> int:
        """Live (non-tombstoned) entries across both heaps."""
        return (
            len(self._heap)
            - self._tombstones
            + len(self._timeout_heap)
            - self._timeout_tombstones
        )

    def schedule_at(self, time_us: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time_us``."""
        time_us = int(time_us)
        if time_us < self.now_us:
            raise ValueError(
                f"cannot schedule in the past: {time_us} < now {self.now_us}"
            )
        handle = EventHandle(time_us, callback, self)
        self._sequence += 1
        heapq.heappush(self._heap, (time_us, self._sequence, handle))
        return handle

    def schedule_in(self, delay_us: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after a relative delay.

        Inlined push (a non-negative delay can never land in the past):
        this is the hottest scheduling call in the simulator.
        """
        if delay_us < 0:
            raise ValueError(f"delay must be non-negative, got {delay_us}")
        time_us = self.now_us + int(delay_us)
        handle = EventHandle(time_us, callback, self)
        self._sequence += 1
        heapq.heappush(self._heap, (time_us, self._sequence, handle))
        return handle

    def schedule_timeout_in(
        self, delay_us: int, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule a likely-to-be-cancelled timer on the side heap.

        Identical semantics to :meth:`schedule_in` — the entry draws
        from the same ``(time, sequence)`` counter, so its firing order
        relative to every other event is unchanged — but cancel churn
        stays out of the main heap.  Use for guard timers that are
        cancelled on the success path (ACK/CTS timeouts).
        """
        if delay_us < 0:
            raise ValueError(f"delay must be non-negative, got {delay_us}")
        time_us = self.now_us + int(delay_us)
        handle = EventHandle(time_us, callback, self)
        handle._in_timeout_heap = True
        self._sequence += 1
        heapq.heappush(self._timeout_heap, (time_us, self._sequence, handle))
        return handle

    def _note_cancel(self, in_timeout_heap: bool = False) -> None:
        """A pending handle was tombstoned; compact when they dominate.

        Compaction rewrites the heap *in place* (slice assignment), so a
        ``_drain`` loop holding a reference to the list keeps working.
        Pending entries keep their ``(time, sequence)`` keys, so firing
        order is untouched.  Each heap compacts on its own tombstone
        count.
        """
        self._cancelled += 1
        if in_timeout_heap:
            self._timeout_tombstones += 1
            heap = self._timeout_heap
            if (
                self._timeout_tombstones >= _COMPACT_MIN_TOMBSTONES
                and self._timeout_tombstones * 2 > len(heap)
            ):
                heap[:] = [entry for entry in heap if not entry[2].cancelled]
                heapq.heapify(heap)
                self._timeout_tombstones = 0
            return
        self._tombstones += 1
        heap = self._heap
        if (
            self._tombstones >= _COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 > len(heap)
        ):
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
            self._tombstones = 0

    def _drain(self, end_us: int | None, safety_limit: int | None) -> None:
        """Pop-and-fire loop shared by :meth:`run_until` and :meth:`run_all`.

        Tombstoned (cancelled) events are discarded without counting
        against ``safety_limit``; ``end_us=None`` means no time bound.
        """
        heap = self._heap
        timeout_heap = self._timeout_heap
        heappop = heapq.heappop
        executed = 0
        while heap or timeout_heap:
            # Fire whichever heap holds the globally smallest
            # (time, sequence) key; sequences are unique across both, so
            # the merged order equals the single-heap order exactly.
            if timeout_heap and (not heap or timeout_heap[0] < heap[0]):
                src = timeout_heap
            else:
                src = heap
            time_us = src[0][0]
            if end_us is not None and time_us > end_us:
                break
            time_us, _, handle = heappop(src)
            if handle.cancelled:
                if src is timeout_heap:
                    self._timeout_tombstones -= 1
                else:
                    self._tombstones -= 1
                continue
            executed += 1
            if safety_limit is not None and executed > safety_limit:
                raise RuntimeError("event limit exceeded; runaway simulation?")
            self.now_us = time_us
            callback = handle.callback
            handle.cancelled = True  # one-shot; not a tombstone (already popped)
            self._processed += 1
            callback()  # type: ignore[misc]

    def run_until(self, end_us: int) -> None:
        """Execute events with ``time <= end_us``; clock ends at ``end_us``."""
        end_us = int(end_us)
        self._drain(end_us, None)
        self.now_us = max(self.now_us, end_us)

    def run_all(self, safety_limit: int = 50_000_000) -> None:
        """Drain the queue entirely (bounded by ``safety_limit`` events)."""
        self._drain(None, safety_limit)
