"""Discrete-event simulation engine.

A minimal, fast event loop: integer-microsecond virtual clock, a binary
heap of ``(time, sequence, callback)`` entries, and O(1) cancellation via
tombstoning.  Ties break in scheduling order, which keeps runs
deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["EventHandle", "Simulator"]


class EventHandle:
    """Handle to a scheduled event; ``cancel()`` tombstones it."""

    __slots__ = ("time_us", "callback", "cancelled")

    def __init__(self, time_us: int, callback: Callable[[], None]) -> None:
        self.time_us = time_us
        self.callback: Callable[[], None] | None = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (safe to call repeatedly)."""
        self.cancelled = True
        self.callback = None

    @property
    def pending(self) -> bool:
        return not self.cancelled


class Simulator:
    """Event loop with an integer microsecond clock.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(10, lambda: fired.append(sim.now_us))
    >>> sim.run_until(100)
    >>> fired
    [10]
    """

    def __init__(self) -> None:
        self.now_us: int = 0
        self._heap: list[tuple[int, int, EventHandle]] = []
        self._sequence = 0
        self._processed = 0

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed

    def schedule_at(self, time_us: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time_us``."""
        time_us = int(time_us)
        if time_us < self.now_us:
            raise ValueError(
                f"cannot schedule in the past: {time_us} < now {self.now_us}"
            )
        handle = EventHandle(time_us, callback)
        self._sequence += 1
        heapq.heappush(self._heap, (time_us, self._sequence, handle))
        return handle

    def schedule_in(self, delay_us: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after a relative delay."""
        if delay_us < 0:
            raise ValueError(f"delay must be non-negative, got {delay_us}")
        return self.schedule_at(self.now_us + int(delay_us), callback)

    def _drain(self, end_us: int | None, safety_limit: int | None) -> None:
        """Pop-and-fire loop shared by :meth:`run_until` and :meth:`run_all`.

        Tombstoned (cancelled) events are discarded without counting
        against ``safety_limit``; ``end_us=None`` means no time bound.
        """
        heap = self._heap
        executed = 0
        while heap and (end_us is None or heap[0][0] <= end_us):
            time_us, _, handle = heapq.heappop(heap)
            if handle.cancelled:
                continue
            executed += 1
            if safety_limit is not None and executed > safety_limit:
                raise RuntimeError("event limit exceeded; runaway simulation?")
            self.now_us = time_us
            callback = handle.callback
            handle.cancelled = True  # one-shot
            self._processed += 1
            callback()  # type: ignore[misc]

    def run_until(self, end_us: int) -> None:
        """Execute events with ``time <= end_us``; clock ends at ``end_us``."""
        end_us = int(end_us)
        self._drain(end_us, None)
        self.now_us = max(self.now_us, end_us)

    def run_all(self, safety_limit: int = 50_000_000) -> None:
        """Drain the queue entirely (bounded by ``safety_limit`` events)."""
        self._drain(None, safety_limit)
