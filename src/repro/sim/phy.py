"""802.11b physical layer model: rates, durations, error probabilities.

Frame durations follow the paper's Table 2 exactly: a long-preamble PLCP
header of 192 us precedes every frame, the MAC body is ``8*(34+size)/rate``
microseconds, and the 1 Mbps control frames come out at the paper's
D_RTS = 352 us, D_CTS = D_ACK = 304 us.

Bit error rates use a processing-gain-scaled Gaussian-Q family:

    BER(rate) = 0.5 * erfc(sqrt(g_rate * snr_linear))

with g = 11.0 / 5.5 / 2.0 / 1.0 for 1 / 2 / 5.5 / 11 Mbps.  The gains
mirror the DSSS spreading gain ladder (Barker-11 at 1 Mbps down to CCK-8
at 11 Mbps) and reproduce the ~3 dB-per-step receiver-sensitivity ladder
of commodity 802.11b radios (-94/-91/-87/-82 dBm class behaviour):
robust low rates, fragile high rates.  The paper's observations depend
only on that ordering, not on exact coded BER curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..frames import (
    ACK_FRAME_BYTES,
    CTS_FRAME_BYTES,
    RTS_FRAME_BYTES,
    FrameType,
)
from ..core.timing import DOT11B_TIMING, TimingParameters

__all__ = ["PhyModel", "BASIC_RATE_MBPS", "snr_db_to_linear"]

#: Control frames and PLCP are sent at the 1 Mbps basic rate.
BASIC_RATE_MBPS = 1.0

#: Spreading/processing gain per 802.11b rate (see module docstring).
_PROCESSING_GAIN = {1.0: 11.0, 2.0: 5.5, 5.5: 2.0, 11.0: 1.0}


def snr_db_to_linear(snr_db: float) -> float:
    """Convert an SNR in dB to a linear power ratio."""
    return 10.0 ** (snr_db / 10.0)


def _q_function(x: float) -> float:
    """Gaussian tail probability Q(x) = 0.5 * erfc(x / sqrt(2))."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


@dataclass(frozen=True)
class PhyModel:
    """802.11b PHY: durations and per-frame error probabilities."""

    timing: TimingParameters = DOT11B_TIMING

    # -- durations -------------------------------------------------------

    def data_duration_us(self, size_bytes: int, rate_mbps: float) -> int:
        """On-air time of a data/management frame, rounded to whole us."""
        return round(self.timing.data_frame_duration_us(size_bytes, rate_mbps))

    def control_duration_us(self, ftype: FrameType) -> int:
        """On-air time of a control/beacon frame (Table 2 constants)."""
        if ftype == FrameType.RTS:
            return round(self.timing.rts_us)
        if ftype == FrameType.CTS:
            return round(self.timing.cts_us)
        if ftype == FrameType.ACK:
            return round(self.timing.ack_us)
        if ftype == FrameType.BEACON:
            return round(self.timing.beacon_us)
        raise ValueError(f"{ftype!r} is not a fixed-duration frame type")

    def frame_duration_us(
        self, ftype: FrameType, size_bytes: int, rate_mbps: float
    ) -> int:
        """On-air time of any frame type."""
        if ftype in (FrameType.DATA, FrameType.MGMT):
            return self.data_duration_us(size_bytes, rate_mbps)
        return self.control_duration_us(ftype)

    # -- error model -------------------------------------------------------

    def bit_error_rate(self, snr_db: float, rate_mbps: float) -> float:
        """BER at a given post-processing SNR for one 802.11b rate."""
        gain = _PROCESSING_GAIN.get(float(rate_mbps))
        if gain is None:
            raise ValueError(f"{rate_mbps!r} is not an 802.11b rate")
        snr_linear = snr_db_to_linear(snr_db)
        return _q_function(math.sqrt(2.0 * gain * snr_linear))

    def frame_success_probability(
        self, snr_db: float, size_bytes: int, rate_mbps: float
    ) -> float:
        """P(all bits survive): (1-BER_header)^header * (1-BER_rate)^body.

        The PLCP header always rides at the basic rate; the body at
        ``rate_mbps``.  ``size_bytes`` excludes the 34-byte MAC overhead,
        which we add back, matching the duration formula.
        """
        header_bits = 48  # PLCP SIGNAL/SERVICE/LENGTH/CRC fields
        body_bits = 8 * (self.timing.mac_overhead_bytes + size_bytes)
        ber_header = self.bit_error_rate(snr_db, BASIC_RATE_MBPS)
        ber_body = self.bit_error_rate(snr_db, rate_mbps)
        log_p = header_bits * math.log1p(-min(ber_header, 1 - 1e-12)) + (
            body_bits * math.log1p(-min(ber_body, 1 - 1e-12))
        )
        return math.exp(log_p)

    def control_success_probability(self, snr_db: float, ftype: FrameType) -> float:
        """Success probability for fixed-size control/beacon frames."""
        size = {
            FrameType.RTS: RTS_FRAME_BYTES,
            FrameType.CTS: CTS_FRAME_BYTES,
            FrameType.ACK: ACK_FRAME_BYTES,
            FrameType.BEACON: ACK_FRAME_BYTES,
        }[ftype]
        body_bits = 8 * size
        ber = self.bit_error_rate(snr_db, BASIC_RATE_MBPS)
        return math.exp(body_bits * math.log1p(-min(ber, 1 - 1e-12)))

    def best_rate_for_snr(
        self, snr_db: float, size_bytes: int = 1000, target_per: float = 0.1
    ) -> float:
        """Highest rate whose frame error prob. stays under ``target_per``.

        Used by the SNR-oracle rate-adaptation baseline (the paper's §7
        recommendation).  Falls back to 1 Mbps when nothing qualifies.
        """
        from ..frames import DOT11_RATES_MBPS

        for rate in sorted(DOT11_RATES_MBPS, reverse=True):
            per = 1.0 - self.frame_success_probability(snr_db, size_bytes, rate)
            if per <= target_per:
                return rate
        return 1.0
