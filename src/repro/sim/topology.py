"""Node placement for conference-room scenarios.

The IETF venue (paper Figs 2-3) was a block of ballrooms roughly
70 ft x 120 ft per room with APs along the walls and users filling the
floor.  We model a rectangular room: APs evenly spaced on the long axis,
stations uniform over the floor, sniffers near the room centre (the
paper co-located sniffers centrally during the plenary).
"""

from __future__ import annotations

import numpy as np

from .propagation import Position

__all__ = ["place_aps", "place_stations", "sniffer_position"]


def place_aps(n_aps: int, width_m: float, depth_m: float) -> list[Position]:
    """Evenly space APs along the room's centre line."""
    if n_aps < 1:
        raise ValueError("need at least one AP")
    xs = np.linspace(width_m / (n_aps + 1), width_m * n_aps / (n_aps + 1), n_aps)
    return [Position(float(x), depth_m / 2.0) for x in xs]


def place_stations(
    n_stations: int,
    width_m: float,
    depth_m: float,
    rng: np.random.Generator,
    margin_m: float = 1.0,
) -> list[Position]:
    """Scatter stations uniformly over the floor."""
    xs = rng.uniform(margin_m, max(width_m - margin_m, margin_m), n_stations)
    ys = rng.uniform(margin_m, max(depth_m - margin_m, margin_m), n_stations)
    return [Position(float(x), float(y)) for x, y in zip(xs, ys)]


def sniffer_position(width_m: float, depth_m: float) -> Position:
    """Central sniffer placement (plenary configuration, paper Fig 3)."""
    return Position(width_m / 2.0, depth_m / 2.0)
