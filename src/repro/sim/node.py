"""Stations and access points.

A :class:`Station` bundles a DCF MAC with uplink traffic sources and an
association to one AP.  An :class:`AccessPoint` adds 100 ms beaconing
(the paper's D_BEACON accounting depends on beacons being on the air)
and carries downlink traffic to its associated stations.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..frames import BROADCAST, FrameType, NodeInfo
from .dcf import DcfMac, MacConfig
from .engine import Simulator
from .medium import Medium
from .phy import PhyModel
from .power_control import PowerControlConfig, TransmitPowerControl
from .propagation import Position
from .rate_adaptation import RateAdaptation

__all__ = ["Station", "AccessPoint", "BEACON_INTERVAL_US"]

#: The standard 802.11 beacon interval the paper assumes (§5.1).
BEACON_INTERVAL_US = 100_000


@dataclass
class Station:
    """A user device: one MAC plus its association."""

    node_id: int
    mac: DcfMac
    ap_id: int
    uses_rtscts: bool = False

    @property
    def info(self) -> NodeInfo:
        return NodeInfo(
            node_id=self.node_id,
            is_ap=False,
            name=f"sta-{self.node_id}",
            uses_rtscts=self.uses_rtscts,
        )

    @classmethod
    def create(
        cls,
        sim: Simulator,
        medium: Medium,
        phy: PhyModel,
        node_id: int,
        position: Position,
        channel: int,
        ap_id: int,
        rng: np.random.Generator,
        rate_adaptation: RateAdaptation,
        uses_rtscts: bool = False,
        rts_threshold: int = 0,
        tx_power_dbm: float = 15.0,
        mac_config: MacConfig | None = None,
        power_control: bool = False,
        power_control_config: PowerControlConfig | None = None,
    ) -> "Station":
        config = mac_config or MacConfig()
        if uses_rtscts:
            config = dataclasses.replace(config, rts_threshold=rts_threshold)
        tpc = (
            TransmitPowerControl(
                base_power_dbm=tx_power_dbm,
                config=power_control_config or PowerControlConfig(),
            )
            if power_control
            else None
        )
        mac = DcfMac(
            sim=sim,
            medium=medium,
            phy=phy,
            node_id=node_id,
            position=position,
            channel=channel,
            rng=rng,
            config=config,
            rate_adaptation=rate_adaptation,
            tx_power_dbm=tx_power_dbm,
            power_control=tpc,
        )
        return cls(node_id=node_id, mac=mac, ap_id=ap_id, uses_rtscts=uses_rtscts)


@dataclass
class AccessPoint:
    """An AP: beaconing MAC plus the set of associated stations."""

    node_id: int
    mac: DcfMac
    channel: int
    stations: list[int] = field(default_factory=list)

    @property
    def info(self) -> NodeInfo:
        return NodeInfo(node_id=self.node_id, is_ap=True, name=f"ap-{self.node_id}")

    @classmethod
    def create(
        cls,
        sim: Simulator,
        medium: Medium,
        phy: PhyModel,
        node_id: int,
        position: Position,
        channel: int,
        rng: np.random.Generator,
        rate_adaptation: RateAdaptation,
        tx_power_dbm: float = 18.0,
        mac_config: MacConfig | None = None,
        beacon_offset_us: int | None = None,
    ) -> "AccessPoint":
        mac = DcfMac(
            sim=sim,
            medium=medium,
            phy=phy,
            node_id=node_id,
            position=position,
            channel=channel,
            rng=rng,
            config=mac_config or MacConfig(),
            rate_adaptation=rate_adaptation,
            tx_power_dbm=tx_power_dbm,
        )
        ap = cls(node_id=node_id, mac=mac, channel=channel)
        # Stagger beacon phases so co-channel APs do not beacon in lockstep.
        offset = (
            beacon_offset_us
            if beacon_offset_us is not None
            else int(rng.integers(0, BEACON_INTERVAL_US))
        )
        sim.schedule_at(offset, ap._beacon_loop_factory(sim))
        return ap

    def _beacon_loop_factory(self, sim: Simulator):
        def beacon_loop() -> None:
            from ..frames import BEACON_BODY_BYTES

            self.mac.enqueue_front(BROADCAST, BEACON_BODY_BYTES, FrameType.BEACON)
            sim.schedule_in(BEACON_INTERVAL_US, beacon_loop)

        return beacon_loop

    def associate(self, station_id: int) -> None:
        """Record a station as associated with this AP."""
        if station_id not in self.stations:
            self.stations.append(station_id)
