"""Scenario configs and runners: assembled networks that emit traces.
Three config families reproduce the paper's measurement settings at
laptop scale (the scale substitution is documented in DESIGN.md §2):

* :func:`run_scenario` / :func:`stream_scenario` — one room, one or
  more AP/channel cells, configurable traffic, rate adaptation and
  RTS/CTS population; the general-purpose entry points (buffered
  result vs live bounded-memory chunk stream).
* :func:`load_ramp_config` — offered load climbing over the run so the
  captured trace sweeps channel utilization across the paper's 30-99 %
  analysis range (the workload behind Figures 6-15).
* :func:`ietf_day_config` / :func:`ietf_plenary_config` — scaled
  analogues of the two IETF data sets: three channels, multiple APs,
  station populations that rise and fall like the meeting schedule.

The assembly itself lives in :mod:`repro.sim.builder`
(:class:`~repro.sim.builder.ScenarioBuilder`); both runners here are
thin conveniences over it, and custom topologies/populations/traffic
programs compose through the builder directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator
import numpy as np

from ..frames import NodeRoster, Trace
from .dcf import MacConfig
from .engine import Simulator
from .medium import Medium
from .node import AccessPoint, Station
from .builder import ScenarioBuilder, _DEFAULT_CHUNK_FRAMES, MAX_FRAME_AIRTIME_US
from .channel_manager import ChannelManager
from .roaming import RoamingManager
from .sniffer import Sniffer, SnifferConfig
from .traffic import (
    CONFERENCE_MIX,
    ConstantRate,
    LinearRamp,
    ModulatedRate,
    RateSchedule,
    SizeSampler,
    class_mixture,
)

__all__ = [
    "ScenarioConfig",
    "ScenarioResult",
    "run_scenario",
    "stream_scenario",
    "load_ramp_config",
    "ietf_day_config",
    "ietf_plenary_config",
]


@dataclass
class ScenarioConfig:
    """Everything needed to build and run one simulated capture session."""
    n_stations: int = 10
    n_aps: int = 1
    duration_s: float = 30.0
    seed: int = 7
    channels: tuple[int, ...] = (1,)
    room_width_m: float = 25.0
    room_depth_m: float = 20.0
    rate_algorithm: str = "arf"
    rate_adaptation_kwargs: dict = field(default_factory=dict)
    rtscts_fraction: float = 0.0

    #: Fraction of stations with a heavily attenuated link (bodies,
    #: bags, partition walls) — these live at the low data rates, the
    #: population behind the paper's persistent 1 Mbps airtime share.
    obstructed_fraction: float = 0.0

    #: Obstructed stations have their link budget *calibrated* so the
    #: weaker link direction lands in this SNR band (dB): workable at
    #: 1-2 Mbps with occasional bit-error losses, hopeless at 5.5/11.
    #: Calibration (rather than a fixed extra loss) keeps the low-rate
    #: population seed-robust; it models users at the edge of coverage
    #: wherever they happen to sit.
    obstructed_snr_band_db: tuple[float, float] = (-1.0, 3.0)

    #: Offered-load multiplier for obstructed stations (their upper
    #: layers would back off on a bad link; keeping this < 1 stops two
    #: bad links from consuming the whole channel at 1 Mbps).
    obstructed_load_factor: float = 0.35
    uplink: RateSchedule = field(default_factory=lambda: ConstantRate(8.0))
    downlink: RateSchedule = field(default_factory=lambda: ConstantRate(8.0))
    size_mix: SizeSampler = CONFERENCE_MIX
    station_tx_power_dbm: float = 15.0
    ap_tx_power_dbm: float = 18.0
    #: Enable closed-loop transmit power control on stations (the
    #: paper's §7 second recommendation).
    power_control: bool = False
    #: Enable Airespace-style dynamic channel rebalancing (§4.1).
    channel_management: bool = False
    #: Enable station roaming/handoff to the strongest-beacon AP
    #: (Mishra et al. [15] behaviour; only meaningful with several APs).
    roaming: bool = False
    path_loss_exponent: float = 3.0
    shadowing_sigma_db: float = 4.0
    mac_config: MacConfig = field(default_factory=MacConfig)
    sniffer_config: SnifferConfig = field(default_factory=SnifferConfig)

    #: Optional per-station activity window factory: given (station
    #: index, rng) return (start_us, end_us).  Default: always active.
    activity: Callable[[int, np.random.Generator], tuple[int, int]] | None = None

    def __post_init__(self) -> None:
        if self.n_stations < 1 or self.n_aps < 1:
            raise ValueError("need at least one station and one AP")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 <= self.rtscts_fraction <= 1.0:
            raise ValueError("rtscts_fraction must be in [0, 1]")
        if not 0.0 <= self.obstructed_fraction <= 1.0:
            raise ValueError("obstructed_fraction must be in [0, 1]")
        if not self.channels:
            raise ValueError("need at least one channel")

    @property
    def duration_us(self) -> int:
        return int(self.duration_s * 1_000_000)


@dataclass
class ScenarioResult:
    """Artifacts of one scenario run."""
    trace: Trace                 # merged sniffer captures (what the paper had)
    ground_truth: Trace          # every frame actually transmitted
    roster: NodeRoster
    stations: list[Station]
    aps: list[AccessPoint]
    sniffers: list[Sniffer]
    medium: Medium
    sim: Simulator
    config: ScenarioConfig
    channel_manager: "ChannelManager | None" = None
    roaming_manager: "RoamingManager | None" = None

    @property
    def capture_ratio(self) -> float:
        """Fraction of transmitted frames the sniffers recorded.

        Guarded against zero-frame ground truth: a degenerate config
        (e.g. zero offered load over a short run) reports 0.0 rather
        than raising ``ZeroDivisionError``.
        """
        total = len(self.ground_truth)
        return len(self.trace) / total if total else 0.0


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build the network described by ``config``, run it, collect traces.

    Buffers the full capture and ground truth in memory; for day-long
    runs feed :func:`stream_scenario` to the analysis pipeline instead.
    """
    return ScenarioBuilder(config).build().run()


def stream_scenario(
    config: ScenarioConfig,
    chunk_frames: int = _DEFAULT_CHUNK_FRAMES,
    window_s: float = 1.0,
    drain_guard_us: int = MAX_FRAME_AIRTIME_US,
) -> Iterator[Trace]:
    """Run ``config`` live, yielding the merged sniffer capture as
    bounded time-sorted chunks while the simulation advances.

    The concatenated chunks equal
    ``run_scenario(config).trace.sorted_by_time()`` — the row order
    every analysis works on — but no full-run trace (or per-frame
    ground truth) is ever materialised: peak memory is one drain window
    however long the session.  Feed the iterator straight to
    :func:`repro.pipeline.run_all`.
    """
    yield from ScenarioBuilder(config).build().stream(
        chunk_frames=chunk_frames,
        window_s=window_s,
        drain_guard_us=drain_guard_us,
    )


#: Size mixture calibrated for the load-ramp scenario: S and XL dominate


#: (TCP acks + downloads), matching the paper's Figs 10-13 populations.
RAMP_MIX = class_mixture({"S": 0.38, "M": 0.06, "L": 0.06, "XL": 0.50})


def load_ramp_config(
    n_stations: int = 12,
    duration_s: float = 240.0,
    peak_downlink_pps: float = 50.0,
    peak_uplink_pps: float = 16.0,
    seed: int = 11,
    rate_algorithm: str = "arf",
    rtscts_fraction: float = 0.15,
    size_mix: SizeSampler | None = None,
    burst_sigma: float = 1.0,
) -> ScenarioConfig:
    """Bursty offered load ramping from near-idle to past saturation.
    This is the workload that sweeps channel utilization across the
    paper's 30-99 % analysis range; every "versus utilization" figure
    (6 through 15) is regenerated from one such run.  Calibration notes:
    * Downlink-dominated traffic (conference floors download) keeps the
      contender count low enough that the network stays healthy through
      the moderate band and collapses only near the knee.
    * Log-normal burst modulation populates the intermediate
      utilization bins; steady open-loop load snaps from underload to
      saturation and leaves the 40-80 % bins empty.
    * A quarter of the stations are obstructed (extra 22 dB link loss):
      the population that legitimately occupies the 1-2 Mbps rates and
      produces the paper's persistent 1 Mbps airtime share (Fig 8).
    """
    duration_us = int(duration_s * 1e6)
    up = ModulatedRate(
        LinearRamp(0.3, peak_uplink_pps, duration_us),
        sigma=burst_sigma,
        period_us=1_000_000,
        seed=seed + 51,
    )
    down = ModulatedRate(
        LinearRamp(1.0, peak_downlink_pps, duration_us),
        sigma=burst_sigma,
        period_us=1_000_000,
        seed=seed + 52,
    )
    return ScenarioConfig(
        n_stations=n_stations,
        n_aps=1,
        duration_s=duration_s,
        seed=seed,
        channels=(1,),
        room_width_m=36.0,
        room_depth_m=24.0,
        shadowing_sigma_db=6.0,
        path_loss_exponent=3.2,
        station_tx_power_dbm=12.0,
        rate_algorithm=rate_algorithm,
        rate_adaptation_kwargs=(
            {"up_threshold": 5, "down_threshold": 3}
            if rate_algorithm in ("arf", "aarf")
            else {}
        ),
        rtscts_fraction=rtscts_fraction,
        obstructed_fraction=0.25,
        obstructed_load_factor=0.35,
        uplink=up,
        downlink=down,
        size_mix=size_mix or RAMP_MIX,
    )


def _session_activity(
    blocks: tuple[tuple[float, float], ...], duration_us: int
) -> Callable[[int, np.random.Generator], tuple[int, int]]:
    """Assign each station one attendance block (fractions of the run)."""

    def pick(index: int, rng: np.random.Generator) -> tuple[int, int]:
        start_frac, end_frac = blocks[int(rng.integers(0, len(blocks)))]
        jitter = float(rng.uniform(0.0, 0.03))
        start = int((start_frac + jitter) * duration_us)
        end = int(min(end_frac + jitter, 1.0) * duration_us)
        return start, end
    return pick


def ietf_day_config(
    n_stations: int = 36,
    duration_s: float = 120.0,
    seed: int = 21,
) -> ScenarioConfig:
    """Scaled analogue of the day session (Table 1, row 1).
    Three channels, two APs each; stations attend one of three parallel
    session blocks, so the active population rises and falls during the
    run as in Figure 4(b).
    """
    duration_us = int(duration_s * 1e6)
    blocks = ((0.0, 0.45), (0.30, 0.75), (0.55, 1.0))
    return ScenarioConfig(
        n_stations=n_stations,
        n_aps=6,
        duration_s=duration_s,
        seed=seed,
        channels=(1, 6, 11),
        room_width_m=65.0,
        room_depth_m=25.0,
        shadowing_sigma_db=6.0,
        path_loss_exponent=3.2,
        station_tx_power_dbm=12.0,
        rate_adaptation_kwargs={"up_threshold": 5, "down_threshold": 3},
        obstructed_fraction=0.2,
        size_mix=RAMP_MIX,
        uplink=ModulatedRate(ConstantRate(9.0), sigma=0.8, seed=seed + 51),
        downlink=ModulatedRate(ConstantRate(26.0), sigma=0.8, seed=seed + 52),
        activity=_session_activity(blocks, duration_us),
    )


def ietf_plenary_config(
    n_stations: int = 30,
    duration_s: float = 120.0,
    seed: int = 22,
) -> ScenarioConfig:
    """Scaled analogue of the plenary session (Table 1, row 2).
    One large room, all channels co-located, everyone attending the same
    block with heavier per-station load — the configuration that drove
    the network deep into congestion in the paper (mode ~86 %
    utilization vs ~55 % during the day).
    """
    duration_us = int(duration_s * 1e6)
    blocks = ((0.0, 1.0), (0.05, 0.95), (0.0, 0.9))
    return ScenarioConfig(
        n_stations=n_stations,
        n_aps=3,
        duration_s=duration_s,
        seed=seed,
        channels=(1, 6, 11),
        room_width_m=40.0,
        room_depth_m=25.0,
        shadowing_sigma_db=6.0,
        path_loss_exponent=3.2,
        station_tx_power_dbm=12.0,
        rate_adaptation_kwargs={"up_threshold": 5, "down_threshold": 3},
        obstructed_fraction=0.25,
        size_mix=RAMP_MIX,
        uplink=ModulatedRate(ConstantRate(14.0), sigma=0.9, seed=seed + 51),
        downlink=ModulatedRate(ConstantRate(42.0), sigma=0.9, seed=seed + 52),
        activity=_session_activity(blocks, duration_us),
    )
