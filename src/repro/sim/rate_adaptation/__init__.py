"""Multirate adaptation algorithms (paper §3 and §7).

The 802.11 standard leaves rate adaptation to vendors; the paper blames
loss-triggered schemes (the ARF family) for the congestion collapse it
measures, because they cannot tell collision losses from channel-error
losses.  We implement:

* :class:`FixedRate` — no adaptation (baseline/ablation).
* :class:`ArfRateAdaptation` — Auto Rate Fallback (Kamerman & Monteban),
  the "generic ARF implementation" the paper describes.
* :class:`AarfRateAdaptation` — Adaptive ARF, which backs off its probe
  frequency after failed upgrades.
* :class:`SnrOracleRateAdaptation` — an SNR-aware scheme in the spirit
  of RBAR/OAR, the paper's §7 recommendation: pick the highest rate
  whose predicted error rate at the observed SNR is acceptable,
  regardless of collision losses.
"""

from .base import RateAdaptation
from .fixed import FixedRate
from .arf import AarfRateAdaptation, ArfRateAdaptation
from .snr import SnrOracleRateAdaptation

__all__ = [
    "RateAdaptation",
    "FixedRate",
    "ArfRateAdaptation",
    "AarfRateAdaptation",
    "SnrOracleRateAdaptation",
    "make_rate_adaptation",
]


def make_rate_adaptation(name: str, **kwargs) -> RateAdaptation:
    """Factory by algorithm name: ``fixed``, ``arf``, ``aarf``, ``snr``."""
    name = name.lower()
    if name == "fixed":
        return FixedRate(**kwargs)
    if name == "arf":
        return ArfRateAdaptation(**kwargs)
    if name == "aarf":
        return AarfRateAdaptation(**kwargs)
    if name == "snr":
        return SnrOracleRateAdaptation(**kwargs)
    raise ValueError(f"unknown rate adaptation algorithm: {name!r}")
