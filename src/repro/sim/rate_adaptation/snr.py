"""SNR-oracle rate adaptation (the paper's §7 recommendation).

The paper concludes that loss-triggered adaptation misreads collisions
as channel errors and recommends schemes that "determine an optimal
packet transmission rate based on SNR" (citing RBAR and OAR).  This
implementation keeps an exponentially-weighted estimate of the SNR of
frames heard *from* each peer (ACKs are the natural feedback channel)
and picks the highest rate whose predicted frame error rate at that SNR
is below a target.  Collision losses leave the SNR estimate — and hence
the rate — untouched, which is exactly the property the paper asks for.
"""

from __future__ import annotations

from ...frames import DOT11_RATES_MBPS
from ..phy import PhyModel
from .base import RateAdaptation

__all__ = ["SnrOracleRateAdaptation"]


class SnrOracleRateAdaptation(RateAdaptation):
    """Pick the fastest rate whose predicted PER at the link SNR is OK."""

    def __init__(
        self,
        phy: PhyModel | None = None,
        target_per: float = 0.1,
        reference_size: int = 1000,
        ewma_alpha: float = 0.25,
        initial_rate_mbps: float = 11.0,
        margin_db: float = 0.0,
    ) -> None:
        """``margin_db`` is subtracted from the observed feedback SNR
        before choosing a rate.  Feedback measures the *reverse* link;
        when the peer transmits hotter than we do (an AP typically runs
        ~6 dB above a laptop), the forward link is weaker by exactly
        that asymmetry, and RBAR-style schemes budget for it."""
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if margin_db < 0:
            raise ValueError("margin_db must be non-negative")
        self.phy = phy or PhyModel()
        self.target_per = target_per
        self.reference_size = reference_size
        self.ewma_alpha = ewma_alpha
        self.margin_db = margin_db
        self._initial_rate = float(initial_rate_mbps)
        if self._initial_rate not in DOT11_RATES_MBPS:
            raise ValueError(f"{initial_rate_mbps!r} is not an 802.11b rate")
        self._snr: dict[int, float] = {}

    def on_feedback_snr(self, dst: int, snr_db: float) -> None:
        old = self._snr.get(dst)
        if old is None:
            self._snr[dst] = snr_db
        else:
            self._snr[dst] = (1 - self.ewma_alpha) * old + self.ewma_alpha * snr_db

    def rate_for(self, dst: int) -> float:
        snr = self._snr.get(dst)
        if snr is None:
            return self._initial_rate
        return self.phy.best_rate_for_snr(
            snr - self.margin_db,
            size_bytes=self.reference_size,
            target_per=self.target_per,
        )

    def on_success(self, dst: int) -> None:
        pass  # outcome-independent by design

    def on_failure(self, dst: int) -> None:
        pass  # collisions must not drive the rate down

    def reset(self, dst: int) -> None:
        self._snr.pop(dst, None)
