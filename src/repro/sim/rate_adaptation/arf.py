"""ARF and AARF loss-triggered rate adaptation.

ARF (Auto Rate Fallback, Kamerman & Monteban 1997) is the "generic"
scheme the paper describes in §3: drop one rate step after
``down_threshold`` consecutive failures, climb one step after
``up_threshold`` consecutive successes.  Because ARF cannot distinguish
collision losses from channel-error losses, congestion drives it toward
1 Mbps — the mechanism behind the paper's Figure 6/8 collapse.

AARF (Lacage et al. 2004) doubles the success threshold each time a
probe to the higher rate immediately fails, making upgrade probing
rarer; it reduces, but does not eliminate, the congestion misbehaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...frames import DOT11_RATES_MBPS
from .base import RateAdaptation

__all__ = ["ArfRateAdaptation", "AarfRateAdaptation"]


@dataclass
class _LinkState:
    rate_index: int
    consecutive_successes: int = 0
    consecutive_failures: int = 0
    just_upgraded: bool = False
    up_threshold: int = 10  # AARF mutates this per link


class ArfRateAdaptation(RateAdaptation):
    """Classic ARF: N failures step down, M successes step up."""

    def __init__(
        self,
        up_threshold: int = 10,
        down_threshold: int = 2,
        initial_rate_mbps: float = 11.0,
    ) -> None:
        if up_threshold < 1 or down_threshold < 1:
            raise ValueError("thresholds must be >= 1")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self._initial_index = DOT11_RATES_MBPS.index(float(initial_rate_mbps))
        self._links: dict[int, _LinkState] = {}

    def _link(self, dst: int) -> _LinkState:
        state = self._links.get(dst)
        if state is None:
            state = _LinkState(
                rate_index=self._initial_index, up_threshold=self.up_threshold
            )
            self._links[dst] = state
        return state

    def rate_for(self, dst: int) -> float:
        return DOT11_RATES_MBPS[self._link(dst).rate_index]

    def on_success(self, dst: int) -> None:
        state = self._link(dst)
        state.consecutive_failures = 0
        state.consecutive_successes += 1
        state.just_upgraded = False
        if (
            state.consecutive_successes >= state.up_threshold
            and state.rate_index < len(DOT11_RATES_MBPS) - 1
        ):
            state.rate_index += 1
            state.consecutive_successes = 0
            state.just_upgraded = True

    def on_failure(self, dst: int) -> None:
        state = self._link(dst)
        state.consecutive_successes = 0
        state.consecutive_failures += 1
        self._maybe_step_down(state)

    def _maybe_step_down(self, state: _LinkState) -> None:
        # A failure straight after an upgrade is an immediate revert.
        if state.just_upgraded or state.consecutive_failures >= self.down_threshold:
            if state.rate_index > 0:
                state.rate_index -= 1
            state.consecutive_failures = 0
            state.just_upgraded = False

    def reset(self, dst: int) -> None:
        self._links.pop(dst, None)


class AarfRateAdaptation(ArfRateAdaptation):
    """Adaptive ARF: failed upgrade probes double the success threshold."""

    def __init__(
        self,
        up_threshold: int = 10,
        down_threshold: int = 2,
        max_up_threshold: int = 160,
        initial_rate_mbps: float = 11.0,
    ) -> None:
        super().__init__(up_threshold, down_threshold, initial_rate_mbps)
        self.max_up_threshold = max_up_threshold

    def _maybe_step_down(self, state: _LinkState) -> None:
        if state.just_upgraded:
            # Probe failed: back off and make the next probe rarer.
            state.up_threshold = min(state.up_threshold * 2, self.max_up_threshold)
        elif state.consecutive_failures >= self.down_threshold:
            # Sustained failure at an established rate: reset probe cadence.
            state.up_threshold = self.up_threshold
        else:
            return
        if state.rate_index > 0:
            state.rate_index -= 1
        state.consecutive_failures = 0
        state.just_upgraded = False
