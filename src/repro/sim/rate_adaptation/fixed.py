"""Fixed-rate policy: always transmit at one configured rate."""

from __future__ import annotations

from ...frames import DOT11_RATES_MBPS
from .base import RateAdaptation

__all__ = ["FixedRate"]


class FixedRate(RateAdaptation):
    """No adaptation; the ablation baseline for the ARF study."""

    def __init__(self, rate_mbps: float = 11.0) -> None:
        if rate_mbps not in DOT11_RATES_MBPS:
            raise ValueError(f"{rate_mbps!r} is not an 802.11b rate")
        self._rate = float(rate_mbps)

    def rate_for(self, dst: int) -> float:
        return self._rate

    def on_success(self, dst: int) -> None:
        pass

    def on_failure(self, dst: int) -> None:
        pass
