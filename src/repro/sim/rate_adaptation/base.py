"""Rate adaptation interface.

A rate-adaptation object lives inside one station's MAC and is consulted
before every transmission attempt; the MAC reports the outcome of each
attempt (ACKed or timed out) and the SNR of any frames heard back from
the peer, which SNR-based schemes use as channel-state feedback.
"""

from __future__ import annotations

import abc

__all__ = ["RateAdaptation"]


class RateAdaptation(abc.ABC):
    """Per-link transmit-rate selection policy."""

    @abc.abstractmethod
    def rate_for(self, dst: int) -> float:
        """Rate (Mbps) to use for the next transmission to ``dst``."""

    @abc.abstractmethod
    def on_success(self, dst: int) -> None:
        """The last data frame to ``dst`` was acknowledged."""

    @abc.abstractmethod
    def on_failure(self, dst: int) -> None:
        """The last data frame to ``dst`` timed out without an ACK."""

    def on_feedback_snr(self, dst: int, snr_db: float) -> None:
        """SNR observed on a frame received *from* ``dst`` (optional)."""

    def reset(self, dst: int) -> None:
        """Forget state for a link (e.g. on reassociation)."""
