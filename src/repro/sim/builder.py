"""Composable scenario assembly: topology, population, traffic, wiring.

:func:`repro.sim.run_scenario` historically built one fixed floor plan in
a single 200-line function.  This module decomposes that assembly into
four swappable components plus the builder that wires them together:

* :class:`Placement` — where APs, stations and sniffers physically go
  (:class:`RoomPlacement` is the classic uniform floor,
  :class:`HotspotPlacement` clusters users around foci,
  :class:`ExplicitPlacement` pins every position for hand-built
  geometries such as hidden-terminal pairs);
* :class:`Population` — per-station roles: who runs RTS/CTS, who sits
  behind an obstructed link, per-station load factors
  (:class:`FractionPopulation` reproduces the config-fraction quotas);
* :class:`LinkImpairment` — how an obstructed role translates into
  propagation damage (:class:`CalibratedObstruction` lands the weak
  link direction in a target SNR band);
* :class:`TrafficProgram` — what each station offers
  (:class:`PoissonProgram` is the open-loop uplink/downlink pair).

``ScenarioBuilder`` assembles the components into a
:class:`BuiltScenario`, which can either ``run()`` to completion and
return the classic buffered :class:`~repro.sim.scenarios.ScenarioResult`,
or ``stream()`` the sniffer capture as bounded time-sorted chunks while
the simulation advances — the live feed the single-pass analysis
pipeline consumes without ever materialising a full-run trace.

The default component set is numerically identical to the historical
``run_scenario`` (which now delegates here): RNG streams are consumed
in the same order, entities attach to the medium in the same order, and
events are scheduled in the same order, so fixed-seed runs reproduce
frame for frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterator, Protocol

import numpy as np

from ..frames import FrameType, NodeRoster, Trace
from .channel_manager import ChannelManager
from .engine import Simulator
from .medium import Medium
from .node import AccessPoint, Station
from .phy import PhyModel
from .propagation import Position, PropagationModel
from .rate_adaptation import make_rate_adaptation
from .roaming import RoamingManager
from .sniffer import Sniffer, ground_truth_trace
from .topology import place_aps, place_stations, sniffer_position
from .traffic import PoissonSource, ScaledRate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .scenarios import ScenarioConfig, ScenarioResult

__all__ = [
    "MAX_FRAME_AIRTIME_US",
    "StationRole",
    "Placement",
    "RoomPlacement",
    "HotspotPlacement",
    "ExplicitPlacement",
    "Population",
    "FractionPopulation",
    "ExplicitPopulation",
    "LinkImpairment",
    "CalibratedObstruction",
    "TrafficProgram",
    "PoissonProgram",
    "BuiltScenario",
    "ScenarioBuilder",
]


#: Sniffer node ids start here (outside the station/AP id space).
SNIFFER_ID_BASE = 60_000

#: Upper bound on one frame's on-air time: a maximum-size MSDU at
#: 1 Mbps plus the long PLCP preamble is ~18.6 ms; rounded up with
#: margin.  A streamed capture drains only rows older than this behind
#: the simulation clock, so no frame can later appear before the
#: watermark (sniffers timestamp a frame at its transmission *start*
#: but record it at its end).
MAX_FRAME_AIRTIME_US = 24_000

#: Frames per streamed chunk (matches repro.pipeline's default; kept
#: local so repro.sim does not import the pipeline at module load).
_DEFAULT_CHUNK_FRAMES = 131_072


# ---------------------------------------------------------------------------
# component protocols and default implementations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StationRole:
    """Per-station population facts the builder wires into the network."""

    uses_rtscts: bool = False
    obstructed: bool = False
    load_factor: float = 1.0


class Placement(Protocol):
    """Physical layout strategy for one scenario."""

    def ap_positions(self, config: "ScenarioConfig") -> list[Position]: ...

    def station_positions(
        self, config: "ScenarioConfig", rng: np.random.Generator
    ) -> list[Position]: ...

    def sniffer_position(self, config: "ScenarioConfig") -> Position: ...


@dataclass(frozen=True)
class RoomPlacement:
    """The classic floor plan: APs on the centre line, stations uniform,
    sniffers at the room centre (paper Figs 2-3)."""

    def ap_positions(self, config: "ScenarioConfig") -> list[Position]:
        return place_aps(config.n_aps, config.room_width_m, config.room_depth_m)

    def station_positions(
        self, config: "ScenarioConfig", rng: np.random.Generator
    ) -> list[Position]:
        return place_stations(
            config.n_stations, config.room_width_m, config.room_depth_m, rng
        )

    def sniffer_position(self, config: "ScenarioConfig") -> Position:
        return sniffer_position(config.room_width_m, config.room_depth_m)


@dataclass(frozen=True)
class HotspotPlacement:
    """Stations cluster around hotspot foci instead of filling the floor.

    ``centres`` are (x, y) fractions of the room; each station picks a
    focus uniformly and lands a Gaussian ``spread_m`` away (clipped to
    the floor).  Models the registration desk / coffee-break crowding
    that makes conference cells locally much denser than a uniform
    scatter.
    """

    centres: tuple[tuple[float, float], ...] = ((0.5, 0.5),)
    spread_m: float = 3.0

    def __post_init__(self) -> None:
        if not self.centres:
            raise ValueError("need at least one hotspot centre")
        if self.spread_m <= 0:
            raise ValueError("spread_m must be positive")

    def ap_positions(self, config: "ScenarioConfig") -> list[Position]:
        return place_aps(config.n_aps, config.room_width_m, config.room_depth_m)

    def station_positions(
        self, config: "ScenarioConfig", rng: np.random.Generator
    ) -> list[Position]:
        margin = 1.0
        width, depth = config.room_width_m, config.room_depth_m
        positions = []
        for _ in range(config.n_stations):
            cx, cy = self.centres[int(rng.integers(0, len(self.centres)))]
            x = float(np.clip(
                cx * width + rng.normal(0.0, self.spread_m),
                margin, max(width - margin, margin),
            ))
            y = float(np.clip(
                cy * depth + rng.normal(0.0, self.spread_m),
                margin, max(depth - margin, margin),
            ))
            positions.append(Position(x, y))
        return positions

    def sniffer_position(self, config: "ScenarioConfig") -> Position:
        return sniffer_position(config.room_width_m, config.room_depth_m)


@dataclass(frozen=True)
class ExplicitPlacement:
    """Every position pinned by hand — hidden-terminal pairs, regression
    geometries, measured venue layouts."""

    aps: tuple[Position, ...]
    stations: tuple[Position, ...]
    sniffer: Position

    def ap_positions(self, config: "ScenarioConfig") -> list[Position]:
        if len(self.aps) != config.n_aps:
            raise ValueError(
                f"placement pins {len(self.aps)} APs but config has "
                f"{config.n_aps}"
            )
        return list(self.aps)

    def station_positions(
        self, config: "ScenarioConfig", rng: np.random.Generator
    ) -> list[Position]:
        if len(self.stations) != config.n_stations:
            raise ValueError(
                f"placement pins {len(self.stations)} stations but config "
                f"has {config.n_stations}"
            )
        return list(self.stations)

    def sniffer_position(self, config: "ScenarioConfig") -> Position:
        return self.sniffer


class Population(Protocol):
    """Assign per-station roles for one scenario."""

    def assign(
        self, config: "ScenarioConfig", rng: np.random.Generator
    ) -> list[StationRole]: ...


@dataclass(frozen=True)
class FractionPopulation:
    """Quota-based roles from the config fractions (the default).

    The first ``round(rtscts_fraction * n)`` station indices use
    RTS/CTS; ``round(obstructed_fraction * n)`` indices drawn without
    replacement are obstructed and get the configured load factor —
    exactly the populations ``run_scenario`` always built.
    """

    def assign(
        self, config: "ScenarioConfig", rng: np.random.Generator
    ) -> list[StationRole]:
        n = config.n_stations
        n_rtscts = round(config.rtscts_fraction * n)
        n_obstructed = round(config.obstructed_fraction * n)
        obstructed = set(
            rng.choice(n, size=n_obstructed, replace=False).tolist()
        )
        return [
            StationRole(
                uses_rtscts=j < n_rtscts,
                obstructed=j in obstructed,
                load_factor=(
                    config.obstructed_load_factor if j in obstructed else 1.0
                ),
            )
            for j in range(n)
        ]


@dataclass(frozen=True)
class ExplicitPopulation:
    """Hand-picked roles, index-aligned with the station positions."""

    roles: tuple[StationRole, ...]

    def assign(
        self, config: "ScenarioConfig", rng: np.random.Generator
    ) -> list[StationRole]:
        if len(self.roles) != config.n_stations:
            raise ValueError(
                f"population pins {len(self.roles)} roles but config has "
                f"{config.n_stations} stations"
            )
        return list(self.roles)


class LinkImpairment(Protocol):
    """Translate an obstructed role into propagation damage."""

    def apply(
        self,
        config: "ScenarioConfig",
        propagation: PropagationModel,
        node_id: int,
        position: Position,
        ap: AccessPoint,
        rng: np.random.Generator,
    ) -> None: ...


@dataclass(frozen=True)
class CalibratedObstruction:
    """Extra loss calibrated so the weaker link direction lands in the
    config's SNR band (the default).

    Calibrate on the *weaker* direction (usually the station uplink,
    lower tx power): the stronger direction then sits a few dB above
    the band.  Calibrating on the strong direction would leave the weak
    one below the band — undeliverable at any rate.
    """

    def apply(
        self,
        config: "ScenarioConfig",
        propagation: PropagationModel,
        node_id: int,
        position: Position,
        ap: AccessPoint,
        rng: np.random.Generator,
    ) -> None:
        clean_rx = propagation.received_power_dbm(
            min(config.station_tx_power_dbm, config.ap_tx_power_dbm),
            ap.mac.position,
            position,
            tx_id=ap.node_id,
            rx_id=node_id,
        )
        clean_snr = clean_rx - propagation.noise_floor_dbm
        lo, hi = config.obstructed_snr_band_db
        target_snr = float(rng.uniform(lo, hi))
        propagation.node_extra_loss_db[node_id] = max(0.0, clean_snr - target_snr)


class TrafficProgram(Protocol):
    """Attach offered-load sources to a built network."""

    def attach(self, built: "BuiltScenario") -> list[object]: ...


@dataclass(frozen=True)
class PoissonProgram:
    """Per-station open-loop Poisson uplink + downlink (the default).

    Follows the config's rate schedules, size mix and activity windows;
    stations whose role carries a load factor get both directions
    scaled (their upper layers would back off on a bad link).
    """

    def attach(self, built: "BuiltScenario") -> list[object]:
        config, sim = built.config, built.sim
        sources: list[object] = []
        for j, station in enumerate(built.stations):
            sta_rng = np.random.default_rng(config.seed + 1000 + j)
            if config.activity is not None:
                start_us, end_us = config.activity(j, sta_rng)
            else:
                start_us, end_us = 0, config.duration_us
            uplink, downlink = config.uplink, config.downlink
            role = built.roles[j]
            if role.load_factor != 1.0:
                uplink = ScaledRate(uplink, role.load_factor)
                downlink = ScaledRate(downlink, role.load_factor)
            # Association management frame at activity start.
            sim.schedule_at(
                max(start_us, 0),
                (lambda s=station: s.mac.enqueue(s.ap_id, 64, FrameType.MGMT)),
            )
            sources.append(
                PoissonSource(
                    sim=sim,
                    enqueue=station.mac.enqueue,
                    dst=station.ap_id,
                    schedule=uplink,
                    sizes=config.size_mix,
                    rng=sta_rng,
                    start_us=start_us,
                    end_us=end_us,
                )
            )
            sources.append(
                PoissonSource(
                    sim=sim,
                    enqueue=built.downlink_enqueue(station.node_id),
                    dst=station.node_id,
                    schedule=downlink,
                    sizes=config.size_mix,
                    rng=np.random.default_rng(config.seed + 2000 + j),
                    start_us=start_us,
                    end_us=end_us,
                )
            )
        return sources


# ---------------------------------------------------------------------------
# the built scenario
# ---------------------------------------------------------------------------


@dataclass
class BuiltScenario:
    """A fully wired network, ready to run exactly once.

    ``run()`` buffers everything and returns the classic
    :class:`~repro.sim.scenarios.ScenarioResult`; ``stream()`` yields
    the merged sniffer capture as bounded, time-sorted chunks while the
    simulation advances, never holding more than one drain window of
    rows — feed it straight to :func:`repro.pipeline.run_all`.
    """

    config: "ScenarioConfig"
    sim: Simulator
    medium: Medium
    propagation: PropagationModel
    phy: PhyModel
    aps: list[AccessPoint]
    stations: list[Station]
    roles: list[StationRole]
    downlink_router: dict[int, AccessPoint]
    sniffers: list[Sniffer] = field(default_factory=list)
    sources: list[object] = field(default_factory=list)
    channel_manager: ChannelManager | None = None
    roaming_manager: RoamingManager | None = None
    _consumed: bool = False

    @property
    def roster(self) -> NodeRoster:
        return NodeRoster(
            [ap.info for ap in self.aps]
            + [station.info for station in self.stations]
        )

    def downlink_enqueue(self, station_id: int):
        """Enqueue-callable that routes via the station's *current* AP.

        Sources look the serving AP up per packet, so roaming re-targets
        in-flight flows like a real distribution system.
        """

        def enqueue(dst, size, ftype):
            return self.downlink_router[station_id].mac.enqueue(dst, size, ftype)

        return enqueue

    # -- post-run statistics (valid after run() or a finished stream()) ----

    @property
    def frames_transmitted(self) -> int:
        return self.medium.frames_transmitted

    @property
    def frames_captured(self) -> int:
        return sum(s.frames_captured for s in self.sniffers)

    @property
    def capture_ratio(self) -> float:
        """Captured / transmitted; 0.0 for a degenerate zero-frame run."""
        total = self.frames_transmitted
        return self.frames_captured / total if total else 0.0

    @property
    def offered_packets(self) -> int:
        """MSDUs offered by all traffic sources that count them."""
        return sum(
            int(getattr(source, "packets_offered", 0)) for source in self.sources
        )

    @property
    def perf_counters(self) -> dict[str, int]:
        """Hot-path diagnostics: frame and event-loop counters.

        ``events_cancelled`` tracks timeout churn (ACK/CTS timeouts
        cancelled on success); the engine compacts the heap when such
        tombstones would otherwise dominate it.  Benchmarks and campaign
        cells report these so perf regressions are attributable.
        """
        return {
            "frames_transmitted": self.medium.frames_transmitted,
            "events_processed": self.sim.events_processed,
            "events_cancelled": self.sim.events_cancelled,
            "events_pending": self.sim.events_pending,
            # Discrete-event engine: no batch-stepped window epochs.
            # The fast engine reports the mirror image (epochs > 0,
            # event counters 0), so profiles stay attributable.
            "slot_epochs": 0,
        }

    @property
    def delivery_ratio(self) -> float:
        """Aggregate DATA delivery ratio across every MAC in the network.

        Guarded: a run where nothing was attempted reports 0.0 rather
        than dividing by zero.
        """
        attempts = successes = 0
        for node in (*self.stations, *self.aps):
            attempts += node.mac.stats.data_attempts
            successes += node.mac.stats.data_successes
        return successes / attempts if attempts else 0.0

    def _consume(self) -> None:
        if self._consumed:
            raise RuntimeError(
                "this BuiltScenario has already run; build a fresh one"
            )
        self._consumed = True

    def run(self) -> "ScenarioResult":
        """Run to the configured duration; return buffered artifacts."""
        from .scenarios import ScenarioResult

        self._consume()
        self.sim.run_until(self.config.duration_us)
        trace = Trace.concatenate([s.to_trace() for s in self.sniffers])
        return ScenarioResult(
            trace=trace,
            ground_truth=ground_truth_trace(self.medium),
            roster=self.roster,
            stations=self.stations,
            aps=self.aps,
            sniffers=self.sniffers,
            medium=self.medium,
            sim=self.sim,
            config=self.config,
            channel_manager=self.channel_manager,
            roaming_manager=self.roaming_manager,
        )

    def stream(
        self,
        chunk_frames: int = _DEFAULT_CHUNK_FRAMES,
        window_s: float = 1.0,
        drain_guard_us: int = MAX_FRAME_AIRTIME_US,
        record_ground_truth: bool = False,
    ) -> Iterator[Trace]:
        """Advance the simulation window by window, yielding the merged
        sniffer capture as time-sorted chunks of at most ``chunk_frames``.

        Memory stays bounded: each window drains every sniffer of rows
        older than ``now - drain_guard_us`` (rows newer than that may
        still be re-ordered by in-flight frames), and per-frame ground
        truth is not recorded unless requested.  The concatenation of
        the yielded chunks equals the buffered ``run()`` capture after
        its global stable time sort — i.e. exactly the row order
        ``analyze_trace`` works on — so a streamed analysis is
        field-identical to the buffered one.  (``run().trace`` itself
        is a per-sniffer concatenation; on multi-channel configs
        compare against ``run().trace.sorted_by_time()``.)
        """
        if chunk_frames <= 0:
            raise ValueError("chunk_frames must be positive")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if drain_guard_us < MAX_FRAME_AIRTIME_US:
            raise ValueError(
                f"drain_guard_us must cover one frame airtime "
                f"({MAX_FRAME_AIRTIME_US} us)"
            )
        self._consume()
        self.medium.record_ground_truth = record_ground_truth
        duration_us = self.config.duration_us
        window_us = max(int(window_s * 1_000_000), 1)
        now = 0
        watermark = 0
        while now < duration_us:
            now = min(now + window_us, duration_us)
            self.sim.run_until(now)
            if now >= duration_us:
                cutoff = None        # run complete: drain everything
            else:
                cutoff = now - drain_guard_us
                if cutoff <= watermark:
                    continue         # nothing new is safely behind the guard
                watermark = cutoff
            merged = Trace.concatenate(
                [s.drain_trace(cutoff) for s in self.sniffers]
            ).sorted_by_time()
            for lo in range(0, len(merged), chunk_frames):
                yield merged.slice_rows(lo, min(lo + chunk_frames, len(merged)))


# ---------------------------------------------------------------------------
# the builder
# ---------------------------------------------------------------------------


class ScenarioBuilder:
    """Assemble a :class:`BuiltScenario` from swappable components.

    >>> from repro.sim import ScenarioBuilder, ScenarioConfig
    >>> built = (
    ...     ScenarioBuilder(ScenarioConfig(n_stations=2, duration_s=1.0))
    ...     .with_placement(HotspotPlacement(centres=((0.3, 0.5),)))
    ...     .build()
    ... )
    >>> len(built.stations)
    2

    ``with_*`` methods return ``self`` for chaining; ``configure``
    tweaks individual config fields without rebuilding the whole
    :class:`~repro.sim.scenarios.ScenarioConfig`.
    """

    def __init__(self, config: "ScenarioConfig | None" = None) -> None:
        from .scenarios import ScenarioConfig

        self.config = config if config is not None else ScenarioConfig()
        self._placement: Placement = RoomPlacement()
        self._population: Population = FractionPopulation()
        self._impairment: LinkImpairment = CalibratedObstruction()
        self._traffic: TrafficProgram = PoissonProgram()

    def configure(self, **overrides) -> "ScenarioBuilder":
        """Replace individual :class:`ScenarioConfig` fields."""
        self.config = replace(self.config, **overrides)
        return self

    def with_config(self, config: "ScenarioConfig") -> "ScenarioBuilder":
        self.config = config
        return self

    def with_placement(self, placement: Placement) -> "ScenarioBuilder":
        self._placement = placement
        return self

    def with_population(self, population: Population) -> "ScenarioBuilder":
        self._population = population
        return self

    def with_impairment(self, impairment: LinkImpairment) -> "ScenarioBuilder":
        self._impairment = impairment
        return self

    def with_traffic(self, traffic: TrafficProgram) -> "ScenarioBuilder":
        self._traffic = traffic
        return self

    def build(self, fidelity: str = "default"):
        """Wire the network.  Component hooks run in a fixed order
        (placement → population → per-station impairments → traffic →
        infrastructure → sniffers) sharing one seeded RNG stream, so a
        given config + component set is fully reproducible.

        ``fidelity`` selects the engine the built scenario runs on:
        ``"default"`` is the byte-identical discrete-event machine
        pinned by the golden-trace digests; ``"fast"`` wraps the same
        wired network in the columnar batch-stepped core
        (:class:`~repro.sim.fastpath.FastBuiltScenario`), which is
        validated statistically instead.  The wiring below runs
        identically for both, so the RNG streams — and therefore the
        topology — never depend on the fidelity choice.
        """
        from .fastpath import FIDELITY_MODES, FastBuiltScenario

        if fidelity not in FIDELITY_MODES:
            choices = ", ".join(repr(m) for m in FIDELITY_MODES)
            raise ValueError(
                f"unknown fidelity {fidelity!r}: expected one of {choices}"
            )
        config = self.config
        rng = np.random.default_rng(config.seed)
        sim = Simulator()
        propagation = PropagationModel(
            exponent=config.path_loss_exponent,
            shadowing_sigma_db=config.shadowing_sigma_db,
            rng=np.random.default_rng(config.seed + 1),
        )
        phy = PhyModel()
        medium = Medium(
            sim, propagation, phy, rng=np.random.default_rng(config.seed + 2)
        )

        # --- access points: round-robin over channels ------------------
        aps: list[AccessPoint] = []
        for i, pos in enumerate(self._placement.ap_positions(config)):
            aps.append(
                AccessPoint.create(
                    sim=sim,
                    medium=medium,
                    phy=phy,
                    node_id=i + 1,
                    position=pos,
                    channel=config.channels[i % len(config.channels)],
                    rng=np.random.default_rng(config.seed + 10 + i),
                    rate_adaptation=make_rate_adaptation(
                        config.rate_algorithm, **config.rate_adaptation_kwargs
                    ),
                    tx_power_dbm=config.ap_tx_power_dbm,
                    mac_config=config.mac_config,
                )
            )

        # --- stations: placed, role-assigned, associated to nearest AP --
        sta_positions = self._placement.station_positions(config, rng)
        roles = self._population.assign(config, rng)
        stations: list[Station] = []
        for j, pos in enumerate(sta_positions):
            nearest = min(aps, key=lambda ap: ap.mac.position.distance_to(pos))
            node_id = config.n_aps + 1 + j
            if roles[j].obstructed:
                self._impairment.apply(
                    config, propagation, node_id, pos, nearest, rng
                )
            station = Station.create(
                sim=sim,
                medium=medium,
                phy=phy,
                node_id=node_id,
                position=pos,
                channel=nearest.channel,
                ap_id=nearest.node_id,
                rng=np.random.default_rng(config.seed + 100 + j),
                rate_adaptation=make_rate_adaptation(
                    config.rate_algorithm, **self._station_ra_kwargs()
                ),
                uses_rtscts=roles[j].uses_rtscts,
                tx_power_dbm=config.station_tx_power_dbm,
                mac_config=config.mac_config,
                power_control=config.power_control,
            )
            nearest.associate(station.node_id)
            stations.append(station)

        downlink_router: dict[int, AccessPoint] = {
            station.node_id: next(
                a for a in aps if a.node_id == station.ap_id
            )
            for station in stations
        }
        built = BuiltScenario(
            config=config,
            sim=sim,
            medium=medium,
            propagation=propagation,
            phy=phy,
            aps=aps,
            stations=stations,
            roles=roles,
            downlink_router=downlink_router,
        )

        # --- traffic, infrastructure, sniffers (original event order) --
        built.sources = self._traffic.attach(built)
        if config.channel_management:
            built.channel_manager = ChannelManager(
                sim=sim,
                medium=medium,
                aps=aps,
                stations=stations,
                channels=config.channels,
            )
        if config.roaming:
            built.roaming_manager = RoamingManager(
                sim=sim,
                propagation=propagation,
                aps=aps,
                stations=stations,
                downlink_router=downlink_router,
                ap_tx_power_dbm=config.ap_tx_power_dbm,
            )
        centre = self._placement.sniffer_position(config)
        for k, channel in enumerate(config.channels):
            built.sniffers.append(
                Sniffer(
                    sim=sim,
                    medium=medium,
                    node_id=SNIFFER_ID_BASE + k,
                    position=centre,
                    channel=channel,
                    rng=np.random.default_rng(config.seed + 3000 + k),
                    config=config.sniffer_config,
                )
            )
        if fidelity == "fast":
            return FastBuiltScenario(built)
        return built

    def _station_ra_kwargs(self) -> dict:
        """Station-side rate-adaptation kwargs.

        SNR-based schemes measure the *downlink* (frames heard from the
        AP) but transmit on the *uplink*; the AP typically runs hotter,
        so the station oracle budgets the tx-power asymmetry as a
        margin.
        """
        config = self.config
        kwargs = dict(config.rate_adaptation_kwargs)
        if config.rate_algorithm == "snr" and "margin_db" not in kwargs:
            kwargs["margin_db"] = max(
                0.0, config.ap_tx_power_dbm - config.station_tx_power_dbm
            )
        return kwargs
