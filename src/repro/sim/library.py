"""Named scenario library: ready-made builders for diverse conditions.

The paper's findings come from *comparing* conditions — congested vs.
uncongested hours, RTS/CTS on vs. off, rate fallback under load.  This
registry packages those conditions (and the pathologies behind them) as
named, parameterised :class:`~repro.sim.builder.ScenarioBuilder`
factories, so campaigns can sweep them by name:

* ``ramp`` / ``day`` / ``plenary`` — the classic calibrated configs;
* ``hidden-terminal`` — two station clusters that can reach the AP but
  not hear each other (the §5 collision pathology RTS/CTS targets);
* ``hotspot-plenary`` — users piled around hotspot foci with heavy
  bursty arrivals, the registration-desk crowding case;
* ``co-channel`` — several APs sharing one channel, so cells contend
  instead of being isolated (the paper's §4.1 channel-overlap worry);
* ``roaming-storm`` — heavy shadowing plus handoffs, churning
  associations like Figure 4(b)'s moving user counts.

Every factory takes scenario-shaping keyword arguments plus arbitrary
:class:`~repro.sim.scenarios.ScenarioConfig` field overrides, e.g.
``build_scenario("hidden-terminal", n_stations=12, duration_s=20.0,
rtscts_fraction=1.0)``.
"""

from __future__ import annotations

import inspect
from dataclasses import fields as dataclass_fields, replace
from typing import Callable, Iterable

import numpy as np

from .._suggest import unknown_name_message
from .builder import (
    BuiltScenario,
    ExplicitPlacement,
    HotspotPlacement,
    ScenarioBuilder,
)
from .propagation import Position
from .scenarios import (
    RAMP_MIX,
    ScenarioConfig,
    ietf_day_config,
    ietf_plenary_config,
    load_ramp_config,
)
from .topology import sniffer_position
from .traffic import CONFERENCE_MIX, ConstantRate, ModulatedRate

__all__ = [
    "SCENARIO_LIBRARY",
    "UnknownParameterError",
    "register_scenario",
    "available_scenarios",
    "scenario_builder",
    "scenario_config",
    "scenario_parameters",
    "validate_scenario_params",
    "build_scenario",
    "hidden_terminal_config",
    "hotspot_plenary_config",
    "co_channel_config",
    "roaming_storm_config",
    "uniform_config",
]


class UnknownParameterError(TypeError):
    """A scenario was given a parameter name it does not understand.

    Subclasses :class:`TypeError` because that is what an unknown
    keyword has always raised (from ``dataclasses.replace`` deep in the
    builder) — but carries a "did you mean ...?" message listing the
    scenario's valid parameter names instead of a bare traceback.
    """


#: name -> factory returning a configured ScenarioBuilder.
SCENARIO_LIBRARY: dict[str, Callable[..., ScenarioBuilder]] = {}


def register_scenario(name: str):
    """Decorator: add a builder factory to the library under ``name``."""

    def wrap(factory: Callable[..., ScenarioBuilder]):
        if name in SCENARIO_LIBRARY:
            raise ValueError(f"scenario {name!r} already registered")
        SCENARIO_LIBRARY[name] = factory
        return factory

    return wrap


def available_scenarios() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIO_LIBRARY)


def scenario_parameters(name: str) -> tuple[str, ...]:
    """Every parameter name the named scenario accepts, sorted.

    The union of the factory's declared keyword arguments and the
    :class:`ScenarioConfig` fields (factories forward unknown keywords
    as config overrides).
    """
    factory = _lookup(name)
    declared = {
        pname
        for pname, param in inspect.signature(factory).parameters.items()
        if param.kind
        not in (inspect.Parameter.VAR_KEYWORD, inspect.Parameter.VAR_POSITIONAL)
    }
    declared.update(f.name for f in dataclass_fields(ScenarioConfig))
    return tuple(sorted(declared))


def validate_scenario_params(name: str, params: Iterable[str]) -> None:
    """Raise :class:`UnknownParameterError` for any unknown parameter.

    The silent-typo guard: ``n_statoins=40`` fails here with a
    "did you mean 'n_stations'?" message naming every valid parameter,
    instead of a ``TypeError`` deep inside ``dataclasses.replace``.
    """
    valid = scenario_parameters(name)
    for key in params:
        if key not in valid:
            raise UnknownParameterError(
                unknown_name_message(f"scenario {name!r} parameter", key, valid)
            )


def _lookup(name: str) -> Callable[..., ScenarioBuilder]:
    factory = SCENARIO_LIBRARY.get(name)
    if factory is None:
        raise KeyError(
            unknown_name_message("scenario", name, available_scenarios())
        )
    return factory


def scenario_builder(name: str, **params) -> ScenarioBuilder:
    """Instantiate the named library scenario with ``params``.

    Parameters the factory's signature declares go to the factory;
    anything else must be a :class:`ScenarioConfig` field and is applied
    as an override.  Unknown names raise :class:`UnknownParameterError`
    with a "did you mean ...?" suggestion.
    """
    factory = _lookup(name)
    validate_scenario_params(name, params)
    return factory(**params)


def scenario_config(name: str, **params) -> ScenarioConfig:
    """The :class:`ScenarioConfig` the named scenario would run with."""
    return scenario_builder(name, **params).config


def build_scenario(name: str, fidelity: str = "default", **params):
    """Build (but do not run) the named scenario — call ``run()`` or
    ``stream()`` on the result.

    ``fidelity`` picks the engine: ``"default"`` (golden-digest-pinned
    discrete events) or ``"fast"`` (columnar batch-stepped core,
    statistically validated).  It is deliberately *not* a scenario
    parameter — it never alters the wired network, only the machinery
    that runs it — so it rides outside ``params`` and campaign grids
    key it separately.
    """
    return scenario_builder(name, **params).build(fidelity=fidelity)


def _split_params(factory: Callable, params: dict) -> tuple[dict, dict]:
    """Split ``params`` into factory kwargs vs. config-field overrides."""
    accepted = set(inspect.signature(factory).parameters)
    factory_kwargs = {k: v for k, v in params.items() if k in accepted}
    overrides = {k: v for k, v in params.items() if k not in accepted}
    return factory_kwargs, overrides


def _classic(config_factory: Callable[..., ScenarioConfig]):
    """Wrap a plain config factory as a builder factory with overrides."""

    def make(**params) -> ScenarioBuilder:
        factory_kwargs, overrides = _split_params(config_factory, params)
        return ScenarioBuilder(config_factory(**factory_kwargs)).configure(
            **overrides
        )

    # Let inspect.signature (scenario_parameters) see the config
    # factory's declared keywords through the **params wrapper.
    make.__wrapped__ = config_factory
    return make


SCENARIO_LIBRARY["ramp"] = _classic(load_ramp_config)
SCENARIO_LIBRARY["day"] = _classic(ietf_day_config)
SCENARIO_LIBRARY["plenary"] = _classic(ietf_plenary_config)


def uniform_config(
    n_stations: int = 10,
    n_aps: int = 1,
    duration_s: float = 20.0,
    seed: int = 7,
    uplink_pps: float = 8.0,
    downlink_pps: float = 18.0,
    rate_algorithm: str = "arf",
    rtscts_fraction: float = 0.0,
    obstructed_fraction: float = 0.25,
) -> ScenarioConfig:
    """A plain one-room cell with constant Poisson rates.

    The declarative face of a bare :class:`ScenarioConfig`: every
    argument is a scalar, so spec files (and the ``simulate`` CLI,
    whose defaults these mirror) can describe the run without
    constructing schedule objects — ``uplink_pps``/``downlink_pps``
    become :class:`~repro.sim.traffic.ConstantRate` schedules.  Any
    other :class:`ScenarioConfig` field is accepted as an override.
    """
    return ScenarioConfig(
        n_stations=n_stations,
        n_aps=n_aps,
        duration_s=duration_s,
        seed=seed,
        uplink=ConstantRate(uplink_pps),
        downlink=ConstantRate(downlink_pps),
        rate_algorithm=rate_algorithm,
        rtscts_fraction=rtscts_fraction,
        obstructed_fraction=obstructed_fraction,
    )


SCENARIO_LIBRARY["uniform"] = _classic(uniform_config)


def hidden_terminal_config(
    n_stations: int = 8,
    duration_s: float = 20.0,
    seed: int = 31,
    room_width_m: float = 64.0,
    uplink_pps: float = 22.0,
    rtscts_fraction: float = 0.0,
) -> ScenarioConfig:
    """Config half of :func:`_hidden_terminal` (see that factory)."""
    return ScenarioConfig(
        n_stations=n_stations,
        n_aps=1,
        duration_s=duration_s,
        seed=seed,
        channels=(1,),
        room_width_m=room_width_m,
        room_depth_m=8.0,
        # Deterministic geometry: hiddenness must come from path loss,
        # not a lucky shadowing draw.
        shadowing_sigma_db=0.0,
        path_loss_exponent=3.5,
        station_tx_power_dbm=15.0,
        rtscts_fraction=rtscts_fraction,
        obstructed_fraction=0.0,
        uplink=ConstantRate(uplink_pps),
        downlink=ConstantRate(4.0),
        size_mix=CONFERENCE_MIX,
    )


@register_scenario("hidden-terminal")
def _hidden_terminal(
    n_stations: int = 8,
    duration_s: float = 20.0,
    seed: int = 31,
    room_width_m: float = 64.0,
    uplink_pps: float = 22.0,
    rtscts_fraction: float = 0.0,
    **overrides,
) -> ScenarioBuilder:
    """Two station clusters at opposite ends of a long narrow room.

    At path-loss exponent 3.5 and 15 dBm transmit power the ~58 m
    cluster separation puts each cluster below the other's -85 dBm
    carrier-sense threshold while the ~30 m AP link still delivers
    ~20 dB SNR: both ends talk to the AP, neither defers to the other,
    and uplink DATA collides at the AP.  Sweep ``rtscts_fraction``
    0 → 1 to reproduce the RTS/CTS trade-off of the paper's Figure 7.
    """
    config = hidden_terminal_config(
        n_stations=n_stations,
        duration_s=duration_s,
        seed=seed,
        room_width_m=room_width_m,
        uplink_pps=uplink_pps,
        rtscts_fraction=rtscts_fraction,
    )
    if overrides:
        # Apply overrides *before* pinning positions: the explicit
        # placement below is computed from the room geometry, so a late
        # configure() would silently ignore e.g. room_depth_m.
        config = replace(config, **overrides)
    width, depth = config.room_width_m, config.room_depth_m
    rng = np.random.default_rng(seed + 7)
    stations = []
    for j in range(config.n_stations):
        # Alternate ends so both clusters stay populated for any count.
        x_lo, x_hi = (1.0, 3.0) if j % 2 == 0 else (width - 3.0, width - 1.0)
        stations.append(
            Position(
                float(rng.uniform(x_lo, x_hi)),
                float(rng.uniform(1.0, depth - 1.0)),
            )
        )
    placement = ExplicitPlacement(
        aps=(Position(width / 2.0, depth / 2.0),),
        stations=tuple(stations),
        sniffer=sniffer_position(width, depth),
    )
    return ScenarioBuilder(config).with_placement(placement)


def hotspot_plenary_config(
    n_stations: int = 24,
    duration_s: float = 45.0,
    seed: int = 33,
    burst_sigma: float = 1.3,
) -> ScenarioConfig:
    """Config half of :func:`_hotspot_plenary` (see that factory)."""
    return ScenarioConfig(
        n_stations=n_stations,
        n_aps=3,
        duration_s=duration_s,
        seed=seed,
        channels=(1, 6, 11),
        room_width_m=40.0,
        room_depth_m=25.0,
        shadowing_sigma_db=6.0,
        path_loss_exponent=3.2,
        station_tx_power_dbm=12.0,
        rate_adaptation_kwargs={"up_threshold": 5, "down_threshold": 3},
        obstructed_fraction=0.2,
        size_mix=RAMP_MIX,
        uplink=ModulatedRate(
            ConstantRate(10.0), sigma=burst_sigma, seed=seed + 51
        ),
        downlink=ModulatedRate(
            ConstantRate(30.0), sigma=burst_sigma, seed=seed + 52
        ),
    )


@register_scenario("hotspot-plenary")
def _hotspot_plenary(
    n_stations: int = 24,
    duration_s: float = 45.0,
    seed: int = 33,
    burst_sigma: float = 1.3,
    spread_m: float = 4.0,
    **overrides,
) -> ScenarioBuilder:
    """Plenary-hall cells with users piled around hotspot foci.

    Instead of a uniform floor, stations cluster near the doors and the
    front rows, so one AP's cell is much denser than the others while
    heavy log-normal burst modulation (``burst_sigma``) slams the
    offered load around — the crowding that drove the paper's plenary
    captures deep into congestion.
    """
    config = hotspot_plenary_config(
        n_stations=n_stations,
        duration_s=duration_s,
        seed=seed,
        burst_sigma=burst_sigma,
    )
    placement = HotspotPlacement(
        centres=((0.15, 0.5), (0.85, 0.55), (0.5, 0.3)),
        spread_m=spread_m,
    )
    return (
        ScenarioBuilder(config).with_placement(placement).configure(**overrides)
    )


def co_channel_config(
    n_stations: int = 18,
    n_aps: int = 3,
    duration_s: float = 30.0,
    seed: int = 35,
) -> ScenarioConfig:
    """Config half of :func:`_co_channel` (see that factory)."""
    return ScenarioConfig(
        n_stations=n_stations,
        n_aps=n_aps,
        duration_s=duration_s,
        seed=seed,
        channels=(1,),           # every AP on the same channel
        room_width_m=70.0,
        room_depth_m=25.0,
        shadowing_sigma_db=5.0,
        path_loss_exponent=3.1,
        station_tx_power_dbm=13.0,
        obstructed_fraction=0.15,
        uplink=ConstantRate(7.0),
        downlink=ConstantRate(20.0),
        size_mix=CONFERENCE_MIX,
    )


@register_scenario("co-channel")
def _co_channel(
    n_stations: int = 18,
    n_aps: int = 3,
    duration_s: float = 30.0,
    seed: int = 35,
    **overrides,
) -> ScenarioBuilder:
    """Several AP cells forced onto one shared channel.

    The paper's venue spread its APs over channels 1/6/11; this
    scenario deliberately does not, so neighbouring cells carrier-sense
    and collide with each other.  Sweeping ``n_aps`` shows co-channel
    overlap eating the capacity that extra APs were supposed to add.
    """
    config = co_channel_config(
        n_stations=n_stations,
        n_aps=n_aps,
        duration_s=duration_s,
        seed=seed,
    )
    return ScenarioBuilder(config).configure(**overrides)


def roaming_storm_config(
    n_stations: int = 20,
    duration_s: float = 40.0,
    seed: int = 37,
) -> ScenarioConfig:
    """Config half of :func:`_roaming_storm` (see that factory)."""
    return ScenarioConfig(
        n_stations=n_stations,
        n_aps=4,
        duration_s=duration_s,
        seed=seed,
        channels=(1, 6, 11),
        room_width_m=60.0,
        room_depth_m=25.0,
        # Heavy per-link shadowing: nearest-by-distance association is
        # frequently not strongest-by-beacon, so the first scans set
        # off a wave of reassociations.
        shadowing_sigma_db=9.0,
        path_loss_exponent=3.2,
        station_tx_power_dbm=12.0,
        roaming=True,
        obstructed_fraction=0.1,
        uplink=ConstantRate(6.0),
        downlink=ConstantRate(16.0),
        size_mix=CONFERENCE_MIX,
    )


@register_scenario("roaming-storm")
def _roaming_storm(
    n_stations: int = 20,
    duration_s: float = 40.0,
    seed: int = 37,
    **overrides,
) -> ScenarioBuilder:
    """Association churn: heavy shadowing plus periodic handoffs.

    Stations start on the nearest AP, but with 9 dB link shadowing the
    strongest beacon is often a different one; the roaming manager then
    keeps moving users as scans fire — Figure 4(b)'s shifting
    association counts, plus the reassociation management traffic the
    sniffers record.
    """
    config = roaming_storm_config(
        n_stations=n_stations, duration_s=duration_s, seed=seed
    )
    return ScenarioBuilder(config).configure(**overrides)
