"""Radio propagation: log-distance path loss with optional shadowing.

A standard indoor model: received power (dBm) at distance ``d`` metres is

    rx = tx_power - PL(d0) - 10 * n * log10(d / d0) - X_sigma

with reference loss PL(1 m) = 40 dB, path-loss exponent n ~= 3 (indoor
conference hall with people), and optional log-normal shadowing X_sigma
drawn once per (tx, rx) pair — shadowing is a property of the link
geometry, not of time, over the paper's one-second analysis scales.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Position", "PropagationModel"]


@dataclass(frozen=True)
class Position:
    """Planar node position, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass
class PropagationModel:
    """Log-distance path loss + per-link log-normal shadowing."""

    reference_loss_db: float = 40.0   # PL at 1 m
    exponent: float = 3.0             # indoor path-loss exponent
    shadowing_sigma_db: float = 4.0   # per-link shadowing std-dev
    noise_floor_dbm: float = -96.0    # thermal + NF over 22 MHz
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    _shadowing: dict[tuple[int, int], float] = field(default_factory=dict)
    #: Extra per-node attenuation (dB) applied to every link touching the
    #: node — models obstructed users (bodies, bags, partition walls).
    node_extra_loss_db: dict[int, float] = field(default_factory=dict)

    def path_loss_db(self, distance_m: float) -> float:
        """Deterministic log-distance path loss."""
        d = max(distance_m, 1.0)
        return self.reference_loss_db + 10.0 * self.exponent * math.log10(d)

    def link_shadowing_db(self, tx_id: int, rx_id: int) -> float:
        """Per-link shadowing, symmetric and fixed for a run."""
        if self.shadowing_sigma_db <= 0:
            return 0.0
        key = (min(tx_id, rx_id), max(tx_id, rx_id))
        value = self._shadowing.get(key)
        if value is None:
            value = float(self.rng.normal(0.0, self.shadowing_sigma_db))
            self._shadowing[key] = value
        return value

    def received_power_dbm(
        self,
        tx_power_dbm: float,
        tx_pos: Position,
        rx_pos: Position,
        tx_id: int = -1,
        rx_id: int = -1,
    ) -> float:
        """Received signal power for one link."""
        loss = self.path_loss_db(tx_pos.distance_to(rx_pos))
        shadow = self.link_shadowing_db(tx_id, rx_id) if tx_id >= 0 and rx_id >= 0 else 0.0
        extra = self.node_extra_loss_db.get(tx_id, 0.0) + self.node_extra_loss_db.get(
            rx_id, 0.0
        )
        return tx_power_dbm - loss - shadow - extra

    def snr_db(self, rx_power_dbm: float, interference_mw: float = 0.0) -> float:
        """SINR given received power and summed interference power (mW)."""
        noise_mw = 10.0 ** (self.noise_floor_dbm / 10.0)
        signal_mw = 10.0 ** (rx_power_dbm / 10.0)
        return 10.0 * math.log10(signal_mw / (noise_mw + interference_mw))
