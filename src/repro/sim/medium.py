"""Shared wireless medium: carrier sense, collisions, reception.

The medium connects transceiver entities (MACs, sniffers) on a channel:

* **Carrier sense** is energy-based and per-listener: a listener senses
  busy while any ongoing transmission arrives above its sense threshold.
  Hidden terminals arise naturally when path loss puts a transmitter
  below a listener's threshold.
* **Collisions**: transmissions that overlap in time contribute
  interference at each listener; reception success is sampled from the
  PHY error model at the resulting SINR, so strong frames can survive a
  collision (capture effect) and weak ones fail even alone.
* **Delivery** happens at transmission end: every attached listener on
  the channel (not only the addressee) gets ``on_frame_received`` when it
  decodes the frame — MACs use overheard frames for NAV, sniffers for
  capture.

Hot path
--------
Positions, thresholds and (between explicit topology changes) channels
are static for a run, so per-transmitter **delivery plans** are cached:
one pass over all listeners per ``(sender, tx power, channel)`` computes
who is *audible* (above carrier-sense threshold) and who is *decodable*
(above decode floor), and every later frame from that transmitter walks
only those listeners — O(audible) Python work per frame instead of
O(attached).  Each plan entry carries the static link SNR and lazily
caches the PHY success probability per rate/frame type, collapsing the
per-reception erfc/log1p/exp chain to one ``math.exp``.  The arithmetic
is kept expression-for-expression identical to the uncached path, so
optimized runs emit byte-identical traces (enforced by
``tests/sim/test_determinism_golden.py``).

Plans are invalidated by ``notify_topology_changed()`` — called
automatically when a :class:`~repro.sim.dcf.DcfMac` channel is
re-targeted (roaming, channel management) or a listener attaches.
Transmissions in flight across an invalidation finish on a dynamic
fallback that re-reads listener channels exactly like the uncached
loop.  Purely passive listeners (sniffers) declare ``medium_passive``
and skip carrier-sense bookkeeping entirely: nothing ever queries a
sniffer's busy state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..frames import FrameType
from .engine import Simulator
from .phy import BASIC_RATE_MBPS, PhyModel
from .propagation import Position, PropagationModel

__all__ = ["SimFrame", "MediumListener", "Medium", "Transmission"]


@dataclass(slots=True)
class SimFrame:
    """A frame in flight inside the simulator."""

    ftype: FrameType
    src: int
    dst: int
    size: int               # bytes, the paper's S in D_DATA
    rate_mbps: float
    seq: int = 0
    retry: bool = False
    channel: int = 1
    duration_us: int = 0    # on-air time, filled by the transmitter
    nav_us: int = 0         # medium-reservation hint (RTS/CTS duration field)


class MediumListener(Protocol):
    """What the medium needs from an attached entity.

    Optional attributes refine the fast path: ``decode_threshold_dbm``
    (decode gate; defaults to just above the noise floor),
    ``medium_passive`` (never consults carrier sense — sniffers), and
    ``overhear_noop`` (receiving a frame addressed elsewhere with no NAV
    is a provable no-op, so delivery can be skipped).
    """

    node_id: int
    position: Position
    channel: int
    sense_threshold_dbm: float

    def on_medium_busy(self) -> None: ...
    def on_medium_idle(self) -> None: ...
    def on_frame_received(self, frame: SimFrame, snr_db: float) -> None: ...


@dataclass(slots=True, eq=False)
class Transmission:
    """One ongoing transmission and its interference bookkeeping.

    Identity equality (``eq=False``): transmissions are unique live
    objects — the active-list bookkeeping must never confuse two
    field-identical frames in flight.
    """

    frame: SimFrame
    tx: "MediumListener"
    tx_power_dbm: float
    start_us: int
    end_us: int
    overlapped: list["Transmission"] = field(default_factory=list)
    #: delivery-plan entries captured at transmit time (fast path), and
    #: the plan epoch they belong to — a mismatch at finish time means
    #: the topology changed mid-flight and the dynamic path takes over.
    plan: list | None = None
    plan_epoch: int = -1


class Medium:
    """The shared channel; all entities attach to one medium instance."""

    def __init__(
        self,
        sim: Simulator,
        propagation: PropagationModel,
        phy: PhyModel,
        rng: np.random.Generator,
    ) -> None:
        self.sim = sim
        self.propagation = propagation
        self.phy = phy
        self.rng = rng
        self._listeners: list[MediumListener] = []
        self._active: list[Transmission] = []
        self._sensed: dict[int, set[int]] = {}  # listener id -> active tx ids
        self._tx_counter = 0
        self._tx_ids: dict[int, Transmission] = {}
        self.frames_transmitted = 0
        #: per-channel transmission counts — always maintained (O(channels)
        #: memory), so infrastructure like the channel manager can measure
        #: load without the unbounded ground-truth buffer.
        self.channel_tx_counts: dict[int, int] = {}
        #: When False, the per-frame ground-truth buffer below stays empty
        #: (streaming runs flip this off so day-long simulations hold no
        #: full-run frame list; counters above keep working).
        self.record_ground_truth = True
        #: every transmission ever put on the air: (start_us, frame).
        #: This is the simulator's ground truth, against which the
        #: sniffer capture model (and the paper's unrecorded-frame
        #: estimator) can be validated.
        self.ground_truth: list[tuple[int, SimFrame]] = []
        # Positions are static for a run, so per-(tx, rx) received power
        # is cached; this is the simulation hot path.
        self._power_cache: dict[tuple[int, int, float], float] = {}
        # Delivery plans: (id(sender), tx_power, channel) -> (sender,
        # finish_entries, transmit_entries).  Cleared wholesale on any
        # topology change; the epoch stamps in-flight transmissions.
        self._plans: dict[tuple[int, float, int], tuple] = {}
        self._plan_epoch = 0
        # On-air duration per (ftype, size, rate): small key space, hit
        # on every transmit.
        self._duration_cache: dict[tuple[FrameType, int, float], int] = {}
        # Interference helpers: per-link received power in mW (pure
        # 10**(dBm/10) of the cached dBm), and success probabilities for
        # collision SINRs, which repeat whenever the same link pair
        # collides.  The collision cache is bounded: distinct overlap
        # sets are combinatorial in principle, so it is cleared (a pure
        # perf event, never a semantic one) if it ever balloons.
        self._power_mw_cache: dict[tuple[int, int, float], float] = {}
        # Separate dicts: data keys (snr, rate) and control keys
        # (snr, FrameType) could otherwise compare equal (IntEnum).
        self._collision_terms: dict[tuple, tuple[float, float]] = {}
        self._collision_ctrl_p: dict[tuple, float] = {}
        # The constant factor of PropagationModel.snr_db, precomputed so
        # the collision path can inline the SINR formula.
        self._noise_mw = 10.0 ** (propagation.noise_floor_dbm / 10.0)

    # -- attachment --------------------------------------------------------

    def attach(self, listener: MediumListener) -> None:
        """Register an entity to sense and receive on its channel."""
        self._listeners.append(listener)
        self._sensed[id(listener)] = set()
        self.notify_topology_changed()

    def notify_topology_changed(self) -> None:
        """Invalidate cached delivery plans (channel/attachment change).

        Cheap to call; plans rebuild lazily on the next transmission.
        Frames already in the air fall back to the dynamic delivery loop
        at their end-of-transmission.
        """
        self._plans.clear()
        self._plan_epoch += 1

    def is_idle(self, listener: MediumListener) -> bool:
        """Energy carrier sense: nothing audible is on the air."""
        return not self._sensed[id(listener)]

    # -- link power --------------------------------------------------------

    def _link_power_dbm(
        self, tx_entity: MediumListener, tx_power_dbm: float, listener: MediumListener
    ) -> float:
        key = (tx_entity.node_id, listener.node_id, tx_power_dbm)
        power = self._power_cache.get(key)
        if power is None:
            power = self.propagation.received_power_dbm(
                tx_power_dbm,
                tx_entity.position,
                listener.position,
                tx_id=tx_entity.node_id,
                rx_id=listener.node_id,
            )
            self._power_cache[key] = power
        return power

    def _rx_power_dbm(self, tx: Transmission, listener: MediumListener) -> float:
        return self._link_power_dbm(tx.tx, tx.tx_power_dbm, listener)

    # -- delivery plans ----------------------------------------------------

    def _build_plan(
        self, sender: MediumListener, tx_power_dbm: float, channel: int
    ) -> tuple:
        """One full pass over the listeners for this (sender, power, channel).

        Iterates in attach order computing link powers exactly like the
        dynamic loop, so lazily-drawn link shadowing consumes the
        propagation RNG in the identical order, then keeps only the
        listeners that can sense or decode this transmitter.

        Returns ``(sender, finish_entries, transmit_entries, n_draws,
        mw_by_listener)`` where ``n_draws`` is the decodable-listener
        count — the number of medium-RNG doubles every delivery of this
        plan consumes — and ``mw_by_listener`` maps ``id(listener)`` to
        this transmitter's signal power in mW there (the interference
        contribution when this transmission overlaps another).
        Listeners exposing an ``in_contention`` flag (DCF MACs) become
        the *gate* of their own busy/idle callbacks: the medium skips
        the call when the MAC is not contending, which is exactly the
        callback's own first early-return.
        """
        propagation = self.propagation
        decode_default = propagation.noise_floor_dbm + 1.0
        finish_entries = []
        transmit_entries = []
        mw_by_listener: dict[int, float] = {}
        n_draws = 0
        for listener in self._listeners:
            if listener is sender or listener.channel != channel:
                continue
            power = self._link_power_dbm(sender, tx_power_dbm, listener)
            audible = power >= listener.sense_threshold_dbm
            decode_floor = getattr(listener, "decode_threshold_dbm", decode_default)
            decodable = power >= decode_floor
            if not audible and not decodable:
                continue
            passive = getattr(listener, "medium_passive", False)
            sensed = None if passive else self._sensed[id(listener)]
            gate = listener if hasattr(listener, "in_contention") else None
            if decodable:
                n_draws += 1
            entry = (
                listener,
                power,
                propagation.snr_db(power, 0.0),      # interference-free SNR
                sensed,
                decodable,
                listener.on_frame_received,
                listener.on_medium_idle,
                gate,
                listener.node_id,
                getattr(listener, "overhear_noop", False),
                {},  # rate -> (log1p(-ber_header), log1p(-ber_body))
                {},  # control ftype -> success probability
                10.0 ** (power / 10.0),              # signal power in mW
            )
            finish_entries.append(entry)
            mw_by_listener[id(listener)] = entry[-1]
            if audible and not passive:
                transmit_entries.append((sensed, gate, listener.on_medium_busy))
        return (sender, finish_entries, transmit_entries, n_draws, mw_by_listener)

    # -- transmission --------------------------------------------------------

    def transmit(
        self, sender: MediumListener, frame: SimFrame, tx_power_dbm: float
    ) -> Transmission:
        """Put ``frame`` on the air from ``sender`` now.

        The caller is responsible for having done carrier sense; the
        medium never rejects a transmission (collisions are physics, not
        errors).
        """
        now = self.sim.now_us
        if frame.duration_us <= 0:
            dkey = (frame.ftype, frame.size, frame.rate_mbps)
            duration = self._duration_cache.get(dkey)
            if duration is None:
                duration = self.phy.frame_duration_us(
                    frame.ftype, frame.size, frame.rate_mbps
                )
                self._duration_cache[dkey] = duration
            frame.duration_us = duration
        tx = Transmission(
            frame=frame,
            tx=sender,
            tx_power_dbm=tx_power_dbm,
            start_us=now,
            end_us=now + frame.duration_us,
        )
        self._tx_counter += 1
        tx_id = self._tx_counter
        self._tx_ids[tx_id] = tx
        self.frames_transmitted += 1
        channel = frame.channel
        counts = self.channel_tx_counts
        counts[channel] = counts.get(channel, 0) + 1
        if self.record_ground_truth:
            self.ground_truth.append((now, frame))

        # Overlap bookkeeping with already-active transmissions.
        tx_overlapped = tx.overlapped
        for other in self._active:
            other.overlapped.append(tx)
            tx_overlapped.append(other)
        self._active.append(tx)

        key = (id(sender), tx_power_dbm, channel)
        plan = self._plans.get(key)
        if plan is None or plan[0] is not sender:
            # Defensive bound: continuous TPC adaptation mints a fresh
            # power (and hence plan key) per transmission; clearing is a
            # pure perf event — in-flight transmissions keep their plan
            # references and the epoch is untouched.
            if len(self._plans) >= 4096:
                self._plans.clear()
            plan = self._build_plan(sender, tx_power_dbm, channel)
            self._plans[key] = plan
        tx.plan = plan
        tx.plan_epoch = self._plan_epoch

        # Busy transitions at every listener that can hear this.  The
        # gate is the callback's own not-contending early-return, peeked
        # so idle MACs cost an attribute load instead of a call.
        for sensed, gate, on_busy in plan[2]:
            was_idle = not sensed
            sensed.add(tx_id)
            if was_idle and (gate is None or gate.in_contention):
                on_busy()

        self.sim.schedule_at(tx.end_us, lambda: self._finish(tx_id))
        return tx

    def _finish(self, tx_id: int) -> None:
        tx = self._tx_ids.pop(tx_id)
        self._active.remove(tx)
        plan = tx.plan
        if plan is None or tx.plan_epoch != self._plan_epoch:
            self._finish_dynamic(tx, tx_id)
            return

        frame = tx.frame
        ftype = frame.ftype
        is_data = ftype is FrameType.DATA or ftype is FrameType.MGMT
        if is_data:
            body_bits = 8 * (self.phy.timing.mac_overhead_bytes + frame.size)
        else:
            body_bits = 0
        rate = frame.rate_mbps
        dst = frame.dst
        nav = frame.nav_us
        channel = frame.channel
        # Only same-channel overlaps interfere; prefilter once per
        # frame instead of once per (listener, overlap) pair.
        overlapped = tx.overlapped
        interferers = (
            [o for o in overlapped if o.frame.channel == channel]
            if overlapped
            else ()
        )
        # One vectorized draw for the whole delivery: the plan's
        # decodable count is exactly how many doubles the sequential
        # loop would consume, and numpy's Generator produces the
        # identical sequence for vector and scalar draws.  No callback
        # below touches the medium RNG, so order is preserved.
        n_draws = plan[3]
        draws = self.rng.random(n_draws).tolist() if n_draws else ()
        draw_index = 0
        exp = math.exp
        log10 = math.log10
        noise_mw = self._noise_mw
        link_power_mw = self._link_power_mw
        collision_terms = self._collision_terms
        collision_ctrl_p = self._collision_ctrl_p

        for (listener, power, snr0, sensed, decodable,
             recv_cb, idle_cb, gate, node_id, noop,
             data_terms, ctrl_p, sig_mw) in plan[1]:
            # Idle transition first, so receive callbacks observe the
            # post-frame medium state (they often start SIFS responses).
            if sensed is not None and tx_id in sensed:
                sensed.discard(tx_id)
                if not sensed and (gate is None or gate.in_contention):
                    idle_cb()
            if not decodable:
                continue  # inaudible: cannot decode
            snr_db = snr0
            collided = False
            if interferers:
                interference_mw = 0.0
                lid = id(listener)
                for other in interferers:
                    # The interferer's own plan already knows its signal
                    # power at this listener; fall back to the link
                    # cache for listeners outside that plan.
                    other_plan = other.plan
                    mw = other_plan[4].get(lid) if other_plan else None
                    if mw is None:
                        mw = link_power_mw(other.tx, other.tx_power_dbm, listener)
                    interference_mw += mw
                if interference_mw:
                    collided = True
                    # PropagationModel.snr_db inlined with the entry's
                    # precomputed signal mW — identical arithmetic.
                    snr_db = 10.0 * log10(sig_mw / (noise_mw + interference_mw))
                    if is_data:
                        terms = collision_terms.get((snr_db, rate))
                        if terms is None:
                            terms = self._collision_data_terms(snr_db, rate)
                        p = exp(48 * terms[0] + (body_bits * terms[1]))
                    else:
                        p = collision_ctrl_p.get((snr_db, ftype))
                        if p is None:
                            p = self._collision_control_p(snr_db, ftype)
            if not collided:
                if is_data:
                    terms = data_terms.get(rate)
                    if terms is None:
                        terms = self._data_terms(data_terms, snr0, rate)
                    # 48 header bits at the basic rate, body at the data
                    # rate; term-for-term the PHY's expression, so the
                    # probability is bit-identical to the uncached path.
                    p = exp(48 * terms[0] + (body_bits * terms[1]))
                else:
                    p = ctrl_p.get(ftype)
                    if p is None:
                        p = self.phy.control_success_probability(snr0, ftype)
                        ctrl_p[ftype] = p
            draw = draws[draw_index]
            draw_index += 1
            if draw < p:
                # Deliver unless provably a no-op at the receiver (frame
                # addressed elsewhere, no NAV to set, and the listener
                # declared overhearing side-effect-free).
                if dst == node_id or nav > 0 or not noop:
                    recv_cb(frame, snr_db)

    def _data_terms(
        self, store: dict, snr_db: float, rate: float, key=None
    ) -> tuple[float, float]:
        """``log1p(-BER)`` factors for one (SNR, rate) — identical floats.

        Computed once via the PHY model; recombining them per frame
        repeats the exact expression
        :meth:`~repro.sim.phy.PhyModel.frame_success_probability` uses,
        so probabilities (and hence RNG outcomes) are bit-identical to
        the uncached path.
        """
        phy = self.phy
        ber_header = phy.bit_error_rate(snr_db, BASIC_RATE_MBPS)
        ber_body = phy.bit_error_rate(snr_db, rate)
        terms = (
            math.log1p(-min(ber_header, 1 - 1e-12)),
            math.log1p(-min(ber_body, 1 - 1e-12)),
        )
        store[rate if key is None else key] = terms
        return terms

    def _link_power_mw(
        self, tx_entity: MediumListener, tx_power_dbm: float, listener: MediumListener
    ) -> float:
        """Cached ``10 ** (link dBm / 10)`` for interference summing.

        Bounded like the collision caches: TPC mints fresh power keys
        continuously, and clearing only recomputes pure arithmetic
        (link shadowing lives in the propagation model's own cache).
        """
        key = (tx_entity.node_id, listener.node_id, tx_power_dbm)
        mw = self._power_mw_cache.get(key)
        if mw is None:
            if len(self._power_mw_cache) >= 200_000:
                self._power_mw_cache.clear()
            mw = 10.0 ** (self._link_power_dbm(tx_entity, tx_power_dbm, listener) / 10.0)
            self._power_mw_cache[key] = mw
        return mw

    # Collision SINRs repeat (the same link pairs collide over and over)
    # even though data frame sizes do not, so the collision caches hold
    # per-(SINR, rate) log1p(-BER) factors and per-(SINR, ftype) control
    # probabilities; _finish folds the frame size in via the PHY's exact
    # expression.  Both caches are bounded defensively: clearing an
    # overfull cache can never change results, only recompute them.

    def _collision_data_terms(self, snr_db: float, rate: float) -> tuple[float, float]:
        cache = self._collision_terms
        if len(cache) >= 200_000:
            cache.clear()
        return self._data_terms(cache, snr_db, rate, key=(snr_db, rate))

    def _collision_control_p(self, snr_db: float, ftype: FrameType) -> float:
        cache = self._collision_ctrl_p
        if len(cache) >= 200_000:
            cache.clear()
        p = self.phy.control_success_probability(snr_db, ftype)
        cache[(snr_db, ftype)] = p
        return p

    def _finish_dynamic(self, tx: Transmission, tx_id: int) -> None:
        """Delivery for frames whose plan was invalidated mid-flight.

        Re-reads listener channels at finish time — the exact uncached
        behaviour, preserved for transmissions that straddle a roam or
        channel switch.
        """
        frame = tx.frame
        for listener in self._listeners:
            if listener is tx.tx or listener.channel != frame.channel:
                continue
            power = self._rx_power_dbm(tx, listener)
            # Idle transition first, so receive callbacks observe the
            # post-frame medium state (they often start SIFS responses).
            sensed = self._sensed[id(listener)]
            if tx_id in sensed:
                sensed.discard(tx_id)
                if not sensed:
                    listener.on_medium_idle()
            # Decode gate: radios decode well below the energy-detect
            # carrier-sense threshold (1 Mbps DSSS sensitivity sits
            # near the noise floor thanks to the Barker spreading
            # gain), so the gate is per-listener decode sensitivity —
            # defaulting to just above thermal noise — and the PHY BER
            # model decides success from there.
            decode_floor = getattr(
                listener,
                "decode_threshold_dbm",
                self.propagation.noise_floor_dbm + 1.0,
            )
            if power < decode_floor:
                continue  # inaudible: cannot decode
            interference_mw = 0.0
            for other in tx.overlapped:
                if other.frame.channel != frame.channel:
                    continue
                other_power = self._rx_power_dbm(other, listener)
                interference_mw += 10.0 ** (other_power / 10.0)
            snr_db = self.propagation.snr_db(power, interference_mw)
            if self.rng.random() < self._success_probability(frame, snr_db):
                listener.on_frame_received(frame, snr_db)

    def _success_probability(self, frame: SimFrame, snr_db: float) -> float:
        if frame.ftype in (FrameType.DATA, FrameType.MGMT):
            return self.phy.frame_success_probability(
                snr_db, frame.size, frame.rate_mbps
            )
        return self.phy.control_success_probability(snr_db, frame.ftype)
