"""Shared wireless medium: carrier sense, collisions, reception.

The medium connects transceiver entities (MACs, sniffers) on a channel:

* **Carrier sense** is energy-based and per-listener: a listener senses
  busy while any ongoing transmission arrives above its sense threshold.
  Hidden terminals arise naturally when path loss puts a transmitter
  below a listener's threshold.
* **Collisions**: transmissions that overlap in time contribute
  interference at each listener; reception success is sampled from the
  PHY error model at the resulting SINR, so strong frames can survive a
  collision (capture effect) and weak ones fail even alone.
* **Delivery** happens at transmission end: every attached listener on
  the channel (not only the addressee) gets ``on_frame_received`` when it
  decodes the frame — MACs use overheard frames for NAV, sniffers for
  capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..frames import FrameType
from .engine import Simulator
from .phy import PhyModel
from .propagation import Position, PropagationModel

__all__ = ["SimFrame", "MediumListener", "Medium", "Transmission"]


@dataclass
class SimFrame:
    """A frame in flight inside the simulator."""

    ftype: FrameType
    src: int
    dst: int
    size: int               # bytes, the paper's S in D_DATA
    rate_mbps: float
    seq: int = 0
    retry: bool = False
    channel: int = 1
    duration_us: int = 0    # on-air time, filled by the transmitter
    nav_us: int = 0         # medium-reservation hint (RTS/CTS duration field)


class MediumListener(Protocol):
    """What the medium needs from an attached entity."""

    node_id: int
    position: Position
    channel: int
    sense_threshold_dbm: float

    def on_medium_busy(self) -> None: ...
    def on_medium_idle(self) -> None: ...
    def on_frame_received(self, frame: SimFrame, snr_db: float) -> None: ...


@dataclass
class Transmission:
    """One ongoing transmission and its interference bookkeeping."""

    frame: SimFrame
    tx: "MediumListener"
    tx_power_dbm: float
    start_us: int
    end_us: int
    overlapped: list["Transmission"] = field(default_factory=list)


class Medium:
    """The shared channel; all entities attach to one medium instance."""

    def __init__(
        self,
        sim: Simulator,
        propagation: PropagationModel,
        phy: PhyModel,
        rng: np.random.Generator,
    ) -> None:
        self.sim = sim
        self.propagation = propagation
        self.phy = phy
        self.rng = rng
        self._listeners: list[MediumListener] = []
        self._active: list[Transmission] = []
        self._sensed: dict[int, set[int]] = {}  # listener id -> active tx ids
        self._tx_counter = 0
        self._tx_ids: dict[int, Transmission] = {}
        self.frames_transmitted = 0
        #: per-channel transmission counts — always maintained (O(channels)
        #: memory), so infrastructure like the channel manager can measure
        #: load without the unbounded ground-truth buffer.
        self.channel_tx_counts: dict[int, int] = {}
        #: When False, the per-frame ground-truth buffer below stays empty
        #: (streaming runs flip this off so day-long simulations hold no
        #: full-run frame list; counters above keep working).
        self.record_ground_truth = True
        #: every transmission ever put on the air: (start_us, frame).
        #: This is the simulator's ground truth, against which the
        #: sniffer capture model (and the paper's unrecorded-frame
        #: estimator) can be validated.
        self.ground_truth: list[tuple[int, SimFrame]] = []
        # Positions are static for a run, so per-(tx, rx) received power
        # is cached; this is the simulation hot path.
        self._power_cache: dict[tuple[int, int, float], float] = {}

    # -- attachment --------------------------------------------------------

    def attach(self, listener: MediumListener) -> None:
        """Register an entity to sense and receive on its channel."""
        self._listeners.append(listener)
        self._sensed[id(listener)] = set()

    def is_idle(self, listener: MediumListener) -> bool:
        """Energy carrier sense: nothing audible is on the air."""
        return not self._sensed[id(listener)]

    # -- transmission --------------------------------------------------------

    def _rx_power_dbm(self, tx: Transmission, listener: MediumListener) -> float:
        key = (tx.tx.node_id, listener.node_id, tx.tx_power_dbm)
        power = self._power_cache.get(key)
        if power is None:
            power = self.propagation.received_power_dbm(
                tx.tx_power_dbm,
                tx.tx.position,
                listener.position,
                tx_id=tx.tx.node_id,
                rx_id=listener.node_id,
            )
            self._power_cache[key] = power
        return power

    def transmit(
        self, sender: MediumListener, frame: SimFrame, tx_power_dbm: float
    ) -> Transmission:
        """Put ``frame`` on the air from ``sender`` now.

        The caller is responsible for having done carrier sense; the
        medium never rejects a transmission (collisions are physics, not
        errors).
        """
        now = self.sim.now_us
        if frame.duration_us <= 0:
            frame.duration_us = self.phy.frame_duration_us(
                frame.ftype, frame.size, frame.rate_mbps
            )
        tx = Transmission(
            frame=frame,
            tx=sender,
            tx_power_dbm=tx_power_dbm,
            start_us=now,
            end_us=now + frame.duration_us,
        )
        self._tx_counter += 1
        tx_id = self._tx_counter
        self._tx_ids[tx_id] = tx
        self.frames_transmitted += 1
        self.channel_tx_counts[frame.channel] = (
            self.channel_tx_counts.get(frame.channel, 0) + 1
        )
        if self.record_ground_truth:
            self.ground_truth.append((now, frame))

        # Overlap bookkeeping with already-active transmissions.
        for other in self._active:
            other.overlapped.append(tx)
            tx.overlapped.append(other)
        self._active.append(tx)

        # Busy transitions at every listener that can hear this.
        for listener in self._listeners:
            if listener is sender or listener.channel != frame.channel:
                continue
            power = self._rx_power_dbm(tx, listener)
            if power >= listener.sense_threshold_dbm:
                sensed = self._sensed[id(listener)]
                was_idle = not sensed
                sensed.add(tx_id)
                if was_idle:
                    listener.on_medium_busy()

        self.sim.schedule_at(tx.end_us, lambda: self._finish(tx_id))
        return tx

    def _finish(self, tx_id: int) -> None:
        tx = self._tx_ids.pop(tx_id)
        self._active.remove(tx)
        frame = tx.frame

        for listener in self._listeners:
            if listener is tx.tx or listener.channel != frame.channel:
                continue
            power = self._rx_power_dbm(tx, listener)
            # Idle transition first, so receive callbacks observe the
            # post-frame medium state (they often start SIFS responses).
            sensed = self._sensed[id(listener)]
            if tx_id in sensed:
                sensed.discard(tx_id)
                if not sensed:
                    listener.on_medium_idle()
            # Decode gate: radios decode well below the energy-detect
            # carrier-sense threshold (1 Mbps DSSS sensitivity sits
            # near the noise floor thanks to the Barker spreading
            # gain), so the gate is per-listener decode sensitivity —
            # defaulting to just above thermal noise — and the PHY BER
            # model decides success from there.
            decode_floor = getattr(
                listener,
                "decode_threshold_dbm",
                self.propagation.noise_floor_dbm + 1.0,
            )
            if power < decode_floor:
                continue  # inaudible: cannot decode
            interference_mw = 0.0
            for other in tx.overlapped:
                if other.frame.channel != frame.channel:
                    continue
                other_power = self._rx_power_dbm(other, listener)
                interference_mw += 10.0 ** (other_power / 10.0)
            snr_db = self.propagation.snr_db(power, interference_mw)
            if self.rng.random() < self._success_probability(frame, snr_db):
                listener.on_frame_received(frame, snr_db)

    def _success_probability(self, frame: SimFrame, snr_db: float) -> float:
        if frame.ftype in (FrameType.DATA, FrameType.MGMT):
            return self.phy.frame_success_probability(
                snr_db, frame.size, frame.rate_mbps
            )
        return self.phy.control_success_probability(snr_db, frame.ftype)
