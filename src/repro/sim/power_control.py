"""Transmit power control (the paper's §7 second recommendation).

"As another strategy to utilize high data rates, clients may choose to
dynamically change the transmit power such that data frames are
consistently transmitted at high data rates."  This module implements
that strategy: a station tracks the SNR of frames heard from its peer
(the same feedback the SNR-oracle rate adaptation uses) and raises its
transmit power when the implied forward-link SNR is too low to sustain
the highest rate — up to a regulatory cap.

The controller is deliberately simple (proportional step toward a
target SNR) because the paper proposes the *mechanism*, not a specific
algorithm; the ablation benchmark compares congested-cell behaviour
with and without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PowerControlConfig", "TransmitPowerControl"]


@dataclass(frozen=True)
class PowerControlConfig:
    """Bounds and target of the power controller."""

    target_snr_db: float = 14.0      # comfortable for 11 Mbps in our PHY
    min_power_dbm: float = 0.0
    max_power_dbm: float = 20.0      # regulatory-cap stand-in
    step_limit_db: float = 3.0       # max adjustment per update
    ewma_alpha: float = 0.25

    def __post_init__(self) -> None:
        if self.min_power_dbm > self.max_power_dbm:
            raise ValueError("min power above max power")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")


@dataclass
class TransmitPowerControl:
    """Per-link closed-loop transmit power selection.

    ``power_for(dst)`` is consulted before each transmission;
    ``on_feedback_snr(dst, snr)`` feeds it reverse-link observations.
    The forward-link SNR is assumed to move dB-for-dB with our transmit
    power (true under reciprocal path loss), so the controller steps the
    power by the SNR deficit, bounded by ``step_limit_db`` per update.
    """

    base_power_dbm: float
    config: PowerControlConfig = field(default_factory=PowerControlConfig)
    _snr: dict[int, float] = field(default_factory=dict)
    _power: dict[int, float] = field(default_factory=dict)

    def power_for(self, dst: int) -> float:
        """Transmit power (dBm) to use toward ``dst``."""
        return self._power.get(dst, self.base_power_dbm)

    def on_feedback_snr(self, dst: int, snr_db: float) -> None:
        """Update the link estimate and re-plan the power level."""
        cfg = self.config
        old = self._snr.get(dst)
        if old is None:
            estimate = snr_db
        else:
            estimate = (1 - cfg.ewma_alpha) * old + cfg.ewma_alpha * snr_db
        self._snr[dst] = estimate

        current = self.power_for(dst)
        # The peer's rx SNR from us moves with our power; the feedback
        # we hear was produced by the peer's power, so use the deficit
        # as a directional signal rather than an absolute calibration.
        deficit = cfg.target_snr_db - estimate
        step = max(-cfg.step_limit_db, min(cfg.step_limit_db, deficit))
        self._power[dst] = max(
            cfg.min_power_dbm, min(cfg.max_power_dbm, current + step)
        )

    def reset(self, dst: int) -> None:
        """Forget a link (e.g. on reassociation)."""
        self._snr.pop(dst, None)
        self._power.pop(dst, None)
