"""Dynamic channel assignment (paper §4.1).

The IETF's Airespace APs "switch[ed] channels dynamically to balance the
number of users and traffic volume on the three channels"; the details
were proprietary.  This manager implements the observable behaviour: it
periodically measures per-channel traffic volume and, when one channel
carries disproportionately more than the lightest one *and* hosts more
than one AP, moves that channel's least-loaded AP — stations follow
their AP, as infrastructure clients do.

Switches are rate-limited per AP (cooldown) to avoid flip-flopping, and
an AP is only moved while its MAC is quiescent.  A station's carrier-
sense state self-corrects within one frame time after a switch (stale
busy entries are cleared when their transmissions end), which is far
below the one-second analysis granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .engine import Simulator
from .medium import Medium
from .node import AccessPoint, Station

__all__ = ["ChannelSwitch", "ChannelManagerConfig", "ChannelManager"]


@dataclass(frozen=True)
class ChannelSwitch:
    """One recorded channel reassignment."""

    time_us: int
    ap_id: int
    old_channel: int
    new_channel: int


@dataclass(frozen=True)
class ChannelManagerConfig:
    """Rebalancing policy parameters."""

    interval_us: int = 5_000_000      # measurement/decision period
    imbalance_ratio: float = 1.5      # heaviest/lightest load trigger
    cooldown_us: int = 15_000_000     # per-AP minimum time between moves

    def __post_init__(self) -> None:
        if self.interval_us <= 0 or self.cooldown_us < 0:
            raise ValueError("intervals must be positive")
        if self.imbalance_ratio < 1.0:
            raise ValueError("imbalance_ratio must be >= 1")


class ChannelManager:
    """Periodic per-channel load balancing across a set of APs."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        aps: list[AccessPoint],
        stations: list[Station],
        channels: tuple[int, ...],
        config: ChannelManagerConfig | None = None,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.aps = aps
        self.stations = stations
        self.channels = channels
        self.config = config or ChannelManagerConfig()
        self.switches: list[ChannelSwitch] = []
        self._last_counts: dict[int, int] = {}  # per-channel count watermark
        self._last_switch: dict[int, int] = {}
        sim.schedule_in(self.config.interval_us, self._evaluate)

    # -- measurement --------------------------------------------------------

    def _interval_load(self) -> dict[int, int]:
        """Frames transmitted per channel since the last evaluation.

        Reads the medium's running per-channel counters rather than the
        ground-truth frame list, so it works on streaming runs where
        per-frame ground truth is not recorded.
        """
        counts = self.medium.channel_tx_counts
        load = {
            ch: counts.get(ch, 0) - self._last_counts.get(ch, 0)
            for ch in self.channels
        }
        self._last_counts = {ch: counts.get(ch, 0) for ch in self.channels}
        return load

    def _aps_on(self, channel: int) -> list[AccessPoint]:
        return [ap for ap in self.aps if ap.channel == channel]

    # -- decision --------------------------------------------------------

    def _evaluate(self) -> None:
        load = self._interval_load()
        self._maybe_rebalance(load)
        self.sim.schedule_in(self.config.interval_us, self._evaluate)

    def _maybe_rebalance(self, load: dict[int, int]) -> None:
        heavy = max(load, key=lambda ch: load[ch])
        light = min(load, key=lambda ch: load[ch])
        if heavy == light:
            return
        if load[heavy] < self.config.imbalance_ratio * max(load[light], 1):
            return
        candidates = self._aps_on(heavy)
        if len(candidates) < 2:
            return  # moving a lone AP moves its load with it: pointless
        now = self.sim.now_us
        movable = [
            ap
            for ap in candidates
            if now - self._last_switch.get(ap.node_id, -(10**12))
            >= self.config.cooldown_us
            and ap.mac.queue_length == 0
        ]
        if not movable:
            return
        # Move the least-loaded AP (fewest associated stations).
        ap = min(movable, key=lambda a: len(a.stations))
        self._switch(ap, light)

    def _switch(self, ap: AccessPoint, new_channel: int) -> None:
        old = ap.channel
        ap.channel = new_channel
        ap.mac.channel = new_channel
        for station in self.stations:
            if station.ap_id == ap.node_id:
                station.mac.channel = new_channel
        self._last_switch[ap.node_id] = self.sim.now_us
        self.switches.append(
            ChannelSwitch(
                time_us=self.sim.now_us,
                ap_id=ap.node_id,
                old_channel=old,
                new_channel=new_channel,
            )
        )
