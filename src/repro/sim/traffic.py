"""Traffic generation: Poisson arrivals with application size mixes.

The paper maps its size classes onto applications (§6): S frames are
voice/audio and control-ish traffic, M/L interactive and web, XL file
transfer and video.  Generators produce MSDUs with a configurable size
mixture and a (possibly time-varying) arrival rate — the load ramp used
to sweep channel utilization across the 30-99 % range the paper studies
is just a generator whose rate grows over the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from ..frames import FrameType
from .engine import Simulator

__all__ = [
    "SizeSampler",
    "uniform_sizes",
    "class_mixture",
    "VOICE_MIX",
    "WEB_MIX",
    "BULK_MIX",
    "CONFERENCE_MIX",
    "RateSchedule",
    "ConstantRate",
    "LinearRamp",
    "StepSchedule",
    "ScaledRate",
    "ModulatedRate",
    "PoissonSource",
    "ClosedLoopSource",
]

SizeSampler = Callable[[np.random.Generator], int]


def _poisson_gap_us(rng: np.random.Generator, rate_pps: float) -> int:
    """One exponential inter-arrival gap in µs, clamped to at least 1.

    The single definition both Poisson arrival paths (the emit branch
    and the idle-loop branch of ``PoissonSource._refill``) must share:
    the clamp keeps the integer-µs clock advancing at extreme rates,
    and hoisting it here guarantees the RNG streams of the two branches
    can never silently diverge.
    """
    return max(1, int(rng.exponential(1e6 / rate_pps)))


def uniform_sizes(low: int, high: int) -> SizeSampler:
    """Frame sizes uniform in [low, high] bytes."""
    if not 0 <= low <= high:
        raise ValueError(f"invalid size range [{low}, {high}]")

    def sample(rng: np.random.Generator) -> int:
        return int(rng.integers(low, high + 1))

    return sample


#: Representative byte ranges per size class (midpoints of the paper's bands).
_CLASS_RANGES = {
    "S": (60, 400),
    "M": (401, 800),
    "L": (801, 1200),
    "XL": (1201, 1500),
}


#: Lazily-determined: does ``cdf.searchsorted(rng.random(), 'right')``
#: replicate ``rng.choice(n, p=...)`` draw for draw on this numpy?  It
#: does on every numpy we have seen (choice consumes exactly one double
#: and searches the same normalized cumsum), and the replication is ~20x
#: faster — but the contract is byte-identical traces, so it is verified
#: empirically once per process and the slow path kept as fallback.
_FAST_CHOICE_OK: bool | None = None


def _fast_choice_supported() -> bool:
    global _FAST_CHOICE_OK
    if _FAST_CHOICE_OK is None:
        ok = True
        for seed, raw in ((12345, (0.45, 0.08, 0.07, 0.40)), (999, (0.2, 0.8))):
            probs = np.array(raw, dtype=np.float64)
            probs = probs / probs.sum()
            cdf = probs.cumsum()
            cdf /= cdf[-1]
            a = np.random.default_rng(seed)
            b = np.random.default_rng(seed)
            xs = [int(a.choice(len(probs), p=probs)) for _ in range(128)]
            ys = [int(cdf.searchsorted(b.random(), side="right")) for _ in range(128)]
            ok = ok and xs == ys and (
                a.bit_generator.state == b.bit_generator.state
            )
        _FAST_CHOICE_OK = ok
    return _FAST_CHOICE_OK


def class_mixture(weights: dict[str, float]) -> SizeSampler:
    """Sample sizes from the S/M/L/XL classes with the given weights.

    >>> sampler = class_mixture({"S": 0.5, "XL": 0.5})
    """
    names = list(weights)
    unknown = set(names) - set(_CLASS_RANGES)
    if unknown:
        raise ValueError(f"unknown size classes: {sorted(unknown)}")
    probs = np.array([weights[n] for n in names], dtype=np.float64)
    if probs.sum() <= 0:
        raise ValueError("weights must sum to a positive value")
    probs = probs / probs.sum()
    ranges = [_CLASS_RANGES[n] for n in names]
    n_classes = len(names)
    # Same cumsum normalization Generator.choice applies internally, so
    # the fast path lands on identical class indices.  The support
    # check is process-constant; resolve it once per sampler.
    cdf = probs.cumsum()
    cdf /= cdf[-1]
    searchsorted = cdf.searchsorted
    fast_choice = _fast_choice_supported()

    def sample(rng: np.random.Generator) -> int:
        if fast_choice:
            idx = int(searchsorted(rng.random(), side="right"))
        else:  # pragma: no cover - exercised only on exotic numpy builds
            idx = int(rng.choice(n_classes, p=probs))
        low, high = ranges[idx]
        return int(rng.integers(low, high + 1))

    return sample


#: Application profiles used by the scenarios.
VOICE_MIX = class_mixture({"S": 1.0})
WEB_MIX = class_mixture({"S": 0.3, "M": 0.3, "L": 0.2, "XL": 0.2})
BULK_MIX = class_mixture({"XL": 0.85, "L": 0.15})
#: Conference-floor blend: lots of small frames (TCP acks, SSH, audio)
#: plus a heavy XL tail (downloads, slide decks) and thin M/L middle —
#: the shape that makes S and XL dominate as in the paper's Figs 10-13.
CONFERENCE_MIX = class_mixture({"S": 0.45, "M": 0.08, "L": 0.07, "XL": 0.40})


class RateSchedule(Protocol):
    """Offered-load schedule: packets/second as a function of sim time."""

    def rate_at(self, time_us: int) -> float: ...


@dataclass(frozen=True)
class ConstantRate:
    """Fixed arrival rate."""

    pps: float

    def rate_at(self, time_us: int) -> float:
        return self.pps


@dataclass(frozen=True)
class LinearRamp:
    """Rate climbing linearly from ``start_pps`` to ``end_pps``."""

    start_pps: float
    end_pps: float
    duration_us: int

    def rate_at(self, time_us: int) -> float:
        if self.duration_us <= 0:
            return self.end_pps
        f = min(max(time_us / self.duration_us, 0.0), 1.0)
        return self.start_pps + f * (self.end_pps - self.start_pps)


@dataclass(frozen=True)
class ScaledRate:
    """A base schedule multiplied by a constant factor."""

    base: "RateSchedule"
    factor: float

    def rate_at(self, time_us: int) -> float:
        return self.base.rate_at(time_us) * self.factor


class ModulatedRate:
    """Multiplicative burst modulation of a base schedule.

    Real WLAN traffic is bursty: per-second offered load at a fixed mean
    varies over an order of magnitude (web page fetches, file transfers
    starting and finishing).  This wrapper redraws a log-normal
    multiplier (unit mean) every ``period_us``, which is what populates
    the intermediate utilization bins of Figures 6-15 — without it an
    open-loop network snaps straight from underload to saturation.
    """

    def __init__(
        self,
        base: "RateSchedule",
        sigma: float = 0.8,
        period_us: int = 2_000_000,
        seed: int = 99,
    ) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if period_us <= 0:
            raise ValueError("period_us must be positive")
        self.base = base
        self.sigma = sigma
        self.period_us = period_us
        self._seed = seed
        self._cache: dict[int, float] = {}

    def _multiplier(self, epoch: int) -> float:
        value = self._cache.get(epoch)
        if value is None:
            rng = np.random.default_rng((self._seed, epoch))
            # mean-one log-normal: E[exp(N(-s^2/2, s^2))] = 1
            value = float(
                np.exp(rng.normal(-self.sigma**2 / 2.0, self.sigma))
            )
            self._cache[epoch] = value
        return value

    def rate_at(self, time_us: int) -> float:
        epoch = int(time_us) // self.period_us
        return self.base.rate_at(time_us) * self._multiplier(epoch)


@dataclass(frozen=True)
class StepSchedule:
    """Piecewise-constant rate: ``steps`` is [(start_us, pps), ...] sorted."""

    steps: tuple[tuple[int, float], ...]

    def rate_at(self, time_us: int) -> float:
        rate = 0.0
        for start_us, pps in self.steps:
            if time_us >= start_us:
                rate = pps
            else:
                break
        return rate


class PoissonSource:
    """Non-homogeneous Poisson MSDU source feeding one MAC queue.

    Arrivals are generated by sampling an exponential gap at the current
    rate; for slowly-varying schedules (our ramps) this is an accurate
    approximation of thinning and costs one event per packet.

    The arrival process depends only on this source's private RNG and
    the (pure) rate schedule, never on the rest of the simulation — so
    arrival times and sizes are **pre-generated in batches** into numpy
    arrays, drawing the RNG in exactly the per-event order the lazy loop
    used (gap, then size-and-next-gap per emission), and the event
    callbacks just replay the table.  Event scheduling is chained
    one-for-one with the lazy loop (each event schedules its successor,
    idle polls included), so global event ordering — and therefore every
    emitted frame — is byte-identical.
    """

    #: Arrivals pre-generated per batch; bounds memory for day-long runs.
    BATCH_EVENTS = 512

    #: An entry with this size marks an event that fires without
    #: emitting (idle-schedule poll, or the terminal past-end event).
    _NO_EMIT = -1

    def __init__(
        self,
        sim: Simulator,
        enqueue: Callable[[int, int, FrameType], object],
        dst: int,
        schedule: RateSchedule,
        sizes: SizeSampler,
        rng: np.random.Generator,
        start_us: int = 0,
        end_us: int | None = None,
    ) -> None:
        self.sim = sim
        self.enqueue = enqueue
        self.dst = dst
        self.schedule = schedule
        self.sizes = sizes
        self.rng = rng
        self.start_us = max(start_us, 0)
        self.end_us = end_us
        self.packets_offered = 0
        # Generator state: the next pending event is either an
        # "arrival-loop" tick ('loop') or an emission ('emit') at _gen_time;
        # None means the chain has terminated.
        self._gen_kind: str | None = "loop"
        self._gen_time = max(start_us, 0)
        self._times = np.empty(0, dtype=np.int64)
        self._sizes_buf = np.empty(0, dtype=np.int64)
        self._cursor = 0
        self._refill()
        if len(self._times):
            sim.schedule_at(int(self._times[0]), self._fire)

    def _refill(self) -> None:
        """Pre-generate the next batch of events into the numpy table.

        Mirrors the lazy loop statement for statement so the RNG stream
        is consumed in the identical order: an emission draws its size
        first, then the gap to the next arrival at the post-emission
        rate; idle periods poll every 100 ms without touching the RNG.
        """
        times: list[int] = []
        emit_sizes: list[int] = []
        kind, t = self._gen_kind, self._gen_time
        end_us = self.end_us
        rng = self.rng
        rate_at = self.schedule.rate_at
        sample = self.sizes
        no_emit = self._NO_EMIT
        limit = self.BATCH_EVENTS
        while kind is not None and len(times) < limit:
            if kind == "emit":
                if end_us is None or t < end_us:
                    times.append(t)
                    emit_sizes.append(sample(rng))
                    rate = rate_at(t)
                    if rate <= 0:
                        kind, t = "loop", t + 100_000
                    else:
                        t += _poisson_gap_us(rng, rate)
                else:
                    # Past-end emission event: fires, emits nothing, ends.
                    times.append(t)
                    emit_sizes.append(no_emit)
                    kind = None
            else:  # 'loop' tick
                times.append(t)
                emit_sizes.append(no_emit)
                if end_us is not None and t >= end_us:
                    kind = None
                else:
                    rate = rate_at(t)
                    if rate <= 0:
                        t += 100_000  # idle poll; stays a 'loop' tick
                    else:
                        kind, t = "emit", t + _poisson_gap_us(rng, rate)
        self._gen_kind, self._gen_time = kind, t
        # Stored columnar (one int64 array per field, like the sniffer's
        # capture buffers) even though replay reads scalars: the arrays
        # are the inspectable contract of the pre-generated schedule,
        # and the per-read unboxing is ~100 ns against a >10 µs event.
        self._times = np.array(times, dtype=np.int64)
        self._sizes_buf = np.array(emit_sizes, dtype=np.int64)
        self._cursor = 0

    def _fire(self) -> None:
        """Replay one pre-generated event and chain-schedule the next."""
        i = self._cursor
        size = self._sizes_buf[i]
        if size >= 0:
            self.enqueue(self.dst, int(size), FrameType.DATA)
            self.packets_offered += 1
        i += 1
        if i >= len(self._times):
            if self._gen_kind is None:
                return
            self._refill()
            i = 0
            if not len(self._times):  # pragma: no cover - defensive
                return
        self._cursor = i
        self.sim.schedule_at(int(self._times[i]), self._fire)


class ClosedLoopSource:
    """Window-limited transfer: a TCP-like self-limiting source.

    Open-loop Poisson sources keep offering load into a congested
    channel; real conference traffic was mostly TCP, which limits the
    data in flight.  This source keeps at most ``window`` MSDUs
    outstanding in the MAC: each completion (delivery or drop) releases
    the next one after ``think_time_us``.  Under congestion its offered
    rate automatically tracks the channel's service rate — the
    self-limiting behaviour the paper's network exhibited between
    congestion episodes.
    """

    def __init__(
        self,
        mac,
        dst: int,
        sizes: SizeSampler,
        rng: np.random.Generator,
        window: int = 4,
        think_time_us: int = 0,
        total_msdus: int | None = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.mac = mac
        self.dst = dst
        self.sizes = sizes
        self.rng = rng
        self.window = window
        self.think_time_us = think_time_us
        self.total_msdus = total_msdus
        self.sent = 0
        self.completed = 0
        self.delivered = 0
        if mac.on_msdu_complete is not None:
            raise ValueError("MAC already has an MSDU-completion consumer")
        mac.on_msdu_complete = self._on_complete
        for _ in range(window):
            self._inject()

    def _exhausted(self) -> bool:
        return self.total_msdus is not None and self.sent >= self.total_msdus

    def _inject(self) -> None:
        if self._exhausted():
            return
        self.mac.enqueue(self.dst, self.sizes(self.rng), FrameType.DATA)
        self.sent += 1

    def _on_complete(self, dst: int, success: bool) -> None:
        if dst != self.dst:
            return
        self.completed += 1
        if success:
            self.delivered += 1
        if self.think_time_us > 0:
            self.mac.sim.schedule_in(self.think_time_us, self._inject)
        else:
            self._inject()
