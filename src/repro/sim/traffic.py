"""Traffic generation: Poisson arrivals with application size mixes.

The paper maps its size classes onto applications (§6): S frames are
voice/audio and control-ish traffic, M/L interactive and web, XL file
transfer and video.  Generators produce MSDUs with a configurable size
mixture and a (possibly time-varying) arrival rate — the load ramp used
to sweep channel utilization across the 30-99 % range the paper studies
is just a generator whose rate grows over the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from ..frames import FrameType
from .engine import Simulator

__all__ = [
    "SizeSampler",
    "uniform_sizes",
    "class_mixture",
    "VOICE_MIX",
    "WEB_MIX",
    "BULK_MIX",
    "CONFERENCE_MIX",
    "RateSchedule",
    "ConstantRate",
    "LinearRamp",
    "StepSchedule",
    "ScaledRate",
    "ModulatedRate",
    "PoissonSource",
    "ClosedLoopSource",
]

SizeSampler = Callable[[np.random.Generator], int]


def uniform_sizes(low: int, high: int) -> SizeSampler:
    """Frame sizes uniform in [low, high] bytes."""
    if not 0 <= low <= high:
        raise ValueError(f"invalid size range [{low}, {high}]")

    def sample(rng: np.random.Generator) -> int:
        return int(rng.integers(low, high + 1))

    return sample


#: Representative byte ranges per size class (midpoints of the paper's bands).
_CLASS_RANGES = {
    "S": (60, 400),
    "M": (401, 800),
    "L": (801, 1200),
    "XL": (1201, 1500),
}


def class_mixture(weights: dict[str, float]) -> SizeSampler:
    """Sample sizes from the S/M/L/XL classes with the given weights.

    >>> sampler = class_mixture({"S": 0.5, "XL": 0.5})
    """
    names = list(weights)
    unknown = set(names) - set(_CLASS_RANGES)
    if unknown:
        raise ValueError(f"unknown size classes: {sorted(unknown)}")
    probs = np.array([weights[n] for n in names], dtype=np.float64)
    if probs.sum() <= 0:
        raise ValueError("weights must sum to a positive value")
    probs = probs / probs.sum()
    ranges = [_CLASS_RANGES[n] for n in names]

    def sample(rng: np.random.Generator) -> int:
        idx = int(rng.choice(len(names), p=probs))
        low, high = ranges[idx]
        return int(rng.integers(low, high + 1))

    return sample


#: Application profiles used by the scenarios.
VOICE_MIX = class_mixture({"S": 1.0})
WEB_MIX = class_mixture({"S": 0.3, "M": 0.3, "L": 0.2, "XL": 0.2})
BULK_MIX = class_mixture({"XL": 0.85, "L": 0.15})
#: Conference-floor blend: lots of small frames (TCP acks, SSH, audio)
#: plus a heavy XL tail (downloads, slide decks) and thin M/L middle —
#: the shape that makes S and XL dominate as in the paper's Figs 10-13.
CONFERENCE_MIX = class_mixture({"S": 0.45, "M": 0.08, "L": 0.07, "XL": 0.40})


class RateSchedule(Protocol):
    """Offered-load schedule: packets/second as a function of sim time."""

    def rate_at(self, time_us: int) -> float: ...


@dataclass(frozen=True)
class ConstantRate:
    """Fixed arrival rate."""

    pps: float

    def rate_at(self, time_us: int) -> float:
        return self.pps


@dataclass(frozen=True)
class LinearRamp:
    """Rate climbing linearly from ``start_pps`` to ``end_pps``."""

    start_pps: float
    end_pps: float
    duration_us: int

    def rate_at(self, time_us: int) -> float:
        if self.duration_us <= 0:
            return self.end_pps
        f = min(max(time_us / self.duration_us, 0.0), 1.0)
        return self.start_pps + f * (self.end_pps - self.start_pps)


@dataclass(frozen=True)
class ScaledRate:
    """A base schedule multiplied by a constant factor."""

    base: "RateSchedule"
    factor: float

    def rate_at(self, time_us: int) -> float:
        return self.base.rate_at(time_us) * self.factor


class ModulatedRate:
    """Multiplicative burst modulation of a base schedule.

    Real WLAN traffic is bursty: per-second offered load at a fixed mean
    varies over an order of magnitude (web page fetches, file transfers
    starting and finishing).  This wrapper redraws a log-normal
    multiplier (unit mean) every ``period_us``, which is what populates
    the intermediate utilization bins of Figures 6-15 — without it an
    open-loop network snaps straight from underload to saturation.
    """

    def __init__(
        self,
        base: "RateSchedule",
        sigma: float = 0.8,
        period_us: int = 2_000_000,
        seed: int = 99,
    ) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if period_us <= 0:
            raise ValueError("period_us must be positive")
        self.base = base
        self.sigma = sigma
        self.period_us = period_us
        self._seed = seed
        self._cache: dict[int, float] = {}

    def _multiplier(self, epoch: int) -> float:
        value = self._cache.get(epoch)
        if value is None:
            rng = np.random.default_rng((self._seed, epoch))
            # mean-one log-normal: E[exp(N(-s^2/2, s^2))] = 1
            value = float(
                np.exp(rng.normal(-self.sigma**2 / 2.0, self.sigma))
            )
            self._cache[epoch] = value
        return value

    def rate_at(self, time_us: int) -> float:
        epoch = int(time_us) // self.period_us
        return self.base.rate_at(time_us) * self._multiplier(epoch)


@dataclass(frozen=True)
class StepSchedule:
    """Piecewise-constant rate: ``steps`` is [(start_us, pps), ...] sorted."""

    steps: tuple[tuple[int, float], ...]

    def rate_at(self, time_us: int) -> float:
        rate = 0.0
        for start_us, pps in self.steps:
            if time_us >= start_us:
                rate = pps
            else:
                break
        return rate


class PoissonSource:
    """Non-homogeneous Poisson MSDU source feeding one MAC queue.

    Arrivals are generated by sampling an exponential gap at the current
    rate; for slowly-varying schedules (our ramps) this is an accurate
    approximation of thinning and costs one event per packet.
    """

    def __init__(
        self,
        sim: Simulator,
        enqueue: Callable[[int, int, FrameType], object],
        dst: int,
        schedule: RateSchedule,
        sizes: SizeSampler,
        rng: np.random.Generator,
        start_us: int = 0,
        end_us: int | None = None,
    ) -> None:
        self.sim = sim
        self.enqueue = enqueue
        self.dst = dst
        self.schedule = schedule
        self.sizes = sizes
        self.rng = rng
        self.end_us = end_us
        self.packets_offered = 0
        sim.schedule_at(max(start_us, 0), self._arrival_loop)

    def _arrival_loop(self) -> None:
        now = self.sim.now_us
        if self.end_us is not None and now >= self.end_us:
            return
        rate = self.schedule.rate_at(now)
        if rate <= 0:
            # Idle period: poll again in 100 ms for the schedule to wake.
            self.sim.schedule_in(100_000, self._arrival_loop)
            return
        gap_us = max(1, int(self.rng.exponential(1e6 / rate)))
        self.sim.schedule_in(gap_us, self._emit_then_continue)

    def _emit_then_continue(self) -> None:
        now = self.sim.now_us
        if self.end_us is None or now < self.end_us:
            size = self.sizes(self.rng)
            self.enqueue(self.dst, size, FrameType.DATA)
            self.packets_offered += 1
        self._arrival_loop()


class ClosedLoopSource:
    """Window-limited transfer: a TCP-like self-limiting source.

    Open-loop Poisson sources keep offering load into a congested
    channel; real conference traffic was mostly TCP, which limits the
    data in flight.  This source keeps at most ``window`` MSDUs
    outstanding in the MAC: each completion (delivery or drop) releases
    the next one after ``think_time_us``.  Under congestion its offered
    rate automatically tracks the channel's service rate — the
    self-limiting behaviour the paper's network exhibited between
    congestion episodes.
    """

    def __init__(
        self,
        mac,
        dst: int,
        sizes: SizeSampler,
        rng: np.random.Generator,
        window: int = 4,
        think_time_us: int = 0,
        total_msdus: int | None = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.mac = mac
        self.dst = dst
        self.sizes = sizes
        self.rng = rng
        self.window = window
        self.think_time_us = think_time_us
        self.total_msdus = total_msdus
        self.sent = 0
        self.completed = 0
        self.delivered = 0
        if mac.on_msdu_complete is not None:
            raise ValueError("MAC already has an MSDU-completion consumer")
        mac.on_msdu_complete = self._on_complete
        for _ in range(window):
            self._inject()

    def _exhausted(self) -> bool:
        return self.total_msdus is not None and self.sent >= self.total_msdus

    def _inject(self) -> None:
        if self._exhausted():
            return
        self.mac.enqueue(self.dst, self.sizes(self.rng), FrameType.DATA)
        self.sent += 1

    def _on_complete(self, dst: int, success: bool) -> None:
        if dst != self.dst:
            return
        self.completed += 1
        if success:
            self.delivered += 1
        if self.think_time_us > 0:
            self.mac.sim.schedule_in(self.think_time_us, self._inject)
        else:
            self._inject()
