"""Parallel campaign execution: grid cells → process pool → reports.

Each cell builds its scenario from the library, *streams* the live
sniffer capture straight into the single-pass analysis pipeline
(:func:`repro.pipeline.run_all`) and keeps only the per-cell findings —
so a campaign's memory footprint is one drain window per worker, not
one trace per cell, and wall-clock scales with the worker count
(``benchmarks/bench_campaign.py`` measures the scaling).

Campaigns are **crash-safe and resumable** when given a ``store_dir``:
results stream into a content-addressed
:class:`~repro.campaign.store.CampaignStore` *as futures resolve*, a
cell that raises becomes a :class:`~repro.campaign.store.FailedCell`
record instead of sinking the whole run, and a re-invocation consults
the store first and dispatches only the cells it is missing.

    from repro.campaign import ParameterGrid, run_campaign

    grid = ParameterGrid("ramp", axes={"n_stations": [10, 20, 40]}, seeds=2)
    result = run_campaign(grid, workers=4, store_dir="campaign-store")
    print(result.cells[0].delivery_ratio)
    # ... Ctrl-C and re-run: only unfinished cells are simulated.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from .grid import CampaignCell, ParameterGrid
from .store import CampaignStore, FailedCell

if TYPE_CHECKING:  # pragma: no cover
    from ..core.report import CongestionReport

__all__ = ["CellResult", "CampaignResult", "Timeout", "run_campaign"]

#: Dispatch backends ``run_campaign`` routes between.
DISPATCH_MODES = ("local", "distributed")


#: Streaming defaults for campaign cells: small enough that worker
#: memory stays flat, large enough that numpy consumers amortise.
CELL_CHUNK_FRAMES = 65_536


def _safe_ratio(numerator: float, denominator: float) -> float:
    """0.0 instead of ZeroDivisionError for degenerate (empty) cells."""
    return numerator / denominator if denominator else 0.0


class Timeout(Exception):
    """A cell exceeded ``run_campaign(timeout_s=...)`` and was aborted.

    Named so the :class:`FailedCell` record reads ``type="Timeout"``.
    """


@contextmanager
def _cell_deadline(timeout_s: float | None):
    """Abort the enclosed cell with :class:`Timeout` after ``timeout_s``.

    Uses ``SIGALRM``/``setitimer``, which interrupts arbitrary Python —
    including a simulation stuck in a pathological event loop — so a
    hung cell becomes a captured ``FailedCell(type="Timeout")`` instead
    of stalling its pool slot (or a distributed worker) forever.  Only
    armable from a process's main thread (a POSIX signal constraint);
    elsewhere the cell runs unbounded, which matches the pre-timeout
    behaviour.  Pool workers and campaign workers run cells on their
    main thread, so the guard holds exactly where it matters.
    """
    if (
        not timeout_s
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        raise Timeout(f"cell exceeded timeout_s={timeout_s:g}")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass(frozen=True)
class CellResult:
    """The findings of one campaign cell, aggregated and picklable.

    Ratios are guarded: degenerate cells (zero frames captured or
    transmitted) report 0.0 rather than raising.
    """

    cell: CampaignCell
    n_frames: int                      # frames captured and analyzed
    frames_transmitted: int            # simulator ground-truth count
    offered_packets: int               # MSDUs offered by all sources
    duration_s: float
    delivery_ratio: float              # MAC DATA successes / attempts
    capture_ratio: float               # captured / transmitted
    mode_utilization: float            # % — the paper's headline mode
    peak_throughput_mbps: float
    peak_throughput_utilization: float  # % — the Fig 6 knee position
    high_congestion_fraction: float
    unrecorded_percent: float
    elapsed_s: float
    report: "CongestionReport | None" = None
    #: Simulator event-loop diagnostics, surfaced in the summary table
    #: (``events`` column) so wall-clock outliers are attributable to
    #: event churn.
    events_processed: int = 0
    events_cancelled: int = 0

    @property
    def cell_frames_per_sec(self) -> float:
        """Whole-cell throughput: frames simulated per wall-second of
        the cell's *combined* simulate-and-analyze run.

        Not comparable to ``BENCH_sim.json`` frames/sec, which times
        trace generation alone — a cell's elapsed time includes the
        full analysis pipeline consuming the stream.
        """
        return _safe_ratio(self.frames_transmitted, self.elapsed_s)

    @property
    def name(self) -> str:
        return self.cell.name

    @property
    def offered_pps(self) -> float:
        """Offered load normalised per second of simulated time."""
        return _safe_ratio(self.offered_packets, self.duration_s)

    def as_row(self) -> dict[str, object]:
        """One summary-table row."""
        return {
            "cell": self.name,
            "frames": self.n_frames,
            "offered_pps": round(self.offered_pps, 1),
            "delivery": round(self.delivery_ratio, 3),
            "mode_util_%": round(self.mode_utilization, 1),
            "peak_mbps": round(self.peak_throughput_mbps, 3),
            "knee_util_%": round(self.peak_throughput_utilization, 1),
            "high_cong": round(self.high_congestion_fraction, 3),
            "capture_%": round(100.0 * self.capture_ratio, 1),
            "events": self.events_processed,
            "wall_s": round(self.elapsed_s, 2),
        }


@dataclass
class CampaignResult:
    """Everything a finished campaign produced, input order preserved.

    ``cells`` holds the successful results; cells whose simulation
    raised are in ``failed`` (the campaign itself always completes).
    ``store_hits`` counts cells answered from the store without any
    simulation work, ``dispatched`` the cells actually simulated this
    invocation — a fully-stored campaign has ``dispatched == 0``.
    """

    cells: list[CellResult]
    workers: int
    elapsed_s: float
    failed: list[FailedCell] = field(default_factory=list)
    store_hits: int = 0
    dispatched: int = 0
    store_dir: str | None = None
    #: Corrupt store records quarantined (renamed ``*.corrupt``) while
    #: this campaign consulted its store — nonzero means disk trouble.
    quarantined: int = 0

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    @property
    def n_total(self) -> int:
        """All cells the campaign covered, successful or failed."""
        return len(self.cells) + len(self.failed)

    def by_name(self) -> dict[str, CellResult]:
        return {cell.name: cell for cell in self.cells}

    def scenarios(self) -> list[str]:
        """Distinct scenario names, first-seen order."""
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.cell.scenario, None)
        return list(seen)


def _run_cell(job) -> tuple[str, object]:
    """Module-level cell worker (picklable for process pools).

    Returns ``("ok", CellResult)`` or ``("fail", FailedCell)`` — a
    raising cell must never sink its siblings (or, pre-store, the
    already-completed results), so the exception is captured *inside*
    the worker where its traceback is still attached.
    """
    cell, options = job
    start = time.perf_counter()
    try:
        with _cell_deadline(options.get("timeout_s")):
            return ("ok", _simulate_cell(cell, options, start))
    except Exception as error:
        return (
            "fail",
            FailedCell(
                cell=cell,
                error_type=type(error).__name__,
                error=str(error),
                traceback=traceback_module.format_exc(),
                elapsed_s=time.perf_counter() - start,
            ),
        )


def _simulate_cell(cell: CampaignCell, options: dict, start: float) -> CellResult:
    from ..pipeline import run_all
    from ..sim import build_scenario

    built = build_scenario(
        cell.scenario, fidelity=cell.fidelity or "default", **cell.kwargs
    )
    roster = built.roster
    report = run_all(
        built.stream(
            chunk_frames=options["chunk_frames"],
            window_s=options["window_s"],
        ),
        roster=roster,
        name=cell.name,
    )
    elapsed = time.perf_counter() - start
    if report.summary.n_frames:
        headline = report.headline()
    else:  # degenerate cell: nothing captured, no curves to summarise
        headline = {}
    return CellResult(
        cell=cell,
        n_frames=report.summary.n_frames,
        frames_transmitted=built.frames_transmitted,
        offered_packets=built.offered_packets,
        duration_s=built.config.duration_s,
        delivery_ratio=built.delivery_ratio,
        capture_ratio=built.capture_ratio,
        mode_utilization=float(headline.get("mode_utilization", 0.0)),
        peak_throughput_mbps=float(headline.get("throughput_peak_mbps", 0.0)),
        peak_throughput_utilization=float(
            headline.get("throughput_peak_utilization", 0.0)
        ),
        high_congestion_fraction=float(
            headline.get("high_congestion_fraction", 0.0)
        ),
        unrecorded_percent=float(headline.get("unrecorded_percent", 0.0)),
        elapsed_s=elapsed,
        report=report if options["keep_reports"] else None,
        events_processed=built.sim.events_processed,
        events_cancelled=built.sim.events_cancelled,
    )


def _expand_cells(
    grid: ParameterGrid | Sequence[CampaignCell],
) -> list[CampaignCell]:
    """Grid → cell list with the shared sanity checks (shape only)."""
    cells = grid.cells() if isinstance(grid, ParameterGrid) else list(grid)
    if not cells:
        raise ValueError("campaign has no cells")
    names = [cell.name for cell in cells]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate campaign cells: {dupes}")
    return cells


def run_campaign(
    grid: ParameterGrid | Sequence[CampaignCell],
    *,
    workers: int | None = None,
    chunk_frames: int = CELL_CHUNK_FRAMES,
    window_s: float = 1.0,
    keep_reports: bool = False,
    store_dir: str | os.PathLike | None = None,
    resume: bool = True,
    retry_failed: bool = False,
    timeout_s: float | None = None,
    dispatch: str = "local",
) -> CampaignResult:
    """Run every cell of ``grid`` and collect per-cell findings.

    ``workers`` > 1 fans cells across a process pool (simulation is
    GIL-bound Python, so processes give true parallelism); ``None``
    uses the pool default, 1 runs serially in-process.  Results are
    deterministic and identical for any worker count — cells carry
    their own seeds.  ``keep_reports=True`` attaches each cell's full
    :class:`~repro.core.report.CongestionReport` (heavier pickles;
    leave off for wide sweeps).

    With ``store_dir`` every finished cell is persisted immediately
    (atomic write) to a content-addressed
    :class:`~repro.campaign.store.CampaignStore`, so an interrupted
    campaign loses at most the cells in flight.  ``resume=True`` (the
    default) answers cells from the store when their content key
    matches; ``resume=False`` recomputes (and overwrites) everything.
    Recorded failures are *not* retried on resume unless
    ``retry_failed=True``.

    A cell that raises never aborts the campaign: it is captured as a
    :class:`FailedCell` (config + traceback) in ``result.failed`` and —
    when a store is attached — persisted alongside the results.

    ``timeout_s`` bounds each cell's wall-clock: a cell still running
    at the deadline is aborted and captured as a
    ``FailedCell(type="Timeout")`` instead of stalling its pool slot.

    ``dispatch="distributed"`` routes the same grid through the
    fault-tolerant coordinator/worker protocol
    (:func:`repro.campaign.dispatch.run_distributed_campaign`): worker
    *subprocesses* lease cell batches over a socket, results land in
    per-worker store shards merged losslessly into ``store_dir``, and
    dead workers are survived via lease reclaim + bounded retries.
    """
    if dispatch not in DISPATCH_MODES:
        from .._suggest import unknown_name_message

        raise ValueError(
            unknown_name_message("dispatch mode", dispatch, DISPATCH_MODES)
        )
    if dispatch == "distributed":
        from .dispatch import run_distributed_campaign

        return run_distributed_campaign(
            grid,
            workers=workers,
            chunk_frames=chunk_frames,
            window_s=window_s,
            keep_reports=keep_reports,
            store_dir=store_dir,
            resume=resume,
            retry_failed=retry_failed,
            timeout_s=timeout_s,
        )
    cells = _expand_cells(grid)

    store = CampaignStore(store_dir) if store_dir is not None else None
    options = {
        "chunk_frames": chunk_frames,
        "window_s": window_s,
        "keep_reports": keep_reports,
        "timeout_s": timeout_s,
    }

    start = time.perf_counter()
    results: dict[int, CellResult] = {}
    failures: dict[int, FailedCell] = {}
    keys: dict[int, str] = {}
    to_run: list[tuple[int, CampaignCell]] = []
    store_hits = 0
    if store is not None:
        for index, cell in enumerate(cells):
            key = store.key_for(cell)
            keys[index] = key
            if resume:
                hit = store.get(cell, key=key, with_report=keep_reports)
                if hit is not None:
                    results[index] = hit
                    store_hits += 1
                    continue
                if not retry_failed:
                    failure = store.get_failure(cell, key=key)
                    if failure is not None:
                        failures[index] = failure
                        continue
            to_run.append((index, cell))
    else:
        to_run = list(enumerate(cells))

    def record(
        index: int, outcome: tuple[str, object], persist: bool = True
    ) -> None:
        status, payload = outcome
        if status == "ok":
            results[index] = payload  # type: ignore[assignment]
            if store is not None:
                store.put(payload, key=keys.get(index))  # type: ignore[arg-type]
        else:
            failures[index] = payload  # type: ignore[assignment]
            if store is not None and persist:
                store.put_failure(payload, key=keys.get(index))  # type: ignore[arg-type]

    if len(to_run) <= 1 or workers == 1:
        pool_size = 1
        for index, cell in to_run:
            record(index, _run_cell((cell, options)))
    else:
        pool_size = workers if workers is not None else (os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            pending = {
                pool.submit(_run_cell, (cell, options)): (index, cell)
                for index, cell in to_run
            }
            # Streaming collection: each result is recorded (and stored)
            # the moment its future resolves, so a crash loses only the
            # cells still in flight — never the finished ones.
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    index, cell = pending.pop(future)
                    try:
                        outcome = future.result()
                    except Exception as error:
                        # The worker process died (e.g. OOM-kill,
                        # BrokenProcessPool): synthesize a failure so
                        # the campaign still completes — but do NOT
                        # persist it.  A broken pool fails every queued
                        # future, including cells that never started;
                        # storing those records would make a plain
                        # resume report them as failed instead of
                        # re-running them.  (Cell code that raises is
                        # captured *inside* the worker and does
                        # persist.)
                        record(
                            index,
                            (
                                "fail",
                                FailedCell(
                                    cell=cell,
                                    error_type=type(error).__name__,
                                    error=str(error),
                                    traceback="",
                                    elapsed_s=0.0,
                                ),
                            ),
                            persist=False,
                        )
                        continue
                    record(index, outcome)

    return CampaignResult(
        cells=[results[i] for i in sorted(results)],
        workers=pool_size,
        elapsed_s=time.perf_counter() - start,
        failed=[failures[i] for i in sorted(failures)],
        store_hits=store_hits,
        dispatched=len(to_run),
        store_dir=os.fspath(store_dir) if store_dir is not None else None,
        quarantined=store.quarantined if store is not None else 0,
    )
