"""Parameter grids: the cells a campaign sweeps.

A campaign is a cartesian product — scenario × parameter axes × seeds —
expanded into :class:`CampaignCell` records.  Cells are plain picklable
data (scenario *name* plus keyword parameters), so a process pool can
rebuild and run each one in a worker via the scenario library.

>>> grid = ParameterGrid("ramp", axes={"n_stations": [10, 20]}, seeds=2)
>>> len(grid)
4
>>> [c.name for c in grid.cells()][:2]
['ramp/n_stations=10/seed=0', 'ramp/n_stations=10/seed=1']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Mapping, Sequence

__all__ = ["CampaignCell", "ParameterGrid"]


@dataclass(frozen=True)
class CampaignCell:
    """One unit of campaign work: a named scenario, parameterised.

    ``fidelity`` selects the simulation engine (see
    :data:`repro.sim.FIDELITY_MODES`); it rides *outside* ``params``
    because it is not a scenario parameter — it changes how the same
    scenario is executed, and store keys must distinguish the two.
    ``None`` means the default engine and keeps legacy cell names and
    store keys byte-identical.
    """

    scenario: str
    params: tuple[tuple[str, object], ...] = ()
    seed: int | None = None
    fidelity: str | None = None

    @property
    def name(self) -> str:
        """Stable human-readable cell id, e.g. ``ramp/n_stations=20/seed=1``."""
        parts = [self.scenario]
        parts += [f"{key}={value}" for key, value in self.params]
        if self.fidelity is not None:
            parts.append(f"fidelity={self.fidelity}")
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        return "/".join(parts)

    @property
    def kwargs(self) -> dict[str, object]:
        """Keyword arguments for ``repro.sim.build_scenario``.

        ``fidelity`` is deliberately absent: it is not a scenario
        parameter (``scenario_config`` would reject it) — executors
        pass ``cell.fidelity`` to ``build_scenario`` separately.
        """
        kwargs = dict(self.params)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return kwargs


@dataclass(frozen=True)
class ParameterGrid:
    """Cartesian sweep specification over one library scenario.

    ``axes`` maps parameter names (scenario factory arguments or
    :class:`~repro.sim.scenarios.ScenarioConfig` fields) to the values
    to sweep; ``seeds`` is either a count (seeds ``0..n-1``) or an
    explicit sequence of seed values.  ``fixed`` parameters apply to
    every cell without multiplying the grid.
    """

    scenario: str
    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)
    seeds: int | Sequence[int] = 1
    fixed: Mapping[str, object] = field(default_factory=dict)
    fidelity: str | None = None

    def __post_init__(self) -> None:
        for key, values in self.axes.items():
            if len(values) == 0:
                raise ValueError(f"axis {key!r} has no values")
            if key in self.fixed:
                raise ValueError(f"{key!r} is both an axis and fixed")
        if isinstance(self.seeds, int) and self.seeds < 1:
            raise ValueError("need at least one seed")
        if self.fidelity is not None:
            from ..sim import FIDELITY_MODES

            if self.fidelity not in FIDELITY_MODES:
                choices = ", ".join(repr(m) for m in FIDELITY_MODES)
                raise ValueError(
                    f"unknown fidelity {self.fidelity!r}: expected one of {choices}"
                )

    @property
    def seed_values(self) -> tuple[int, ...]:
        if isinstance(self.seeds, int):
            return tuple(range(self.seeds))
        return tuple(int(s) for s in self.seeds)

    def __len__(self) -> int:
        n = len(self.seed_values)
        for values in self.axes.values():
            n *= len(values)
        return n

    def validate(self) -> "ParameterGrid":
        """Check the scenario name and every axis/fixed key, eagerly.

        Raises ``KeyError`` (unknown scenario) or
        :class:`~repro.sim.library.UnknownParameterError` (unknown
        parameter, with a "did you mean ...?" suggestion) *before* any
        cell is dispatched — a typo'd ``--vary n_statoins=...`` fails
        here in milliseconds instead of as one ``FailedCell`` per grid
        point after the pool spins up.  Returns ``self`` for chaining.
        """
        from ..sim import validate_scenario_params

        validate_scenario_params(self.scenario, list(self.fixed) + list(self.axes))
        return self

    def cells(self) -> list[CampaignCell]:
        """Expand the grid, axes varying slowest-first, seeds innermost."""
        keys = list(self.axes)
        fixed = tuple(sorted(self.fixed.items()))
        out: list[CampaignCell] = []
        for combo in product(*(self.axes[key] for key in keys)):
            params = fixed + tuple(zip(keys, combo))
            for seed in self.seed_values:
                out.append(
                    CampaignCell(
                        scenario=self.scenario,
                        params=params,
                        seed=seed,
                        fidelity=self.fidelity,
                    )
                )
        return out

    def extend(
        self,
        *,
        axes: Mapping[str, Sequence[object]] | None = None,
        seeds: int | Sequence[int] | None = None,
    ) -> "ParameterGrid":
        """A grown grid that keeps every existing cell and adds new ones.

        ``axes`` appends values to existing axes (duplicates ignored,
        order preserved) or introduces new axes; ``seeds`` grows the
        seed set — an int raises the count (``seeds 0..n-1`` stay a
        prefix), a sequence appends explicit seed values.  Because the
        original cells survive verbatim, running the extended grid
        against a :class:`~repro.campaign.store.CampaignStore` that
        already holds the original campaign recomputes **only** the new
        cells; :meth:`new_cells` names them without a store.

        Note: introducing a brand-new axis *key* changes every cell's
        parameter set, so none of the original cells survive — extend
        along existing axes (or seeds) for incremental growth.
        """
        merged_axes: dict[str, list[object]] = {
            key: list(values) for key, values in self.axes.items()
        }
        for key, values in (axes or {}).items():
            bucket = merged_axes.setdefault(key, [])
            for value in values:
                if value not in bucket:
                    bucket.append(value)
        merged_seeds: int | Sequence[int] = self.seeds
        if seeds is not None:
            if isinstance(seeds, int):
                if not isinstance(self.seeds, int):
                    raise ValueError(
                        "cannot grow an explicit seed list by count; "
                        "pass the seed values to add"
                    )
                if seeds < self.seeds:
                    raise ValueError(
                        f"cannot shrink seeds: {seeds} < {self.seeds}"
                    )
                merged_seeds = seeds
            else:
                current = list(self.seed_values)
                for seed in seeds:
                    if int(seed) not in current:
                        current.append(int(seed))
                merged_seeds = tuple(current)
        return ParameterGrid(
            scenario=self.scenario,
            axes=merged_axes,
            seeds=merged_seeds,
            fixed=dict(self.fixed),
            fidelity=self.fidelity,
        )

    def new_cells(self, base: "ParameterGrid") -> list[CampaignCell]:
        """Cells of this grid that ``base`` does not contain (diffing).

        The incremental-extension primitive for store-less campaigns:
        ``run_campaign(extended.new_cells(original))`` runs exactly the
        added work.  Cells compare by value (scenario, params, seed).
        """
        existing = set(base.cells())
        return [cell for cell in self.cells() if cell not in existing]
