"""Parameter grids: the cells a campaign sweeps.

A campaign is a cartesian product — scenario × parameter axes × seeds —
expanded into :class:`CampaignCell` records.  Cells are plain picklable
data (scenario *name* plus keyword parameters), so a process pool can
rebuild and run each one in a worker via the scenario library.

>>> grid = ParameterGrid("ramp", axes={"n_stations": [10, 20]}, seeds=2)
>>> len(grid)
4
>>> [c.name for c in grid.cells()][:2]
['ramp/n_stations=10/seed=0', 'ramp/n_stations=10/seed=1']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Mapping, Sequence

__all__ = ["CampaignCell", "ParameterGrid"]


@dataclass(frozen=True)
class CampaignCell:
    """One unit of campaign work: a named scenario, parameterised."""

    scenario: str
    params: tuple[tuple[str, object], ...] = ()
    seed: int | None = None

    @property
    def name(self) -> str:
        """Stable human-readable cell id, e.g. ``ramp/n_stations=20/seed=1``."""
        parts = [self.scenario]
        parts += [f"{key}={value}" for key, value in self.params]
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        return "/".join(parts)

    @property
    def kwargs(self) -> dict[str, object]:
        """Keyword arguments for ``repro.sim.build_scenario``."""
        kwargs = dict(self.params)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return kwargs


@dataclass(frozen=True)
class ParameterGrid:
    """Cartesian sweep specification over one library scenario.

    ``axes`` maps parameter names (scenario factory arguments or
    :class:`~repro.sim.scenarios.ScenarioConfig` fields) to the values
    to sweep; ``seeds`` is either a count (seeds ``0..n-1``) or an
    explicit sequence of seed values.  ``fixed`` parameters apply to
    every cell without multiplying the grid.
    """

    scenario: str
    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)
    seeds: int | Sequence[int] = 1
    fixed: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key, values in self.axes.items():
            if len(values) == 0:
                raise ValueError(f"axis {key!r} has no values")
            if key in self.fixed:
                raise ValueError(f"{key!r} is both an axis and fixed")
        if isinstance(self.seeds, int) and self.seeds < 1:
            raise ValueError("need at least one seed")

    @property
    def seed_values(self) -> tuple[int, ...]:
        if isinstance(self.seeds, int):
            return tuple(range(self.seeds))
        return tuple(int(s) for s in self.seeds)

    def __len__(self) -> int:
        n = len(self.seed_values)
        for values in self.axes.values():
            n *= len(values)
        return n

    def cells(self) -> list[CampaignCell]:
        """Expand the grid, axes varying slowest-first, seeds innermost."""
        keys = list(self.axes)
        fixed = tuple(sorted(self.fixed.items()))
        out: list[CampaignCell] = []
        for combo in product(*(self.axes[key] for key in keys)):
            params = fixed + tuple(zip(keys, combo))
            for seed in self.seed_values:
                out.append(
                    CampaignCell(scenario=self.scenario, params=params, seed=seed)
                )
        return out
