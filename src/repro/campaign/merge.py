"""Loss-free merge of campaign store shards.

Distributed workers write finished cells into their *own*
:class:`~repro.campaign.store.CampaignStore` shard (no write contention,
no partial-visibility races), and the coordinator folds the shards into
the main store.  Because every record is content-addressed — the key
already encodes scenario, parameters, resolved config, seed and code
salt — the merge is a **union**: a key present in one place only is
copied; a key present in both must describe the *same simulation*, so
the records are asserted identical (modulo per-run wall-clock fields)
and one copy is kept.  A mismatch is never papered over: it means two
stores claim different results for the same keyed work (code-version
skew past the salt, or corruption), and :class:`MergeConflictError`
names the key and both paths.

The merge is also the crash-recovery path: a coordinator restarting
over an interrupted campaign first merges whatever the shards hold, so
cells a worker finished — even if their completion report never reached
the old coordinator — are recovered, not recomputed.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .store import CampaignStore

__all__ = [
    "MergeConflictError",
    "MergeReport",
    "merge_shard",
    "merge_shards",
    "shard_roots",
]

#: Record fields that legitimately differ between two computations of
#: the same cell (wall-clock measurements), excluded from the
#: bit-identity assertion.
VOLATILE_RESULT_FIELDS = ("elapsed_s",)


class MergeConflictError(RuntimeError):
    """Two stores hold *different* records under the same content key."""


@dataclass
class MergeReport:
    """What one merge pass did, per record kind."""

    results_merged: int = 0
    results_identical: int = 0
    failures_merged: int = 0
    failures_skipped: int = 0
    reports_merged: int = 0
    quarantined: int = 0
    shards: list[str] = field(default_factory=list)

    @property
    def merged(self) -> int:
        return self.results_merged + self.failures_merged

    def __iadd__(self, other: "MergeReport") -> "MergeReport":
        self.results_merged += other.results_merged
        self.results_identical += other.results_identical
        self.failures_merged += other.failures_merged
        self.failures_skipped += other.failures_skipped
        self.reports_merged += other.reports_merged
        self.quarantined += other.quarantined
        self.shards.extend(other.shards)
        return self


def _comparable(payload: dict) -> dict:
    """A record stripped of its per-run wall-clock fields, deep-copied."""
    data = json.loads(json.dumps(payload, sort_keys=True))
    result = data.get("result")
    if isinstance(result, dict):
        for name in VOLATILE_RESULT_FIELDS:
            result.pop(name, None)
    data.pop("elapsed_s", None)  # failure records carry it at top level
    return data


def _quarantine(path: Path) -> None:
    try:
        os.replace(path, path.with_name(path.name + ".corrupt"))
    except OSError:
        pass


def _copy_atomic(source: Path, target: Path) -> None:
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=target.parent, prefix=target.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(source.read_bytes())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def merge_shard(target: CampaignStore, shard_root: str | os.PathLike) -> MergeReport:
    """Union one shard directory into ``target``; see module docstring.

    Raises :class:`MergeConflictError` if the shard and the target
    disagree about a key's result (compared minus
    :data:`VOLATILE_RESULT_FIELDS`).  Unreadable shard records are
    quarantined in place (``*.corrupt``) and counted, never trusted.
    """
    shard_root = Path(shard_root)
    report = MergeReport(shards=[str(shard_root)])
    for path in sorted(shard_root.glob("*/*.json")):
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            _quarantine(path)
            report.quarantined += 1
            continue
        kind = payload.get("kind")
        key = payload.get("key")
        if kind not in ("result", "failure") or not isinstance(key, str) or not key:
            _quarantine(path)
            report.quarantined += 1
            continue
        if kind == "result":
            existing = target._read_record(target.result_path(key))
            if existing is None:
                target.put_record(payload)
                report.results_merged += 1
            elif _comparable(existing) != _comparable(payload):
                raise MergeConflictError(
                    f"store records disagree for key {key}: "
                    f"{target.result_path(key)} vs {path} — same content "
                    "key must mean the same simulation (code-version skew "
                    "or corruption)"
                )
            else:
                report.results_identical += 1
            sidecar = shard_root / key[:2] / f"{key}.report.pkl.gz"
            if sidecar.exists() and not target.report_path(key).exists():
                _copy_atomic(sidecar, target.report_path(key))
                report.reports_merged += 1
        else:
            if (
                target.result_path(key).exists()
                or target.failure_path(key).exists()
            ):
                # A success outranks a failure record; between two
                # failure records the first one kept is as good as any.
                report.failures_skipped += 1
            else:
                target.put_record(payload)
                report.failures_merged += 1
    return report


def shard_roots(store_root: str | os.PathLike) -> list[Path]:
    """The worker shard directories under a campaign store."""
    shards_dir = Path(store_root) / "shards"
    if not shards_dir.is_dir():
        return []
    return sorted(p for p in shards_dir.iterdir() if p.is_dir())


def merge_shards(
    target: CampaignStore, shards: Sequence[str | os.PathLike] | Iterable
) -> MergeReport:
    """Union every shard into ``target``, accumulating one report."""
    total = MergeReport()
    for shard in shards:
        total += merge_shard(target, shard)
    return total
