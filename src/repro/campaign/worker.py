"""Campaign worker: lease cells, simulate, report — and survive.

The worker side of :mod:`repro.campaign.dispatch`.  A worker process
connects to a coordinator, introduces itself (``hello`` → ``welcome``
carrying the store salt, simulation options and a private shard
directory), then loops: lease a batch, simulate each cell on the main
thread (so ``timeout_s`` cell deadlines can use ``SIGALRM``), write the
finished record into its *own shard* first, and only then report the
completion.  That ordering is the durability story: if the coordinator
dies between the shard write and the report, the record is recovered
from the shard on restart; if the *worker* dies, the coordinator's
lease expiry hands the unfinished cells to someone else.

While a cell simulates, a background heartbeat thread keeps the lease
alive.  If a heartbeat learns the lease is gone (the coordinator
reclaimed it — e.g. the worker stalled past the deadline, or the
coordinator restarted), the worker still finishes and reports the cell
in hand — completion is idempotent and content-addressed, so the report
is absorbed or acknowledged as a duplicate — but abandons the rest of
the batch rather than racing whoever holds it now.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path
from typing import Mapping

from .dispatch import DispatchError, cell_from_wire, recv_message, send_message
from .runner import _run_cell
from .store import CampaignStore, FailedCell

__all__ = ["WorkerChannel", "run_worker"]


class WorkerChannel:
    """One worker's request/response channel to the coordinator.

    The dispatch protocol is strictly request → reply, but two threads
    use the channel (the cell loop and the heartbeat), so each exchange
    is atomic under a lock.  A dead coordinator surfaces as
    ``ConnectionResetError`` from whichever request hits it first.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._lock = threading.Lock()

    def request(self, message: Mapping) -> dict:
        with self._lock:
            send_message(self._sock, message)
            reply = recv_message(self._sock)
        if reply is None:
            raise ConnectionResetError("coordinator closed the connection")
        return reply

    def send(self, message: Mapping) -> None:
        with self._lock:
            send_message(self._sock, message)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class _Heartbeat:
    """Daemon thread extending one lease while a cell simulates."""

    def __init__(self, channel: WorkerChannel, worker: str, lease: str,
                 lease_s: float) -> None:
        self._channel = channel
        self._worker = worker
        self._lease = lease
        self._interval = max(0.05, lease_s / 3.0)
        self._stop = threading.Event()
        #: Set when the coordinator says the lease no longer exists.
        self.lease_gone = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                reply = self._channel.request(
                    {"op": "heartbeat", "worker": self._worker,
                     "lease": self._lease}
                )
            except (ConnectionError, OSError):
                # Coordinator unreachable: keep simulating — the record
                # still lands in the shard, and shard merge on
                # coordinator restart recovers it.
                self.lease_gone.set()
                return
            if reply.get("op") == "gone":
                self.lease_gone.set()
                return


def run_worker(
    host: str,
    port: int,
    *,
    worker_id: str | None = None,
    shard_dir: str | os.PathLike | None = None,
    connect_timeout_s: float = 10.0,
) -> int:
    """Serve one coordinator until its campaign is done.

    Returns the number of cells this worker completed (successes plus
    captured failures).  Raises :class:`ConnectionError` if the
    coordinator vanishes mid-campaign — the supervisor (or the
    operator) decides whether to reconnect.  ``connect_timeout_s``
    bounds only the initial connect (``OSError``/``TimeoutError`` on
    an unreachable coordinator); the session itself blocks, since a
    lease-grant can legitimately take as long as the queue is deep.
    """
    sock = socket.create_connection((host, port), timeout=connect_timeout_s)
    sock.settimeout(None)
    channel = WorkerChannel(sock)
    try:
        return _serve(channel, worker_id=worker_id, shard_dir=shard_dir)
    finally:
        channel.close()


def _serve(
    channel: WorkerChannel,
    *,
    worker_id: str | None,
    shard_dir: str | os.PathLike | None,
) -> int:
    name = worker_id or f"worker-{os.getpid()}"
    welcome = channel.request(
        {"op": "hello", "worker": name,
         "shard": os.fspath(shard_dir) if shard_dir is not None else None}
    )
    if welcome.get("op") != "welcome":
        raise DispatchError(f"coordinator refused hello: {welcome!r}")
    name = welcome["worker"]  # coordinator-disambiguated identity
    lease_s = float(welcome.get("lease_s", 30.0))
    options = dict(welcome.get("options") or {})
    options.setdefault("keep_reports", False)
    shard = CampaignStore(Path(welcome["shard"]), salt=welcome["salt"])
    completed = 0

    while True:
        reply = channel.request({"op": "lease", "worker": name})
        op = reply.get("op")
        if op == "done":
            channel.send({"op": "bye"})
            return completed
        if op == "wait":
            time.sleep(min(float(reply.get("seconds", 0.1)), 2.0))
            continue
        if op != "grant":
            raise DispatchError(f"unexpected lease reply: {reply!r}")

        lease = str(reply["lease"])
        for entry in reply["cells"]:
            cell = cell_from_wire(entry["cell"])
            key = str(entry["key"])
            own_key = shard.key_for(cell)
            if own_key != key:
                # Code-version skew: this worker would simulate
                # *different* work than the key promises.  Refuse the
                # cell rather than poison the store.
                message = {
                    "op": "fail", "worker": name, "lease": lease,
                    "index": entry["index"], "key": key,
                    "record": shard.failure_payload(
                        FailedCell(
                            cell=cell,
                            error_type="KeySkew",
                            error=(
                                f"worker computes key {own_key[:12]}… for a "
                                f"cell leased under {key[:12]}… — worker and "
                                "coordinator run different repro code"
                            ),
                            traceback="",
                            elapsed_s=0.0,
                        ),
                        key,
                    ),
                }
                channel.request(message)
                continue

            with _Heartbeat(channel, name, lease, lease_s) as beat:
                status, payload = _run_cell((cell, options))
            if status == "ok":
                shard.put(payload, key=key)
                record = shard.result_payload(payload, key)
                message = {
                    "op": "complete", "worker": name, "lease": lease,
                    "index": entry["index"], "key": key, "record": record,
                }
            else:
                shard.put_failure(payload, key=key)
                message = {
                    "op": "fail", "worker": name, "lease": lease,
                    "index": entry["index"], "key": key,
                    "record": shard.failure_payload(payload, key),
                }
            ack = channel.request(message)
            completed += 1
            if beat.lease_gone.is_set() or not ack.get("lease_valid", True):
                # The rest of this batch belongs to someone else now.
                break
