"""Content-addressed, crash-safe on-disk store for campaign cells.

A campaign is only "production-scale" if interrupting it costs nothing:
every finished cell must survive a worker crash, a Ctrl-C at cell 199
of 200, or a power cut, and re-invoking the campaign must redo *only*
the missing work.  The :class:`CampaignStore` provides that guarantee:

* **Content-addressed keys.**  Each cell is keyed by a SHA-256 over
  (scenario name, the cell's parameters, the *resolved*
  :class:`~repro.sim.scenarios.ScenarioConfig` the scenario library
  would run with, the seed, and a code-version salt).  Two cells with
  the same key would simulate the same frames, so a stored result is a
  safe substitute for re-running; anything that changes the simulation
  — a parameter, a seed, a library default, the simulator source —
  changes the key and transparently invalidates the entry.
* **Atomic persistence.**  One JSON file per cell, written to a
  temporary sibling and ``os.replace``-d into place, so a crash can
  never leave a half-written record that a later resume would trust.
* **Failure records.**  A cell that raises is persisted as a
  :class:`FailedCell` (exception type, message, traceback) in a
  ``.fail.json`` sidecar; the campaign completes, reports the failure,
  and a ``--retry-failed`` pass re-runs exactly those cells.
* **Corruption quarantine.**  A record that no longer parses (disk
  fault, torn copy) is never silently trusted *or* silently discarded:
  it is renamed to ``<key>.json.corrupt`` next to where it lay, counted
  in :attr:`CampaignStore.quarantined`, and the cell recomputes as a
  plain miss.  Campaign summaries and ``campaign-status`` surface the
  count so corruption is investigated, not papered over.

The code-version salt defaults to a hash of every ``.py`` file in the
installed ``repro`` package, so results never outlive the code that
produced them.  Set ``salt=`` (or the ``REPRO_CAMPAIGN_SALT``
environment variable) to pin it across code changes you know are
behaviour-preserving.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, fields as dataclass_fields, is_dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

import numpy as np

from .grid import CampaignCell

if TYPE_CHECKING:  # pragma: no cover
    from .runner import CellResult

__all__ = [
    "CampaignStore",
    "FailedCell",
    "StoreStatus",
    "cell_key",
    "code_version_salt",
]

#: Bump when the on-disk record layout changes incompatibly.
STORE_FORMAT = 1

#: Environment override for the code-version salt (useful to keep a
#: store warm across code changes known to be behaviour-preserving).
_SALT_ENV = "REPRO_CAMPAIGN_SALT"

_code_salt_cache: str | None = None


def code_version_salt() -> str:
    """Hash of the installed ``repro`` package source (cached).

    Any change to any ``src/repro/**.py`` file yields a new salt, so a
    store never serves results computed by different simulator code.
    """
    global _code_salt_cache
    env = os.environ.get(_SALT_ENV)
    if env:
        return env
    if _code_salt_cache is None:
        package_dir = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(str(path.relative_to(package_dir)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_salt_cache = digest.hexdigest()[:16]
    return _code_salt_cache


# -- canonical hashing -----------------------------------------------------


def _canonical(value, seen: set[int] | None = None):
    """Reduce ``value`` to a deterministic JSON-able structure.

    Handles the things a resolved :class:`ScenarioConfig` contains:
    primitives, tuples, mappings, dataclasses, numpy scalars/arrays,
    rate-schedule objects and size-mix closures.  Callables contribute
    their qualified name plus their closure's canonical contents (so
    two ``class_mixture`` samplers with different weights hash apart);
    generic objects contribute their class plus sorted attributes,
    *skipping* dict/set-valued attributes, which are memo caches by
    convention (e.g. ``ModulatedRate._cache`` fills in during a run and
    must not shift the key).
    """
    if seen is None:
        seen = set()
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(np.ascontiguousarray(value).tobytes())
            .hexdigest(),
            "dtype": str(value.dtype),
            "shape": list(value.shape),
        }
    if id(value) in seen:
        return "__cycle__"
    seen = seen | {id(value)}
    if isinstance(value, (list, tuple)):
        return [_canonical(v, seen) for v in value]
    if isinstance(value, Mapping):
        return {
            "__map__": [
                [str(k), _canonical(v, seen)]
                for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
            ]
        }
    if is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: _canonical(getattr(value, f.name), seen)
                for f in dataclass_fields(value)
            },
        }
    if callable(value):
        closure = getattr(value, "__closure__", None) or ()
        bound_self = getattr(value, "__self__", None)
        return {
            "__callable__": f"{getattr(value, '__module__', '?')}."
            f"{getattr(value, '__qualname__', repr(type(value)))}",
            "closure": [_canonical(c.cell_contents, seen) for c in closure],
            "self": _canonical(bound_self, seen) if bound_self is not None else None,
        }
    attrs = getattr(value, "__dict__", None)
    if attrs is not None:
        cls = type(value)
        return {
            "__object__": f"{cls.__module__}.{cls.__qualname__}",
            "attrs": {
                k: _canonical(v, seen)
                for k, v in sorted(attrs.items())
                if not isinstance(v, (dict, set))
            },
        }
    return {"__repr__": repr(value)}


def cell_key(cell: CampaignCell, salt: str) -> str:
    """Content hash identifying ``cell``'s simulation work.

    The key covers the scenario *name*, the cell parameters, the fully
    resolved scenario config those parameters produce, the seed and the
    code-version ``salt``.  Cells whose parameters do not resolve to a
    valid config (the cell will fail when run) are keyed by name and
    parameters alone, so their failure records are still addressable.
    """
    payload: dict[str, object] = {
        "scenario": cell.scenario,
        "params": _canonical(dict(cell.params)),
        "seed": cell.seed,
        "salt": salt,
    }
    if cell.fidelity is not None:
        # Added only when set, so default-engine cells keep the keys
        # their results were stored under before fidelity existed.
        payload["fidelity"] = cell.fidelity
    try:
        from ..sim import scenario_config

        payload["config"] = _canonical(scenario_config(cell.scenario, **cell.kwargs))
    except Exception as error:
        payload["config_error"] = f"{type(error).__name__}: {error}"
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(text.encode()).hexdigest()


# -- records ---------------------------------------------------------------


@dataclass(frozen=True)
class FailedCell:
    """A cell whose simulation raised; the campaign completed without it."""

    cell: CampaignCell
    error_type: str
    error: str
    traceback: str
    elapsed_s: float

    @property
    def name(self) -> str:
        return self.cell.name


@dataclass(frozen=True)
class StoreStatus:
    """Cells of a grid partitioned by what the store holds for them."""

    done: list[CampaignCell]
    pending: list[CampaignCell]
    failed: list[FailedCell]

    @property
    def counts(self) -> dict[str, int]:
        return {
            "done": len(self.done),
            "pending": len(self.pending),
            "failed": len(self.failed),
        }


def _json_safe(value):
    """Cell parameter values for the on-disk record (display/rebuild)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    return repr(value)


def _cell_payload(cell: CampaignCell) -> dict[str, object]:
    payload = {
        "scenario": cell.scenario,
        "params": [[k, _json_safe(v)] for k, v in cell.params],
        "seed": cell.seed,
        "name": cell.name,
    }
    if cell.fidelity is not None:
        payload["fidelity"] = cell.fidelity
    return payload


#: CellResult fields persisted to JSON (everything except ``cell`` and
#: the optional ``report``, which goes to a compressed sidecar).
_RESULT_FIELDS = (
    "n_frames",
    "frames_transmitted",
    "offered_packets",
    "duration_s",
    "delivery_ratio",
    "capture_ratio",
    "mode_utilization",
    "peak_throughput_mbps",
    "peak_throughput_utilization",
    "high_congestion_fraction",
    "unrecorded_percent",
    "elapsed_s",
    "events_processed",
    "events_cancelled",
)


class CampaignStore:
    """On-disk map: content key → finished cell result (or failure).

    Records live two directory levels deep (``ab/<key>.json``) so huge
    campaigns do not produce million-entry directories.  All writes are
    atomic (temp file + ``os.replace``); readers either see a complete
    record or none at all.
    """

    def __init__(self, root: str | os.PathLike, *, salt: str | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.salt = salt if salt is not None else code_version_salt()
        #: Corrupt records renamed to ``*.corrupt`` by this instance.
        self.quarantined = 0
        self._write_meta()

    def _write_meta(self) -> None:
        meta_path = self.root / "store-meta.json"
        if not meta_path.exists():
            self._atomic_write_json(
                meta_path, {"format": STORE_FORMAT, "salt": self.salt}
            )

    # -- paths ------------------------------------------------------------

    def key_for(self, cell: CampaignCell) -> str:
        return cell_key(cell, self.salt)

    def result_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def failure_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.fail.json"

    def report_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.report.pkl.gz"

    # -- low-level I/O ----------------------------------------------------

    @staticmethod
    def _atomic_write_json(path: Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def _read_json(path: Path) -> dict | None:
        try:
            with open(path) as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            return None

    def _read_record(self, path: Path) -> dict | None:
        """Read a cell record; quarantine it if it no longer parses.

        A record that exists but cannot be decoded is evidence of a
        disk/copy fault.  Swallowing it as a plain miss would silently
        recompute the cell *and destroy the evidence* on the rewrite —
        so the broken file is renamed to ``<name>.corrupt`` (out of the
        store's key space, preserved for inspection), counted in
        :attr:`quarantined`, and only then treated as a miss.
        """
        try:
            with open(path) as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            self._quarantine(path)
            return None

    def _quarantine(self, path: Path) -> None:
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            # Unreadable *and* unrenamable (e.g. permissions): nothing
            # more can be done here; the cell still recomputes.
            return
        self.quarantined += 1

    # -- writing ----------------------------------------------------------

    def result_payload(self, result: "CellResult", key: str) -> dict:
        """The on-disk JSON record for a finished cell (pure).

        Factored out of :meth:`put` because the distributed dispatch
        protocol ships exactly this dict over the wire: the bytes a
        worker writes into its shard are the bytes the coordinator
        writes into the main store, which is what makes the final shard
        merge a checkable no-op.
        """
        return {
            "format": STORE_FORMAT,
            "kind": "result",
            "key": key,
            "salt": self.salt,
            "cell": _cell_payload(result.cell),
            "result": {f: getattr(result, f) for f in _RESULT_FIELDS},
            "has_report": result.report is not None,
        }

    def failure_payload(self, failed: FailedCell, key: str) -> dict:
        """The on-disk JSON record for a failed cell (pure)."""
        return {
            "format": STORE_FORMAT,
            "kind": "failure",
            "key": key,
            "salt": self.salt,
            "cell": _cell_payload(failed.cell),
            "error": {
                "type": failed.error_type,
                "message": failed.error,
                "traceback": failed.traceback,
            },
            "elapsed_s": failed.elapsed_s,
        }

    def put_record(self, payload: Mapping) -> Path:
        """Persist a raw record dict (e.g. one received over the wire).

        Routes by ``kind``: a result clears any failure record for its
        key; a failure never overwrites an existing result (a completed
        cell outranks any later report of trouble).
        """
        kind = payload.get("kind")
        key = payload.get("key")
        if kind not in ("result", "failure") or not isinstance(key, str) or not key:
            raise ValueError(f"not a store record: kind={kind!r} key={key!r}")
        if kind == "result":
            path = self.result_path(key)
            self._atomic_write_json(path, dict(payload))
            try:
                self.failure_path(key).unlink()
            except OSError:
                pass
            return path
        path = self.failure_path(key)
        if self.result_path(key).exists():
            return path
        self._atomic_write_json(path, dict(payload))
        return path

    def put(self, result: "CellResult", *, key: str | None = None) -> Path:
        """Persist a finished cell atomically; clears any failure record."""
        key = key or self.key_for(result.cell)
        payload = self.result_payload(result, key)
        if result.report is not None:
            report_path = self.report_path(key)
            report_path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=report_path.parent, prefix=report_path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as raw, gzip.GzipFile(
                    fileobj=raw, mode="wb", mtime=0
                ) as zipped:
                    pickle.dump(result.report, zipped)
                os.replace(tmp, report_path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        path = self.result_path(key)
        self._atomic_write_json(path, payload)
        try:
            self.failure_path(key).unlink()
        except OSError:
            pass
        return path

    def put_failure(self, failed: FailedCell, *, key: str | None = None) -> Path:
        """Persist a failure record (never overwrites a success)."""
        key = key or self.key_for(failed.cell)
        path = self.failure_path(key)
        self._atomic_write_json(path, self.failure_payload(failed, key))
        return path

    # -- reading ----------------------------------------------------------

    def get(
        self,
        cell: CampaignCell,
        *,
        key: str | None = None,
        with_report: bool = False,
    ) -> "CellResult | None":
        """Stored :class:`CellResult` for ``cell``, or ``None`` on miss.

        The returned result carries the *live* ``cell`` object (not the
        JSON reconstruction), so resumed campaigns aggregate exactly
        like fresh ones.
        """
        from .runner import CellResult

        key = key or self.key_for(cell)
        payload = self._read_record(self.result_path(key))
        if payload is None or payload.get("kind") != "result":
            return None
        numbers = payload.get("result", {})
        try:
            kwargs = {f: numbers[f] for f in _RESULT_FIELDS}
        except KeyError:
            return None  # record from an incompatible layout: recompute
        report = None
        if with_report:
            # A record persisted without a report (or whose sidecar was
            # lost) cannot satisfy a keep_reports request: miss, so the
            # cell is recomputed with its report this time.
            if not payload.get("has_report"):
                return None
            report = self._load_report(key)
            if report is None:
                return None
        return CellResult(cell=cell, report=report, **kwargs)

    def _load_report(self, key: str):
        try:
            with gzip.open(self.report_path(key), "rb") as handle:
                return pickle.load(handle)
        except (OSError, EOFError, pickle.UnpicklingError):
            return None

    def get_failure(
        self, cell: CampaignCell, *, key: str | None = None
    ) -> FailedCell | None:
        """Stored failure record for ``cell``, or ``None``."""
        key = key or self.key_for(cell)
        payload = self._read_record(self.failure_path(key))
        if payload is None or payload.get("kind") != "failure":
            return None
        error = payload.get("error", {})
        return FailedCell(
            cell=cell,
            error_type=str(error.get("type", "Exception")),
            error=str(error.get("message", "")),
            traceback=str(error.get("traceback", "")),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
        )

    def __contains__(self, cell: CampaignCell) -> bool:
        return self.result_path(self.key_for(cell)).exists()

    def discard(self, cell: CampaignCell) -> bool:
        """Remove any records for ``cell``; True if something was removed."""
        key = self.key_for(cell)
        removed = False
        for path in (
            self.result_path(key),
            self.failure_path(key),
            self.report_path(key),
        ):
            try:
                path.unlink()
                removed = True
            except OSError:
                pass
        return removed

    # -- inventory --------------------------------------------------------

    def records(self) -> Iterator[dict]:
        """Every readable record in the store (results and failures).

        Corrupt record files encountered during the walk are quarantined
        (renamed ``*.corrupt``, counted in :attr:`quarantined`) rather
        than silently skipped.
        """
        for path in sorted(self.root.glob("*/*.json")):
            payload = self._read_record(path)
            if payload is not None and payload.get("kind") in (
                "result",
                "failure",
            ):
                yield payload

    def __len__(self) -> int:
        return sum(1 for r in self.records() if r["kind"] == "result")

    def status(self, cells: Sequence[CampaignCell]) -> StoreStatus:
        """Partition ``cells`` into done / pending / failed for this store.

        A "done" cell must actually *parse*, not merely exist: a corrupt
        record is quarantined here and its cell reported pending, so the
        status a coordinator plans against never counts unreadable work
        as finished.
        """
        done: list[CampaignCell] = []
        pending: list[CampaignCell] = []
        failed: list[FailedCell] = []
        for cell in cells:
            key = self.key_for(cell)
            record = self._read_record(self.result_path(key))
            if record is not None and record.get("kind") == "result":
                done.append(cell)
                continue
            failure = self.get_failure(cell, key=key)
            if failure is not None:
                failed.append(failure)
            else:
                pending.append(cell)
        return StoreStatus(done=done, pending=pending, failed=failed)
