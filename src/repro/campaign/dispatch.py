"""Fault-tolerant distributed campaigns: lease-based coordinator/worker.

One coordinator owns a campaign grid and its content-addressed
:class:`~repro.campaign.store.CampaignStore`; any number of worker
processes (same box or any host that can reach the socket and the
store's filesystem) connect and *lease* batches of pending cells.  The
protocol is deliberately boring — length-prefixed JSON messages over a
plain ``socket`` (the same :mod:`repro.framing` envelope the serve
daemon uses, under magic ``RPJ1``) — because every robustness property
comes from the state machine, not the transport:

* **Leases, not assignments.**  A granted batch carries a deadline.
  Heartbeats extend it; a worker that dies (its connection drops) or
  stalls (its deadline passes) forfeits the lease and the coordinator
  hands the unfinished cells to someone else.  Recomputation after a
  crash is bounded by one lease batch per dead worker, because workers
  report each cell *individually* the moment it finishes.
* **Retry budgets with backoff.**  A cell whose simulation raises — or
  that keeps killing its workers — is retried up to ``max_attempts``
  times with exponential backoff, then recorded as a permanent
  :class:`~repro.campaign.store.FailedCell` instead of wedging the
  campaign.
* **Durability at two points.**  A worker writes each finished cell
  into its own store shard *and* ships the identical record to the
  coordinator, which writes it into the main store immediately.  Either
  copy alone is enough to survive a crash: a restarted coordinator
  first merges the shards (:mod:`repro.campaign.merge`), then consults
  the store, and dispatches only what is genuinely missing.
* **Idempotent completion.**  Completions are keyed by cell index and
  content key, so a worker finishing a cell *after* its lease was
  reclaimed (or a second worker finishing the same re-leased cell) is
  absorbed: first record wins, duplicates are acknowledged and
  discarded, and the store never flaps.

The state machine lives in :class:`CoordinatorState` with an injectable
clock so every timing behaviour — expiry, stalled heartbeats, backoff —
is tested deterministically, without sleeping
(``tests/campaign/test_dispatch.py`` / ``test_chaos.py``).
:class:`Coordinator` wraps it in a threaded socket server;
:func:`run_distributed_campaign` is the one-call form behind
``run_campaign(dispatch="distributed")``.
"""

from __future__ import annotations

import heapq
import itertools
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from .. import protocol_registry
from .._suggest import unknown_name_message
from ..framing import FrameError, recv_frame, send_frame
from ..protocol_registry import DISPATCH_OPS
from .grid import CampaignCell, ParameterGrid
from .merge import merge_shards, shard_roots
from .runner import CELL_CHUNK_FRAMES, CampaignResult, CellResult, _expand_cells
from .store import CampaignStore, FailedCell

__all__ = [
    "DISPATCH_MAGIC",
    "Coordinator",
    "CoordinatorState",
    "DispatchError",
    "cell_from_wire",
    "cell_to_wire",
    "recv_message",
    "run_distributed_campaign",
    "send_message",
]

#: Protocol magic: JSON dispatch messages (vs the serve layer's RPF1).
#: Declared once in the registry; re-exported here for callers.
DISPATCH_MAGIC = protocol_registry.DISPATCH_MAGIC

#: A dispatch message is small JSON; anything near this cap is corrupt.
MAX_MESSAGE_BYTES = 8 * 1024 * 1024

#: Seconds a lease lives without a heartbeat.
DEFAULT_LEASE_S = 30.0

#: Cells granted per lease.  Small batches bound post-crash
#: recomputation (at most one batch per dead worker) at the cost of
#: more round trips; cells are seconds-long simulations, so the round
#: trips are noise.
DEFAULT_BATCH = 2

#: Tries per cell (first run + retries) before a permanent failure.
DEFAULT_MAX_ATTEMPTS = 3

#: Base of the exponential retry backoff (doubles per attempt).
DEFAULT_BACKOFF_S = 0.5

#: File the coordinator keeps updated inside the store directory so
#: ``repro campaign-status --store`` is cluster-aware.
STATE_FILENAME = "coordinator-state.json"


class DispatchError(RuntimeError):
    """A distributed-campaign protocol or configuration failure."""


# -- wire helpers ----------------------------------------------------------


def send_message(sock: socket.socket, message: Mapping) -> None:
    """Send one framed JSON message.

    Refuses ops outside :data:`repro.protocol_registry.DISPATCH_OPS`:
    an undeclared op would be rejected (or worse, misread) by the peer,
    so the typo fails here, at the sender, with a did-you-mean.
    """
    op = message.get("op")
    if not isinstance(op, str) or op not in DISPATCH_OPS:
        raise DispatchError(
            unknown_name_message("dispatch op", str(op), DISPATCH_OPS)
        )
    payload = json.dumps(message, separators=(",", ":")).encode()
    send_frame(sock, payload, DISPATCH_MAGIC)


def recv_message(sock: socket.socket) -> dict | None:
    """Receive one framed JSON message; ``None`` on clean EOF."""
    payload = recv_frame(
        sock, magic=DISPATCH_MAGIC, max_bytes=MAX_MESSAGE_BYTES
    )
    if payload is None:
        return None
    try:
        message = json.loads(payload)
    except json.JSONDecodeError as error:
        raise FrameError(f"undecodable dispatch message: {error}") from None
    if not isinstance(message, dict) or "op" not in message:
        raise FrameError(f"dispatch message without an op: {message!r}")
    return message


_WIRE_SCALARS = (bool, int, float, str, type(None))


def cell_to_wire(cell: CampaignCell) -> dict:
    """JSON-safe cell description (strict: scalar parameters only).

    Grids built from the CLI or spec files always satisfy this;
    programmatic grids holding live objects (schedules, closures) are
    process-pool-only and fail here loudly rather than shipping a lossy
    ``repr`` to a worker that would simulate something else.
    """
    params = []
    for key, value in cell.params:
        if isinstance(value, np.generic):
            value = value.item()
        if not isinstance(value, _WIRE_SCALARS):
            raise DispatchError(
                f"cell parameter {key}={value!r} is not a JSON scalar — "
                "distributed dispatch ships cells over the wire; use "
                "scalar parameters (or local dispatch) for this grid"
            )
        params.append([key, value])
    wire: dict = {"scenario": cell.scenario, "params": params, "seed": cell.seed}
    if cell.fidelity is not None:
        wire["fidelity"] = cell.fidelity
    return wire


def cell_from_wire(data: Mapping) -> CampaignCell:
    """Inverse of :func:`cell_to_wire`."""
    return CampaignCell(
        scenario=data["scenario"],
        params=tuple((key, value) for key, value in data["params"]),
        seed=data["seed"],
        fidelity=data.get("fidelity"),
    )


# -- coordinator state machine ---------------------------------------------


@dataclass
class Lease:
    """One granted batch: which cells, whose, and until when."""

    lease_id: str
    worker: str
    indices: set[int]
    deadline: float


@dataclass
class WorkerStats:
    completed: int = 0
    failed: int = 0
    last_seen: float = 0.0


class CoordinatorState:
    """The pure dispatch state machine (no sockets, injectable clock).

    Every method takes/uses ``self._clock()`` for "now", so tests drive
    lease expiry, stalled heartbeats and retry backoff by advancing a
    fake clock — deterministically, with zero sleeping.  Thread safety
    is the caller's job (:class:`Coordinator` holds one lock).
    """

    def __init__(
        self,
        cells: Sequence[CampaignCell],
        store: CampaignStore,
        *,
        lease_s: float = DEFAULT_LEASE_S,
        batch: int = DEFAULT_BATCH,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_s: float = DEFAULT_BACKOFF_S,
        resume: bool = True,
        retry_failed: bool = False,
        options: Mapping | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_s <= 0:
            raise ValueError("lease_s must be > 0")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.cells = list(cells)
        self.store = store
        self.lease_s = lease_s
        self.batch = batch
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.options = dict(options or {})
        self._clock = clock

        self.keys = [store.key_for(cell) for cell in self.cells]
        self.done: dict[int, str] = {}  # index -> content key
        self.failed: dict[int, FailedCell] = {}
        self.attempts = [0] * len(self.cells)
        self.ready: list[int] = []  # FIFO of dispatchable indices
        self.delayed: list[tuple[float, int]] = []  # backoff heap
        self.leases: dict[str, Lease] = {}
        self.dispatched: set[int] = set()
        self.workers: dict[str, WorkerStats] = {}
        self.store_hits = 0
        self.reclaims = 0
        self.retries = 0
        self._lease_ids = itertools.count(1)

        # Resume semantics mirror the local runner: stored results are
        # answered without dispatch; recorded failures stay failed
        # unless retry_failed; everything else is ready work.
        for index, cell in enumerate(self.cells):
            key = self.keys[index]
            if resume:
                if store.get(cell, key=key) is not None:
                    self.done[index] = key
                    self.store_hits += 1
                    continue
                if not retry_failed:
                    failure = store.get_failure(cell, key=key)
                    if failure is not None:
                        self.failed[index] = failure
                        continue
            self.ready.append(index)

    # -- inspection --------------------------------------------------------

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def is_done(self) -> bool:
        return len(self.done) + len(self.failed) == len(self.cells)

    @property
    def outstanding(self) -> int:
        """Cells not yet resolved (ready, delayed or leased)."""
        return len(self.cells) - len(self.done) - len(self.failed)

    # -- internals ---------------------------------------------------------

    def _touch(self, worker: str, now: float) -> None:
        stats = self.workers.setdefault(worker, WorkerStats())
        stats.last_seen = now

    def _promote_delayed(self, now: float) -> None:
        while self.delayed and self.delayed[0][0] <= now:
            _, index = heapq.heappop(self.delayed)
            self.ready.append(index)

    def _detach(self, index: int) -> None:
        """Remove a resolved index from every lease, dropping empties."""
        for lease_id in [
            lid for lid, lease in self.leases.items() if index in lease.indices
        ]:
            lease = self.leases[lease_id]
            lease.indices.discard(index)
            if not lease.indices:
                del self.leases[lease_id]

    def _expire_lease(self, lease: Lease, reason: str) -> None:
        """Return a forfeited lease's cells to the pool (budget-counted).

        The expiry consumes one attempt per unfinished cell: a cell
        whose simulation reliably kills its worker must exhaust the
        retry budget and become a recorded failure, not starve the
        campaign by killing workers forever.
        """
        del self.leases[lease.lease_id]
        self.reclaims += 1
        for index in sorted(lease.indices):
            if index in self.done or index in self.failed:
                continue
            self.attempts[index] += 1
            if self.attempts[index] >= self.max_attempts:
                self._record_failure(
                    index,
                    FailedCell(
                        cell=self.cells[index],
                        error_type="LeaseExpired",
                        error=(
                            f"lease {lease.lease_id} ({reason}) on worker "
                            f"{lease.worker!r}; retry budget "
                            f"({self.max_attempts}) exhausted"
                        ),
                        traceback="",
                        elapsed_s=0.0,
                    ),
                )
            else:
                self.ready.append(index)

    def _record_failure(self, index: int, failure: FailedCell) -> None:
        self.failed[index] = failure
        self.store.put_failure(failure, key=self.keys[index])

    def reclaim(self, now: float | None = None) -> int:
        """Expire overdue leases; returns how many were reclaimed."""
        now = self._clock() if now is None else now
        overdue = [l for l in self.leases.values() if l.deadline <= now]
        for lease in overdue:
            self._expire_lease(lease, "deadline passed")
        self._promote_delayed(now)
        return len(overdue)

    def drop_worker(self, worker: str) -> int:
        """A worker's connection died: forfeit its leases immediately.

        Faster than waiting out the deadline — a SIGKILLed worker frees
        its cells the instant the socket closes.
        """
        owned = [l for l in self.leases.values() if l.worker == worker]
        for lease in owned:
            self._expire_lease(lease, "connection lost")
        return len(owned)

    def _wait_hint(self, now: float) -> float:
        """Seconds a worker should wait before asking again."""
        horizons = [ready_at - now for ready_at, _ in self.delayed]
        horizons += [lease.deadline - now for lease in self.leases.values()]
        if not horizons:
            return 0.1
        return min(max(min(horizons), 0.05), 2.0)

    # -- protocol operations ----------------------------------------------

    def lease(self, worker: str) -> dict:
        """Grant a batch of ready cells (or say wait / done)."""
        now = self._clock()
        self._touch(worker, now)
        self.reclaim(now)
        if self.is_done:
            return {"op": "done"}
        if not self.ready:
            return {"op": "wait", "seconds": self._wait_hint(now)}
        grant = []
        while self.ready and len(grant) < self.batch:
            index = self.ready.pop(0)
            # A stale-lease completion can resolve a cell that was
            # already reclaimed back into the queue: skip, don't regrant.
            if index not in self.done and index not in self.failed:
                grant.append(index)
        if not grant:
            if self.is_done:
                return {"op": "done"}
            return {"op": "wait", "seconds": self._wait_hint(now)}
        lease_id = f"L{next(self._lease_ids)}"
        self.leases[lease_id] = Lease(
            lease_id=lease_id,
            worker=worker,
            indices=set(grant),
            deadline=now + self.lease_s,
        )
        self.dispatched.update(grant)
        return {
            "op": "grant",
            "lease": lease_id,
            "lease_s": self.lease_s,
            "cells": [
                {
                    "index": index,
                    "key": self.keys[index],
                    "cell": cell_to_wire(self.cells[index]),
                    "attempt": self.attempts[index] + 1,
                }
                for index in grant
            ],
        }

    def heartbeat(self, worker: str, lease_id: str) -> dict:
        """Extend a live lease; ``gone`` if it was already reclaimed."""
        now = self._clock()
        self._touch(worker, now)
        self.reclaim(now)
        lease = self.leases.get(lease_id)
        if lease is None:
            return {"op": "gone"}
        lease.deadline = now + self.lease_s
        return {"op": "ok", "lease_s": self.lease_s}

    def complete(
        self, worker: str, lease_id: str, index: int, key: str, record: Mapping
    ) -> dict:
        """Absorb one finished cell (idempotent; stale leases accepted).

        The work is content-addressed, so a result arriving after its
        lease expired — or for a cell someone else finished meanwhile —
        is still valid; the first stored record wins and duplicates are
        acknowledged without a second write.
        """
        now = self._clock()
        self._touch(worker, now)
        if not 0 <= index < len(self.cells) or key != self.keys[index]:
            return {
                "op": "error",
                "error": f"completion for unknown cell index={index} key={key}",
            }
        lease_valid = lease_id in self.leases
        if index in self.done:
            self._detach(index)
            return {"op": "ok", "duplicate": True, "lease_valid": lease_valid}
        self.store.put_record(record)
        self.done[index] = key
        self.failed.pop(index, None)  # retry_failed path: success clears
        self._detach(index)
        self.workers.setdefault(worker, WorkerStats()).completed += 1
        self.reclaim(now)
        return {"op": "ok", "lease_valid": lease_id in self.leases or lease_valid}

    def fail(
        self, worker: str, lease_id: str, index: int, key: str, record: Mapping
    ) -> dict:
        """Count a failed attempt; back off and retry, or record finally."""
        now = self._clock()
        self._touch(worker, now)
        if not 0 <= index < len(self.cells) or key != self.keys[index]:
            return {
                "op": "error",
                "error": f"failure report for unknown cell index={index}",
            }
        if index in self.done:
            return {"op": "ok", "duplicate": True}
        self._detach(index)
        self.workers.setdefault(worker, WorkerStats()).failed += 1
        self.attempts[index] += 1
        error = record.get("error", {}) if isinstance(record, Mapping) else {}
        failure = FailedCell(
            cell=self.cells[index],
            error_type=str(error.get("type", "Exception")),
            error=str(error.get("message", "")),
            traceback=str(error.get("traceback", "")),
            elapsed_s=float(record.get("elapsed_s", 0.0) or 0.0),
        )
        if self.attempts[index] >= self.max_attempts:
            self._record_failure(index, failure)
            return {"op": "ok", "final": True}
        retry_in = self.backoff_s * 2 ** (self.attempts[index] - 1)
        heapq.heappush(self.delayed, (now + retry_in, index))
        self.retries += 1
        return {"op": "ok", "final": False, "retry_in_s": retry_in}

    # -- status ------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able progress view (the ``coordinator-state.json`` body)."""
        now = self._clock()
        return {
            "phase": "done" if self.is_done else "running",
            "cells": len(self.cells),
            "done": len(self.done),
            "failed": len(self.failed),
            "ready": len(self.ready),
            "delayed": len(self.delayed),
            "leased": sum(len(l.indices) for l in self.leases.values()),
            "store_hits": self.store_hits,
            "dispatched": len(self.dispatched),
            "reclaims": self.reclaims,
            "retries": self.retries,
            "quarantined": self.store.quarantined,
            "leases": [
                {
                    "lease": lease.lease_id,
                    "worker": lease.worker,
                    "cells": sorted(lease.indices),
                    "expires_in_s": round(lease.deadline - now, 3),
                }
                for lease in self.leases.values()
            ],
            "workers": {
                name: {
                    "completed": stats.completed,
                    "failed": stats.failed,
                    "idle_s": round(now - stats.last_seen, 3),
                }
                for name, stats in sorted(self.workers.items())
            },
        }


# -- the socket server -----------------------------------------------------


class Coordinator:
    """Threaded socket server around :class:`CoordinatorState`.

    Starts listening on construction (``port=0`` picks an ephemeral
    port; read :attr:`address`).  One daemon thread accepts
    connections, one handler thread serves each worker, and a ticker
    thread reclaims overdue leases and keeps the cluster-status file
    fresh.  ``wait()`` blocks until every cell is resolved;
    ``result()`` then merges the shards and assembles the
    :class:`~repro.campaign.runner.CampaignResult`.

    On construction the coordinator *recovers first*: existing worker
    shards are merged into the main store, so restarting over an
    interrupted campaign re-dispatches only genuinely unfinished cells.
    """

    def __init__(
        self,
        grid: ParameterGrid | Sequence[CampaignCell],
        store_dir: str | os.PathLike,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_s: float = DEFAULT_LEASE_S,
        batch: int = DEFAULT_BATCH,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_s: float = DEFAULT_BACKOFF_S,
        resume: bool = True,
        retry_failed: bool = False,
        chunk_frames: int | None = None,
        window_s: float = 1.0,
        timeout_s: float | None = None,
        salt: str | None = None,
    ) -> None:
        cells = _expand_cells(grid)
        self.store_dir = Path(store_dir)
        self.store = CampaignStore(self.store_dir, salt=salt)
        self.recovery = merge_shards(self.store, shard_roots(self.store_dir))
        options = {
            "chunk_frames": chunk_frames or CELL_CHUNK_FRAMES,
            "window_s": window_s,
            "keep_reports": False,
            "timeout_s": timeout_s,
        }
        self.state = CoordinatorState(
            cells,
            self.store,
            lease_s=lease_s,
            batch=batch,
            max_attempts=max_attempts,
            backoff_s=backoff_s,
            resume=resume,
            retry_failed=retry_failed,
            options=options,
        )
        self._lock = threading.Lock()
        self._finished = threading.Event()
        self._stop = threading.Event()
        self._start = time.perf_counter()
        self._conn_ids = itertools.count(1)
        self._result: CampaignResult | None = None

        self._listener = socket.create_server((host, port))
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        if self.state.is_done:
            self._finished.set()
        self._write_state_file()
        self._threads = [
            threading.Thread(target=self._accept_loop, daemon=True),
            threading.Thread(target=self._tick_loop, daemon=True),
        ]
        for thread in self._threads:
            thread.start()

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop serving (does not delete any state — restartable)."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass

    def wait(self, timeout: float | None = None) -> bool:
        """Block until every cell is resolved; True if it is."""
        return self._finished.wait(timeout)

    @property
    def finished(self) -> bool:
        return self._finished.is_set()

    # -- serving -----------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        """One worker's session: framed JSON request → response, until
        EOF.  A dropped connection forfeits the worker's leases
        immediately (no need to wait out the deadline)."""
        worker = f"conn-{next(self._conn_ids)}"
        clean = False
        try:
            while True:
                message = recv_message(conn)
                if message is None:
                    clean = not self._worker_owns_leases(worker)
                    return
                if message.get("op") == "bye":
                    clean = True
                    return
                if message.get("op") == "hello":
                    worker = self._register(message, worker)
                reply = self._handle(worker, message)
                send_message(conn, reply)
        except (ConnectionError, FrameError, OSError, ValueError):
            pass
        finally:
            if not clean:
                with self._lock:
                    self.state.drop_worker(worker)
                    self._after_mutation()
            try:
                conn.close()
            except OSError:
                pass

    def _worker_owns_leases(self, worker: str) -> bool:
        with self._lock:
            return any(l.worker == worker for l in self.state.leases.values())

    def _register(self, message: Mapping, fallback: str) -> str:
        name = str(message.get("worker") or fallback)
        # Connection-unique: two workers claiming one name must not be
        # able to reclaim each other's leases on disconnect.
        return f"{name}#{next(self._conn_ids)}"

    def _handle(self, worker: str, message: Mapping) -> dict:
        op = message.get("op")
        with self._lock:
            if op == "hello":
                shard = self.store_dir / "shards" / worker.replace("#", "-")
                reply = {
                    "op": "welcome",
                    "worker": worker,
                    "salt": self.store.salt,
                    "lease_s": self.state.lease_s,
                    "options": self.state.options,
                    "shard": str(message.get("shard") or shard),
                }
            elif op == "lease":
                reply = self.state.lease(worker)
            elif op == "heartbeat":
                reply = self.state.heartbeat(worker, str(message.get("lease")))
            elif op == "complete":
                reply = self.state.complete(
                    worker,
                    str(message.get("lease")),
                    int(message.get("index", -1)),
                    str(message.get("key", "")),
                    message.get("record") or {},
                )
            elif op == "fail":
                reply = self.state.fail(
                    worker,
                    str(message.get("lease")),
                    int(message.get("index", -1)),
                    str(message.get("key", "")),
                    message.get("record") or {},
                )
            elif op == "status":
                reply = {"op": "status", "state": self.state.snapshot()}
            else:
                reply = {"op": "error", "error": f"unknown op {op!r}"}
            self._after_mutation()
        return reply

    def _after_mutation(self) -> None:
        """Caller holds the lock."""
        if self.state.is_done and not self._finished.is_set():
            self._finished.set()
            self._write_state_file_locked()

    def _tick_loop(self) -> None:
        interval = max(0.05, min(1.0, self.state.lease_s / 4.0))
        while not self._stop.wait(interval):
            with self._lock:
                self.state.reclaim()
                self._after_mutation()
                self._write_state_file_locked()
            if self._finished.is_set():
                return

    # -- status file -------------------------------------------------------

    def _write_state_file(self) -> None:
        with self._lock:
            self._write_state_file_locked()

    def _write_state_file_locked(self) -> None:
        snapshot = self.state.snapshot()
        snapshot["address"] = list(self.address)
        snapshot["updated"] = time.time()  # repro: lint-ok[det-wall-clock] operator-facing staleness stamp, never feeds results
        snapshot["elapsed_s"] = round(time.perf_counter() - self._start, 3)
        try:
            CampaignStore._atomic_write_json(
                self.store_dir / STATE_FILENAME, snapshot
            )
        except OSError:
            pass  # status is best-effort; the store itself is the truth

    # -- result ------------------------------------------------------------

    def result(self) -> CampaignResult:
        """Assemble the final result (campaign must be finished).

        Merges every shard into the main store first — the merge is
        also the *verification* pass: a shard record disagreeing with
        the main store raises
        :class:`~repro.campaign.merge.MergeConflictError` instead of
        returning silently wrong numbers.
        """
        if not self._finished.is_set():
            raise DispatchError(
                f"campaign not finished: {self.state.outstanding} cells open"
            )
        if self._result is not None:
            return self._result
        with self._lock:
            merge_shards(self.store, shard_roots(self.store_dir))
            results: list[CellResult] = []
            failures: list[FailedCell] = []
            for index, cell in enumerate(self.state.cells):
                key = self.state.keys[index]
                hit = self.store.get(cell, key=key)
                if hit is not None:
                    results.append(hit)
                    continue
                failure = self.store.get_failure(cell, key=key)
                if failure is None:
                    failure = self.state.failed.get(index) or FailedCell(
                        cell=cell,
                        error_type="MissingRecord",
                        error="cell resolved but its store record is gone",
                        traceback="",
                        elapsed_s=0.0,
                    )
                failures.append(failure)
            self._result = CampaignResult(
                cells=results,
                workers=max(len(self.state.workers), 1),
                elapsed_s=time.perf_counter() - self._start,
                failed=failures,
                store_hits=self.state.store_hits,
                dispatched=len(self.state.dispatched),
                store_dir=os.fspath(self.store_dir),
                quarantined=self.store.quarantined + self.recovery.quarantined,
            )
            self._write_state_file_locked()
        return self._result


# -- one-call local cluster ------------------------------------------------


def _worker_env() -> dict[str, str]:
    """Subprocess env whose ``PYTHONPATH`` can import this ``repro``."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else package_root + os.pathsep + existing
    )
    return env


def run_distributed_campaign(
    grid: ParameterGrid | Sequence[CampaignCell],
    *,
    workers: int | None = None,
    chunk_frames: int | None = None,
    window_s: float = 1.0,
    keep_reports: bool = False,
    store_dir: str | os.PathLike | None = None,
    resume: bool = True,
    retry_failed: bool = False,
    timeout_s: float | None = None,
    lease_s: float = DEFAULT_LEASE_S,
    batch: int = DEFAULT_BATCH,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    backoff_s: float = DEFAULT_BACKOFF_S,
    respawn_budget: int | None = None,
) -> CampaignResult:
    """Run a grid on a coordinator + N local worker *subprocesses*.

    The one-call form behind ``run_campaign(dispatch="distributed")``:
    boots a :class:`Coordinator` on an ephemeral loopback port, spawns
    ``workers`` ``repro campaign-worker`` processes against it, and
    survives them dying — a killed worker's leases are reclaimed and,
    while unfinished work remains, a replacement is spawned (up to
    ``respawn_budget``, default ``workers``).  Results are identical to
    a serial ``run_campaign`` modulo per-cell wall-clock.

    ``store_dir=None`` uses a private temporary store (the robustness
    machinery needs one); pass a real directory to keep the records.
    """
    if keep_reports:
        raise ValueError(
            "distributed dispatch does not support keep_reports=True — "
            "full reports do not travel the wire; use the store's "
            "summary records or local dispatch"
        )
    n_workers = workers if workers is not None else (os.cpu_count() or 1)
    if n_workers < 1:
        raise ValueError("workers must be >= 1")
    budget = respawn_budget if respawn_budget is not None else n_workers

    temp: tempfile.TemporaryDirectory | None = None
    if store_dir is None:
        temp = tempfile.TemporaryDirectory(prefix="repro-campaign-")
        store_dir = temp.name
    try:
        with Coordinator(
            grid,
            store_dir,
            lease_s=lease_s,
            batch=batch,
            max_attempts=max_attempts,
            backoff_s=backoff_s,
            resume=resume,
            retry_failed=retry_failed,
            chunk_frames=chunk_frames,
            window_s=window_s,
            timeout_s=timeout_s,
        ) as coordinator:
            if coordinator.finished:  # everything answered from the store
                return coordinator.result()
            host, port = coordinator.address
            env = _worker_env()

            def spawn(index: int) -> subprocess.Popen:
                return subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "campaign-worker",
                        "--connect",
                        f"{host}:{port}",
                        "--id",
                        f"local-{index}",
                    ],
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )

            procs = [spawn(i) for i in range(n_workers)]
            spawned = n_workers
            try:
                while not coordinator.wait(timeout=0.2):
                    procs = [p for p in procs if p.poll() is None]
                    missing = n_workers - len(procs)
                    while missing > 0 and budget > 0:
                        procs.append(spawn(spawned))
                        spawned += 1
                        missing -= 1
                        budget -= 1
                    if not procs:
                        raise DispatchError(
                            "every campaign worker exited with "
                            f"{coordinator.state.outstanding} cells "
                            "unresolved and the respawn budget spent"
                        )
                return coordinator.result()
            finally:
                for proc in procs:
                    if proc.poll() is None:
                        proc.terminate()
                for proc in procs:
                    try:
                        proc.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait(timeout=5.0)
    finally:
        if temp is not None:
            temp.cleanup()
