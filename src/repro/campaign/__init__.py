"""Campaign subsystem: parameter-grid sweeps across a process pool.

The paper's results are *comparisons* — conditions against conditions.
This package runs those comparisons at scale: a
:class:`~repro.campaign.grid.ParameterGrid` expands scenario × axes ×
seeds into cells, :func:`~repro.campaign.runner.run_campaign` executes
the cells across worker processes (each one streaming its live
simulated capture straight through the single-pass analysis pipeline,
bounded memory end to end), and :mod:`repro.campaign.summary`
aggregates the per-cell congestion findings into campaign-level tables,
delivery-vs-offered-load curves and utilization-knee estimates.

Campaigns are crash-safe and incremental: pass ``store_dir=`` and every
finished cell is persisted immediately to a content-addressed
:class:`~repro.campaign.store.CampaignStore` keyed by (scenario,
resolved config, seed, code-version salt).  Re-invoking the same
campaign performs zero simulation work; extending the grid
(:meth:`~repro.campaign.grid.ParameterGrid.extend`) recomputes only the
new cells; per-cell exceptions become
:class:`~repro.campaign.store.FailedCell` records instead of sinking
the run.

    from repro.campaign import ParameterGrid, run_campaign, render_campaign

    grid = ParameterGrid(
        "ramp", axes={"n_stations": [10, 20, 40, 60]}, seeds=2
    )
    result = run_campaign(grid, workers=4)
    print(render_campaign(result))

CLI equivalent: ``python -m repro.tools campaign --scenario ramp
--vary n_stations=10,20,40,60 --seeds 2 --workers 4``.

Beyond one process pool, ``run_campaign(dispatch="distributed")`` (or a
hand-run ``repro campaign-coordinator`` plus ``repro campaign-worker``
processes) executes the same grid through a fault-tolerant lease-based
protocol (:mod:`repro.campaign.dispatch`): workers lease cell batches
over a socket, write results into per-worker store shards, and dead or
stalled workers are survived via lease reclaim, bounded retries and a
loss-free shard merge (:mod:`repro.campaign.merge`).
"""

from .dispatch import Coordinator, DispatchError, run_distributed_campaign
from .grid import CampaignCell, ParameterGrid
from .merge import MergeConflictError, MergeReport, merge_shards, shard_roots
from .runner import CampaignResult, CellResult, run_campaign
from .store import CampaignStore, FailedCell, StoreStatus, cell_key, code_version_salt
from .worker import run_worker
from .summary import (
    campaign_table,
    delivery_curve,
    group_over_seeds,
    load_knee,
    render_campaign,
    utilization_knee,
)

__all__ = [
    "CampaignCell",
    "CampaignResult",
    "CampaignStore",
    "CellResult",
    "Coordinator",
    "DispatchError",
    "FailedCell",
    "MergeConflictError",
    "MergeReport",
    "ParameterGrid",
    "StoreStatus",
    "campaign_table",
    "cell_key",
    "code_version_salt",
    "delivery_curve",
    "group_over_seeds",
    "load_knee",
    "merge_shards",
    "render_campaign",
    "run_campaign",
    "run_distributed_campaign",
    "run_worker",
    "shard_roots",
    "utilization_knee",
]
