"""Campaign aggregation: summary tables, curves and knee estimates.

The paper's comparative figures come from exactly this kind of
aggregation — delivery ratio against offered load (Fig 6's rise and
collapse), the utilization knee where adding load stops adding
throughput (Figs 5-8).  These helpers reduce a
:class:`~repro.campaign.runner.CampaignResult` to those shapes and
render an inspectable text artifact.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from ..viz import line_chart, table
from .runner import CampaignResult, CellResult

__all__ = [
    "campaign_table",
    "group_over_seeds",
    "delivery_curve",
    "load_knee",
    "utilization_knee",
    "render_campaign",
]


def _row_columns() -> tuple[str, ...]:
    """Columns of ``CellResult.as_row``, derived from a zeroed result so
    placeholder rows (a campaign whose every cell failed) can never
    drift from the real table shape."""
    from .grid import CampaignCell

    dummy = CellResult(
        cell=CampaignCell("-"),
        n_frames=0,
        frames_transmitted=0,
        offered_packets=0,
        duration_s=0.0,
        delivery_ratio=0.0,
        capture_ratio=0.0,
        mode_utilization=0.0,
        peak_throughput_mbps=0.0,
        peak_throughput_utilization=0.0,
        high_congestion_fraction=0.0,
        unrecorded_percent=0.0,
        elapsed_s=0.0,
    )
    return tuple(dummy.as_row())


def campaign_table(result: CampaignResult, title: str = "Campaign cells") -> str:
    """Fixed-width per-cell summary table.

    Partially-failed campaigns (store-backed or not) keep their failed
    cells visible: each one gets a row with a ``failed`` column naming
    the exception, numeric columns dashed out.  Campaigns with no
    failures render exactly as before (no ``failed`` column).
    """
    rows = [cell.as_row() for cell in result.cells]
    if result.failed:
        columns = list(rows[0]) if rows else list(_row_columns())
        for row in rows:
            row["failed"] = ""
        for failure in result.failed:
            row: dict[str, object] = {key: "-" for key in columns}
            row["cell"] = failure.name
            message = failure.error.splitlines()[0] if failure.error else ""
            row["failed"] = f"{failure.error_type}: {message}"
            rows.append(row)
    return table(rows, title=title)


def group_over_seeds(
    cells: Sequence[CellResult],
) -> list[list[CellResult]]:
    """Group cells that differ only by seed, first-seen order."""
    groups: dict[tuple, list[CellResult]] = defaultdict(list)
    for cell in cells:
        groups[(cell.cell.scenario, cell.cell.params)].append(cell)
    return list(groups.values())


def delivery_curve(
    result: CampaignResult, scenario: str | None = None
) -> list[tuple[float, float]]:
    """(offered_pps, mean delivery ratio) points, sorted by offered load.

    Seeds of the same parameter point are averaged; with multiple
    scenarios pass ``scenario`` to select one.
    """
    cells = [
        c
        for c in result.cells
        if scenario is None or c.cell.scenario == scenario
    ]
    points = []
    for group in group_over_seeds(cells):
        points.append(
            (
                float(np.mean([c.offered_pps for c in group])),
                float(np.mean([c.delivery_ratio for c in group])),
            )
        )
    return sorted(points)


def load_knee(
    result: CampaignResult,
    scenario: str | None = None,
    min_delivery: float = 0.9,
) -> float | None:
    """Offered load (pps) where mean delivery ratio first drops below
    ``min_delivery`` — the saturation knee of the delivery-vs-load
    curve.  ``None`` if the network holds up across the whole sweep.
    """
    for offered_pps, delivery in delivery_curve(result, scenario):
        if delivery < min_delivery:
            return offered_pps
    return None


def utilization_knee(
    result: CampaignResult, scenario: str | None = None
) -> float | None:
    """Mean channel utilization (%) at which throughput peaked — the
    paper's Fig 6 knee, averaged over the scenario's non-empty cells.
    """
    values = [
        c.peak_throughput_utilization
        for c in result.cells
        if (scenario is None or c.cell.scenario == scenario) and c.n_frames
    ]
    return float(np.mean(values)) if values else None


def render_campaign(result: CampaignResult, title: str = "Campaign") -> str:
    """Full text artifact: header, cell table, per-scenario knees and
    delivery-vs-offered-load curves.

    Store-backed or partially-failed campaigns get an extended header
    breaking the cells down into store hits / freshly run / failed, and
    failed cells are listed (name + error) after the table so a partial
    campaign can never be mistaken for a complete one.
    """
    header = f"{title}: {result.n_total} cells"
    if result.store_dir is not None or result.failed:
        header += (
            f" ({result.store_hits} from store, {result.dispatched} run, "
            f"{len(result.failed)} failed)"
        )
    if result.quarantined:
        header += f" [{result.quarantined} corrupt record(s) quarantined]"
    header += f", {result.workers} worker(s), {result.elapsed_s:.1f}s wall"
    lines = [
        header,
        "",
        campaign_table(result).rstrip(),
    ]
    if result.failed:
        lines.append("")
        lines.append(f"Failed cells ({len(result.failed)}):")
        for failure in result.failed:
            message = failure.error.splitlines()[0] if failure.error else ""
            lines.append(f"  {failure.name}: {failure.error_type}: {message}")
        if result.store_dir is not None:
            lines.append(
                f"  (tracebacks stored under {result.store_dir}; "
                "re-run with retry_failed/--retry-failed to retry)"
            )
    for scenario in result.scenarios():
        lines.append("")
        util_knee = utilization_knee(result, scenario)
        knee_pps = load_knee(result, scenario)
        lines.append(
            f"[{scenario}] utilization knee: "
            + (f"{util_knee:.1f}%" if util_knee is not None else "n/a")
            + "  |  delivery<90% beyond: "
            + (f"{knee_pps:.1f} pps offered" if knee_pps is not None else "never")
        )
        curve = delivery_curve(result, scenario)
        if len(curve) >= 2:
            xs = [p[0] for p in curve]
            ys = [p[1] for p in curve]
            lines.append(
                line_chart(
                    xs,
                    ys,
                    title=f"{scenario}: delivery ratio vs offered load (pps)",
                    x_label="offered pps",
                    y_label="delivery",
                ).rstrip()
            )
    return "\n".join(lines) + "\n"
