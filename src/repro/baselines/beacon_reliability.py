"""Beacon-reliability congestion metric (Jardosh et al., E-WIND 2005).

The authors' own prior work (the paper's reference [10]) estimated
congestion from the *reliability of beacon reception*: APs transmit
beacons on a fixed 100 ms schedule, so the fraction of expected beacons
a sniffer actually records in an interval measures how often the
channel (or the capture path) swallowed them.  This paper supersedes
that metric with channel busy-time; we implement the baseline so the
two congestion estimators can be compared on the same traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import count_per_interval
from ..frames import FrameType, NodeRoster, Trace

__all__ = ["BeaconReliability", "beacon_reliability_series"]

#: Expected beacons per AP per second at the standard 100 ms interval.
_EXPECTED_PER_AP_PER_S = 10.0


@dataclass(frozen=True)
class BeaconReliability:
    """Per-second beacon-reliability estimate for one trace.

    ``reliability[i]`` is received/expected beacons in second ``i``,
    clipped to [0, 1].  Low reliability indicates congestion (lost
    beacons) by the E-WIND argument.
    """

    reliability: np.ndarray
    expected_per_second: float

    def __len__(self) -> int:
        return len(self.reliability)

    def congestion_estimate(self) -> np.ndarray:
        """1 - reliability: the metric's notion of congestion level."""
        return 1.0 - self.reliability

    def correlation_with(self, utilization_percent: np.ndarray) -> float:
        """Pearson correlation of (1 - reliability) with utilization.

        The E-WIND claim is that the two move together; the paper's
        position is that busy-time is the more direct measure.
        """
        congestion = self.congestion_estimate()
        n = min(len(congestion), len(utilization_percent))
        if n < 2:
            return float("nan")
        a, b = congestion[:n], np.asarray(utilization_percent)[:n]
        if np.std(a) == 0 or np.std(b) == 0:
            return float("nan")
        return float(np.corrcoef(a, b)[0, 1])


def beacon_reliability_series(
    trace: Trace,
    roster: NodeRoster,
    n_seconds: int | None = None,
    start_us: int | None = None,
) -> BeaconReliability:
    """Compute per-second beacon reliability from a captured trace.

    Expected beacon count is 10 per second per AP *audible in the
    trace* (APs whose beacons never appear are assumed out of range,
    matching how the E-WIND paper scoped its reliability metric).
    """
    beacons = trace.only_type(FrameType.BEACON)
    audible_aps = {
        int(ap) for ap in np.unique(beacons.src) if roster.get(int(ap)) is not None
    }
    expected = _EXPECTED_PER_AP_PER_S * max(len(audible_aps), 1)
    counts = count_per_interval(
        beacons,
        interval_us=1_000_000,
        start_us=start_us if start_us is not None else (
            int(trace.time_us.min()) if len(trace) else 0
        ),
        n_intervals=n_seconds,
    ).astype(np.float64)
    reliability = np.clip(counts / expected, 0.0, 1.0)
    return BeaconReliability(
        reliability=reliability, expected_per_second=expected
    )
