"""Theoretical maximum throughput of 802.11b (Jun et al., NCA 2003).

The paper's reference [11] and the source of its Table 2 delay values.
TMT is the data throughput of a single perfect sender/receiver pair:
no collisions, no retries, zero backoff — the channel alternates
DIFS + DATA + SIFS + ACK exchanges (plus RTS/CTS when enabled).  The
paper uses the 11 Mbps TMT as the ceiling its Figure 6 peak (4.9 Mbps)
approaches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.timing import DOT11B_TIMING, TimingParameters

__all__ = ["TmtPoint", "theoretical_maximum_throughput", "tmt_table"]


@dataclass(frozen=True)
class TmtPoint:
    """TMT for one (payload size, rate, RTS/CTS) configuration."""

    size_bytes: int
    rate_mbps: float
    rts_cts: bool
    cycle_us: float
    throughput_mbps: float


def theoretical_maximum_throughput(
    size_bytes: int,
    rate_mbps: float,
    rts_cts: bool = False,
    timing: TimingParameters = DOT11B_TIMING,
    mean_backoff_slots: float = 15.5,
) -> TmtPoint:
    """TMT for a payload of ``size_bytes`` at ``rate_mbps``.

    ``mean_backoff_slots`` charges the average post-DIFS backoff to each
    cycle; Jun et al. use CWmin/2 = 15.5 slots, which reproduces their
    published 6.06 Mbps for a 1500-byte payload at 11 Mbps.  Pass 0 for
    the paper's D_BO = 0 utilization accounting instead.
    """
    if size_bytes <= 0:
        raise ValueError("payload size must be positive")
    cycle = (
        timing.difs_us
        + mean_backoff_slots * timing.slot_us
        + timing.data_frame_duration_us(size_bytes, rate_mbps)
        + timing.sifs_us
        + timing.ack_us
    )
    if rts_cts:
        cycle += timing.rts_us + timing.sifs_us + timing.cts_us + timing.sifs_us
    return TmtPoint(
        size_bytes=size_bytes,
        rate_mbps=rate_mbps,
        rts_cts=rts_cts,
        cycle_us=cycle,
        throughput_mbps=8.0 * size_bytes / cycle,
    )


def tmt_table(
    sizes: tuple[int, ...] = (400, 800, 1200, 1500),
    rates: tuple[float, ...] = (1.0, 2.0, 5.5, 11.0),
    rts_cts: bool = False,
    timing: TimingParameters = DOT11B_TIMING,
) -> list[TmtPoint]:
    """TMT over a grid of sizes and rates (Jun et al.'s headline table)."""
    return [
        theoretical_maximum_throughput(size, rate, rts_cts, timing)
        for rate in rates
        for size in sizes
    ]
