"""Analytical multirate DCF model (after Cantieni et al., Comput. Commun. 2005).

The paper's reference [4]: a Bianchi-style fixed-point analysis of
802.11b under load, extended to stations transmitting at different
rates and frame sizes.  The paper cites its prediction that *small
frames sent at the highest rate have the highest probability of
successful transmission under saturation* and confirms it empirically
in §6.3; we implement the model to make that cross-check runnable.

Components:

* Bianchi's fixed point for the per-slot transmission probability tau
  and conditional collision probability p of n saturated stations.
* Heterogeneous frame classes (size, rate) contributing their own
  channel occupancy, so slow/large classes stretch the renewal cycle.
* A frame-error term from the PHY model, which is what differentiates
  success probabilities across (size, rate) classes beyond collisions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.timing import DOT11B_TIMING, TimingParameters
from ..sim.phy import PhyModel

__all__ = ["FrameClass", "DcfModelResult", "bianchi_fixed_point", "multirate_dcf_model"]


@dataclass(frozen=True)
class FrameClass:
    """A (size, rate) traffic class with a station population."""

    size_bytes: int
    rate_mbps: float
    n_stations: int

    @property
    def name(self) -> str:
        return f"{self.size_bytes}B@{self.rate_mbps:g}"


@dataclass(frozen=True)
class DcfModelResult:
    """Fixed-point outputs of the multirate saturation model."""

    tau: float                       # per-slot transmit probability
    collision_probability: float     # p: attempt collides
    success_probability: dict[str, float]   # per class: attempt succeeds
    throughput_mbps: dict[str, float]        # per class totals
    total_throughput_mbps: float


def bianchi_fixed_point(
    n_stations: int,
    cw_min: int = 31,
    cw_max: int = 255,
    tolerance: float = 1e-10,
    max_iterations: int = 10_000,
) -> tuple[float, float]:
    """Solve Bianchi's (tau, p) fixed point for n saturated stations.

    ``cw_min``/``cw_max`` follow the paper's MaxBO range (§3).  Returns
    ``(tau, p)``.
    """
    if n_stations < 1:
        raise ValueError("need at least one station")
    if n_stations == 1:
        return 2.0 / (cw_min + 2.0), 0.0
    # m: number of CW doublings available.
    m = 0
    w = cw_min
    while w < cw_max:
        w = min((w + 1) * 2 - 1, cw_max)
        m += 1
    tau = 0.1
    for _ in range(max_iterations):
        p = 1.0 - (1.0 - tau) ** (n_stations - 1)
        w0 = cw_min + 1
        if p >= 1.0:
            p = 1.0 - 1e-12
        denom = (1 - 2 * p) * (w0 + 1) + p * w0 * (1 - (2 * p) ** m)
        new_tau = 2.0 * (1 - 2 * p) / denom
        new_tau = min(max(new_tau, 1e-9), 1.0)
        if abs(new_tau - tau) < tolerance:
            tau = new_tau
            break
        tau = 0.5 * tau + 0.5 * new_tau  # damped iteration
    p = 1.0 - (1.0 - tau) ** (n_stations - 1)
    return tau, p


def multirate_dcf_model(
    classes: tuple[FrameClass, ...],
    snr_db: float = 15.0,
    timing: TimingParameters = DOT11B_TIMING,
    phy: PhyModel | None = None,
) -> DcfModelResult:
    """Saturation throughput and per-class success probability.

    All stations share one collision environment (same tau); a class's
    attempt succeeds when it neither collides nor suffers a frame error
    at the operating SNR.  Renewal-cycle accounting weights each class's
    occupancy by its population share, so slow classes stretch the
    cycle exactly as in the Heusse anomaly.
    """
    if not classes:
        raise ValueError("need at least one class")
    phy = phy or PhyModel()
    n_total = sum(c.n_stations for c in classes)
    tau, p = bianchi_fixed_point(n_total, timing.cw_min, timing.cw_max)

    # Per-slot event probabilities.
    p_tr = 1.0 - (1.0 - tau) ** n_total            # some transmission
    p_one = n_total * tau * (1.0 - tau) ** (n_total - 1)
    p_success_slot = p_one / p_tr if p_tr > 0 else 0.0

    # Expected busy time of a transmission slot: population-weighted.
    def exchange_us(c: FrameClass) -> float:
        return (
            timing.difs_us
            + timing.data_frame_duration_us(c.size_bytes, c.rate_mbps)
            + timing.sifs_us
            + timing.ack_us
        )

    weights = [c.n_stations / n_total for c in classes]
    mean_exchange = sum(w * exchange_us(c) for w, c in zip(weights, classes))
    slot = timing.slot_us
    mean_slot_us = (
        (1 - p_tr) * slot
        + p_tr * p_success_slot * mean_exchange
        + p_tr * (1 - p_success_slot) * mean_exchange  # collision burns a cycle
    )

    success_probability: dict[str, float] = {}
    throughput: dict[str, float] = {}
    for c, w in zip(classes, weights):
        per = 1.0 - phy.frame_success_probability(snr_db, c.size_bytes, c.rate_mbps)
        # Collision exposure scales with on-air duration (the vulnerable
        # window of an unslotted channel): this is what gives short
        # frames at fast rates their success-probability advantage —
        # the Cantieni et al. prediction the paper confirms in §6.3.
        exposure = exchange_us(c) / mean_exchange if mean_exchange > 0 else 1.0
        p_coll = 1.0 - (1.0 - p) ** exposure
        p_ok = (1.0 - p_coll) * (1.0 - per)
        success_probability[c.name] = p_ok
        # Class throughput: share of successful slots x payload bits.
        class_success_rate = (
            p_tr * p_success_slot * w * (1.0 - per) / mean_slot_us
        )  # successes per microsecond
        throughput[c.name] = class_success_rate * 8.0 * c.size_bytes

    return DcfModelResult(
        tau=tau,
        collision_probability=p,
        success_probability=success_probability,
        throughput_mbps=throughput,
        total_throughput_mbps=sum(throughput.values()),
    )
