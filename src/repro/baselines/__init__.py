"""Analytical baselines the paper cites and cross-checks against.

* Jun et al. theoretical maximum throughput [11] — Table 2's source and
  the Figure 6 ceiling.
* Heusse et al. multirate performance anomaly [8] — the collapse
  mechanism.
* Cantieni et al. finite-load multirate model [4] — predicts the S-11
  success-probability advantage the paper confirms in §6.3.
* Jardosh et al. beacon reliability [10] — the authors' prior
  congestion metric, superseded by channel busy-time.
"""

from .beacon_reliability import BeaconReliability, beacon_reliability_series
from .cantieni import DcfModelResult, FrameClass, bianchi_fixed_point, multirate_dcf_model
from .heusse import AnomalyResult, anomaly_penalty, anomaly_throughput
from .jun_throughput import TmtPoint, theoretical_maximum_throughput, tmt_table

__all__ = [
    "AnomalyResult",
    "BeaconReliability",
    "DcfModelResult",
    "FrameClass",
    "TmtPoint",
    "anomaly_penalty",
    "anomaly_throughput",
    "beacon_reliability_series",
    "bianchi_fixed_point",
    "multirate_dcf_model",
    "theoretical_maximum_throughput",
    "tmt_table",
]
