"""The 802.11b performance anomaly (Heusse et al., INFOCOM 2003).

The paper's reference [8] and the mechanism behind its Figure 6
collapse: because DCF gives every station an equal long-run channel
*access* probability, one station transmitting at 1 Mbps stretches
every cycle it wins, dragging the throughput of all fast stations down
to roughly the slow station's level.

This module computes the anomaly analytically for a population of
stations at mixed rates under saturation: every station wins the
channel equally often, each win costs that station's full exchange
time, so per-station throughput is

    x = payload_bits / sum_over_stations(cycle_time_of_station)

(the Heusse et al. "useful throughput" formula with the collision terms
dropped; collisions shift the absolute level, not the anomaly itself).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.timing import DOT11B_TIMING, TimingParameters

__all__ = ["AnomalyResult", "anomaly_throughput", "anomaly_penalty"]


@dataclass(frozen=True)
class AnomalyResult:
    """Saturation throughput of a mixed-rate cell."""

    per_station_mbps: float        # every station gets this much goodput
    total_mbps: float
    cycle_times_us: tuple[float, ...]

    @property
    def n_stations(self) -> int:
        return len(self.cycle_times_us)


def _cycle_us(
    size_bytes: int, rate_mbps: float, timing: TimingParameters
) -> float:
    return (
        timing.difs_us
        + timing.data_frame_duration_us(size_bytes, rate_mbps)
        + timing.sifs_us
        + timing.ack_us
    )


def anomaly_throughput(
    station_rates_mbps: tuple[float, ...],
    size_bytes: int = 1500,
    timing: TimingParameters = DOT11B_TIMING,
) -> AnomalyResult:
    """Per-station saturation throughput of a mixed-rate cell.

    >>> fast_only = anomaly_throughput((11.0, 11.0, 11.0))
    >>> mixed = anomaly_throughput((11.0, 11.0, 1.0))
    >>> mixed.per_station_mbps < fast_only.per_station_mbps / 2
    True
    """
    if not station_rates_mbps:
        raise ValueError("need at least one station")
    cycles = tuple(
        _cycle_us(size_bytes, rate, timing) for rate in station_rates_mbps
    )
    # Round-robin in expectation: one frame per station per "super-cycle".
    super_cycle = sum(cycles)
    per_station = 8.0 * size_bytes / super_cycle
    return AnomalyResult(
        per_station_mbps=per_station,
        total_mbps=per_station * len(cycles),
        cycle_times_us=cycles,
    )


def anomaly_penalty(
    n_fast: int,
    n_slow: int,
    fast_rate_mbps: float = 11.0,
    slow_rate_mbps: float = 1.0,
    size_bytes: int = 1500,
    timing: TimingParameters = DOT11B_TIMING,
) -> float:
    """Throughput penalty on fast stations from ``n_slow`` slow peers.

    Returns fast-station throughput *with* the slow stations divided by
    the throughput they would enjoy in an all-fast cell of the same
    population (1.0 = no penalty; the paper's anomaly drives this far
    below 1).
    """
    if n_fast <= 0:
        raise ValueError("need at least one fast station")
    mixed = anomaly_throughput(
        (fast_rate_mbps,) * n_fast + (slow_rate_mbps,) * n_slow,
        size_bytes,
        timing,
    )
    uniform = anomaly_throughput(
        (fast_rate_mbps,) * (n_fast + n_slow), size_bytes, timing
    )
    return mixed.per_station_mbps / uniform.per_station_mbps
