"""Spec execution: route one validated spec to the right subsystem.

This is deliberately a *thin* router: analysis specs call
:func:`repro.pipeline.run_batch`/:func:`~repro.pipeline.run_consumers`,
campaign specs call :func:`repro.campaign.run_campaign` on the grid the
spec describes, and single-scenario specs stream one built scenario
through :func:`repro.pipeline.run_all` — the same calls a hand-written
script would make, with the same defaults, so spec-driven results are
numerically identical to direct use of the underlying layers
(equivalence-tested in ``tests/api/``).
"""

from __future__ import annotations

import time

from .result import ExperimentResult
from .spec import ExperimentSpec

__all__ = ["execute", "grid_for"]


def grid_for(spec: ExperimentSpec):
    """The :class:`~repro.campaign.grid.ParameterGrid` a campaign spec
    describes — exactly the grid a hand-built ``run_campaign`` call
    would use, so store keys and cell names match bit for bit."""
    from ..campaign import ParameterGrid

    return ParameterGrid(
        spec.scenario,
        axes={key: list(values) for key, values in spec.vary},
        seeds=spec.seeds if spec.seeds is not None else 1,
        fixed=dict(spec.params),
        fidelity=spec.fidelity,
    )


def _named_sources(spec: ExperimentSpec) -> list[tuple[str, str]]:
    """Display-name/path pairs for pcap analysis, names de-duplicated.

    Spec entries may be files, directories or glob patterns — expanded
    deterministically (sorted) by :func:`repro.corpus.expand_captures`
    before naming.  A single capture takes the spec's name as its
    report title; repeated paths get ``#2``, ``#3``... suffixes
    because downstream results are keyed by name.
    """
    from ..corpus import CorpusError, expand_captures

    try:
        paths = [str(p) for p in expand_captures(spec.pcaps)]
    except CorpusError as error:
        from .spec import SpecError

        raise SpecError(str(error)) from None
    sources: list[tuple[str, str]] = []
    used: set[str] = set()
    for path in paths:
        base = spec.name or path if len(paths) == 1 else path
        name, suffix = base, 2
        while name in used:
            name = f"{base}#{suffix}"
            suffix += 1
        used.add(name)
        sources.append((name, path))
    return sources


def _subset_item(job):
    """Module-level subset worker (picklable for process pools)."""
    name, path, names, chunk = job
    from ..pipeline import run_consumers

    return name, run_consumers(path, names, name=name, chunk_frames=chunk)


def _execute_corpus(spec: ExperimentSpec) -> ExperimentResult:
    """Corpus analysis specs: refresh, query, plan, dispatch the rest."""
    from ..corpus import analyze_corpus

    start = time.perf_counter()
    analysis = analyze_corpus(
        spec.corpus,
        spec.corpus_where,
        workers=spec.workers,
        chunk_frames=spec.chunk_frames,
    )
    reports = {
        path: analysis.reports[path] for path in sorted(analysis.reports)
    }
    sources = tuple(
        (path, str(analysis.root / path))
        for path in sorted({*analysis.reports, *analysis.failures})
    )
    failures = tuple(
        analysis.failures[path] for path in sorted(analysis.failures)
    )
    return ExperimentResult(
        spec,
        "analysis",
        reports=reports,
        sources=sources,
        failures=failures,
        elapsed_s=time.perf_counter() - start,
    )


def _execute_analysis(spec: ExperimentSpec) -> ExperimentResult:
    from concurrent.futures import ProcessPoolExecutor

    from ..pipeline import (
        DEFAULT_CHUNK_FRAMES,
        resolve_consumer_names,
        run_batch,
    )

    if spec.corpus is not None:
        return _execute_corpus(spec)
    sources = _named_sources(spec)
    chunk = spec.chunk_frames or DEFAULT_CHUNK_FRAMES
    start = time.perf_counter()
    if spec.analyses and tuple(spec.analyses) != ("all",):
        names = resolve_consumer_names(spec.analyses)
        jobs = [(name, path, names, chunk) for name, path in sources]
        # Same worker semantics as the full-report run_batch path:
        # one process per capture, each streaming its pcap from disk.
        if len(jobs) <= 1 or spec.workers == 1:
            metrics = dict(map(_subset_item, jobs))
        else:
            with ProcessPoolExecutor(max_workers=spec.workers) as pool:
                metrics = dict(pool.map(_subset_item, jobs))
        return ExperimentResult(
            spec,
            "analysis",
            metrics=metrics,
            sources=tuple(sources),
            elapsed_s=time.perf_counter() - start,
        )
    from ..pipeline import FailedAnalysis

    results = run_batch(sources, max_workers=spec.workers, chunk_frames=chunk)
    reports = {
        name: value
        for name, value in results.items()
        if not isinstance(value, FailedAnalysis)
    }
    failures = tuple(
        value for value in results.values() if isinstance(value, FailedAnalysis)
    )
    return ExperimentResult(
        spec,
        "analysis",
        reports=reports,
        sources=tuple(sources),
        failures=failures,
        elapsed_s=time.perf_counter() - start,
    )


def _execute_single(spec: ExperimentSpec, keep_trace: bool) -> ExperimentResult:
    from ..pipeline import resolve_consumer_names, run_all, run_consumers
    from ..sim import build_scenario

    name = spec.name or spec.scenario
    start = time.perf_counter()
    built = build_scenario(
        spec.scenario, fidelity=spec.fidelity or "default", **dict(spec.params)
    )
    roster = built.roster
    scenario_result = None
    if keep_trace:
        scenario_result = built.run()
        source = scenario_result.trace
    elif spec.chunk_frames is not None:
        source = built.stream(chunk_frames=spec.chunk_frames)
    else:
        source = built.stream()
    if spec.analyses and tuple(spec.analyses) != ("all",):
        names = resolve_consumer_names(spec.analyses)
        metrics = {name: run_consumers(source, names, name=name, roster=roster)}
        return ExperimentResult(
            spec,
            "single",
            metrics=metrics,
            scenario_result=scenario_result,
            elapsed_s=time.perf_counter() - start,
        )
    report = run_all(source, roster=roster, name=name)
    return ExperimentResult(
        spec,
        "single",
        reports={name: report},
        scenario_result=scenario_result,
        elapsed_s=time.perf_counter() - start,
    )


def _execute_campaign(spec: ExperimentSpec) -> ExperimentResult:
    from ..campaign import run_campaign
    from ..campaign.runner import CELL_CHUNK_FRAMES

    grid = grid_for(spec).validate()
    start = time.perf_counter()
    campaign = run_campaign(
        grid,
        workers=spec.workers,
        chunk_frames=spec.chunk_frames or CELL_CHUNK_FRAMES,
        keep_reports=spec.keep_reports,
        store_dir=spec.store,
        resume=spec.resume,
        retry_failed=spec.retry_failed,
        timeout_s=spec.timeout_s,
        dispatch=spec.dispatch or "local",
    )
    reports = {}
    if spec.keep_reports:
        reports = {
            cell.name: cell.report
            for cell in campaign.cells
            if cell.report is not None
        }
    return ExperimentResult(
        spec,
        "campaign",
        reports=reports,
        campaign=campaign,
        elapsed_s=time.perf_counter() - start,
    )


def execute(spec: ExperimentSpec, *, keep_trace: bool = False) -> ExperimentResult:
    """Validate ``spec`` and run it, returning an :class:`ExperimentResult`.

    ``keep_trace`` (single-scenario mode only) runs the simulation
    buffered and attaches the full :class:`~repro.sim.ScenarioResult`
    so the capture can be written out as a pcap.
    """
    spec.validate()
    mode = spec.mode
    if keep_trace and mode != "single":
        raise ValueError(
            "keep_trace applies to single-scenario experiments "
            f"(this spec is {mode!r})"
        )
    if mode == "analysis":
        return _execute_analysis(spec)
    if mode == "campaign":
        return _execute_campaign(spec)
    return _execute_single(spec, keep_trace)
