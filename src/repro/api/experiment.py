"""The one front door: build and run experiments fluently or from specs.

An :class:`Experiment` wraps an immutable
:class:`~repro.api.spec.ExperimentSpec` and executes it through the
same underlying calls scripts always used (``pipeline.run_all``,
``pipeline.run_batch``, ``campaign.run_campaign``) — one object model
across simulation, analysis and campaigns:

    from repro.api import Experiment

    # A campaign, fluently:
    result = (
        Experiment.scenario("ramp")
        .vary(n_stations=[10, 30, 60])
        .seeds(4)
        .fix(duration_s=12.0)
        .run(workers=4, store_dir="campaign-store")
    )
    print(result.render())

    # The same campaign, declaratively:
    result = Experiment.from_spec("study.toml").run()

    # Analyze captures:
    reports = Experiment.pcaps("day.pcap", "plenary.pcap").run(workers=2).reports

Every fluent method returns a *new* Experiment (they are cheap spec
rewrites), so partial experiments can be shared and forked.  ``.run()``
keyword arguments override the spec's ``[run]`` options for that
invocation only.

>>> exp = Experiment.scenario("ramp").vary(n_stations=[10, 20]).seeds(2)
>>> exp.spec().mode
'campaign'
>>> len(exp.cells())
4
>>> Experiment.from_spec(exp.spec()).spec() == exp.spec()
True
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from .execute import execute, grid_for
from .result import ExperimentResult
from .spec import ExperimentSpec, SpecError

__all__ = ["Experiment", "run_spec"]


class Experiment:
    """Immutable fluent wrapper around an :class:`ExperimentSpec`."""

    __slots__ = ("_spec",)

    def __init__(self, spec: ExperimentSpec | None = None) -> None:
        self._spec = spec if spec is not None else ExperimentSpec()

    # -- constructors ------------------------------------------------------

    @classmethod
    def scenario(cls, name: str, **params) -> "Experiment":
        """Start from a library scenario (``repro.sim.available_scenarios``).

        ``params`` fix scenario parameters for every run/cell, exactly
        like :meth:`fix`.
        """
        spec = ExperimentSpec(scenario=name, params=tuple(params.items()))
        return cls(spec)

    @classmethod
    def pcaps(cls, *paths: str | Path) -> "Experiment":
        """Start from captured pcap file(s) instead of a simulation."""
        if not paths:
            raise SpecError("Experiment.pcaps needs at least one path")
        return cls(ExperimentSpec(pcaps=tuple(str(p) for p in paths)))

    #: Singular alias — ``Experiment.pcap("day.pcap")`` reads naturally.
    pcap = pcaps

    @classmethod
    def corpus(cls, root: str | Path, where: str | None = None) -> "Experiment":
        """Start from an indexed capture corpus (see :mod:`repro.corpus`).

        ``where`` filters the catalog (``"channel=6 frames>10k"``);
        analysis is query-planned — already-stored reports are served
        without dispatch.
        """
        return cls(ExperimentSpec(corpus=str(root), corpus_where=where))

    def where(self, query: str) -> "Experiment":
        """Replace the corpus query (corpus experiments only)."""
        if self._spec.corpus is None:
            raise SpecError(
                "where() applies to corpus experiments — start with "
                "Experiment.corpus(root)"
            )
        return self._replace(corpus_where=query)

    @classmethod
    def from_spec(
        cls, source: "ExperimentSpec | Mapping | str | Path"
    ) -> "Experiment":
        """Load a spec — a path to ``.toml``/``.json``, a parsed
        mapping, or an :class:`ExperimentSpec` (e.g. ``result.spec()``).
        """
        if isinstance(source, ExperimentSpec):
            return cls(source)
        if isinstance(source, Mapping):
            return cls(ExperimentSpec.from_mapping(source))
        return cls(ExperimentSpec.from_file(source))

    # -- fluent refinement -------------------------------------------------

    def _replace(self, **changes) -> "Experiment":
        from dataclasses import replace

        return Experiment(replace(self._spec, **changes))

    def vary(self, **axes: Sequence[object]) -> "Experiment":
        """Add sweep axes: ``.vary(n_stations=[10, 30, 60])``.

        Each axis multiplies the campaign grid; values run in the given
        order.  Re-declaring an axis replaces its values.
        """
        merged = [(k, v) for k, v in self._spec.vary if k not in axes]
        for key, values in axes.items():
            merged.append((key, tuple(values)))
        return self._replace(vary=tuple(merged))

    def fix(self, **params) -> "Experiment":
        """Fix scenario parameters for every cell (``duration_s=12.0``)."""
        merged = [(k, v) for k, v in self._spec.params if k not in params]
        merged.extend(params.items())
        return self._replace(params=tuple(merged))

    #: Alias matching :meth:`repro.sim.ScenarioBuilder.configure`.
    configure = fix

    def seeds(self, seeds: int | Sequence[int]) -> "Experiment":
        """Replicate every grid point: a count (seeds ``0..n-1``) or an
        explicit seed list.  Setting seeds makes the experiment a
        campaign even without axes."""
        if not isinstance(seeds, int):
            seeds = tuple(int(s) for s in seeds)
        return self._replace(seeds=seeds)

    def fidelity(self, mode: str) -> "Experiment":
        """Select the simulation engine (see ``repro.sim.FIDELITY_MODES``).

        ``"default"`` is the golden-digest-pinned discrete-event engine;
        ``"fast"`` is the columnar batch-stepped core — statistically
        equivalent headline metrics at a fraction of the wall-clock.
        """
        return self._replace(fidelity=mode)

    def analyses(self, *names: str) -> "Experiment":
        """Select analyses by registered consumer name.

        Default (or ``"all"``) computes the full congestion report.  A
        subset makes single runs and pcap analyses return just those
        results in ``result.metrics``; campaign cells always compute
        the full set (their summary rows need the headline metrics) —
        the names are still validated up front.
        """
        return self._replace(analyses=tuple(names))

    def named(self, name: str) -> "Experiment":
        """Set the experiment/report title."""
        return self._replace(name=name)

    def workers(self, workers: int) -> "Experiment":
        """Default worker-process count (overridable at :meth:`run`)."""
        return self._replace(workers=workers)

    def chunk_frames(self, chunk_frames: int) -> "Experiment":
        """Frames per streamed chunk (memory/throughput trade-off)."""
        return self._replace(chunk_frames=chunk_frames)

    def store(
        self, store_dir: str | Path, *, resume: bool = True, retry_failed: bool = False
    ) -> "Experiment":
        """Attach a content-addressed campaign store (crash-safe resume)."""
        return self._replace(
            store=str(store_dir), resume=resume, retry_failed=retry_failed
        )

    def keep_reports(self, keep: bool = True) -> "Experiment":
        """Attach each campaign cell's full report to the result."""
        return self._replace(keep_reports=keep)

    def timeout(self, timeout_s: float) -> "Experiment":
        """Per-cell wall-clock budget: a cell still running at the
        deadline is captured as ``FailedCell(type="Timeout")`` instead
        of stalling its worker."""
        return self._replace(timeout_s=timeout_s)

    def dispatch(self, mode: str) -> "Experiment":
        """Campaign dispatch backend: ``"local"`` (one process pool) or
        ``"distributed"`` (fault-tolerant coordinator + worker
        subprocesses — see :mod:`repro.campaign.dispatch`)."""
        return self._replace(dispatch=mode)

    # -- introspection -----------------------------------------------------

    def spec(self) -> ExperimentSpec:
        """The current immutable spec (serialize with ``.to_toml()``)."""
        return self._spec

    def cells(self):
        """The campaign cells this experiment would run (campaign mode)."""
        if self._spec.mode != "campaign":
            raise SpecError(f"a {self._spec.mode!r} experiment has no cells")
        return grid_for(self._spec).cells()

    def validate(self) -> "Experiment":
        """Eager full validation (spec files: catches typos pre-run)."""
        self._spec.validate()
        return self

    # -- execution ---------------------------------------------------------

    def run(
        self,
        *,
        workers: int | None = None,
        store_dir: str | Path | None = None,
        resume: bool | None = None,
        retry_failed: bool | None = None,
        chunk_frames: int | None = None,
        keep_reports: bool | None = None,
        timeout_s: float | None = None,
        dispatch: str | None = None,
        keep_trace: bool = False,
    ) -> ExperimentResult:
        """Execute the experiment and return an :class:`ExperimentResult`.

        Keyword arguments override the spec's ``[run]`` options for
        this invocation; the result's ``.spec()`` reflects what
        actually ran.  Routing: pcaps → the streaming analysis
        pipeline; axes/seeds → the parallel (resumable) campaign
        runner; otherwise one simulated session streamed through the
        pipeline.  ``keep_trace=True`` (single mode) buffers the run
        and attaches the :class:`~repro.sim.ScenarioResult`.
        """
        spec = self._spec.with_options(
            workers=workers,
            store=str(store_dir) if store_dir is not None else None,
            resume=resume,
            retry_failed=retry_failed,
            chunk_frames=chunk_frames,
            keep_reports=keep_reports,
            timeout_s=timeout_s,
            dispatch=dispatch,
        )
        return execute(spec, keep_trace=keep_trace)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spec = self._spec
        source = spec.scenario or (
            f"corpus {spec.corpus}" if spec.corpus is not None
            else f"{len(spec.pcaps)} pcap(s)" if spec.pcaps else "?"
        )
        has_source = spec.scenario or spec.pcaps or spec.corpus is not None
        return f"<Experiment {spec.mode if has_source else 'empty'}: {source}>"


def run_spec(
    source: "ExperimentSpec | Mapping | str | Path", **run_options
) -> ExperimentResult:
    """One-call convenience: ``run_spec("study.toml", workers=4)``."""
    return Experiment.from_spec(source).run(**run_options)
