"""Uniform typed results: whatever ran, you get an ``ExperimentResult``.

Every execution mode — pcap analysis, a single simulated session, a
campaign sweep — comes back as the same object: reports and/or per-cell
rows, knee estimates, perf counters, and provenance (spec hash, code
salt, store keys) tying the numbers to the exact spec and code that
produced them.  ``result.spec()`` returns the resolved
:class:`~repro.api.spec.ExperimentSpec`, so any result re-runs
bit-exactly via ``Experiment.from_spec(result.spec())``.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Mapping

from .spec import ExperimentSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..campaign import CampaignResult
    from ..core.report import CongestionReport
    from ..sim import ScenarioResult

__all__ = ["ExperimentResult"]


class ExperimentResult:
    """What one :meth:`Experiment.run` produced (see module docstring).

    Attributes
    ----------
    mode : ``'analysis'`` | ``'single'`` | ``'campaign'``
    reports : mapping of display name → full
        :class:`~repro.core.report.CongestionReport` (analysis/single
        runs; campaign runs populate it only with ``keep_reports``).
    metrics : mapping of display name → {analysis name → result} when
        the spec selected an analysis *subset* instead of full reports.
    campaign : the underlying
        :class:`~repro.campaign.runner.CampaignResult` (campaign mode).
    scenario_result : the buffered
        :class:`~repro.sim.ScenarioResult` (single mode with
        ``keep_trace=True`` — e.g. to write the capture as a pcap).
    provenance : spec hash, code-version salt, mode, worker count and
        store directory — enough to audit where a number came from.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        mode: str,
        *,
        reports: "Mapping[str, CongestionReport] | None" = None,
        metrics: Mapping[str, Mapping[str, object]] | None = None,
        campaign: "CampaignResult | None" = None,
        scenario_result: "ScenarioResult | None" = None,
        sources: tuple[tuple[str, str], ...] = (),
        failures: tuple = (),
        elapsed_s: float = 0.0,
    ) -> None:
        from ..campaign import code_version_salt

        self._spec = spec
        self.mode = mode
        self.reports = dict(reports or {})
        #: per-capture :class:`~repro.pipeline.FailedAnalysis` records
        #: (analysis mode) — captures that raised instead of reporting.
        self.failures = tuple(failures)
        self.metrics = {k: dict(v) for k, v in (metrics or {}).items()}
        self.campaign = campaign
        self.scenario_result = scenario_result
        #: (display name, pcap path) pairs for analysis mode, so
        #: callers can map reports back to input files.
        self.sources = sources
        self.elapsed_s = elapsed_s
        self.provenance: dict[str, object] = {
            "spec_hash": spec.hash,
            "code_salt": code_version_salt(),
            "mode": mode,
            "workers": campaign.workers if campaign is not None else (spec.workers or 1),
            "store_dir": campaign.store_dir if campaign is not None else None,
        }

    # -- access ------------------------------------------------------------

    def spec(self) -> ExperimentSpec:
        """The resolved spec this result ran — re-run it bit-exactly via
        ``Experiment.from_spec(result.spec())`` (same store keys)."""
        return self._spec

    @property
    def report(self) -> "CongestionReport":
        """The report of a one-report experiment (single run, one pcap)."""
        if len(self.reports) != 1:
            raise ValueError(
                f"experiment has {len(self.reports)} reports; "
                f"use .reports[name]"
            )
        return next(iter(self.reports.values()))

    def table(self) -> list[dict[str, object]]:
        """Summary rows: campaign cells, or per-capture Table-1 rows."""
        if self.campaign is not None:
            return [cell.as_row() for cell in self.campaign.cells]
        return [
            report.summary.as_row()
            for report in self.reports.values()
            if report.summary.n_frames
        ]

    def knees(self) -> dict[str, dict[str, float | None]]:
        """Per-scenario knee estimates (campaign mode; else empty).

        ``load_knee_pps`` — offered load where mean delivery first dips
        below 0.9; ``utilization_knee_percent`` — mean utilization at
        peak throughput (the paper's Fig 6 knee).
        """
        if self.campaign is None:
            return {}
        from ..campaign import load_knee, utilization_knee

        return {
            scenario: {
                "load_knee_pps": load_knee(self.campaign, scenario),
                "utilization_knee_percent": utilization_knee(self.campaign, scenario),
            }
            for scenario in self.campaign.scenarios()
        }

    def perf_counters(self) -> dict[str, object]:
        """Aggregate execution counters across whatever ran."""
        out: dict[str, object] = {"elapsed_s": round(self.elapsed_s, 3)}
        if self.campaign is not None:
            out.update(
                cells=len(self.campaign.cells),
                failed=len(self.campaign.failed),
                store_hits=self.campaign.store_hits,
                dispatched=self.campaign.dispatched,
                events_processed=sum(
                    c.events_processed for c in self.campaign.cells
                ),
                events_cancelled=sum(
                    c.events_cancelled for c in self.campaign.cells
                ),
            )
        if self.scenario_result is not None:
            out.update(
                frames_captured=len(self.scenario_result.trace),
                frames_transmitted=len(self.scenario_result.ground_truth),
            )
        return out

    # -- rendering ---------------------------------------------------------

    def render(self, title: str | None = None) -> str:
        """Human-readable text artifact for the whole experiment."""
        spec = self._spec
        if self.campaign is not None:
            from ..campaign import render_campaign

            default = spec.name or f"Campaign [{spec.scenario}]"
            return render_campaign(self.campaign, title=title or default)
        if self.metrics:
            lines = [title or spec.name or "Experiment (analysis subset)"]
            for name, results in self.metrics.items():
                lines.append(f"  [{name}] computed: {', '.join(results)}")
            return "\n".join(lines) + "\n"
        from ..core.render import render_report

        parts = []
        for name, report in self.reports.items():
            if report.summary.n_frames:
                parts.append(render_report(report))
            else:
                parts.append(f"{name}: empty capture")
        for failure in self.failures:
            parts.append(
                f"{failure.name}: analysis failed "
                f"[{failure.error_type}: {failure.error}]"
            )
        return "\n\n".join(parts)

    def to_json(self, indent: int | None = 2) -> str:
        """Machine-readable summary: spec, provenance, rows, knees."""
        payload = {
            "spec": self._spec.to_mapping(),
            "mode": self.mode,
            "provenance": self.provenance,
            "perf": self.perf_counters(),
            "table": self.table(),
            "knees": self.knees(),
        }
        if self.campaign is not None and self.campaign.failed:
            payload["failed"] = [
                {"cell": f.name, "error_type": f.error_type, "error": f.error}
                for f in self.campaign.failed
            ]
        if self.failures:
            payload["failed_captures"] = [
                {
                    "name": f.name,
                    "source": f.source,
                    "error_type": f.error_type,
                    "error": f.error,
                }
                for f in self.failures
            ]
        return json.dumps(payload, indent=indent, default=str)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = (
            len(self.campaign.cells)
            if self.campaign is not None
            else len(self.reports) or len(self.metrics)
        )
        return (
            f"<ExperimentResult mode={self.mode!r} items={n} "
            f"spec={self._spec.hash}>"
        )
