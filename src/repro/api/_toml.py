"""Minimal TOML *emitter* for experiment specs.

The stdlib ships a TOML reader (``tomllib``) but no writer; spec
round-tripping (``ExperimentSpec.to_toml`` → ``tomllib.loads``) needs
one.  This emitter covers exactly the value vocabulary a spec may
contain — strings, ints, floats, booleans, lists of those, and string-
keyed tables (emitted inline) — and refuses anything else loudly, so a
fluent experiment holding live Python objects (e.g. a rate-schedule
instance) fails serialization with a clear message instead of writing
a file ``tomllib`` cannot read back.

>>> import tomllib
>>> text = dumps({"scenario": "ramp", "vary": {"n_stations": [10, 20]}})
>>> tomllib.loads(text) == {"scenario": "ramp", "vary": {"n_stations": [10, 20]}}
True
"""

from __future__ import annotations

import json
import math
from typing import Mapping

__all__ = ["dumps"]

_BARE_KEY_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_"
)


def _key(key: object) -> str:
    if not isinstance(key, str) or not key:
        raise TypeError(f"TOML keys must be non-empty strings, got {key!r}")
    if set(key) <= _BARE_KEY_CHARS:
        return key
    return json.dumps(key)


def _value(value: object, context: str) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise TypeError(f"non-finite float in spec at {context}: {value!r}")
        return repr(value)
    if isinstance(value, str):
        # JSON string escaping is a subset of TOML basic-string syntax.
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        items = [_value(v, context) for v in value]
        return "[" + ", ".join(items) + "]"
    if isinstance(value, Mapping):
        pairs = [f"{_key(k)} = {_value(v, f'{context}.{k}')}" for k, v in value.items()]
        return "{" + ", ".join(pairs) + "}"
    raise TypeError(
        f"value at {context} is not TOML-serializable: {value!r} "
        f"({type(value).__name__}); spec files hold scalars, lists and "
        f"tables — use scenario parameters (e.g. uplink_pps) instead of "
        f"live objects"
    )


def dumps(data: Mapping[str, object]) -> str:
    """Serialize a two-level mapping as TOML text.

    Top-level scalar/list values become key-value pairs; top-level
    mappings become ``[section]`` tables (their nested mappings are
    emitted as inline tables).
    """
    scalars: list[str] = []
    tables: list[str] = []
    for key, value in data.items():
        if isinstance(value, Mapping):
            lines = [f"[{_key(key)}]"]
            for sub_key, sub_value in value.items():
                lines.append(
                    f"{_key(sub_key)} = {_value(sub_value, f'{key}.{sub_key}')}"
                )
            tables.append("\n".join(lines))
        else:
            scalars.append(f"{_key(key)} = {_value(value, str(key))}")
    parts = ["\n".join(scalars)] if scalars else []
    parts.extend(tables)
    return "\n\n".join(parts) + "\n"
