"""Declarative experiment specs: one file == one reproducible study.

An :class:`ExperimentSpec` is the value object behind the whole
``repro.api`` layer: the fluent :class:`~repro.api.experiment.Experiment`
builder accumulates one, spec *files* (TOML via stdlib ``tomllib``, or
JSON) parse into one, and every
:class:`~repro.api.result.ExperimentResult` carries the resolved spec
it ran — so any result can be re-run bit-exactly from
``result.spec()``.

A spec file is at most four tables::

    # study.toml — a 10-line campaign
    name = "ramp-sweep"
    scenario = "ramp"
    seeds = 2

    [vary]
    n_stations = [10, 20, 40]

    [params]
    duration_s = 12.0

    [run]
    workers = 4

``scenario`` names a library scenario (``repro.sim.available_scenarios``);
``pcaps = ["a.pcap", ...]`` analyzes captures instead (entries may be
files, directories or glob patterns, expanded deterministically), and
``pcaps = {corpus = "captures/", where = "channel=6"}`` analyzes an
indexed corpus through the query planner.  ``[params]``
fixes scenario parameters for every cell, ``[vary]`` declares sweep
axes, ``seeds`` multiplies the grid, and ``[run]`` holds execution
options (workers, chunk_frames, store, resume, retry_failed,
keep_reports, timeout_s, dispatch).  Unknown keys anywhere fail with a
"did you mean ...?" error before anything runs.

>>> spec = ExperimentSpec.from_toml(
...     'scenario = "ramp"\\nseeds = 2\\n[vary]\\nn_stations = [10, 20]\\n'
... )
>>> spec.mode
'campaign'
>>> ExperimentSpec.from_toml(spec.to_toml()) == spec
True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Mapping, Sequence

from .._suggest import unknown_name_message
from . import _toml

__all__ = ["ExperimentSpec", "SpecError", "load_spec"]


class SpecError(ValueError):
    """An experiment spec that cannot be parsed or validated."""


#: Keys allowed at the top level of a spec mapping/file.
_TOP_KEYS = (
    "name",
    "scenario",
    "pcaps",
    "seeds",
    "fidelity",
    "analyses",
    "params",
    "vary",
    "run",
)

#: Keys allowed inside the ``[run]`` table.
_RUN_KEYS = (
    "workers",
    "chunk_frames",
    "store",
    "resume",
    "retry_failed",
    "keep_reports",
    "timeout_s",
    "dispatch",
)


def _err(message: str, source: str | None) -> SpecError:
    prefix = f"{source}: " if source else ""
    return SpecError(prefix + message)


@dataclass(frozen=True)
class ExperimentSpec:
    """Immutable description of one experiment (see module docstring).

    ``params`` and ``vary`` are stored as tuples of pairs so specs are
    hashable and order-stable (axis order decides cell naming order);
    mappings are accepted everywhere one is constructed.
    """

    scenario: str | None = None
    pcaps: tuple[str, ...] = ()
    corpus: str | None = None
    corpus_where: str | None = None
    name: str | None = None
    params: tuple[tuple[str, object], ...] = ()
    vary: tuple[tuple[str, tuple[object, ...]], ...] = ()
    seeds: int | tuple[int, ...] | None = None
    fidelity: str | None = None
    analyses: tuple[str, ...] = ()
    workers: int | None = None
    chunk_frames: int | None = None
    store: str | None = None
    resume: bool = True
    retry_failed: bool = False
    keep_reports: bool = False
    timeout_s: float | None = None
    dispatch: str | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_mapping(
        cls, data: Mapping[str, object], *, source: str | None = None
    ) -> "ExperimentSpec":
        """Build a spec from the file-format mapping, strictly.

        Every unknown key — top level, ``[run]`` — raises
        :class:`SpecError` with a "did you mean ...?" suggestion;
        scenario *parameter* names are checked later by
        :meth:`validate` (they need the scenario library).
        """
        if not isinstance(data, Mapping):
            raise _err(f"spec must be a mapping, got {type(data).__name__}", source)
        for key in data:
            if key not in _TOP_KEYS:
                raise _err(unknown_name_message("spec key", str(key), _TOP_KEYS), source)

        def typed(key, kinds, kind_name, default=None):
            value = data.get(key, default)
            if value is not None and not isinstance(value, kinds):
                raise _err(f"{key!r} must be {kind_name}, got {value!r}", source)
            return value

        scenario = typed("scenario", str, "a scenario name string")
        name = typed("name", str, "a string")
        fidelity = typed("fidelity", str, "a fidelity mode string")

        pcaps_raw = data.get("pcaps", ())
        corpus: str | None = None
        corpus_where: str | None = None
        if isinstance(pcaps_raw, Mapping):
            for key in pcaps_raw:
                if key not in ("corpus", "where"):
                    raise _err(
                        unknown_name_message(
                            "pcaps key", str(key), ("corpus", "where")
                        ),
                        source,
                    )
            corpus_raw = pcaps_raw.get("corpus")
            if not isinstance(corpus_raw, (str, Path)):
                raise _err(
                    f"pcaps 'corpus' must be a directory path, "
                    f"got {corpus_raw!r}",
                    source,
                )
            corpus = str(corpus_raw)
            where_raw = pcaps_raw.get("where")
            if where_raw is not None and not isinstance(where_raw, str):
                raise _err(
                    f"pcaps 'where' must be a query string, got {where_raw!r}",
                    source,
                )
            corpus_where = where_raw
            pcaps_raw = ()
        if isinstance(pcaps_raw, (str, Path)):
            pcaps_raw = [pcaps_raw]
        if not isinstance(pcaps_raw, Sequence) or not all(
            isinstance(p, (str, Path)) for p in pcaps_raw
        ):
            raise _err(f"'pcaps' must be a list of paths, got {pcaps_raw!r}", source)
        pcaps = tuple(str(p) for p in pcaps_raw)

        seeds_raw = data.get("seeds")
        seeds: int | tuple[int, ...] | None
        if seeds_raw is None:
            seeds = None
        elif isinstance(seeds_raw, bool) or not isinstance(
            seeds_raw, (int, Sequence)
        ):
            raise _err(f"'seeds' must be an int or a list of ints, got {seeds_raw!r}", source)
        elif isinstance(seeds_raw, int):
            seeds = seeds_raw
        else:
            if not all(isinstance(s, int) and not isinstance(s, bool) for s in seeds_raw):
                raise _err(f"'seeds' list must hold ints, got {seeds_raw!r}", source)
            seeds = tuple(int(s) for s in seeds_raw)

        analyses_raw = data.get("analyses", ())
        if isinstance(analyses_raw, str):
            analyses_raw = [analyses_raw]
        if not isinstance(analyses_raw, Sequence) or not all(
            isinstance(a, str) for a in analyses_raw
        ):
            raise _err(f"'analyses' must be a list of names, got {analyses_raw!r}", source)

        params_raw = data.get("params", {})
        if not isinstance(params_raw, Mapping):
            raise _err(f"[params] must be a table, got {params_raw!r}", source)
        vary_raw = data.get("vary", {})
        if not isinstance(vary_raw, Mapping):
            raise _err(f"[vary] must be a table, got {vary_raw!r}", source)
        vary: list[tuple[str, tuple[object, ...]]] = []
        for key, values in vary_raw.items():
            if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
                raise _err(
                    f"vary axis {key!r} must be a list of values, got {values!r}",
                    source,
                )
            vary.append((str(key), tuple(values)))

        run_raw = data.get("run", {})
        if not isinstance(run_raw, Mapping):
            raise _err(f"[run] must be a table, got {run_raw!r}", source)
        for key in run_raw:
            if key not in _RUN_KEYS:
                raise _err(unknown_name_message("run option", str(key), _RUN_KEYS), source)

        def run_opt(key, kinds, kind_name, default=None):
            value = run_raw.get(key, default)
            if value is not None and (
                not isinstance(value, kinds) or isinstance(value, bool) != (kinds is bool)
            ):
                raise _err(f"run option {key!r} must be {kind_name}, got {value!r}", source)
            return value

        return cls(
            scenario=scenario,
            pcaps=pcaps,
            corpus=corpus,
            corpus_where=corpus_where,
            name=name,
            params=tuple((str(k), v) for k, v in params_raw.items()),
            vary=tuple(vary),
            seeds=seeds,
            fidelity=fidelity,
            analyses=tuple(analyses_raw),
            workers=run_opt("workers", int, "an int"),
            chunk_frames=run_opt("chunk_frames", int, "an int"),
            store=run_opt("store", str, "a directory path string"),
            resume=run_opt("resume", bool, "a boolean", True),
            retry_failed=run_opt("retry_failed", bool, "a boolean", False),
            keep_reports=run_opt("keep_reports", bool, "a boolean", False),
            timeout_s=run_opt("timeout_s", (int, float), "a number of seconds"),
            dispatch=run_opt("dispatch", str, "a dispatch mode string"),
        )

    @classmethod
    def from_toml(cls, text: str, *, source: str | None = None) -> "ExperimentSpec":
        import tomllib

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise _err(f"invalid TOML: {error}", source) from None
        return cls.from_mapping(data, source=source)

    @classmethod
    def from_json(cls, text: str, *, source: str | None = None) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise _err(f"invalid JSON: {error}", source) from None
        return cls.from_mapping(data, source=source)

    @classmethod
    def from_file(cls, path: str | Path) -> "ExperimentSpec":
        """Load a ``.toml`` or ``.json`` spec file (by extension)."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as error:
            raise SpecError(f"cannot read spec {path}: {error}") from None
        suffix = path.suffix.lower()
        if suffix == ".toml":
            return cls.from_toml(text, source=str(path))
        if suffix == ".json":
            return cls.from_json(text, source=str(path))
        raise SpecError(
            f"unsupported spec extension {suffix!r} for {path} "
            f"(use .toml or .json)"
        )

    # -- serialization -----------------------------------------------------

    def to_mapping(self) -> dict[str, object]:
        """The file-format mapping (inverse of :meth:`from_mapping`)."""
        out: dict[str, object] = {}
        if self.name is not None:
            out["name"] = self.name
        if self.scenario is not None:
            out["scenario"] = self.scenario
        if self.pcaps:
            out["pcaps"] = list(self.pcaps)
        if self.corpus is not None:
            corpus_table: dict[str, object] = {"corpus": self.corpus}
            if self.corpus_where is not None:
                corpus_table["where"] = self.corpus_where
            out["pcaps"] = corpus_table
        if self.seeds is not None:
            out["seeds"] = (
                self.seeds if isinstance(self.seeds, int) else list(self.seeds)
            )
        if self.fidelity is not None:
            out["fidelity"] = self.fidelity
        if self.analyses:
            out["analyses"] = list(self.analyses)
        if self.params:
            out["params"] = dict(self.params)
        if self.vary:
            out["vary"] = {key: list(values) for key, values in self.vary}
        run: dict[str, object] = {}
        if self.workers is not None:
            run["workers"] = self.workers
        if self.chunk_frames is not None:
            run["chunk_frames"] = self.chunk_frames
        if self.store is not None:
            run["store"] = self.store
        if self.resume is not True:
            run["resume"] = self.resume
        if self.retry_failed:
            run["retry_failed"] = self.retry_failed
        if self.keep_reports:
            run["keep_reports"] = self.keep_reports
        if self.timeout_s is not None:
            run["timeout_s"] = self.timeout_s
        if self.dispatch is not None:
            run["dispatch"] = self.dispatch
        if run:
            out["run"] = run
        return out

    def to_toml(self) -> str:
        """TOML text that parses back to an equal spec."""
        return _toml.dumps(self.to_mapping())

    def to_json(self, indent: int | None = 2) -> str:
        """JSON text that parses back to an equal spec."""
        return json.dumps(self.to_mapping(), indent=indent)

    def save(self, path: str | Path) -> Path:
        """Write the spec next to its results (``.toml`` or ``.json``)."""
        path = Path(path)
        if path.suffix.lower() == ".json":
            path.write_text(self.to_json() + "\n")
        else:
            path.write_text(self.to_toml())
        return path

    @property
    def hash(self) -> str:
        """Stable content hash of the spec (provenance key)."""
        text = json.dumps(self.to_mapping(), sort_keys=True, default=repr)
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    # -- semantics ---------------------------------------------------------

    @property
    def mode(self) -> str:
        """``'analysis'`` (pcaps/corpus), ``'campaign'`` (vary/seeds) or ``'single'``."""
        if self.pcaps or self.corpus is not None:
            return "analysis"
        if self.vary or self.seeds is not None:
            return "campaign"
        return "single"

    def validate(self) -> "ExperimentSpec":
        """Full semantic check; raises :class:`SpecError`.  Returns self.

        Covers source arity, scenario existence and parameter names
        (with "did you mean ...?" suggestions), axis/params overlap,
        seed and worker sanity, analysis names, and store/mode fit.
        """
        from ..pipeline import resolve_consumer_names
        from ..sim import UnknownParameterError, validate_scenario_params

        analysis_source = bool(self.pcaps) or self.corpus is not None
        if self.pcaps and self.corpus is not None:
            raise SpecError(
                "give either a 'pcaps' list or a corpus table, not both"
            )
        if self.scenario is not None and analysis_source:
            raise SpecError("give either 'scenario' or 'pcaps', not both")
        if self.scenario is None and not analysis_source:
            raise SpecError("spec needs a source: a 'scenario' name or 'pcaps'")
        if analysis_source and (
            self.vary or self.params or self.seeds is not None
        ):
            raise SpecError(
                "'params'/'vary'/'seeds' apply to scenario experiments, "
                "not pcap analysis"
            )
        if analysis_source and self.fidelity is not None:
            raise SpecError(
                "'fidelity' selects a simulation engine — it does not "
                "apply to pcap analysis"
            )
        if self.corpus_where is not None and self.corpus is None:
            raise SpecError("'where' needs a corpus (pcaps = {corpus = ...})")
        if self.corpus is not None:
            from ..corpus import CorpusError, parse_query

            if self.analyses:
                raise SpecError(
                    "'analyses' subsets are not supported with a corpus — "
                    "stored corpus reports are always complete"
                )
            if not Path(self.corpus).is_dir():
                raise SpecError(f"corpus not found: {self.corpus}")
            try:
                parse_query(self.corpus_where)
            except CorpusError as error:
                raise SpecError(f"bad corpus query: {error}") from None
        if self.fidelity is not None:
            from ..sim import FIDELITY_MODES

            if self.fidelity not in FIDELITY_MODES:
                raise SpecError(
                    unknown_name_message("fidelity", self.fidelity, FIDELITY_MODES)
                )
        if self.pcaps:
            # Entries may be files, directories or glob patterns;
            # expansion is deterministic and "nothing matched" is a
            # clean error, not a traceback.
            from ..corpus import CorpusError, expand_captures

            try:
                expand_captures(self.pcaps)
            except CorpusError as error:
                raise SpecError(str(error)) from None
        if self.scenario is not None:
            overlap = {k for k, _ in self.params} & {k for k, _ in self.vary}
            if overlap:
                raise SpecError(
                    f"{sorted(overlap)} appear in both [params] and [vary]"
                )
            for key, values in self.vary:
                if len(values) == 0:
                    raise SpecError(f"vary axis {key!r} has no values")
            try:
                validate_scenario_params(
                    self.scenario,
                    [k for k, _ in self.params] + [k for k, _ in self.vary],
                )
            except (KeyError, UnknownParameterError) as error:
                message = error.args[0] if error.args else str(error)
                raise SpecError(str(message)) from None
        if isinstance(self.seeds, int) and self.seeds < 1:
            raise SpecError("'seeds' must be >= 1")
        if isinstance(self.seeds, tuple) and not self.seeds:
            raise SpecError("'seeds' list must not be empty")
        if self.workers is not None and self.workers < 1:
            raise SpecError("run option 'workers' must be >= 1")
        if self.chunk_frames is not None and self.chunk_frames < 1:
            raise SpecError("run option 'chunk_frames' must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise SpecError("run option 'timeout_s' must be > 0")
        if self.dispatch is not None:
            from ..campaign.runner import DISPATCH_MODES

            if self.dispatch not in DISPATCH_MODES:
                raise SpecError(
                    unknown_name_message(
                        "dispatch mode", self.dispatch, DISPATCH_MODES
                    )
                )
            if self.dispatch == "distributed" and self.mode != "campaign":
                raise SpecError(
                    "run option 'dispatch = \"distributed\"' needs a "
                    "campaign — add 'seeds' or a [vary] axis"
                )
            if self.dispatch == "distributed" and self.keep_reports:
                raise SpecError(
                    "'keep_reports' is incompatible with distributed "
                    "dispatch (full reports do not travel the wire)"
                )
        if self.store is not None and self.mode != "campaign":
            raise SpecError(
                "run option 'store' needs a campaign — add 'seeds' or a "
                "[vary] axis (a stored cell is keyed by its grid point)"
            )
        try:
            resolve_consumer_names(self.analyses, roster=True)
        except KeyError as error:
            raise SpecError(str(error.args[0])) from None
        return self

    def with_options(self, **changes) -> "ExperimentSpec":
        """``dataclasses.replace`` with ``None`` meaning "keep current"."""
        effective = {k: v for k, v in changes.items() if v is not None}
        return replace(self, **effective) if effective else self


def load_spec(path: str | Path) -> ExperimentSpec:
    """Module-level alias of :meth:`ExperimentSpec.from_file`."""
    return ExperimentSpec.from_file(path)


# Sanity: the dataclass and the file format stay in sync.  The corpus
# pair rides inside the 'pcaps' table on disk, hence the explicit add.
assert {f.name for f in fields(ExperimentSpec)} == (
    set(_TOP_KEYS) - {"params", "vary", "run"}
) | {"params", "vary"} | set(_RUN_KEYS) | {"corpus", "corpus_where"}
