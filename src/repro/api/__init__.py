"""repro.api — the unified experiment layer (the one front door).

One object model spans the whole system: an **experiment** is a source
(library scenario, pcap captures) × an analysis selection × an optional
campaign grid and store.  Build it fluently::

    from repro.api import Experiment

    result = (
        Experiment.scenario("ramp")
        .vary(n_stations=[10, 30, 60])
        .seeds(4)
        .run(workers=4, store_dir="campaign-store")
    )

or declaratively from a spec file (stdlib TOML/JSON, no new deps)::

    result = Experiment.from_spec("study.toml").run()

Execution routes to the pre-existing layers — the single-pass streaming
pipeline, the composable simulator, the resumable campaign runner — and
returns a uniform typed :class:`~repro.api.result.ExperimentResult`
(reports, per-cell table, knees, perf counters, provenance) with
``.render()``, ``.to_json()`` and a round-trip ``.spec()``.

CLI equivalents: ``repro run study.toml`` / ``python -m repro run
study.toml`` (see :mod:`repro.tools`).
"""

from ..pipeline import available_consumers as available_analyses
from ..sim import UnknownParameterError, available_scenarios, scenario_parameters
from .experiment import Experiment, run_spec
from .result import ExperimentResult
from .spec import ExperimentSpec, SpecError, load_spec

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentSpec",
    "SpecError",
    "UnknownParameterError",
    "available_analyses",
    "available_scenarios",
    "load_spec",
    "run_spec",
    "scenario_parameters",
]
