"""The paper's four frame-size classes (§6).

Small (S)       : 0-400 bytes      -- voice / audio / control-like data
Medium (M)      : 401-800 bytes    -- interactive traffic
Large (L)       : 801-1200 bytes   -- bulk transfer
Extra-large (XL): > 1200 bytes     -- file transfer / video

Size classes combine with the four 802.11b data rates into the 16
``size-rate`` categories used by Figures 10-13 (e.g. ``S-11``, ``XL-1``).
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = [
    "SizeClass",
    "SIZE_CLASS_BOUNDS",
    "size_class",
    "size_class_array",
    "SIZE_CLASS_NAMES",
]


class SizeClass(enum.IntEnum):
    """Frame-size class, ordered small to extra-large."""

    S = 0
    M = 1
    L = 2
    XL = 3


#: Upper bound (inclusive) of each size class in bytes; XL is unbounded.
SIZE_CLASS_BOUNDS = {
    SizeClass.S: (0, 400),
    SizeClass.M: (401, 800),
    SizeClass.L: (801, 1200),
    SizeClass.XL: (1201, None),
}

SIZE_CLASS_NAMES = {cls: cls.name for cls in SizeClass}

#: Bin edges for ``numpy.digitize``: sizes <=400 -> 0, <=800 -> 1, ...
_EDGES = np.array([400, 800, 1200], dtype=np.int64)


def size_class(size_bytes: int) -> SizeClass:
    """Classify a single frame size in bytes.

    >>> size_class(60)
    <SizeClass.S: 0>
    >>> size_class(1500)
    <SizeClass.XL: 3>
    """
    if size_bytes < 0:
        raise ValueError(f"frame size must be non-negative, got {size_bytes}")
    return SizeClass(int(np.digitize(size_bytes, _EDGES, right=True)))


def size_class_array(sizes: np.ndarray) -> np.ndarray:
    """Vectorised :func:`size_class`; returns a ``uint8`` array of codes."""
    sizes = np.asarray(sizes)
    if sizes.size and sizes.min() < 0:
        raise ValueError("frame sizes must be non-negative")
    return np.digitize(sizes, _EDGES, right=True).astype(np.uint8)
