"""IEEE 802.11 frame taxonomy used throughout the reproduction.

The paper's analysis only distinguishes a handful of frame kinds:
DATA, ACK, RTS, CTS, BEACON and "other management".  We model them with a
compact integer enum so that traces can be stored in numpy arrays, while
still carrying the (type, subtype) pair needed to serialize real 802.11
MAC headers in :mod:`repro.pcap`.
"""

from __future__ import annotations

import enum

__all__ = [
    "FrameType",
    "DOT11_RATES_MBPS",
    "RATE_CODES",
    "rate_to_code",
    "code_to_rate",
    "MAC_HEADER_BYTES",
    "ACK_FRAME_BYTES",
    "RTS_FRAME_BYTES",
    "CTS_FRAME_BYTES",
    "BEACON_BODY_BYTES",
    "is_control",
    "is_management",
    "is_data",
    "BROADCAST",
    "NO_NODE",
]

#: Pseudo node id meaning "broadcast destination".
BROADCAST = 0xFFFF

#: Pseudo node id meaning "no node" (e.g. CTS frames carry only an RA).
NO_NODE = 0xFFFE


class FrameType(enum.IntEnum):
    """Frame kinds distinguished by the paper's trace analysis.

    Values are stable and compact so they can live in ``uint8`` columns.
    """

    DATA = 0
    ACK = 1
    RTS = 2
    CTS = 3
    BEACON = 4
    MGMT = 5  # association, probe, auth... lumped together like the paper

    @property
    def dot11_type_subtype(self) -> tuple[int, int]:
        """Return the (type, subtype) pair used in a real 802.11 header."""
        return _TYPE_SUBTYPE[self]


_TYPE_SUBTYPE = {
    FrameType.DATA: (2, 0),
    FrameType.ACK: (1, 13),
    FrameType.RTS: (1, 11),
    FrameType.CTS: (1, 12),
    FrameType.BEACON: (0, 8),
    FrameType.MGMT: (0, 0),  # association request as representative subtype
}

_SUBTYPE_TO_FRAMETYPE = {v: k for k, v in _TYPE_SUBTYPE.items()}


def frame_type_from_dot11(ftype: int, subtype: int) -> FrameType:
    """Map a raw 802.11 (type, subtype) pair back onto :class:`FrameType`.

    Unknown management subtypes collapse to :data:`FrameType.MGMT` and
    unknown data subtypes to :data:`FrameType.DATA`, mirroring how the
    paper lumps frame kinds together.
    """
    exact = _SUBTYPE_TO_FRAMETYPE.get((ftype, subtype))
    if exact is not None:
        return exact
    if ftype == 0:
        return FrameType.MGMT
    if ftype == 2:
        return FrameType.DATA
    raise ValueError(f"unsupported 802.11 type/subtype: {ftype}/{subtype}")


#: The four 802.11b data rates, in Mbps, in ascending order (paper §6).
DOT11_RATES_MBPS = (1.0, 2.0, 5.5, 11.0)

#: Compact rate codes for columnar storage: index into DOT11_RATES_MBPS.
RATE_CODES = {rate: code for code, rate in enumerate(DOT11_RATES_MBPS)}


def rate_to_code(rate_mbps: float) -> int:
    """Return the compact storage code for an 802.11b ``rate_mbps``.

    Raises ``ValueError`` for rates outside the 802.11b set, because the
    paper's 16-category taxonomy is defined only over 1/2/5.5/11 Mbps.
    """
    try:
        return RATE_CODES[float(rate_mbps)]
    except KeyError:
        raise ValueError(
            f"{rate_mbps!r} is not an 802.11b rate {DOT11_RATES_MBPS}"
        ) from None


def code_to_rate(code: int) -> float:
    """Inverse of :func:`rate_to_code`."""
    return DOT11_RATES_MBPS[code]


# Frame size constants (bytes).  The 34-byte MAC overhead in the paper's
# D_DATA equation is the 802.11 data header (24) + FCS (4) + SNAP/LLC
# footprint they fold in; we keep their accounting.
MAC_HEADER_BYTES = 34
ACK_FRAME_BYTES = 14
RTS_FRAME_BYTES = 20
CTS_FRAME_BYTES = 14
BEACON_BODY_BYTES = 80  # representative beacon payload incl. IEs


def is_control(ftype: FrameType) -> bool:
    """True for RTS/CTS/ACK control frames."""
    return ftype in (FrameType.ACK, FrameType.RTS, FrameType.CTS)


def is_management(ftype: FrameType) -> bool:
    """True for beacon and other management frames."""
    return ftype in (FrameType.BEACON, FrameType.MGMT)


def is_data(ftype: FrameType) -> bool:
    """True for data frames."""
    return ftype == FrameType.DATA
