"""802.11 frame model substrate: frame taxonomy, size classes, traces."""

from .dot11 import (
    ACK_FRAME_BYTES,
    BEACON_BODY_BYTES,
    BROADCAST,
    CTS_FRAME_BYTES,
    DOT11_RATES_MBPS,
    MAC_HEADER_BYTES,
    NO_NODE,
    RTS_FRAME_BYTES,
    FrameType,
    code_to_rate,
    frame_type_from_dot11,
    is_control,
    is_data,
    is_management,
    rate_to_code,
)
from .records import FrameRow, NodeInfo, NodeRoster, Trace
from .sizes import SIZE_CLASS_BOUNDS, SizeClass, size_class, size_class_array

__all__ = [
    "ACK_FRAME_BYTES",
    "BEACON_BODY_BYTES",
    "BROADCAST",
    "CTS_FRAME_BYTES",
    "DOT11_RATES_MBPS",
    "MAC_HEADER_BYTES",
    "NO_NODE",
    "RTS_FRAME_BYTES",
    "FrameType",
    "FrameRow",
    "NodeInfo",
    "NodeRoster",
    "Trace",
    "SIZE_CLASS_BOUNDS",
    "SizeClass",
    "size_class",
    "size_class_array",
    "code_to_rate",
    "frame_type_from_dot11",
    "is_control",
    "is_data",
    "is_management",
    "rate_to_code",
]
