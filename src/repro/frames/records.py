"""Columnar link-layer trace container.

A :class:`Trace` is the reproduction's equivalent of the paper's sniffer
logs: one row per captured frame carrying exactly the fields the paper's
analysis consumes — timestamp, frame type, data rate, size, source,
destination, retry flag, channel and SNR.  Rows are stored as a numpy
struct-of-arrays so that multi-million-frame traces stay cheap to filter
and aggregate (the original data set held 57M frames).

Timestamps are integer microseconds, matching 802.11's native timing
granularity and avoiding float drift over multi-hour sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from .dot11 import FrameType, code_to_rate, rate_to_code
from .sizes import size_class_array

__all__ = [
    "FrameRow",
    "Trace",
    "NodeInfo",
    "NodeRoster",
    "TRACE_COLUMNS",
    "TRACE_SCHEMA",
]


#: Column name -> numpy dtype for the trace storage.
_SCHEMA = (
    ("time_us", np.int64),     # frame start-of-transmission timestamp
    ("ftype", np.uint8),       # FrameType value
    ("rate_code", np.uint8),   # index into DOT11_RATES_MBPS
    ("size", np.uint32),       # frame size in bytes (paper's S in D_DATA)
    ("src", np.uint16),        # transmitter node id
    ("dst", np.uint16),        # receiver node id (BROADCAST/NO_NODE allowed)
    ("retry", np.bool_),       # 802.11 Retry bit
    ("channel", np.uint8),     # 802.11b channel number (1/6/11)
    ("snr_db", np.float32),    # SNR recorded by the sniffer (RFMon field)
    ("seq", np.uint16),        # 802.11 sequence number (0-4095)
)

_COLUMNS = tuple(name for name, _ in _SCHEMA)

#: Public trace column names, in schema order (for bulk producers and
#: serialisation layers that assemble column dicts).
TRACE_COLUMNS = _COLUMNS

#: Public (name, dtype) schema pairs — the single source for layers
#: that materialise trace columns themselves (e.g. the pcap reader).
TRACE_SCHEMA = _SCHEMA


@dataclass(frozen=True)
class FrameRow:
    """One captured frame, as a convenient scalar view of a trace row."""

    time_us: int
    ftype: FrameType
    rate_mbps: float
    size: int
    src: int
    dst: int
    retry: bool = False
    channel: int = 1
    snr_db: float = 25.0
    seq: int = 0


@dataclass(frozen=True)
class NodeInfo:
    """Static facts about a node appearing in a trace."""

    node_id: int
    is_ap: bool
    name: str = ""
    uses_rtscts: bool = False


class NodeRoster:
    """Registry mapping node ids to :class:`NodeInfo`.

    The paper distinguishes APs from user devices when ranking per-AP
    traffic (Fig 4a) and counting associations (Fig 4b); the roster is
    how analyses learn which trace endpoints are APs.
    """

    def __init__(self, nodes: Iterable[NodeInfo] = ()) -> None:
        self._nodes: dict[int, NodeInfo] = {}
        for node in nodes:
            self.add(node)

    def add(self, node: NodeInfo) -> None:
        """Register ``node``; re-registering the same id must be identical."""
        existing = self._nodes.get(node.node_id)
        if existing is not None and existing != node:
            raise ValueError(f"conflicting roster entries for id {node.node_id}")
        self._nodes[node.node_id] = node

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __getitem__(self, node_id: int) -> NodeInfo:
        return self._nodes[node_id]

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[NodeInfo]:
        return iter(self._nodes.values())

    def get(self, node_id: int, default: NodeInfo | None = None) -> NodeInfo | None:
        return self._nodes.get(node_id, default)

    @property
    def ap_ids(self) -> list[int]:
        """Ids of all access points, sorted."""
        return sorted(n.node_id for n in self if n.is_ap)

    @property
    def station_ids(self) -> list[int]:
        """Ids of all non-AP stations, sorted."""
        return sorted(n.node_id for n in self if not n.is_ap)

    def merged_with(self, other: "NodeRoster") -> "NodeRoster":
        """Union of two rosters (conflicting ids must agree)."""
        merged = NodeRoster(self)
        for node in other:
            merged.add(node)
        return merged


class Trace:
    """Immutable-ish columnar frame trace.

    Construct with :meth:`from_rows` for readability or directly from
    column arrays for bulk producers (the simulator, the pcap reader).
    """

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        missing = set(_COLUMNS) - set(columns)
        if missing:
            raise ValueError(f"trace missing columns: {sorted(missing)}")
        n = len(columns["time_us"])
        self._cols: dict[str, np.ndarray] = {}
        for name, dtype in _SCHEMA:
            arr = np.asarray(columns[name])
            if len(arr) != n:
                raise ValueError(
                    f"column {name!r} has length {len(arr)}, expected {n}"
                )
            self._cols[name] = arr.astype(dtype, copy=False)

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence[FrameRow]) -> "Trace":
        """Build a trace from scalar :class:`FrameRow` objects."""
        return cls(
            {
                "time_us": np.array([r.time_us for r in rows], dtype=np.int64),
                "ftype": np.array([int(r.ftype) for r in rows], dtype=np.uint8),
                "rate_code": np.array(
                    [rate_to_code(r.rate_mbps) for r in rows], dtype=np.uint8
                ),
                "size": np.array([r.size for r in rows], dtype=np.uint32),
                "src": np.array([r.src for r in rows], dtype=np.uint16),
                "dst": np.array([r.dst for r in rows], dtype=np.uint16),
                "retry": np.array([r.retry for r in rows], dtype=np.bool_),
                "channel": np.array([r.channel for r in rows], dtype=np.uint8),
                "snr_db": np.array([r.snr_db for r in rows], dtype=np.float32),
                "seq": np.array([r.seq for r in rows], dtype=np.uint16),
            }
        )

    @classmethod
    def empty(cls) -> "Trace":
        """A trace with zero frames."""
        return cls({name: np.empty(0, dtype=dtype) for name, dtype in _SCHEMA})

    @classmethod
    def concatenate(cls, traces: Sequence["Trace"]) -> "Trace":
        """Merge traces (e.g. one per sniffer) and sort by timestamp.

        This mirrors how the paper fuses per-channel sniffer logs into
        the day/plenary data sets.
        """
        if not traces:
            return cls.empty()
        cols = {
            name: np.concatenate([t._cols[name] for t in traces])
            for name in _COLUMNS
        }
        merged = cls(cols)
        return merged.sorted_by_time()

    # -- basic protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._cols["time_us"])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return all(
            np.array_equal(self._cols[c], other._cols[c]) for c in _COLUMNS
        )

    def __repr__(self) -> str:
        if len(self) == 0:
            return "Trace(empty)"
        t0, t1 = self.time_us[0], self.time_us[-1]
        return f"Trace({len(self)} frames, {t0}..{t1} us)"

    def row(self, index: int) -> FrameRow:
        """Materialise row ``index`` as a :class:`FrameRow`."""
        return FrameRow(
            time_us=int(self.time_us[index]),
            ftype=FrameType(int(self.ftype[index])),
            rate_mbps=code_to_rate(int(self.rate_code[index])),
            size=int(self.size[index]),
            src=int(self.src[index]),
            dst=int(self.dst[index]),
            retry=bool(self.retry[index]),
            channel=int(self.channel[index]),
            snr_db=float(self.snr_db[index]),
            seq=int(self.seq[index]),
        )

    def iter_rows(self) -> Iterator[FrameRow]:
        """Iterate rows as :class:`FrameRow` objects (slow path; tests/IO)."""
        for i in range(len(self)):
            yield self.row(i)

    # -- column accessors -------------------------------------------------

    @property
    def time_us(self) -> np.ndarray:
        return self._cols["time_us"]

    @property
    def ftype(self) -> np.ndarray:
        return self._cols["ftype"]

    @property
    def rate_code(self) -> np.ndarray:
        return self._cols["rate_code"]

    @property
    def rate_mbps(self) -> np.ndarray:
        """Per-frame data rate in Mbps as ``float64``."""
        from .dot11 import DOT11_RATES_MBPS

        table = np.array(DOT11_RATES_MBPS)
        return table[self._cols["rate_code"]]

    @property
    def size(self) -> np.ndarray:
        return self._cols["size"]

    @property
    def src(self) -> np.ndarray:
        return self._cols["src"]

    @property
    def dst(self) -> np.ndarray:
        return self._cols["dst"]

    @property
    def retry(self) -> np.ndarray:
        return self._cols["retry"]

    @property
    def channel(self) -> np.ndarray:
        return self._cols["channel"]

    @property
    def snr_db(self) -> np.ndarray:
        return self._cols["snr_db"]

    @property
    def seq(self) -> np.ndarray:
        return self._cols["seq"]

    @property
    def size_class(self) -> np.ndarray:
        """Per-frame size-class code (S/M/L/XL) for data frames."""
        return size_class_array(self._cols["size"])

    def column(self, name: str) -> np.ndarray:
        """Raw column access by name."""
        return self._cols[name]

    # -- transformations ----------------------------------------------------

    def select(self, mask: np.ndarray) -> "Trace":
        """Return the sub-trace of rows where ``mask`` is true."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or len(mask) != len(self):
            raise ValueError("mask must be a boolean array matching the trace")
        return Trace({name: arr[mask] for name, arr in self._cols.items()})

    def take(self, indices: np.ndarray) -> "Trace":
        """Return the sub-trace at integer ``indices`` (in that order)."""
        return Trace({name: arr[indices] for name, arr in self._cols.items()})

    def sorted_by_time(self) -> "Trace":
        """Return a stably time-sorted copy (sniffer merge invariant)."""
        order = np.argsort(self.time_us, kind="stable")
        return self.take(order)

    def is_time_sorted(self) -> bool:
        """True if timestamps are non-decreasing."""
        return bool(np.all(np.diff(self.time_us) >= 0)) if len(self) > 1 else True

    def only_type(self, ftype: FrameType) -> "Trace":
        """Sub-trace of a single frame type."""
        return self.select(self.ftype == int(ftype))

    def only_channel(self, channel: int) -> "Trace":
        """Sub-trace of a single 802.11b channel."""
        return self.select(self.channel == channel)

    def between(self, start_us: int, end_us: int) -> "Trace":
        """Sub-trace of frames with ``start_us <= time_us < end_us``."""
        t = self.time_us
        return self.select((t >= start_us) & (t < end_us))

    def slice_rows(self, lo: int, hi: int) -> "Trace":
        """Zero-copy view of the row range ``[lo, hi)``.

        Unlike :meth:`select`/:meth:`take` this never copies column
        data — numpy basic slicing returns views — so the streaming
        pipeline can chunk multi-million-frame traces for free.
        """
        return Trace({name: arr[lo:hi] for name, arr in self._cols.items()})

    @property
    def duration_us(self) -> int:
        """Span from first to last timestamp (0 for traces of < 2 frames)."""
        if len(self) < 2:
            return 0
        return int(self.time_us[-1] - self.time_us[0])

    def to_columns(self) -> dict[str, np.ndarray]:
        """Copy out the raw column arrays (for serialisation layers)."""
        return {name: arr.copy() for name, arr in self._cols.items()}
