"""Utilization binning — the x-axis transform behind Figures 6-15.

Every "versus channel utilization" figure in the paper is built the same
way: take all one-second intervals, compute each second's utilization
percentage, round it to an integer bin, and average the quantity of
interest over all seconds that landed in the same bin ("each point value
y ... is the average over all one second intervals that are y %
utilized").  :func:`bin_by_utilization` implements that transform once so
every analysis module shares identical semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BinnedSeries", "bin_by_utilization", "utilization_bins"]


@dataclass(frozen=True)
class BinnedSeries:
    """A per-utilization-bin aggregate.

    ``utilization[i]`` is the integer bin (percent) and ``value[i]`` the
    mean of the y-quantity over the ``count[i]`` seconds in that bin.
    """

    utilization: np.ndarray
    value: np.ndarray
    count: np.ndarray

    def __len__(self) -> int:
        return len(self.utilization)

    def restricted(self, lo: float, hi: float) -> "BinnedSeries":
        """Bins with ``lo <= utilization <= hi`` (paper uses 30-99 %)."""
        sel = (self.utilization >= lo) & (self.utilization <= hi)
        return BinnedSeries(
            self.utilization[sel], self.value[sel], self.count[sel]
        )

    def value_at(self, utilization: float) -> float:
        """Mean y at the bin nearest ``utilization`` (nan if empty)."""
        if len(self.utilization) == 0:
            return float("nan")
        idx = int(np.argmin(np.abs(self.utilization - utilization)))
        return float(self.value[idx])

    def smoothed(self, window: int = 5) -> "BinnedSeries":
        """Centered moving average of ``value`` (for knee detection)."""
        if window <= 1 or len(self.value) < window:
            return self
        kernel = np.ones(window) / window
        padded = np.pad(self.value, window // 2, mode="edge")
        smoothed = np.convolve(padded, kernel, mode="valid")[: len(self.value)]
        return BinnedSeries(self.utilization, smoothed, self.count)


def utilization_bins(percent: np.ndarray, upper: float = 100.0) -> np.ndarray:
    """Integer utilization bin per second: round then clip to [0, upper]."""
    return np.clip(np.rint(percent), 0, upper).astype(np.int64)


def bin_by_utilization(
    utilization_percent: np.ndarray,
    values: np.ndarray,
    min_count: int = 1,
    upper: float = 100.0,
) -> BinnedSeries:
    """Average ``values`` over seconds grouped by integer utilization bin.

    ``utilization_percent`` and ``values`` are parallel per-second
    arrays.  Bins observed fewer than ``min_count`` times are dropped
    (sparse extreme bins are noise in short traces).
    """
    utilization_percent = np.asarray(utilization_percent, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if utilization_percent.shape != values.shape:
        raise ValueError("utilization and values must be parallel arrays")
    bins = utilization_bins(utilization_percent, upper)
    n_bins = int(upper) + 1
    counts = np.bincount(bins, minlength=n_bins)
    sums = np.bincount(bins, weights=values, minlength=n_bins)
    present = counts >= max(1, min_count)
    lefts = np.arange(n_bins)[present]
    means = sums[present] / counts[present]
    return BinnedSeries(
        utilization=lefts.astype(np.float64),
        value=means,
        count=counts[present].astype(np.int64),
    )
