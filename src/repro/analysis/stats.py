"""Statistical helpers: knee detection and smoothing.

The paper locates its high-congestion threshold by eye: throughput rises
with utilization until ~84 %, then collapses.  :func:`find_knee`
automates that: find the utilization at which a smoothed y-curve attains
its maximum, requiring that the curve actually *declines* afterwards so a
monotone curve reports no knee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .binning import BinnedSeries

__all__ = ["Knee", "find_knee", "moving_average"]


@dataclass(frozen=True)
class Knee:
    """Location of a rise-then-fall maximum in a binned series."""

    utilization: float     # x position of the peak (percent)
    peak_value: float      # smoothed y at the peak
    tail_value: float      # smoothed y at the right edge of the series
    drop_fraction: float   # (peak - tail) / peak

    @property
    def is_significant(self) -> bool:
        """True when the post-peak decline exceeds 10 % of the peak."""
        return self.drop_fraction >= 0.10


def moving_average(values: np.ndarray, window: int = 5) -> np.ndarray:
    """Centered moving average with edge padding."""
    values = np.asarray(values, dtype=np.float64)
    if window <= 1 or len(values) < window:
        return values.copy()
    kernel = np.ones(window) / window
    padded = np.pad(values, window // 2, mode="edge")
    return np.convolve(padded, kernel, mode="valid")[: len(values)]


def find_knee(
    series: BinnedSeries,
    smooth_window: int = 5,
    min_tail_bins: int = 3,
) -> Knee | None:
    """Find the utilization at which ``series`` peaks before declining.

    Returns ``None`` when the series is too short or the peak sits at
    the right edge (no observable decline, hence no knee).  The returned
    :class:`Knee` reports the magnitude of the post-peak drop so callers
    can judge significance.
    """
    if len(series) < smooth_window + min_tail_bins:
        return None
    smooth = moving_average(series.value, smooth_window)
    peak_idx = int(np.argmax(smooth))
    if peak_idx >= len(smooth) - min_tail_bins:
        return None  # peak at the edge: monotone rise, no knee
    peak = float(smooth[peak_idx])
    tail = float(np.mean(smooth[-min_tail_bins:]))
    if peak <= 0:
        return None
    return Knee(
        utilization=float(series.utilization[peak_idx]),
        peak_value=peak,
        tail_value=tail,
        drop_fraction=(peak - tail) / peak,
    )
