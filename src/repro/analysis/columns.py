"""A small numpy-backed columnar table (our pandas substitute).

The paper's figures are all produced by "group frames/seconds by some
key, aggregate a value per group" operations.  :class:`ColumnTable`
provides exactly that: named homogeneous columns, boolean filtering,
sorting and group-by aggregation, with no dependency beyond numpy.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

__all__ = ["ColumnTable"]

_AGGREGATORS: dict[str, Callable[[np.ndarray], float]] = {
    "sum": np.sum,
    "mean": np.mean,
    "median": np.median,
    "min": np.min,
    "max": np.max,
    "count": len,
    "std": np.std,
}


class ColumnTable:
    """Dict-of-arrays table with filter/sort/group-by.

    >>> t = ColumnTable({"k": [1, 1, 2], "v": [10.0, 20.0, 30.0]})
    >>> g = t.group_by("k", {"v": "mean"})
    >>> list(g.column("k")), list(g.column("v_mean"))
    ([1, 2], [15.0, 30.0])
    """

    def __init__(self, columns: Mapping[str, Iterable]) -> None:
        self._cols: dict[str, np.ndarray] = {}
        length: int | None = None
        for name, values in columns.items():
            arr = np.asarray(values)
            if length is None:
                length = len(arr)
            elif len(arr) != length:
                raise ValueError(
                    f"column {name!r} has length {len(arr)}, expected {length}"
                )
            self._cols[name] = arr
        self._length = length or 0

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def column_names(self) -> list[str]:
        return list(self._cols)

    def column(self, name: str) -> np.ndarray:
        """The array behind column ``name``."""
        return self._cols[name]

    def __contains__(self, name: str) -> bool:
        return name in self._cols

    def __repr__(self) -> str:
        return f"ColumnTable({self._length} rows x {list(self._cols)})"

    # -- building ---------------------------------------------------------

    def with_column(self, name: str, values: Iterable) -> "ColumnTable":
        """Return a copy with column ``name`` added or replaced."""
        cols = dict(self._cols)
        arr = np.asarray(values)
        if len(arr) != self._length:
            raise ValueError(
                f"new column {name!r} has length {len(arr)}, expected {self._length}"
            )
        cols[name] = arr
        return ColumnTable(cols)

    @classmethod
    def vstack(cls, tables: Sequence["ColumnTable"]) -> "ColumnTable":
        """Concatenate tables that share the same column set."""
        if not tables:
            return cls({})
        names = tables[0].column_names
        for t in tables[1:]:
            if t.column_names != names:
                raise ValueError("vstack requires identical column sets")
        return cls(
            {n: np.concatenate([t.column(n) for t in tables]) for n in names}
        )

    # -- transformations ----------------------------------------------------

    def filter(self, mask: np.ndarray) -> "ColumnTable":
        """Rows where boolean ``mask`` is true."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or len(mask) != self._length:
            raise ValueError("mask must be a boolean array matching the table")
        return ColumnTable({n: a[mask] for n, a in self._cols.items()})

    def sort_by(self, name: str, descending: bool = False) -> "ColumnTable":
        """Rows stably sorted by column ``name``."""
        order = np.argsort(self._cols[name], kind="stable")
        if descending:
            order = order[::-1]
        return ColumnTable({n: a[order] for n, a in self._cols.items()})

    def head(self, n: int) -> "ColumnTable":
        """First ``n`` rows."""
        return ColumnTable({name: a[:n] for name, a in self._cols.items()})

    def group_by(
        self, key: str, aggregations: Mapping[str, str]
    ) -> "ColumnTable":
        """Aggregate columns per unique value of ``key``.

        ``aggregations`` maps value-column name to one of
        ``sum/mean/median/min/max/count/std``.  The result has the key
        column (sorted ascending) plus one ``{col}_{agg}`` column per
        aggregation.
        """
        keys = self._cols[key]
        uniques, inverse = np.unique(keys, return_inverse=True)
        out: dict[str, np.ndarray] = {key: uniques}
        for col, agg in aggregations.items():
            if agg not in _AGGREGATORS:
                raise ValueError(f"unknown aggregator {agg!r}")
            fn = _AGGREGATORS[agg]
            values = self._cols[col]
            if agg == "sum":
                result = np.bincount(
                    inverse, weights=values.astype(np.float64),
                    minlength=len(uniques),
                )
            elif agg == "count":
                result = np.bincount(inverse, minlength=len(uniques)).astype(
                    np.float64
                )
            elif agg == "mean":
                sums = np.bincount(
                    inverse, weights=values.astype(np.float64),
                    minlength=len(uniques),
                )
                counts = np.bincount(inverse, minlength=len(uniques))
                result = sums / np.maximum(counts, 1)
            else:
                result = np.array(
                    [fn(values[inverse == i]) for i in range(len(uniques))],
                    dtype=np.float64,
                )
            out[f"{col}_{agg}"] = result
        return ColumnTable(out)

    def to_rows(self) -> list[dict]:
        """Materialise as a list of row dicts (small tables, reports)."""
        names = self.column_names
        return [
            {n: self._cols[n][i].item() for n in names}
            for i in range(self._length)
        ]
