"""Analysis substrate: columnar tables, binning, time series, statistics."""

from .binning import BinnedSeries, bin_by_utilization, utilization_bins
from .columns import ColumnTable
from .stats import Knee, find_knee, moving_average
from .timeseries import (
    count_per_interval,
    interval_index,
    mean_per_interval,
    sum_per_interval,
)

__all__ = [
    "BinnedSeries",
    "ColumnTable",
    "Knee",
    "bin_by_utilization",
    "count_per_interval",
    "find_knee",
    "interval_index",
    "mean_per_interval",
    "moving_average",
    "sum_per_interval",
    "utilization_bins",
]
