"""Per-interval time-series aggregation over traces.

Figures 4(b) and 5(a/b) are time series: a quantity aggregated over
fixed intervals of trace time (30 s for user counts, 1 s for
utilization).  These helpers map frame timestamps onto interval indices
and aggregate values per interval.
"""

from __future__ import annotations

import numpy as np

from ..frames import Trace

__all__ = ["interval_index", "count_per_interval", "sum_per_interval", "mean_per_interval"]


def interval_index(
    time_us: np.ndarray, start_us: int, interval_us: int
) -> np.ndarray:
    """Interval index of each timestamp relative to ``start_us``."""
    if interval_us <= 0:
        raise ValueError("interval_us must be positive")
    return ((np.asarray(time_us, dtype=np.int64) - start_us) // interval_us).astype(
        np.int64
    )


def _span(idx: np.ndarray, n_intervals: int | None) -> int:
    if n_intervals is not None:
        return int(n_intervals)
    return int(idx.max()) + 1 if len(idx) else 0


def count_per_interval(
    trace: Trace,
    interval_us: int = 1_000_000,
    start_us: int | None = None,
    n_intervals: int | None = None,
) -> np.ndarray:
    """Number of frames per interval."""
    if len(trace) == 0:
        return np.zeros(n_intervals or 0, dtype=np.int64)
    t0 = int(trace.time_us.min()) if start_us is None else int(start_us)
    idx = interval_index(trace.time_us, t0, interval_us)
    length = _span(idx, n_intervals)
    valid = (idx >= 0) & (idx < length)
    return np.bincount(idx[valid], minlength=length)[:length]


def sum_per_interval(
    trace: Trace,
    values: np.ndarray,
    interval_us: int = 1_000_000,
    start_us: int | None = None,
    n_intervals: int | None = None,
) -> np.ndarray:
    """Sum of a per-frame quantity (e.g. bits) per interval."""
    if len(trace) == 0:
        return np.zeros(n_intervals or 0, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if values.shape[0] != len(trace):
        raise ValueError("values must be parallel to the trace")
    t0 = int(trace.time_us.min()) if start_us is None else int(start_us)
    idx = interval_index(trace.time_us, t0, interval_us)
    length = _span(idx, n_intervals)
    valid = (idx >= 0) & (idx < length)
    return np.bincount(idx[valid], weights=values[valid], minlength=length)[:length]


def mean_per_interval(
    trace: Trace,
    values: np.ndarray,
    interval_us: int = 1_000_000,
    start_us: int | None = None,
    n_intervals: int | None = None,
) -> np.ndarray:
    """Mean of a per-frame quantity per interval (nan where empty)."""
    sums = sum_per_interval(trace, values, interval_us, start_us, n_intervals)
    counts = count_per_interval(trace, interval_us, start_us, len(sums)).astype(
        np.float64
    )
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(counts > 0, sums / counts, np.nan)
