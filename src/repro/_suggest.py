"""Shared "did you mean ...?" error-message helper.

Every name-keyed surface (scenario library parameters, pipeline
consumer names, spec-file keys) fails the same way: with the close
matches first and the full valid vocabulary after, so a typo costs one
glance instead of a traceback dive.
"""

from __future__ import annotations

from difflib import get_close_matches
from typing import Iterable

__all__ = ["suggest", "unknown_name_message"]


def suggest(name: str, options: Iterable[str], n: int = 3) -> list[str]:
    """Closest valid names to ``name``, best first (possibly empty)."""
    return get_close_matches(name, list(options), n=n, cutoff=0.5)


def unknown_name_message(
    kind: str, name: str, options: Iterable[str]
) -> str:
    """Uniform unknown-name diagnostic: suggestion plus the full list."""
    options = sorted(options)
    close = suggest(name, options)
    hint = f" — did you mean {', '.join(repr(c) for c in close)}?" if close else ""
    return (
        f"unknown {kind} {name!r}{hint} "
        f"(valid: {', '.join(options)})"
    )
