"""``python -m repro`` — the toolkit CLI (same as the ``repro`` script).

Delegates to :mod:`repro.tools`, so ``python -m repro run study.toml``,
``python -m repro.tools run study.toml`` and ``repro run study.toml``
are the same program.
"""

from .tools import main

if __name__ == "__main__":
    raise SystemExit(main())
