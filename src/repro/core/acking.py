"""DATA-ACK matching over a captured trace (paper §6.4).

The paper identifies a *successfully acknowledged* data frame as "a data
frame that is immediately followed by an acknowledgment from the
receiving station" in the sniffer log — the DATA-ACK atomicity of DCF
guarantees nothing else can legally appear between the two on the same
channel.  We reproduce that rule verbatim: DATA at row *i* is acked iff
row *i+1* (on the same channel) is an ACK whose receiver address equals
the DATA's transmitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..frames import FrameType, Trace

__all__ = ["AckMatch", "match_acks"]


@dataclass(frozen=True)
class AckMatch:
    """Result of scanning a trace for DATA-ACK pairs.

    All arrays are parallel to the input trace rows.

    ``acked``    — True for DATA rows immediately followed by their ACK.
    ``ack_index``— row index of the matching ACK (-1 where unmatched).
    ``ack_time_us`` — timestamp of the matching ACK (-1 where unmatched).
    """

    acked: np.ndarray
    ack_index: np.ndarray
    ack_time_us: np.ndarray

    @property
    def n_acked(self) -> int:
        return int(np.count_nonzero(self.acked))


def match_acks(trace: Trace) -> AckMatch:
    """Match each DATA frame with its immediately-following ACK.

    The trace must be time-sorted; per-channel sub-traces should be
    matched separately when a merged multi-channel trace is analysed
    (callers normally operate per channel, as the sniffers did).
    """
    if not trace.is_time_sorted():
        trace = trace.sorted_by_time()
    n = len(trace)
    acked = np.zeros(n, dtype=np.bool_)
    ack_index = np.full(n, -1, dtype=np.int64)
    ack_time = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return AckMatch(acked, ack_index, ack_time)

    ftype = trace.ftype
    is_data = ftype[:-1] == int(FrameType.DATA)
    next_is_ack = ftype[1:] == int(FrameType.ACK)
    addr_match = trace.dst[1:] == trace.src[:-1]
    same_channel = trace.channel[1:] == trace.channel[:-1]
    hit = is_data & next_is_ack & addr_match & same_channel

    idx = np.nonzero(hit)[0]
    acked[idx] = True
    ack_index[idx] = idx + 1
    ack_time[idx] = trace.time_us[idx + 1]
    return AckMatch(acked, ack_index, ack_time)
