"""DATA-ACK matching over a captured trace (paper §6.4).

The paper identifies a *successfully acknowledged* data frame as "a data
frame that is immediately followed by an acknowledgment from the
receiving station" in the sniffer log — the DATA-ACK atomicity of DCF
guarantees nothing else can legally appear between the two on the same
channel.  We reproduce that rule verbatim: DATA at row *i* is acked iff
row *i+1* (on the same channel) is an ACK whose receiver address equals
the DATA's transmitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..frames import FrameType, Trace

__all__ = ["AckMatch", "ack_match_pairs", "match_acks"]


def ack_match_pairs(
    ftype_prev: np.ndarray,
    ftype_next: np.ndarray,
    src_prev: np.ndarray,
    dst_next: np.ndarray,
    channel_prev: np.ndarray,
    channel_next: np.ndarray,
) -> np.ndarray:
    """The §6.4 rule on consecutive frame pairs, as a boolean array.

    True where the *prev* frame is a DATA frame immediately followed by
    its ACK (*next*): same channel, ACK receiver == DATA transmitter.
    Single source of the rule for :func:`match_acks` and the streaming
    pipeline's chunk-boundary matching.
    """
    return (
        (ftype_prev == int(FrameType.DATA))
        & (ftype_next == int(FrameType.ACK))
        & (dst_next == src_prev)
        & (channel_next == channel_prev)
    )


@dataclass(frozen=True)
class AckMatch:
    """Result of scanning a trace for DATA-ACK pairs.

    All arrays are parallel to the input trace rows.

    ``acked``    — True for DATA rows immediately followed by their ACK.
    ``ack_index``— row index of the matching ACK (-1 where unmatched).
    ``ack_time_us`` — timestamp of the matching ACK (-1 where unmatched).
    """

    acked: np.ndarray
    ack_index: np.ndarray
    ack_time_us: np.ndarray

    @property
    def n_acked(self) -> int:
        return int(np.count_nonzero(self.acked))


def match_acks(trace: Trace) -> AckMatch:
    """Match each DATA frame with its immediately-following ACK.

    The trace must be time-sorted; per-channel sub-traces should be
    matched separately when a merged multi-channel trace is analysed
    (callers normally operate per channel, as the sniffers did).
    """
    if not trace.is_time_sorted():
        trace = trace.sorted_by_time()
    n = len(trace)
    acked = np.zeros(n, dtype=np.bool_)
    ack_index = np.full(n, -1, dtype=np.int64)
    ack_time = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return AckMatch(acked, ack_index, ack_time)

    ftype = trace.ftype
    hit = ack_match_pairs(
        ftype[:-1],
        ftype[1:],
        trace.src[:-1],
        trace.dst[1:],
        trace.channel[:-1],
        trace.channel[1:],
    )

    idx = np.nonzero(hit)[0]
    acked[idx] = True
    ack_index[idx] = idx + 1
    ack_time[idx] = trace.time_us[idx + 1]
    return AckMatch(acked, ack_index, ack_time)
