"""Per-second channel utilization U(t) — paper §5.1, Equation 8.

U(t) = CBT_TOTAL(t) / 1e6 * 100, i.e. the busy microseconds in a
one-second interval expressed as a percentage.  Because the CBT model
attributes nominal IFS overheads to every captured frame, a saturated
second can exceed 100 % slightly; the paper's Figure 5 clips its axis at
100 but the raw metric is unbounded above.  We keep the raw value and let
callers clip.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..frames import Trace
from .busytime import cbt_by_second
from .timing import DOT11B_TIMING, TimingParameters

__all__ = ["UtilizationSeries", "utilization_series", "utilization_histogram"]


@dataclass(frozen=True)
class UtilizationSeries:
    """Per-second utilization of one channel or one merged data set.

    ``start_us`` anchors second ``0``; ``percent[i]`` is U(t) for the
    interval ``[start_us + i s, start_us + (i+1) s)``.
    """

    start_us: int
    percent: np.ndarray

    def __len__(self) -> int:
        return len(self.percent)

    @property
    def seconds(self) -> np.ndarray:
        """Elapsed-seconds axis for plotting (Fig 5a/5b)."""
        return np.arange(len(self.percent))

    def clipped(self, upper: float = 100.0) -> np.ndarray:
        """Utilization clipped to ``[0, upper]`` as displayed in Fig 5."""
        return np.clip(self.percent, 0.0, upper)

    def histogram(
        self, bin_width: float = 1.0, upper: float = 100.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Frequency of utilization values (Fig 5c).

        Returns ``(bin_lefts, counts)`` where counts[i] is the number of
        seconds whose (clipped) utilization fell in
        ``[bin_lefts[i], bin_lefts[i] + bin_width)``.
        """
        edges = np.arange(0.0, upper + bin_width, bin_width)
        counts, _ = np.histogram(self.clipped(upper), bins=edges)
        return edges[:-1], counts

    def mode_percent(self, bin_width: float = 1.0) -> float:
        """The most frequent utilization level (paper: ~55 % day, ~86 % plenary)."""
        lefts, counts = self.histogram(bin_width)
        if counts.sum() == 0:
            return 0.0
        return float(lefts[np.argmax(counts)] + bin_width / 2.0)


def utilization_series(
    trace: Trace,
    timing: TimingParameters = DOT11B_TIMING,
    start_us: int | None = None,
    n_seconds: int | None = None,
) -> UtilizationSeries:
    """Compute U(t) for every one-second interval of ``trace`` (Eq 8)."""
    if len(trace) and start_us is None:
        start_us = int(trace.sorted_by_time().time_us[0])
    busy_us = cbt_by_second(trace, timing, start_us=start_us, n_seconds=n_seconds)
    return UtilizationSeries(
        start_us=int(start_us or 0), percent=busy_us / 1_000_000.0 * 100.0
    )


def utilization_histogram(
    trace: Trace,
    timing: TimingParameters = DOT11B_TIMING,
    bin_width: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """One-call Figure 5(c): histogram of per-second utilization."""
    return utilization_series(trace, timing).histogram(bin_width)
