"""Per-AP traffic and user-association statistics (paper §4.3, Fig 4a/4b, Table 1).

* Figure 4(a): data+control frames sent/received by the 15 most active
  APs; the top 15 carried 90.33 % (day) / 95.37 % (plenary) of frames.
* Figure 4(b): number of users associated with the network over time,
  averaged over 30-second intervals (peaks: 523 day, 325 plenary).
* Table 1: per-session, per-channel capture summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import ColumnTable
from ..frames import FrameType, NodeRoster, Trace

__all__ = [
    "ApActivity",
    "ap_frame_ranking",
    "ranking_from_counts",
    "user_association_series",
    "DatasetSummary",
    "dataset_summary",
]


@dataclass(frozen=True)
class ApActivity:
    """Figure 4(a) payload: per-AP frame counts, descending."""

    table: ColumnTable  # columns: ap, rank, frames
    total_frames: int

    def top_fraction(self, n: int = 15) -> float:
        """Fraction of all AP-touching frames carried by the top ``n`` APs."""
        if self.total_frames == 0:
            return 0.0
        frames = self.table.column("frames")
        return float(frames[:n].sum()) / self.total_frames


def ap_frame_ranking(trace: Trace, roster: NodeRoster) -> ApActivity:
    """Rank APs by data+control frames sent or received (Fig 4a)."""
    ap_ids = np.array(roster.ap_ids, dtype=np.int64)
    src = trace.src.astype(np.int64)
    dst = trace.dst.astype(np.int64)
    counts = np.array(
        [int(np.count_nonzero((src == ap) | (dst == ap))) for ap in ap_ids],
        dtype=np.int64,
    )
    return ranking_from_counts(ap_ids, counts)


def ranking_from_counts(ap_ids: np.ndarray, counts: np.ndarray) -> ApActivity:
    """Assemble the Fig-4a ranking from per-AP frame counts.

    Shared with the streaming pipeline, which accumulates the counts
    chunk by chunk instead of scanning the whole trace at once.
    """
    ap_ids = np.asarray(ap_ids, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    order = np.argsort(counts, kind="stable")[::-1]
    table = ColumnTable(
        {
            "ap": ap_ids[order],
            "rank": np.arange(1, len(ap_ids) + 1),
            "frames": counts[order],
        }
    )
    return ApActivity(table=table, total_frames=int(counts.sum()))


def user_association_series(
    trace: Trace,
    roster: NodeRoster,
    interval_us: int = 30_000_000,
) -> ColumnTable:
    """Users active with the network per interval (Fig 4b).

    The paper counts SNMP-style associations; from a link-layer trace we
    count distinct non-AP stations that exchanged any frame with an AP in
    each 30-second interval — the observable proxy for "associated and
    active".  Returns columns ``interval`` (index) and ``users``.
    """
    if len(trace) == 0:
        return ColumnTable(
            {"interval": np.empty(0, dtype=np.int64), "users": np.empty(0, dtype=np.int64)}
        )
    trace = trace.sorted_by_time()
    ap_set = np.array(roster.ap_ids, dtype=np.int64)
    src = trace.src.astype(np.int64)
    dst = trace.dst.astype(np.int64)
    src_is_ap = np.isin(src, ap_set)
    dst_is_ap = np.isin(dst, ap_set)
    # The station endpoint of each AP<->station frame; -1 where none.
    station = np.where(
        src_is_ap & ~dst_is_ap, dst, np.where(dst_is_ap & ~src_is_ap, src, -1)
    )
    # Only roster stations count as users: broadcast destinations
    # (beacons) and pseudo-addresses must not inflate the census.
    station_set = np.array(roster.station_ids, dtype=np.int64)
    station = np.where(np.isin(station, station_set), station, -1)
    t0 = int(trace.time_us[0])
    interval = ((trace.time_us - t0) // interval_us).astype(np.int64)
    n_intervals = int(interval[-1]) + 1
    users = np.zeros(n_intervals, dtype=np.int64)
    valid = station >= 0
    for i in range(n_intervals):
        sel = valid & (interval == i)
        users[i] = len(np.unique(station[sel]))
    return ColumnTable(
        {"interval": np.arange(n_intervals), "users": users}
    )


@dataclass(frozen=True)
class DatasetSummary:
    """Table 1 analogue plus the frame-mix counts reported in §4.3."""

    name: str
    channels: tuple[int, ...]
    start_us: int
    duration_s: float
    n_frames: int
    n_data: int
    n_ack: int
    n_rts: int
    n_cts: int
    n_beacon: int

    def as_row(self) -> dict:
        return {
            "dataset": self.name,
            "channels": "/".join(str(c) for c in self.channels),
            "duration_s": round(self.duration_s, 1),
            "frames": self.n_frames,
            "data": self.n_data,
            "ack": self.n_ack,
            "rts": self.n_rts,
            "cts": self.n_cts,
            "beacon": self.n_beacon,
        }


def dataset_summary(trace: Trace, name: str) -> DatasetSummary:
    """Summarise a captured data set (Table 1 row + §4.3 frame counts)."""
    ftype = trace.ftype

    def count(ft: FrameType) -> int:
        return int(np.count_nonzero(ftype == int(ft)))

    channels = tuple(sorted(int(c) for c in np.unique(trace.channel))) if len(trace) else ()
    return DatasetSummary(
        name=name,
        channels=channels,
        start_us=int(trace.time_us.min()) if len(trace) else 0,
        duration_s=trace.sorted_by_time().duration_us / 1e6 if len(trace) else 0.0,
        n_frames=len(trace),
        n_data=count(FrameType.DATA),
        n_ack=count(FrameType.ACK),
        n_rts=count(FrameType.RTS),
        n_cts=count(FrameType.CTS),
        n_beacon=count(FrameType.BEACON),
    )
