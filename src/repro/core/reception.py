"""First-attempt frame reception (paper §6.4, Figure 14).

Figure 14 plots, against utilization, the average number of data frames
per second that were **successfully acknowledged on their first
transmission attempt**, split by data rate.  The paper's reading: 11 Mbps
frames dominate, dip in the 80-84 % contention band, and rise again under
high congestion as slow 1 Mbps frames crowd the channel and the short
11 Mbps frames that do get through survive with higher probability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import BinnedSeries, bin_by_utilization, sum_per_interval
from ..frames import DOT11_RATES_MBPS, FrameType, Trace
from .acking import match_acks
from .timing import DOT11B_TIMING, TimingParameters
from .utilization import utilization_series

__all__ = ["ReceptionSeries", "first_attempt_ack_vs_utilization"]


@dataclass(frozen=True)
class ReceptionSeries:
    """First-attempt-acked frames/second per rate, per utilization bin."""

    per_rate: dict[float, BinnedSeries]

    def __getitem__(self, rate_mbps: float) -> BinnedSeries:
        return self.per_rate[rate_mbps]

    @property
    def rates(self) -> tuple[float, ...]:
        return tuple(self.per_rate)


def first_attempt_ack_vs_utilization(
    trace: Trace,
    timing: TimingParameters = DOT11B_TIMING,
    min_count: int = 1,
) -> ReceptionSeries:
    """Reproduce Figure 14 for ``trace``.

    A frame qualifies when (a) its Retry bit is clear — it is a first
    attempt — and (b) it is immediately followed in the capture by its
    ACK (the paper's §6.4 identification rule).
    """
    trace = trace.sorted_by_time()
    util = utilization_series(trace, timing)
    n = len(util)
    match = match_acks(trace)
    first_attempt_acked = (
        match.acked
        & (trace.ftype == int(FrameType.DATA))
        & ~trace.retry
    )
    per_rate: dict[float, BinnedSeries] = {}
    for code, rate in enumerate(DOT11_RATES_MBPS):
        qualifying = (first_attempt_acked & (trace.rate_code == code)).astype(
            np.float64
        )
        counts = sum_per_interval(
            trace, qualifying, start_us=util.start_us, n_intervals=n
        )
        per_rate[rate] = bin_by_utilization(
            util.percent, counts, min_count=min_count
        )
    return ReceptionSeries(per_rate=per_rate)
