"""Per-rate channel busy-time share and byte volume (paper §6.2, Figs 8-9).

Figure 8: for each utilization level, the average fraction of a one-second
interval occupied by data frames at each of the four rates.  The paper's
headline: the 1 Mbps share grows from 0.43 s to 0.54 s across the
high-congestion knee while the 11 Mbps share stays near half that.

Figure 9: average number of bytes transmitted per second at each rate.
11 Mbps carries roughly 300 % more bytes than 1 Mbps despite occupying
half the channel time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import BinnedSeries, bin_by_utilization, sum_per_interval
from ..frames import DOT11_RATES_MBPS, FrameType, Trace
from .busytime import cbt_by_second_per_rate
from .timing import DOT11B_TIMING, TimingParameters
from .utilization import utilization_series

__all__ = ["RateShareSeries", "busytime_share_vs_utilization", "bytes_per_rate_vs_utilization"]


@dataclass(frozen=True)
class RateShareSeries:
    """Per-rate binned series, keyed by Mbps value (1, 2, 5.5, 11)."""

    per_rate: dict[float, BinnedSeries]

    def __getitem__(self, rate_mbps: float) -> BinnedSeries:
        return self.per_rate[rate_mbps]

    @property
    def rates(self) -> tuple[float, ...]:
        return tuple(self.per_rate)

    def ratio_at(self, num_rate: float, den_rate: float, utilization: float) -> float:
        """value(num_rate)/value(den_rate) at a utilization bin."""
        num = self.per_rate[num_rate].value_at(utilization)
        den = self.per_rate[den_rate].value_at(utilization)
        if den == 0 or np.isnan(den):
            return float("nan")
        return num / den


def busytime_share_vs_utilization(
    trace: Trace,
    timing: TimingParameters = DOT11B_TIMING,
    min_count: int = 1,
) -> RateShareSeries:
    """Reproduce Figure 8: seconds of channel time per rate, per bin."""
    trace = trace.sorted_by_time()
    util = utilization_series(trace, timing)
    n = len(util)
    cbt = cbt_by_second_per_rate(trace, timing, start_us=util.start_us, n_seconds=n)
    per_rate = {}
    for code, rate in enumerate(DOT11_RATES_MBPS):
        seconds_busy = cbt[:, code] / 1e6  # fraction of each second
        per_rate[rate] = bin_by_utilization(
            util.percent, seconds_busy, min_count=min_count
        )
    return RateShareSeries(per_rate=per_rate)


def bytes_per_rate_vs_utilization(
    trace: Trace,
    timing: TimingParameters = DOT11B_TIMING,
    min_count: int = 1,
) -> RateShareSeries:
    """Reproduce Figure 9: data bytes per second per rate, per bin."""
    trace = trace.sorted_by_time()
    util = utilization_series(trace, timing)
    n = len(util)
    data = trace.only_type(FrameType.DATA)
    per_rate = {}
    for code, rate in enumerate(DOT11_RATES_MBPS):
        sub = data.select(data.rate_code == code)
        byte_counts = sum_per_interval(
            sub,
            sub.size.astype(np.float64),
            start_us=util.start_us,
            n_intervals=n,
        )
        per_rate[rate] = bin_by_utilization(
            util.percent, byte_counts, min_count=min_count
        )
    return RateShareSeries(per_rate=per_rate)
