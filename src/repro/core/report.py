"""One-call trace analysis bundling every result in the paper.

``analyze_trace`` runs the complete pipeline — utilization, congestion
classification, throughput/goodput curves, RTS/CTS behaviour, per-rate
busy-time and bytes, category transmission counts, first-attempt
reception, acceptance delays, unrecorded-frame estimation and per-AP
statistics — and returns a :class:`CongestionReport` that examples,
benchmarks and downstream users consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis import ColumnTable
from ..frames import NodeRoster, Trace
from .ap_stats import ApActivity, DatasetSummary, ap_frame_ranking, dataset_summary, user_association_series
from .congestion import CongestionClassifier, CongestionLevel, CongestionThresholds
from .delay import DelaySeries, acceptance_delay_vs_utilization
from .rate_share import RateShareSeries, busytime_share_vs_utilization, bytes_per_rate_vs_utilization
from .reception import ReceptionSeries, first_attempt_ack_vs_utilization
from .rts_cts import RtsCtsSeries, rts_cts_vs_utilization
from .throughput import ThroughputSeries
from .timing import DOT11B_TIMING, TimingParameters
from .transmissions import CategoryCounts, transmissions_vs_utilization
from .unrecorded import UnrecordedEstimate, estimate_unrecorded, unrecorded_by_ap
from .utilization import UtilizationSeries, utilization_series

__all__ = ["CongestionReport", "analyze_trace"]


@dataclass
class CongestionReport:
    """All analyses of one captured data set, in paper order."""

    name: str
    summary: DatasetSummary                      # Table 1
    utilization: UtilizationSeries               # Fig 5
    thresholds: CongestionThresholds             # §5.3
    level_occupancy: dict[CongestionLevel, float]
    throughput: ThroughputSeries                 # Fig 6
    rts_cts: RtsCtsSeries                        # Fig 7
    busytime_share: RateShareSeries              # Fig 8
    bytes_per_rate: RateShareSeries              # Fig 9
    transmissions: CategoryCounts                # Figs 10-13
    reception: ReceptionSeries                   # Fig 14
    delays: DelaySeries                          # Fig 15
    unrecorded: UnrecordedEstimate               # §4.4
    ap_activity: ApActivity | None = None        # Fig 4a
    unrecorded_per_ap: ColumnTable | None = None # Fig 4c
    user_series: ColumnTable | None = None       # Fig 4b

    def headline(self) -> dict[str, float]:
        """The scalar findings the paper leads with."""
        peak_util, peak_tput = self.throughput.peak()
        high = self.thresholds.high
        return {
            "throughput_peak_mbps": peak_tput,
            "throughput_peak_utilization": peak_util,
            "high_congestion_threshold": high,
            "mode_utilization": self.utilization.mode_percent(),
            "unrecorded_percent": self.unrecorded.unrecorded_percent,
            "high_congestion_fraction": self.level_occupancy[CongestionLevel.HIGH],
        }


def analyze_trace(
    trace: Trace,
    roster: NodeRoster | None = None,
    name: str = "trace",
    timing: TimingParameters = DOT11B_TIMING,
    min_count: int = 1,
) -> CongestionReport:
    """Run the full paper pipeline on ``trace``.

    ``roster`` enables the AP-aware analyses (Fig 4a/4b/4c); without it
    those report fields are ``None``.
    """
    trace = trace.sorted_by_time()
    classifier = CongestionClassifier().fit(trace, timing)
    assert classifier.thresholds is not None and classifier.curves is not None

    report = CongestionReport(
        name=name,
        summary=dataset_summary(trace, name),
        utilization=utilization_series(trace, timing),
        thresholds=classifier.thresholds,
        level_occupancy=classifier.occupancy(trace, timing),
        throughput=classifier.curves,
        rts_cts=rts_cts_vs_utilization(trace, timing, min_count),
        busytime_share=busytime_share_vs_utilization(trace, timing, min_count),
        bytes_per_rate=bytes_per_rate_vs_utilization(trace, timing, min_count),
        transmissions=transmissions_vs_utilization(trace, timing=timing, min_count=min_count),
        reception=first_attempt_ack_vs_utilization(trace, timing, min_count),
        delays=acceptance_delay_vs_utilization(trace, timing=timing, min_count=min_count),
        unrecorded=estimate_unrecorded(trace),
    )
    if roster is not None:
        report.ap_activity = ap_frame_ranking(trace, roster)
        report.unrecorded_per_ap = unrecorded_by_ap(trace, roster)
        report.user_series = user_association_series(trace, roster)
    return report
