"""Per-station statistics and fairness (paper §6.1's fairness theme).

The paper's fairness discussion (RTS/CTS users vs plain users) is one
instance of a general question: how evenly does a congested DCF cell
serve its stations?  This module computes per-station delivered frames,
bytes, and airtime from a capture, plus Jain's fairness index over any
of those quantities — the standard WLAN fairness measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import ColumnTable
from ..frames import FrameType, NodeRoster, Trace
from .acking import match_acks
from .busytime import trace_cbt_us

__all__ = ["StationStats", "station_stats", "jain_fairness_index"]


def jain_fairness_index(values: np.ndarray) -> float:
    """Jain's index: (sum x)^2 / (n * sum x^2); 1 = perfectly fair.

    Returns nan for empty input and 1.0 when every share is zero (an
    idle cell starves no one).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return float("nan")
    total = values.sum()
    squares = (values**2).sum()
    if squares == 0:
        return 1.0
    return float(total**2 / (values.size * squares))


@dataclass(frozen=True)
class StationStats:
    """Per-station service measured from a capture.

    ``table`` columns: ``station``, ``tx_frames`` (data attempts seen),
    ``acked_frames``, ``acked_bytes``, ``airtime_us`` (channel busy time
    of the station's transmissions and the responses they solicited).
    """

    table: ColumnTable

    def __len__(self) -> int:
        return len(self.table)

    def fairness(self, column: str = "acked_bytes") -> float:
        """Jain's index over one service measure."""
        return jain_fairness_index(self.table.column(column))

    def share_of(self, station_id: int, column: str = "acked_bytes") -> float:
        """One station's fraction of the total for ``column``."""
        values = self.table.column(column).astype(np.float64)
        total = values.sum()
        if total == 0:
            return 0.0
        stations = self.table.column("station")
        sel = stations == station_id
        return float(values[sel].sum() / total)


def station_stats(trace: Trace, roster: NodeRoster) -> StationStats:
    """Measure per-station uplink service from a capture.

    Only station-originated data frames count, mirroring the paper's
    §6.1 focus on stations' channel access (the AP transmits on behalf
    of everyone).
    """
    trace = trace.sorted_by_time()
    match = match_acks(trace)
    cbt = trace_cbt_us(trace)
    is_data = trace.ftype == int(FrameType.DATA)
    src = trace.src.astype(np.int64)
    dst = trace.dst.astype(np.int64)

    station_ids = np.array(roster.station_ids, dtype=np.int64)
    tx_frames = np.zeros(len(station_ids), dtype=np.int64)
    acked_frames = np.zeros(len(station_ids), dtype=np.int64)
    acked_bytes = np.zeros(len(station_ids), dtype=np.int64)
    airtime = np.zeros(len(station_ids), dtype=np.float64)

    solicited = (
        (trace.ftype == int(FrameType.ACK)) | (trace.ftype == int(FrameType.CTS))
    )
    own_tx = is_data | (trace.ftype == int(FrameType.RTS))

    for i, sid in enumerate(station_ids):
        mine = own_tx & (src == sid)
        tx_frames[i] = int(np.count_nonzero(mine & is_data))
        acked = match.acked & (src == sid)
        acked_frames[i] = int(np.count_nonzero(acked))
        acked_bytes[i] = int(trace.size[acked].sum())
        airtime[i] = float(cbt[mine | (solicited & (dst == sid))].sum())

    return StationStats(
        table=ColumnTable(
            {
                "station": station_ids,
                "tx_frames": tx_frames,
                "acked_frames": acked_frames,
                "acked_bytes": acked_bytes,
                "airtime_us": airtime,
            }
        )
    )
