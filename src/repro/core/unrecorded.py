"""Unrecorded-frame estimation via DCF atomicity (paper §4.4, Eq 1).

Vicinity sniffers miss frames (bit errors, hardware drops, hidden
terminals).  The paper estimates how many by exploiting three atomicity
rules of the 802.11 DCF exchange:

* **DATA-ACK**: every captured ACK must be preceded by the DATA frame it
  acknowledges (ACK receiver == DATA transmitter).  A lone ACK implies
  one unrecorded DATA frame.
* **RTS-CTS**: every captured CTS must be preceded by its RTS
  (CTS receiver == RTS transmitter).  A lone CTS implies an unrecorded RTS.
* **RTS-CTS-DATA**: if an RTS and the subsequent DATA from the same
  transmitter are captured but no CTS between them, the CTS (which must
  have been sent, else no DATA would follow) was unrecorded.

Unrecorded % = unrecorded / (unrecorded + captured)    (Equation 1)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import ColumnTable
from ..frames import FrameType, NodeRoster, Trace

__all__ = [
    "UnrecordedEstimate",
    "estimate_unrecorded",
    "unrecorded_by_ap",
    "ap_table_from_counts",
]


@dataclass(frozen=True)
class UnrecordedEstimate:
    """Counts of inferred-missing frames for one trace.

    ``missing_data_src`` etc. record, for each inferred missing frame,
    the node that must have transmitted it — used for per-AP attribution
    (Figure 4c).
    """

    captured_frames: int
    missing_data: int
    missing_rts: int
    missing_cts: int
    missing_data_src: np.ndarray
    missing_data_dst: np.ndarray

    @property
    def total_missing(self) -> int:
        return self.missing_data + self.missing_rts + self.missing_cts

    @property
    def unrecorded_percent(self) -> float:
        """Equation 1, over the whole trace."""
        denom = self.total_missing + self.captured_frames
        if denom == 0:
            return 0.0
        return 100.0 * self.total_missing / denom


def estimate_unrecorded(trace: Trace) -> UnrecordedEstimate:
    """Apply the three atomicity rules to a time-sorted trace."""
    if not trace.is_time_sorted():
        trace = trace.sorted_by_time()
    n = len(trace)
    ftype = trace.ftype
    src = trace.src
    dst = trace.dst

    if n < 2:
        empty = np.empty(0, dtype=np.int64)
        return UnrecordedEstimate(n, 0, 0, 0, empty, empty)

    prev_type = ftype[:-1]
    cur_type = ftype[1:]

    # DATA-ACK: ACK at i whose predecessor is not its DATA.
    is_ack = cur_type == int(FrameType.ACK)
    prev_is_matching_data = (prev_type == int(FrameType.DATA)) & (
        src[:-1] == dst[1:]
    )
    lone_ack = is_ack & ~prev_is_matching_data
    # Attribute each missing DATA to (transmitter = ACK dst, receiver = ACK src).
    lone_ack_rows = np.nonzero(lone_ack)[0] + 1
    missing_data_src = dst[lone_ack_rows].astype(np.int64)
    missing_data_dst = src[lone_ack_rows].astype(np.int64)

    # First frame of the trace: an opening ACK also implies a missing DATA.
    if ftype[0] == int(FrameType.ACK):
        missing_data_src = np.concatenate([[int(dst[0])], missing_data_src])
        missing_data_dst = np.concatenate([[int(src[0])], missing_data_dst])

    # RTS-CTS: CTS at i whose predecessor is not its RTS.
    is_cts = cur_type == int(FrameType.CTS)
    prev_is_matching_rts = (prev_type == int(FrameType.RTS)) & (
        src[:-1] == dst[1:]
    )
    lone_cts = is_cts & ~prev_is_matching_rts
    missing_rts = int(np.count_nonzero(lone_cts))
    if ftype[0] == int(FrameType.CTS):
        missing_rts += 1

    # RTS-CTS-DATA: RTS at i directly followed by the DATA it protected
    # (same transmitter, same receiver) with no CTS in between.
    is_rts = prev_type == int(FrameType.RTS)
    next_is_same_flow_data = (
        (cur_type == int(FrameType.DATA))
        & (src[1:] == src[:-1])
        & (dst[1:] == dst[:-1])
    )
    missing_cts = int(np.count_nonzero(is_rts & next_is_same_flow_data))

    return UnrecordedEstimate(
        captured_frames=n,
        missing_data=len(missing_data_src),
        missing_rts=missing_rts,
        missing_cts=missing_cts,
        missing_data_src=missing_data_src,
        missing_data_dst=missing_data_dst,
    )


def unrecorded_by_ap(
    trace: Trace, roster: NodeRoster, top_n: int = 15
) -> ColumnTable:
    """Per-AP unrecorded percentage for the ``top_n`` busiest APs (Fig 4c).

    A captured frame counts toward an AP when the AP is its source or
    destination; an inferred-missing DATA frame counts toward the AP
    endpoint of its reconstructed (src, dst) pair.  Returns a table with
    columns ``ap``, ``rank``, ``captured``, ``missing``,
    ``unrecorded_percent`` ordered by descending captured traffic.
    """
    if not trace.is_time_sorted():
        trace = trace.sorted_by_time()
    estimate = estimate_unrecorded(trace)
    ap_ids = np.array(roster.ap_ids, dtype=np.int64)
    if len(ap_ids) == 0:
        return ColumnTable(
            {
                "ap": np.empty(0, dtype=np.int64),
                "rank": np.empty(0, dtype=np.int64),
                "captured": np.empty(0, dtype=np.int64),
                "missing": np.empty(0, dtype=np.int64),
                "unrecorded_percent": np.empty(0, dtype=np.float64),
            }
        )

    captured = np.zeros(len(ap_ids), dtype=np.int64)
    missing = np.zeros(len(ap_ids), dtype=np.int64)
    src = trace.src.astype(np.int64)
    dst = trace.dst.astype(np.int64)
    for i, ap in enumerate(ap_ids):
        captured[i] = int(np.count_nonzero((src == ap) | (dst == ap)))
        missing[i] = int(
            np.count_nonzero(
                (estimate.missing_data_src == ap)
                | (estimate.missing_data_dst == ap)
            )
        )
    return ap_table_from_counts(ap_ids, captured, missing, top_n)


def ap_table_from_counts(
    ap_ids: np.ndarray,
    captured: np.ndarray,
    missing: np.ndarray,
    top_n: int = 15,
) -> ColumnTable:
    """Assemble the Fig-4c table from per-AP captured/missing counts.

    Shared with the streaming pipeline, which accumulates both count
    arrays incrementally instead of re-scanning the trace.
    """
    ap_ids = np.asarray(ap_ids, dtype=np.int64)
    captured = np.asarray(captured, dtype=np.int64)
    missing = np.asarray(missing, dtype=np.int64)
    order = np.argsort(captured, kind="stable")[::-1][:top_n]
    cap, mis = captured[order], missing[order]
    with np.errstate(invalid="ignore", divide="ignore"):
        percent = np.where(
            cap + mis > 0, 100.0 * mis / (cap + mis), 0.0
        )
    return ColumnTable(
        {
            "ap": ap_ids[order],
            "rank": np.arange(1, len(order) + 1),
            "captured": cap,
            "missing": mis,
            "unrecorded_percent": percent,
        }
    )
