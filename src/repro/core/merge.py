"""Multi-sniffer capture fusion (paper §4.2).

The day-session deployment placed *three* sniffers in one room, each on
its own channel; but overlapping deployments (several sniffers on the
same channel, as the paper recommends for future work in §4.4) capture
many frames twice.  :func:`merge_captures` fuses any number of captures
into one analysis-ready trace, removing duplicates: two records are the
same frame when they agree on (timestamp, type, source, destination,
sequence number, channel) — the on-air identity of a frame.

Fusing overlapping sniffers *reduces* the unrecorded-frame percentage,
because a frame missed by one vantage point is often captured by
another; :func:`coverage_gain` quantifies that, which is exactly the
"use a greater number of sniffers" improvement §4.4 calls for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..frames import Trace

__all__ = ["merge_captures", "CoverageGain", "coverage_gain"]


def _identity_keys(trace: Trace) -> np.ndarray:
    """A per-row on-air identity key for duplicate detection."""
    return (
        trace.time_us.astype(np.int64) * 1_000_003
        + trace.ftype.astype(np.int64) * 65_537
        + trace.src.astype(np.int64) * 4_099
        + trace.dst.astype(np.int64) * 257
        + trace.seq.astype(np.int64) * 17
        + trace.channel.astype(np.int64)
    )


def merge_captures(captures: Sequence[Trace], dedupe: bool = True) -> Trace:
    """Fuse sniffer captures into one time-sorted trace.

    With ``dedupe`` (the default), frames recorded by several sniffers
    appear once — the record kept is the one with the strongest SNR
    (the best vantage point's measurement).
    """
    merged = Trace.concatenate(list(captures))
    if not dedupe or len(merged) == 0:
        return merged
    keys = _identity_keys(merged)
    # Keep, per identity key, the row with the highest SNR.
    order = np.lexsort((-merged.snr_db, keys))
    sorted_keys = keys[order]
    first_of_group = np.ones(len(order), dtype=np.bool_)
    first_of_group[1:] = sorted_keys[1:] != sorted_keys[:-1]
    keep = order[first_of_group]
    keep.sort()
    return merged.take(keep)


@dataclass(frozen=True)
class CoverageGain:
    """How much a multi-sniffer fusion improved coverage."""

    per_sniffer_frames: tuple[int, ...]
    fused_frames: int

    @property
    def best_single(self) -> int:
        return max(self.per_sniffer_frames, default=0)

    @property
    def gain_over_best(self) -> float:
        """Fused frames / best single sniffer (>= 1)."""
        if self.best_single == 0:
            return float("nan")
        return self.fused_frames / self.best_single


def coverage_gain(captures: Sequence[Trace]) -> CoverageGain:
    """Quantify the §4.4 multi-sniffer coverage improvement."""
    fused = merge_captures(captures, dedupe=True)
    return CoverageGain(
        per_sniffer_frames=tuple(len(c) for c in captures),
        fused_frames=len(fused),
    )
