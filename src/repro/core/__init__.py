"""Core library: the paper's congestion-analysis contribution.

Public surface for computing channel busy-time and utilization (paper
§5.1), throughput/goodput curves (§5.2), congestion classification
(§5.3), unrecorded-frame estimation (§4.4) and the §6 link-layer effect
analyses (RTS/CTS, rate share, transmissions, reception, acceptance
delay), plus the one-call :func:`analyze_trace` report.
"""

from .acking import AckMatch, match_acks
from .ap_stats import (
    ApActivity,
    DatasetSummary,
    ap_frame_ranking,
    dataset_summary,
    user_association_series,
)
from .busytime import cbt_by_second, cbt_by_second_per_rate, frame_cbt_us, trace_cbt_us
from .categories import ALL_CATEGORIES, Category, category_codes, category_mask, category_name
from .congestion import (
    PAPER_THRESHOLDS,
    CongestionClassifier,
    CongestionLevel,
    CongestionThresholds,
)
from .merge import CoverageGain, coverage_gain, merge_captures
from .online import OnlineCongestionMonitor, SecondObservation
from .stations import StationStats, jain_fairness_index, station_stats
from .delay import (
    FIGURE15_CATEGORIES,
    DelaySeries,
    acceptance_delay_vs_utilization,
    acceptance_delays,
)
from .rate_share import (
    RateShareSeries,
    busytime_share_vs_utilization,
    bytes_per_rate_vs_utilization,
)
from .reception import ReceptionSeries, first_attempt_ack_vs_utilization
from .report import CongestionReport, analyze_trace
from .rts_cts import RtsCtsFairness, RtsCtsSeries, rts_cts_fairness, rts_cts_vs_utilization
from .throughput import (
    ThroughputSeries,
    goodput_per_second,
    throughput_per_second,
    throughput_vs_utilization,
)
from .timing import (
    DOT11B_TIMING,
    TimingParameters,
    data_frame_duration_us,
    data_frame_duration_us_array,
)
from .transmissions import (
    CategoryCounts,
    figure10_categories,
    figure11_categories,
    figure12_categories,
    figure13_categories,
    transmissions_vs_utilization,
)
from .unrecorded import UnrecordedEstimate, estimate_unrecorded, unrecorded_by_ap
from .utilization import UtilizationSeries, utilization_histogram, utilization_series

__all__ = [
    "ALL_CATEGORIES",
    "AckMatch",
    "ApActivity",
    "Category",
    "CategoryCounts",
    "CongestionClassifier",
    "CongestionLevel",
    "CongestionReport",
    "CongestionThresholds",
    "CoverageGain",
    "DOT11B_TIMING",
    "DatasetSummary",
    "DelaySeries",
    "FIGURE15_CATEGORIES",
    "OnlineCongestionMonitor",
    "PAPER_THRESHOLDS",
    "RateShareSeries",
    "ReceptionSeries",
    "RtsCtsFairness",
    "SecondObservation",
    "StationStats",
    "RtsCtsSeries",
    "ThroughputSeries",
    "TimingParameters",
    "UnrecordedEstimate",
    "UtilizationSeries",
    "acceptance_delay_vs_utilization",
    "acceptance_delays",
    "analyze_trace",
    "ap_frame_ranking",
    "busytime_share_vs_utilization",
    "bytes_per_rate_vs_utilization",
    "category_codes",
    "coverage_gain",
    "category_mask",
    "category_name",
    "cbt_by_second",
    "cbt_by_second_per_rate",
    "data_frame_duration_us",
    "data_frame_duration_us_array",
    "dataset_summary",
    "estimate_unrecorded",
    "figure10_categories",
    "figure11_categories",
    "figure12_categories",
    "figure13_categories",
    "first_attempt_ack_vs_utilization",
    "frame_cbt_us",
    "goodput_per_second",
    "jain_fairness_index",
    "match_acks",
    "merge_captures",
    "rts_cts_fairness",
    "station_stats",
    "rts_cts_vs_utilization",
    "throughput_per_second",
    "throughput_vs_utilization",
    "trace_cbt_us",
    "transmissions_vs_utilization",
    "unrecorded_by_ap",
    "user_association_series",
    "utilization_histogram",
    "utilization_series",
]
