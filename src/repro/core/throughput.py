"""Channel throughput and goodput versus utilization (paper §5.2, Fig 6).

* **Throughput** of a one-second interval: total bits of *all* frames
  transmitted on the channel during that second (retransmissions count).
* **Goodput**: total bits of all control frames plus all *successfully
  acknowledged* data frames during that second — wasted (unacked or
  retransmitted-in-vain) data bits are excluded.

Figure 6 plots the average of each quantity over all seconds that share
the same integer utilization percentage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import BinnedSeries, bin_by_utilization, sum_per_interval
from ..frames import FrameType, Trace
from .acking import match_acks
from .timing import DOT11B_TIMING, TimingParameters
from .utilization import UtilizationSeries, utilization_series

__all__ = [
    "ThroughputSeries",
    "control_frame_mask",
    "frame_bits",
    "throughput_per_second",
    "goodput_per_second",
    "throughput_vs_utilization",
]


def control_frame_mask(ftype: np.ndarray) -> np.ndarray:
    """Frames whose bits always count toward goodput (§5.2).

    Control and management frames are never retransmitted-in-vain data,
    so the paper's goodput includes them unconditionally.  Shared by
    :func:`goodput_per_second` and the streaming pipeline.
    """
    return (
        (ftype == int(FrameType.ACK))
        | (ftype == int(FrameType.RTS))
        | (ftype == int(FrameType.CTS))
        | (ftype == int(FrameType.BEACON))
        | (ftype == int(FrameType.MGMT))
    )


@dataclass(frozen=True)
class ThroughputSeries:
    """Figure 6 payload: throughput and goodput per utilization bin."""

    throughput_mbps: BinnedSeries
    goodput_mbps: BinnedSeries
    utilization: UtilizationSeries

    def peak(self) -> tuple[float, float]:
        """(utilization %, Mbps) at the throughput maximum."""
        idx = int(np.argmax(self.throughput_mbps.value))
        return (
            float(self.throughput_mbps.utilization[idx]),
            float(self.throughput_mbps.value[idx]),
        )


def frame_bits(trace: Trace) -> np.ndarray:
    """On-air information bits per frame.

    Data/management frames carry ``8 * size`` payload bits; control
    frames carry their fixed frame sizes.  This matches the paper's
    "total number of bits of all frames" accounting.
    """
    from ..frames import ACK_FRAME_BYTES, CTS_FRAME_BYTES, RTS_FRAME_BYTES

    bits = trace.size.astype(np.float64) * 8.0
    ftype = trace.ftype
    bits[ftype == int(FrameType.ACK)] = ACK_FRAME_BYTES * 8.0
    bits[ftype == int(FrameType.RTS)] = RTS_FRAME_BYTES * 8.0
    bits[ftype == int(FrameType.CTS)] = CTS_FRAME_BYTES * 8.0
    return bits


def throughput_per_second(
    trace: Trace,
    start_us: int | None = None,
    n_seconds: int | None = None,
) -> np.ndarray:
    """Total transmitted bits per second (Mbps array)."""
    bits = frame_bits(trace)
    per_second = sum_per_interval(
        trace, bits, interval_us=1_000_000, start_us=start_us, n_intervals=n_seconds
    )
    return per_second / 1e6


def goodput_per_second(
    trace: Trace,
    start_us: int | None = None,
    n_seconds: int | None = None,
) -> np.ndarray:
    """Bits of control frames plus acked data frames, per second (Mbps)."""
    bits = frame_bits(trace)
    match = match_acks(trace)
    good = control_frame_mask(trace.ftype) | match.acked
    masked_bits = np.where(good, bits, 0.0)
    per_second = sum_per_interval(
        trace,
        masked_bits,
        interval_us=1_000_000,
        start_us=start_us,
        n_intervals=n_seconds,
    )
    return per_second / 1e6


def throughput_vs_utilization(
    trace: Trace,
    timing: TimingParameters = DOT11B_TIMING,
    min_count: int = 1,
) -> ThroughputSeries:
    """Reproduce Figure 6 for ``trace``.

    Computes per-second utilization, throughput and goodput over the
    same second grid, then averages the Mbps values per integer
    utilization bin.
    """
    trace = trace.sorted_by_time()
    util = utilization_series(trace, timing)
    n = len(util)
    start = util.start_us
    tput = throughput_per_second(trace, start_us=start, n_seconds=n)
    gput = goodput_per_second(trace, start_us=start, n_seconds=n)
    return ThroughputSeries(
        throughput_mbps=bin_by_utilization(util.percent, tput, min_count=min_count),
        goodput_mbps=bin_by_utilization(util.percent, gput, min_count=min_count),
        utilization=util,
    )
