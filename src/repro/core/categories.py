"""The 16 size x rate frame categories (paper §6).

A category pairs one of the four size classes (S/M/L/XL) with one of the
four 802.11b data rates (1/2/5.5/11 Mbps), named ``{size}-{rate}`` as in
the paper's figures: ``S-11`` is a small frame at 11 Mbps, ``XL-1`` an
extra-large frame at 1 Mbps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..frames import DOT11_RATES_MBPS, FrameType, SizeClass, Trace

__all__ = ["Category", "ALL_CATEGORIES", "category_name", "category_codes", "category_mask"]


def _rate_label(rate: float) -> str:
    return f"{rate:g}"  # 5.5 -> "5.5", 11.0 -> "11"


@dataclass(frozen=True)
class Category:
    """One of the paper's 16 size-rate frame categories."""

    size_class: SizeClass
    rate_code: int

    @property
    def rate_mbps(self) -> float:
        return DOT11_RATES_MBPS[self.rate_code]

    @property
    def name(self) -> str:
        """Paper naming: ``{size}-{rate}``, e.g. ``S-11``, ``XL-1``."""
        return f"{self.size_class.name}-{_rate_label(self.rate_mbps)}"

    @classmethod
    def from_name(cls, name: str) -> "Category":
        """Parse a ``{size}-{rate}`` name back into a category."""
        size_str, _, rate_str = name.partition("-")
        try:
            size = SizeClass[size_str]
            rate_code = [
                i for i, r in enumerate(DOT11_RATES_MBPS) if _rate_label(r) == rate_str
            ][0]
        except (KeyError, IndexError):
            raise ValueError(f"not a valid category name: {name!r}") from None
        return cls(size_class=size, rate_code=rate_code)


#: All 16 categories, rate-major then size (S-1, M-1, ..., XL-11).
ALL_CATEGORIES = tuple(
    Category(size_class=size, rate_code=code)
    for code in range(len(DOT11_RATES_MBPS))
    for size in SizeClass
)


def category_name(size_class: SizeClass, rate_code: int) -> str:
    """Category name for a (size class, rate code) pair."""
    return Category(size_class=size_class, rate_code=rate_code).name


def category_codes(trace: Trace) -> np.ndarray:
    """Per-frame category index ``rate_code * 4 + size_class`` (0..15).

    Only meaningful for data frames; callers should mask on frame type.
    """
    return trace.rate_code.astype(np.int64) * 4 + trace.size_class.astype(np.int64)


def category_mask(trace: Trace, category: Category) -> np.ndarray:
    """Boolean mask of data frames belonging to ``category``."""
    return (
        (trace.ftype == int(FrameType.DATA))
        & (trace.rate_code == category.rate_code)
        & (trace.size_class == int(category.size_class))
    )
