"""Acceptance delay (paper §6.5, Figure 15).

The *acceptance delay* of a data frame is the time from its **first
transmission attempt** to the moment its acknowledgment is recorded,
independent of how many retransmissions occurred in between.  Figure 15
plots the average acceptance delay per utilization bin for the S-1,
XL-1, S-11 and XL-11 categories and finds that 1 Mbps frames pay far
larger delays than 11 Mbps frames of *any* size.

Reconstruction: 802.11 retransmissions reuse the MPDU sequence number,
so a delivery attempt chain is the run of DATA frames sharing
``(src, dst, seq)``; the chain's acceptance delay is ``ack_time -
first_attempt_time`` where the ACK matches the chain's final frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import BinnedSeries, bin_by_utilization
from ..frames import FrameType, Trace
from .acking import match_acks
from .categories import Category
from .timing import DOT11B_TIMING, TimingParameters
from .utilization import UtilizationSeries, utilization_series

__all__ = [
    "CHAIN_TIMEOUT_US",
    "DelaySeries",
    "acceptance_delays",
    "acceptance_delay_vs_utilization",
    "bin_deliveries",
    "FIGURE15_CATEGORIES",
]

#: The four categories Figure 15 reports.
FIGURE15_CATEGORIES = tuple(
    Category.from_name(name) for name in ("S-1", "XL-1", "S-11", "XL-11")
)


@dataclass(frozen=True)
class AcceptanceDelays:
    """Per-delivery acceptance delays extracted from a trace.

    Arrays are parallel, one entry per successfully acknowledged
    delivery (retry chain): the timestamp of the chain's first attempt,
    the delay to the ACK in microseconds, and the size/rate of the
    *acknowledged* frame (retransmissions may have changed rate; the
    paper's categories key off the delivered frame).
    """

    first_attempt_us: np.ndarray
    delay_us: np.ndarray
    size: np.ndarray
    rate_code: np.ndarray

    def __len__(self) -> int:
        return len(self.delay_us)


#: Maximum plausible age of an open retry chain.  802.11 sequence
#: numbers wrap at 4096, so a (src, dst, seq) key recycles after a few
#: thousand frames; without this bound a retry whose first attempt the
#: sniffer missed could inherit a stale first-attempt timestamp from a
#: previous incarnation of the same key, minutes in the past.  Seven
#: retries of an XL-1 frame with maximal backoff stay well under 1 s.
#: Shared with the streaming pipeline's chain reconstruction.
CHAIN_TIMEOUT_US = 1_000_000
_CHAIN_TIMEOUT_US = CHAIN_TIMEOUT_US  # backwards-compatible alias


def acceptance_delays(trace: Trace) -> AcceptanceDelays:
    """Reconstruct retry chains and compute per-delivery acceptance delay."""
    trace = trace.sorted_by_time()
    match = match_acks(trace)
    is_data = trace.ftype == int(FrameType.DATA)

    acked_rows = np.nonzero(match.acked & is_data)[0]
    if len(acked_rows) == 0:
        empty_i = np.empty(0, dtype=np.int64)
        return AcceptanceDelays(
            empty_i, empty_i.astype(np.float64), empty_i, empty_i
        )

    # Chain key per data row: (src, dst, seq).  For each acked delivery,
    # the first attempt is the earliest *preceding* data frame with the
    # same key and an unbroken retry run; in a capture, earlier chains
    # with a recycled seq are separated by their own ACK, so taking the
    # earliest same-key frame after the key's previous ACK is exact.
    src = trace.src.astype(np.int64)
    dst = trace.dst.astype(np.int64)
    seq = trace.seq.astype(np.int64)
    key = (src << 28) | (dst << 12) | seq

    data_rows = np.nonzero(is_data)[0]
    data_keys = key[data_rows]

    first_attempt_time: dict[int, int] = {}
    delays: list[float] = []
    firsts: list[int] = []
    sizes: list[int] = []
    rates: list[int] = []
    time_us = trace.time_us
    retry = trace.retry
    acked_set = match.acked

    for row in data_rows:
        k = int(key[row])
        now = int(time_us[row])
        known = first_attempt_time.get(k)
        if (
            not retry[row]
            or known is None
            or now - known > _CHAIN_TIMEOUT_US
        ):
            # A clear Retry bit starts a fresh chain; a retry without a
            # recorded (recent) first attempt — the sniffer missed it,
            # or the seq number has wrapped since — starts the chain at
            # the earliest frame we did capture.
            first_attempt_time[k] = now
        if acked_set[row]:
            t0 = first_attempt_time.pop(k)
            ack_t = int(match.ack_time_us[row])
            delays.append(float(ack_t - t0))
            firsts.append(t0)
            sizes.append(int(trace.size[row]))
            rates.append(int(trace.rate_code[row]))

    return AcceptanceDelays(
        first_attempt_us=np.array(firsts, dtype=np.int64),
        delay_us=np.array(delays, dtype=np.float64),
        size=np.array(sizes, dtype=np.int64),
        rate_code=np.array(rates, dtype=np.int64),
    )


@dataclass(frozen=True)
class DelaySeries:
    """Mean acceptance delay (seconds) per category per utilization bin."""

    per_category: dict[str, BinnedSeries]

    def __getitem__(self, name: str) -> BinnedSeries:
        return self.per_category[name]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self.per_category)

    def mean_delay(self, name: str, lo: float = 30.0, hi: float = 99.0) -> float:
        """Count-weighted mean delay of a category over a utilization range."""
        series = self.per_category[name].restricted(lo, hi)
        if len(series) == 0 or series.count.sum() == 0:
            return float("nan")
        return float(np.average(series.value, weights=series.count))


def acceptance_delay_vs_utilization(
    trace: Trace,
    categories: tuple[Category, ...] = FIGURE15_CATEGORIES,
    timing: TimingParameters = DOT11B_TIMING,
    min_count: int = 1,
) -> DelaySeries:
    """Reproduce Figure 15 for ``trace``.

    Each delivery is assigned to the one-second interval of its first
    attempt; per-bin values are mean acceptance delay in **seconds** (the
    figure's y axis).
    """
    trace = trace.sorted_by_time()
    util = utilization_series(trace, timing)
    deliveries = acceptance_delays(trace)
    return bin_deliveries(deliveries, util, categories, min_count)


def bin_deliveries(
    deliveries: AcceptanceDelays,
    util: "UtilizationSeries",
    categories: tuple[Category, ...] = FIGURE15_CATEGORIES,
    min_count: int = 1,
) -> DelaySeries:
    """Bin extracted deliveries by the utilization of their first-attempt
    second — the Figure-15 transform, shared with the streaming pipeline."""
    if len(deliveries) == 0:
        empty = BinnedSeries(
            np.empty(0), np.empty(0), np.empty(0, dtype=np.int64)
        )
        return DelaySeries({c.name: empty for c in categories})

    second = ((deliveries.first_attempt_us - util.start_us) // 1_000_000).astype(
        np.int64
    )
    in_range = (second >= 0) & (second < len(util))
    util_of_delivery = np.where(
        in_range, util.percent[np.clip(second, 0, len(util) - 1)], np.nan
    )

    from ..frames import size_class_array

    size_cls = size_class_array(deliveries.size)
    out: dict[str, BinnedSeries] = {}
    for cat in categories:
        sel = (
            in_range
            & (size_cls == int(cat.size_class))
            & (deliveries.rate_code == cat.rate_code)
        )
        out[cat.name] = bin_by_utilization(
            util_of_delivery[sel],
            deliveries.delay_us[sel] / 1e6,
            min_count=min_count,
        )
    return DelaySeries(per_category=out)
