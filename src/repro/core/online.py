"""Online (streaming) congestion monitoring.

The paper motivates its busy-time metric with "robust operation" of
live networks, but its pipeline is offline.  This module closes that
gap: :class:`OnlineCongestionMonitor` ingests captured frames one at a
time (or in chunks), maintains the same Equation-7/8 busy-time
accounting over completed one-second intervals, and classifies each
second against congestion thresholds as soon as it closes — what an AP
or monitoring daemon would run.

The monitor is numerically identical to the offline pipeline: feeding
it a whole trace reproduces :func:`repro.core.utilization_series`
exactly (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..frames import FrameRow, FrameType, Trace
from .busytime import frame_cbt_us
from .congestion import CongestionLevel, CongestionThresholds, PAPER_THRESHOLDS
from .timing import DOT11B_TIMING, TimingParameters

__all__ = ["SecondObservation", "OnlineCongestionMonitor"]


@dataclass(frozen=True)
class SecondObservation:
    """One closed one-second interval, as the monitor saw it."""

    second_index: int
    utilization_percent: float
    level: CongestionLevel
    frames: int


class OnlineCongestionMonitor:
    """Incrementally classify congestion from a live frame feed.

    Frames must arrive in non-decreasing timestamp order (captures are
    chronological); a stale frame raises ``ValueError`` rather than
    silently corrupting closed intervals.
    """

    def __init__(
        self,
        thresholds: CongestionThresholds = PAPER_THRESHOLDS,
        timing: TimingParameters = DOT11B_TIMING,
        start_us: int | None = None,
    ) -> None:
        self.thresholds = thresholds
        self.timing = timing
        self._start_us = start_us
        self._current_second: int | None = None
        self._busy_us = 0.0
        self._frames = 0
        self._history: list[SecondObservation] = []

    # -- ingestion --------------------------------------------------------

    def ingest(
        self,
        time_us: int,
        ftype: FrameType,
        size: int = 0,
        rate_mbps: float = 1.0,
    ) -> list[SecondObservation]:
        """Feed one captured frame; returns any intervals this closes."""
        if self._start_us is None:
            self._start_us = int(time_us)
        second = (int(time_us) - self._start_us) // 1_000_000
        if second < 0 or (
            self._current_second is not None and second < self._current_second
        ):
            raise ValueError(
                f"frame at {time_us} us arrived out of order "
                f"(current second {self._current_second})"
            )
        closed: list[SecondObservation] = []
        if self._current_second is None:
            self._current_second = second
        while second > self._current_second:
            closed.append(self._close_current())
        self._busy_us += frame_cbt_us(ftype, size, rate_mbps, self.timing)
        self._frames += 1
        return closed

    def ingest_row(self, row: FrameRow) -> list[SecondObservation]:
        """Feed one :class:`FrameRow`."""
        return self.ingest(row.time_us, row.ftype, row.size, row.rate_mbps)

    def ingest_trace(self, trace: Trace) -> list[SecondObservation]:
        """Feed a whole (time-sorted) trace; returns all closed seconds."""
        closed: list[SecondObservation] = []
        for row in trace.sorted_by_time().iter_rows():
            closed.extend(self.ingest_row(row))
        return closed

    def flush(self) -> SecondObservation | None:
        """Close the in-progress interval (end of capture)."""
        if self._current_second is None:
            return None
        return self._close_current()

    def _close_current(self) -> SecondObservation:
        assert self._current_second is not None
        percent = self._busy_us / 1_000_000.0 * 100.0
        observation = SecondObservation(
            second_index=self._current_second,
            utilization_percent=percent,
            level=self.thresholds.classify(percent),
            frames=self._frames,
        )
        self._history.append(observation)
        self._current_second += 1
        self._busy_us = 0.0
        self._frames = 0
        return observation

    # -- state --------------------------------------------------------

    @property
    def history(self) -> list[SecondObservation]:
        """All closed intervals so far, oldest first."""
        return list(self._history)

    @property
    def current_level(self) -> CongestionLevel | None:
        """Level of the most recently closed second (None before any)."""
        if not self._history:
            return None
        return self._history[-1].level

    def utilization_array(self) -> np.ndarray:
        """Closed-interval utilizations as an array (offline-compatible)."""
        return np.array(
            [obs.utilization_percent for obs in self._history], dtype=np.float64
        )

    def level_occupancy(self) -> dict[CongestionLevel, float]:
        """Fraction of closed seconds per congestion level."""
        n = max(len(self._history), 1)
        return {
            level: sum(1 for o in self._history if o.level == level) / n
            for level in CongestionLevel
        }
