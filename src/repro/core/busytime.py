"""Per-frame channel busy-time (CBT) — paper §5.1, Equations 2-7.

The channel busy-time of a frame is the span of channel occupancy the
frame accounts for, *including* the inter-frame spacing that precedes it,
because during an IFS the medium is unshared:

* data frame:   CBT = D_DIFS + D_DATA(size)(rate)          (Eq 2)
* RTS frame:    CBT = D_RTS                                 (Eq 3)
* CTS frame:    CBT = D_SIFS + D_CTS                        (Eq 4)
* ACK frame:    CBT = D_SIFS + D_ACK                        (Eq 5)
* beacon frame: CBT = D_DIFS + D_BEACON                     (Eq 6)

(The paper attributes the DIFS preceding an RTS to the subsequent data
frame, so CBT_RTS carries no IFS term.)  Equation 7 sums CBT over all
frames captured in a one-second interval.
"""

from __future__ import annotations

import numpy as np

from ..frames import FrameType, Trace
from .timing import DOT11B_TIMING, TimingParameters

__all__ = [
    "frame_cbt_us",
    "trace_cbt_us",
    "cbt_by_second",
    "cbt_by_second_per_rate",
]


def frame_cbt_us(
    ftype: FrameType,
    size_bytes: int = 0,
    rate_mbps: float = 1.0,
    timing: TimingParameters = DOT11B_TIMING,
) -> float:
    """Channel busy-time of one frame, in microseconds (Equations 2-6).

    Management frames other than beacons are treated like data frames
    (they are data-rate encoded payloads preceded by a DIFS).
    """
    if ftype == FrameType.DATA:
        return timing.difs_us + timing.data_frame_duration_us(size_bytes, rate_mbps)
    if ftype == FrameType.RTS:
        return timing.rts_us
    if ftype == FrameType.CTS:
        return timing.sifs_us + timing.cts_us
    if ftype == FrameType.ACK:
        return timing.sifs_us + timing.ack_us
    if ftype == FrameType.BEACON:
        return timing.difs_us + timing.beacon_us
    if ftype == FrameType.MGMT:
        return timing.difs_us + timing.data_frame_duration_us(size_bytes, rate_mbps)
    raise ValueError(f"unknown frame type: {ftype!r}")


def trace_cbt_us(
    trace: Trace, timing: TimingParameters = DOT11B_TIMING
) -> np.ndarray:
    """Vectorised per-frame CBT for a whole trace, in microseconds."""
    n = len(trace)
    cbt = np.zeros(n, dtype=np.float64)
    ftype = trace.ftype
    data_like = (ftype == int(FrameType.DATA)) | (ftype == int(FrameType.MGMT))
    if np.any(data_like):
        cbt[data_like] = timing.difs_us + timing.data_frame_duration_us_array(
            trace.size[data_like], trace.rate_mbps[data_like]
        )
    cbt[ftype == int(FrameType.RTS)] = timing.rts_us
    cbt[ftype == int(FrameType.CTS)] = timing.sifs_us + timing.cts_us
    cbt[ftype == int(FrameType.ACK)] = timing.sifs_us + timing.ack_us
    cbt[ftype == int(FrameType.BEACON)] = timing.difs_us + timing.beacon_us
    return cbt


def _second_index(trace: Trace, start_us: int | None) -> tuple[np.ndarray, int]:
    """Map each frame to its one-second interval index from ``start_us``."""
    t0 = int(trace.time_us[0]) if start_us is None else int(start_us)
    seconds = ((trace.time_us - t0) // 1_000_000).astype(np.int64)
    n_seconds = int(seconds[-1]) + 1 if len(trace) else 0
    return seconds, n_seconds


def cbt_by_second(
    trace: Trace,
    timing: TimingParameters = DOT11B_TIMING,
    start_us: int | None = None,
    n_seconds: int | None = None,
) -> np.ndarray:
    """CBT_TOTAL(t) for each one-second interval t (Equation 7).

    Returns an array of busy microseconds per second of trace time,
    starting at ``start_us`` (default: first frame's timestamp).  If
    ``n_seconds`` is given the result is padded or truncated to that
    length so callers can align multiple per-second series.
    """
    if len(trace) == 0:
        return np.zeros(n_seconds or 0, dtype=np.float64)
    if not trace.is_time_sorted():
        trace = trace.sorted_by_time()
    seconds, span = _second_index(trace, start_us)
    length = span if n_seconds is None else int(n_seconds)
    valid = (seconds >= 0) & (seconds < length)
    totals = np.bincount(
        seconds[valid], weights=trace_cbt_us(trace, timing)[valid], minlength=length
    )
    return totals[:length]


def cbt_by_second_per_rate(
    trace: Trace,
    timing: TimingParameters = DOT11B_TIMING,
    start_us: int | None = None,
    n_seconds: int | None = None,
) -> np.ndarray:
    """CBT per second split by data rate — the quantity behind Figure 8.

    Returns an array of shape ``(n_seconds, 4)`` of busy microseconds
    attributable to *data* frames sent at each of the four 802.11b rates.
    Control/management frames are excluded, matching the figure's focus
    on data-rate share.
    """
    data = trace.only_type(FrameType.DATA)
    if len(data) == 0:
        return np.zeros((n_seconds or 0, 4), dtype=np.float64)
    if not data.is_time_sorted():
        data = data.sorted_by_time()
    if start_us is None:
        start_us = int(trace.time_us[0]) if len(trace) else 0
    seconds, span = _second_index(data, start_us)
    length = span if n_seconds is None else int(n_seconds)
    cbt = trace_cbt_us(data, timing)
    out = np.zeros((length, 4), dtype=np.float64)
    for code in range(4):
        sel = (data.rate_code == code) & (seconds >= 0) & (seconds < length)
        if np.any(sel):
            out[:, code] = np.bincount(
                seconds[sel], weights=cbt[sel], minlength=length
            )[:length]
    return out
