"""RTS/CTS behaviour under congestion (paper §6.1, Figure 7).

Figure 7 plots the average number of RTS and CTS frames transmitted per
second against channel utilization: RTS counts climb through moderate
congestion (5 -> 8 per second over the 80-84 % band at IETF) and collapse
under high congestion; CTS counts trail RTS because RTS receptions fail.

The module also quantifies the paper's *fairness* observation: stations
that rely on the RTS-CTS handshake need two extra frame deliveries per
data frame, so under congestion their goodput share falls below their
population share.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import BinnedSeries, bin_by_utilization, count_per_interval
from ..frames import FrameType, NodeRoster, Trace
from .acking import match_acks
from .timing import DOT11B_TIMING, TimingParameters
from .utilization import utilization_series

__all__ = ["RtsCtsSeries", "rts_cts_vs_utilization", "RtsCtsFairness", "rts_cts_fairness"]


@dataclass(frozen=True)
class RtsCtsSeries:
    """Average RTS and CTS frames per second, per utilization bin."""

    rts: BinnedSeries
    cts: BinnedSeries

    def handshake_success_ratio(self) -> np.ndarray:
        """CTS/RTS ratio per bin (1.0 where no RTS observed)."""
        rts = np.maximum(self.rts.value, 1e-12)
        return np.minimum(self.cts.value / rts, 1.0)


def rts_cts_vs_utilization(
    trace: Trace,
    timing: TimingParameters = DOT11B_TIMING,
    min_count: int = 1,
) -> RtsCtsSeries:
    """Reproduce Figure 7 for ``trace``."""
    trace = trace.sorted_by_time()
    util = utilization_series(trace, timing)
    n = len(util)
    rts_counts = count_per_interval(
        trace.only_type(FrameType.RTS),
        start_us=util.start_us,
        n_intervals=n,
    ).astype(np.float64)
    cts_counts = count_per_interval(
        trace.only_type(FrameType.CTS),
        start_us=util.start_us,
        n_intervals=n,
    ).astype(np.float64)
    return RtsCtsSeries(
        rts=bin_by_utilization(util.percent, rts_counts, min_count=min_count),
        cts=bin_by_utilization(util.percent, cts_counts, min_count=min_count),
    )


@dataclass(frozen=True)
class RtsCtsFairness:
    """Channel-access fairness for RTS/CTS users vs plain users (§6.1).

    ``*_share`` values are fractions of total acked data frames;
    ``*_population`` are fractions of transmitting stations.  A
    fairness index < 1 means RTS/CTS users obtained less than their
    population share — the paper's unfairness finding.

    ``*_airtime_per_delivery_us`` measures the channel time each
    population consumed per successfully delivered frame: the handshake
    users pay RTS + CTS + two extra SIFS per delivery, so their cost is
    structurally higher — the efficiency argument behind the paper's
    "avoid RTS/CTS during congestion" recommendation.
    """

    rtscts_population: float
    rtscts_share: float
    plain_population: float
    plain_share: float
    rtscts_airtime_per_delivery_us: float = float("nan")
    plain_airtime_per_delivery_us: float = float("nan")

    @property
    def fairness_index(self) -> float:
        """(RTS/CTS goodput share) / (RTS/CTS population share)."""
        if self.rtscts_population == 0:
            return float("nan")
        return self.rtscts_share / self.rtscts_population

    @property
    def airtime_overhead_ratio(self) -> float:
        """RTS/CTS users' airtime cost per delivery over plain users'."""
        if not self.plain_airtime_per_delivery_us > 0:
            return float("nan")
        return self.rtscts_airtime_per_delivery_us / self.plain_airtime_per_delivery_us


def rts_cts_fairness(trace: Trace, roster: NodeRoster) -> RtsCtsFairness:
    """Compare acked-data share of RTS/CTS stations to their population share.

    Only station-originated data frames count (APs transmit for everyone,
    so including them would mask per-station unfairness).
    """
    trace = trace.sorted_by_time()
    match = match_acks(trace)
    station_ids = [n.node_id for n in roster if not n.is_ap]
    rtscts_ids = {n.node_id for n in roster if not n.is_ap and n.uses_rtscts}
    if not station_ids:
        return RtsCtsFairness(0.0, 0.0, 0.0, 0.0)

    is_data = trace.ftype == int(FrameType.DATA)
    src = trace.src
    from_station = np.isin(src, np.array(station_ids, dtype=src.dtype))
    from_rtscts = np.isin(
        src, np.array(sorted(rtscts_ids), dtype=src.dtype)
    ) if rtscts_ids else np.zeros(len(trace), dtype=np.bool_)

    acked_station = match.acked & is_data & from_station
    total_acked = int(np.count_nonzero(acked_station))
    rtscts_acked = int(np.count_nonzero(acked_station & from_rtscts))

    # Airtime attribution: every frame a population's stations put on
    # the air (DATA attempts and RTS) counts toward that population's
    # channel cost; responses (CTS/ACK) are charged to the station that
    # solicited them, identified by the response's destination.
    from .busytime import trace_cbt_us

    cbt = trace_cbt_us(trace)
    transmitted_by = from_station & (
        is_data | (trace.ftype == int(FrameType.RTS))
    )
    solicited_by = np.isin(
        trace.dst, np.array(station_ids, dtype=trace.dst.dtype)
    ) & (
        (trace.ftype == int(FrameType.ACK))
        | (trace.ftype == int(FrameType.CTS))
    )
    dst_rtscts = np.isin(
        trace.dst, np.array(sorted(rtscts_ids), dtype=trace.dst.dtype)
    ) if rtscts_ids else np.zeros(len(trace), dtype=np.bool_)

    airtime_rtscts = float(
        cbt[(transmitted_by & from_rtscts) | (solicited_by & dst_rtscts)].sum()
    )
    airtime_plain = float(
        cbt[(transmitted_by & ~from_rtscts) | (solicited_by & ~dst_rtscts)].sum()
    )
    plain_acked = total_acked - rtscts_acked

    pop_total = len(station_ids)
    pop_rtscts = len(rtscts_ids)
    share_rtscts = rtscts_acked / total_acked if total_acked else 0.0
    return RtsCtsFairness(
        rtscts_population=pop_rtscts / pop_total,
        rtscts_share=share_rtscts,
        plain_population=(pop_total - pop_rtscts) / pop_total,
        plain_share=1.0 - share_rtscts if total_acked else 0.0,
        rtscts_airtime_per_delivery_us=(
            airtime_rtscts / rtscts_acked if rtscts_acked else float("nan")
        ),
        plain_airtime_per_delivery_us=(
            airtime_plain / plain_acked if plain_acked else float("nan")
        ),
    )
