"""IEEE 802.11b timing components (paper §5.1, Table 2, Figure 1).

All durations are in microseconds, exactly as the paper (which takes its
values from Jun, Peddabachagari & Sichitiu, "Theoretical Maximum
Throughput of IEEE 802.11 and its Applications", NCA 2003).

The one modelling assumption the paper makes is ``D_BO = 0``: in a
saturated network at least one station's backoff counter is always zero,
so on average no channel time is attributed to backoff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TimingParameters",
    "DOT11B_TIMING",
    "data_frame_duration_us",
    "data_frame_duration_us_array",
]


@dataclass(frozen=True)
class TimingParameters:
    """Delay components of the 802.11b DCF protocol, in microseconds.

    Field names follow Table 2 of the paper: ``difs_us`` is D_DIFS,
    ``plcp_us`` is D_PLCP (the long-preamble PLCP header, always sent at
    1 Mbps), and so on.  ``slot_us`` and the contention-window bounds are
    not part of Table 2 but are needed by the DCF simulator substrate.
    """

    difs_us: float = 50.0
    sifs_us: float = 10.0
    rts_us: float = 352.0
    cts_us: float = 304.0
    ack_us: float = 304.0
    beacon_us: float = 304.0
    backoff_us: float = 0.0       # paper's D_BO = 0 assumption
    plcp_us: float = 192.0
    slot_us: float = 20.0         # 802.11b (long preamble) slot time
    cw_min: int = 31              # paper §3: MaxBO from 31 ...
    cw_max: int = 255             # ... to 255 slot times
    mac_overhead_bytes: int = 34  # the "34" in D_DATA(size)(rate)

    def data_frame_duration_us(self, size_bytes: float, rate_mbps: float) -> float:
        """D_DATA(size)(rate) = D_PLCP + 8 * (34 + size) / rate  (Table 2).

        ``rate_mbps`` is in Mbps so ``8 * bytes / rate`` is directly in
        microseconds.
        """
        if rate_mbps <= 0:
            raise ValueError(f"rate must be positive, got {rate_mbps}")
        if size_bytes < 0:
            raise ValueError(f"size must be non-negative, got {size_bytes}")
        return self.plcp_us + 8.0 * (self.mac_overhead_bytes + size_bytes) / rate_mbps

    def data_frame_duration_us_array(
        self, sizes: np.ndarray, rates_mbps: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`data_frame_duration_us`."""
        sizes = np.asarray(sizes, dtype=np.float64)
        rates = np.asarray(rates_mbps, dtype=np.float64)
        if rates.size and rates.min() <= 0:
            raise ValueError("rates must be positive")
        return self.plcp_us + 8.0 * (self.mac_overhead_bytes + sizes) / rates

    def as_table(self) -> list[tuple[str, float]]:
        """Rows of the paper's Table 2, for report printing."""
        return [
            ("D_DIFS", self.difs_us),
            ("D_SIFS", self.sifs_us),
            ("D_RTS", self.rts_us),
            ("D_CTS", self.cts_us),
            ("D_ACK", self.ack_us),
            ("D_BEACON", self.beacon_us),
            ("D_BO", self.backoff_us),
            ("D_PLCP", self.plcp_us),
        ]


#: The default 802.11b parameter set used throughout the reproduction.
DOT11B_TIMING = TimingParameters()


def data_frame_duration_us(size_bytes: float, rate_mbps: float) -> float:
    """Module-level convenience for :meth:`TimingParameters.data_frame_duration_us`."""
    return DOT11B_TIMING.data_frame_duration_us(size_bytes, rate_mbps)


def data_frame_duration_us_array(sizes: np.ndarray, rates: np.ndarray) -> np.ndarray:
    """Module-level convenience for the vectorised duration formula."""
    return DOT11B_TIMING.data_frame_duration_us_array(sizes, rates)
