"""Per-category frame-transmission counts (paper §6.3, Figures 10-13).

Each figure plots, against utilization, the average number of data
frames transmitted per second (first attempts *and* retransmissions) for
four of the 16 size-rate categories:

* Figure 10 — S-1, S-2, S-5.5, S-11   (small frames across rates)
* Figure 11 — XL-1, XL-2, XL-5.5, XL-11 (extra-large frames across rates)
* Figure 12 — S-1, M-1, L-1, XL-1     (1 Mbps frames across sizes)
* Figure 13 — S-11, M-11, L-11, XL-11 (11 Mbps frames across sizes)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import BinnedSeries, bin_by_utilization, count_per_interval
from ..frames import SizeClass, Trace
from .categories import ALL_CATEGORIES, Category, category_mask
from .timing import DOT11B_TIMING, TimingParameters
from .utilization import utilization_series

__all__ = [
    "CategoryCounts",
    "transmissions_vs_utilization",
    "figure10_categories",
    "figure11_categories",
    "figure12_categories",
    "figure13_categories",
]


@dataclass(frozen=True)
class CategoryCounts:
    """Average transmitted frames/second per category per utilization bin."""

    per_category: dict[str, BinnedSeries]

    def __getitem__(self, name: str) -> BinnedSeries:
        return self.per_category[name]

    def __contains__(self, name: str) -> bool:
        return name in self.per_category

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self.per_category)

    def dominant_at(self, utilization: float) -> str:
        """Category with the highest mean count at a utilization bin."""
        best_name, best = "", -np.inf
        for name, series in self.per_category.items():
            v = series.value_at(utilization)
            if not np.isnan(v) and v > best:
                best_name, best = name, v
        return best_name


def transmissions_vs_utilization(
    trace: Trace,
    categories: tuple[Category, ...] = ALL_CATEGORIES,
    timing: TimingParameters = DOT11B_TIMING,
    min_count: int = 1,
) -> CategoryCounts:
    """Per-second transmitted-frame counts per category, binned by utilization.

    Counts include retransmissions, matching §6.3 ("includes both the
    frames sent at the first attempt and retransmitted frames").
    """
    trace = trace.sorted_by_time()
    util = utilization_series(trace, timing)
    n = len(util)
    out: dict[str, BinnedSeries] = {}
    for cat in categories:
        sub = trace.select(category_mask(trace, cat))
        counts = count_per_interval(
            sub, start_us=util.start_us, n_intervals=n
        ).astype(np.float64)
        out[cat.name] = bin_by_utilization(util.percent, counts, min_count=min_count)
    return CategoryCounts(per_category=out)


def _by_size(size: SizeClass) -> tuple[Category, ...]:
    return tuple(c for c in ALL_CATEGORIES if c.size_class == size)


def _by_rate(rate_code: int) -> tuple[Category, ...]:
    return tuple(c for c in ALL_CATEGORIES if c.rate_code == rate_code)


def figure10_categories() -> tuple[Category, ...]:
    """S-class frames across the four rates."""
    return _by_size(SizeClass.S)


def figure11_categories() -> tuple[Category, ...]:
    """XL-class frames across the four rates."""
    return _by_size(SizeClass.XL)


def figure12_categories() -> tuple[Category, ...]:
    """1 Mbps frames across the four size classes."""
    return _by_rate(0)


def figure13_categories() -> tuple[Category, ...]:
    """11 Mbps frames across the four size classes."""
    return _by_rate(3)
