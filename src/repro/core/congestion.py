"""Congestion classification (paper §5.3).

The paper defines three congestion classes for the IETF network from the
throughput/goodput-versus-utilization curve:

* **uncongested**          — utilization below 30 %
* **moderately congested** — 30 % to the throughput knee (84 % at IETF)
* **highly congested**     — above the knee

The low threshold is an observational floor (the data set simply has
almost no seconds under 30 %); the high threshold is *derived* from where
throughput peaks before collapsing.  :class:`CongestionClassifier`
reproduces that derivation: ``fit`` locates the knee on a trace's
throughput curve, falling back to the paper's 84 % when no knee is
observable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..analysis import find_knee
from ..frames import Trace
from .throughput import ThroughputSeries, throughput_vs_utilization
from .timing import DOT11B_TIMING, TimingParameters

__all__ = [
    "CongestionLevel",
    "CongestionThresholds",
    "CongestionClassifier",
    "PAPER_THRESHOLDS",
]


class CongestionLevel(enum.IntEnum):
    """The paper's three congestion states, ordered by severity."""

    UNCONGESTED = 0
    MODERATE = 1
    HIGH = 2

    @property
    def label(self) -> str:
        return {
            CongestionLevel.UNCONGESTED: "uncongested",
            CongestionLevel.MODERATE: "moderately congested",
            CongestionLevel.HIGH: "highly congested",
        }[self]


@dataclass(frozen=True)
class CongestionThresholds:
    """Utilization boundaries between congestion classes (percent)."""

    low: float = 30.0
    high: float = 84.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.low < self.high:
            raise ValueError(
                f"thresholds must satisfy 0 <= low < high, got {self.low}/{self.high}"
            )

    def classify(self, utilization_percent: float) -> CongestionLevel:
        """Congestion level of one utilization value."""
        if utilization_percent < self.low:
            return CongestionLevel.UNCONGESTED
        if utilization_percent <= self.high:
            return CongestionLevel.MODERATE
        return CongestionLevel.HIGH

    def classify_array(self, percent: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`classify`; returns uint8 level codes."""
        percent = np.asarray(percent, dtype=np.float64)
        levels = np.full(percent.shape, int(CongestionLevel.MODERATE), dtype=np.uint8)
        levels[percent < self.low] = int(CongestionLevel.UNCONGESTED)
        levels[percent > self.high] = int(CongestionLevel.HIGH)
        return levels


#: The thresholds the paper reports for the IETF data set.
PAPER_THRESHOLDS = CongestionThresholds(low=30.0, high=84.0)


@dataclass
class CongestionClassifier:
    """Derive congestion thresholds from a trace and label its seconds.

    Typical use::

        classifier = CongestionClassifier().fit(trace)
        levels = classifier.classify_seconds(trace)

    After ``fit``, ``thresholds.high`` is the utilization of the
    throughput knee (the paper's 84 %) and ``curves`` holds the Figure-6
    series the decision was based on.
    """

    low_threshold: float = 30.0
    fallback_high: float = 84.0
    smooth_window: int = 5
    thresholds: CongestionThresholds | None = None
    curves: ThroughputSeries | None = None

    def fit(
        self, trace: Trace, timing: TimingParameters = DOT11B_TIMING
    ) -> "CongestionClassifier":
        """Estimate thresholds from ``trace``'s throughput knee."""
        return self.fit_curves(throughput_vs_utilization(trace, timing))

    def fit_curves(self, curves: ThroughputSeries) -> "CongestionClassifier":
        """Estimate thresholds from precomputed Figure-6 curves.

        The streaming pipeline computes the throughput series in its
        single pass and hands it here, so both entry points share one
        knee-detection rule.
        """
        self.curves = curves
        knee = find_knee(curves.throughput_mbps, smooth_window=self.smooth_window)
        if knee is not None and knee.is_significant:
            high = max(knee.utilization, self.low_threshold + 1.0)
        else:
            high = self.fallback_high
        self.thresholds = CongestionThresholds(low=self.low_threshold, high=high)
        return self

    def _require_fit(self) -> CongestionThresholds:
        if self.thresholds is None:
            raise RuntimeError("classifier is not fitted; call fit() first")
        return self.thresholds

    def classify_percent(self, percent: np.ndarray) -> np.ndarray:
        """Level codes for an array of utilization percentages."""
        return self._require_fit().classify_array(percent)

    def classify_seconds(
        self, trace: Trace, timing: TimingParameters = DOT11B_TIMING
    ) -> np.ndarray:
        """Level code for every one-second interval of ``trace``."""
        from .utilization import utilization_series

        util = utilization_series(trace, timing)
        return self.classify_percent(util.percent)

    def occupancy(
        self, trace: Trace, timing: TimingParameters = DOT11B_TIMING
    ) -> dict[CongestionLevel, float]:
        """Fraction of trace seconds spent in each congestion state."""
        levels = self.classify_seconds(trace, timing)
        n = max(len(levels), 1)
        return {
            level: float(np.count_nonzero(levels == int(level))) / n
            for level in CongestionLevel
        }
