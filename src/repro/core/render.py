"""Render a :class:`CongestionReport` as a terminal-ready text document.

One call produces the whole paper-structure report: capture summary,
utilization series, congestion classes, Figure-6 curves and the §6
link-layer effect charts — the same artifact the benchmark suite writes
per figure, but bundled for interactive use and the CLI.
"""

from __future__ import annotations

import numpy as np

from ..viz import histogram_chart, line_chart, multi_line_chart, table
from .congestion import CongestionLevel
from .report import CongestionReport

__all__ = ["render_report"]


def _band(series, lo: float = 20.0, hi: float = 100.0):
    return series.restricted(lo, hi)


def render_report(report: CongestionReport, width: int = 70) -> str:
    """Render ``report`` as a multi-section text document."""
    parts: list[str] = []
    parts.append(f"=== Congestion report: {report.name} ===\n")

    # -- capture summary (Table 1) ----------------------------------------
    parts.append(table([report.summary.as_row()], title="Capture summary"))

    # -- utilization (Fig 5) ----------------------------------------------
    series = report.utilization
    parts.append(
        line_chart(
            series.seconds,
            series.clipped(),
            width=width,
            title="Utilization per second",
            x_label="second",
            y_label="util %",
        )
    )
    lefts, counts = series.histogram(bin_width=5.0)
    parts.append(
        histogram_chart(
            lefts,
            counts,
            width=width,
            title=f"Utilization frequency (mode {series.mode_percent(5.0):.0f}%)",
            x_label="utilization %",
        )
    )

    # -- congestion classes (§5.3) ---------------------------------------
    lines = ["Congestion classes:"]
    for level in CongestionLevel:
        lines.append(
            f"  {level.label:22s} {report.level_occupancy[level]:6.1%}"
        )
    lines.append(
        f"  thresholds: low {report.thresholds.low:.0f}%, "
        f"high {report.thresholds.high:.0f}%"
    )
    parts.append("\n".join(lines) + "\n")

    # -- throughput/goodput (Fig 6) ---------------------------------------
    tput = _band(report.throughput.throughput_mbps)
    gput = _band(report.throughput.goodput_mbps)
    if len(tput):
        parts.append(
            multi_line_chart(
                tput.utilization,
                {"throughput": tput.value, "goodput": gput.value},
                width=width,
                title="Throughput / goodput vs utilization (Fig 6)",
                x_label="utilization %",
            )
        )
        peak_util, peak = report.throughput.peak()
        parts.append(f"peak {peak:.2f} Mbps at {peak_util:.0f}% utilization\n")

    # -- rate share (Fig 8) -----------------------------------------------
    shares = {
        f"{rate:g} Mbps": _band(report.busytime_share[rate]).value
        for rate in (1.0, 2.0, 5.5, 11.0)
        if len(_band(report.busytime_share[rate]))
    }
    if shares:
        axis = _band(report.busytime_share[1.0]).utilization
        if len(axis):
            parts.append(
                multi_line_chart(
                    axis,
                    shares,
                    width=width,
                    title="Busy-time share per rate (Fig 8)",
                    x_label="utilization %",
                )
            )

    # -- RTS/CTS (Fig 7) ---------------------------------------------------
    rts = _band(report.rts_cts.rts)
    if len(rts) and np.nansum(rts.value) > 0:
        cts = _band(report.rts_cts.cts)
        parts.append(
            multi_line_chart(
                rts.utilization,
                {"RTS": rts.value, "CTS": cts.value},
                width=width,
                title="RTS / CTS per second (Fig 7)",
                x_label="utilization %",
            )
        )

    # -- unrecorded frames (§4.4) -----------------------------------------
    est = report.unrecorded
    parts.append(
        "Unrecorded-frame estimate (§4.4 atomicity): "
        f"{est.unrecorded_percent:.1f}% "
        f"(missing DATA {est.missing_data}, RTS {est.missing_rts}, "
        f"CTS {est.missing_cts})\n"
    )

    # -- per-AP activity (Fig 4a) -----------------------------------------
    if report.ap_activity is not None and len(report.ap_activity.table):
        parts.append(
            table(
                report.ap_activity.table.head(15).to_rows(),
                title="Most active APs (Fig 4a)",
            )
        )

    return "\n".join(parts)
