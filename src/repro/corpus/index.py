"""Content-addressed capture catalog: one JSON record per capture.

The catalog lives under ``<root>/.repro-corpus/captures/`` with the
same on-disk discipline as :class:`repro.campaign.CampaignStore`: one
small JSON file per record, keyed by content hash (two-level fan-out
directories), written atomically (temp file + ``os.replace``), and
quarantined — never silently deleted — when it no longer parses.

A record holds everything the query layer needs so that predicates
("channel 6, >10k frames, overlapping 13:00–14:00") are answered from
the catalog alone, **without opening capture files**: frame count,
time span, per-channel frame counts, container format, byte size and
read status.  Damaged captures are catalogued too (status
``truncated``/``unreadable`` with the error text) so a corpus sweep
reports them instead of tripping over them.

Refresh is incremental: a capture whose path, byte size and mtime all
match its record is trusted without re-reading (``verify=True`` forces
re-hashing).  Because records are keyed by content, renaming a capture
is a metadata update, and byte-identical duplicates collapse into one
record carrying ``duplicate_paths``.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import asdict, dataclass, replace
from pathlib import Path

import numpy as np

from ..campaign.store import CampaignStore
from ..pcap.pcapio import TruncatedPcapError, read_trace_batches
from .formats import detect_format
from .paths import CorpusError, iter_capture_files

__all__ = [
    "INDEX_FORMAT",
    "INDEX_DIRNAME",
    "CaptureRecord",
    "RefreshStats",
    "CorpusIndex",
]

INDEX_FORMAT = 1

#: Catalog directory name under the corpus root (dot-prefixed so the
#: capture walk never indexes the index).
INDEX_DIRNAME = ".repro-corpus"

_HASH_CHUNK = 1 << 20


@dataclass(frozen=True)
class CaptureRecord:
    """Everything the catalog knows about one capture's content."""

    content_hash: str
    path: str  # primary path, POSIX-style, relative to the corpus root
    file_format: str  # registered format name, or "unknown"
    compressed: bool
    byte_size: int
    mtime_ns: int
    n_frames: int
    time_start_us: int | None
    time_end_us: int | None
    channels: tuple[int, ...]
    frames_per_channel: dict[str, int]
    status: str  # "ok" | "truncated" | "unreadable"
    error: str | None = None
    duplicate_paths: tuple[str, ...] = ()
    analyses: tuple[str, ...] = ()  # analysis keys with stored reports

    def to_payload(self) -> dict:
        payload = asdict(self)
        payload["channels"] = list(self.channels)
        payload["duplicate_paths"] = list(self.duplicate_paths)
        payload["analyses"] = list(self.analyses)
        return {"format": INDEX_FORMAT, "kind": "capture", **payload}

    @classmethod
    def from_payload(cls, payload: dict) -> "CaptureRecord":
        names = set(cls.__dataclass_fields__)
        data = {k: v for k, v in payload.items() if k in names}
        data["channels"] = tuple(data.get("channels", ()))
        data["duplicate_paths"] = tuple(data.get("duplicate_paths", ()))
        data["analyses"] = tuple(data.get("analyses", ()))
        return cls(**data)


@dataclass
class RefreshStats:
    """What one :meth:`CorpusIndex.refresh` pass did."""

    scanned: int = 0  # capture files seen on disk
    hashed: int = 0  # files whose bytes were (re-)hashed
    added: int = 0  # new content hashes catalogued
    updated: int = 0  # records rewritten (moved/duplicated/changed stat)
    unchanged: int = 0
    removed: int = 0  # stale records dropped
    quarantined: int = 0  # corrupt record files set aside
    failed: int = 0  # captures catalogued as truncated/unreadable

    def summary(self) -> str:
        return (
            f"{self.scanned} scanned, {self.added} added, "
            f"{self.updated} updated, {self.unchanged} unchanged, "
            f"{self.removed} removed, {self.failed} failed"
        )


def _content_hash(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as fp:
        while True:
            block = fp.read(_HASH_CHUNK)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def _scan_capture(path: Path) -> dict:
    """Read ``path`` once, accumulating the record's content fields."""
    try:
        file_format, compressed = detect_format(path)
    except ValueError as error:
        return {
            "file_format": "unknown",
            "compressed": False,
            "n_frames": 0,
            "time_start_us": None,
            "time_end_us": None,
            "channels": (),
            "frames_per_channel": {},
            "status": "unreadable",
            "error": str(error),
        }
    n_frames = 0
    t_min: int | None = None
    t_max: int | None = None
    per_channel: dict[int, int] = {}
    status, error = "ok", None
    try:
        for batch in read_trace_batches(path):
            if not len(batch):
                continue
            n_frames += len(batch)
            times = batch.column("time_us")
            lo, hi = int(times.min()), int(times.max())
            t_min = lo if t_min is None else min(t_min, lo)
            t_max = hi if t_max is None else max(t_max, hi)
            values, counts = np.unique(
                batch.column("channel"), return_counts=True
            )
            for value, count in zip(values, counts):
                per_channel[int(value)] = (
                    per_channel.get(int(value), 0) + int(count)
                )
    except TruncatedPcapError as err:
        status, error = "truncated", str(err)
    except ValueError as err:
        status, error = "unreadable", str(err)
    return {
        "file_format": file_format,
        "compressed": compressed,
        "n_frames": n_frames,
        "time_start_us": t_min,
        "time_end_us": t_max,
        "channels": tuple(sorted(per_channel)),
        "frames_per_channel": {
            str(ch): per_channel[ch] for ch in sorted(per_channel)
        },
        "status": status,
        "error": error,
    }


class CorpusIndex:
    """The on-disk capture catalog rooted at a corpus directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        if not self.root.is_dir():
            raise CorpusError(f"corpus root is not a directory: {self.root}")
        self.index_dir = self.root / INDEX_DIRNAME / "captures"

    # -- reading -----------------------------------------------------------

    def _record_path(self, content_hash: str) -> Path:
        return self.index_dir / content_hash[:2] / f"{content_hash}.json"

    def records(self) -> dict[str, CaptureRecord]:
        """All records, keyed by content hash.  Never opens captures."""
        out: dict[str, CaptureRecord] = {}
        for payload in self._iter_payloads(RefreshStats()):
            record = CaptureRecord.from_payload(payload)
            out[record.content_hash] = record
        return out

    def get(self, content_hash: str) -> CaptureRecord | None:
        payload = CampaignStore._read_json(self._record_path(content_hash))
        if payload is None:
            return None
        return CaptureRecord.from_payload(payload)

    def _iter_payloads(self, stats: RefreshStats):
        if not self.index_dir.is_dir():
            return
        for path in sorted(self.index_dir.glob("*/*.json")):
            payload = CampaignStore._read_json(path)
            if payload is None or payload.get("kind") != "capture":
                self._quarantine(path, stats)
                continue
            yield payload

    def _quarantine(self, path: Path, stats: RefreshStats) -> None:
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            return
        stats.quarantined += 1

    # -- refreshing --------------------------------------------------------

    def refresh(self, verify: bool = False) -> RefreshStats:
        """Bring the catalog in line with the capture files on disk.

        ``verify=True`` re-hashes every file even when its path, size
        and mtime match the stored record (defence against in-place
        edits that preserve both).
        """
        stats = RefreshStats()
        existing: dict[str, CaptureRecord] = {}
        for payload in self._iter_payloads(stats):
            record = CaptureRecord.from_payload(payload)
            existing[record.content_hash] = record
        by_path = {
            record.path: record for record in existing.values()
        }

        # hash -> (primary rel path, file, stat, duplicate rel paths);
        # iter_capture_files sorts, so the first path seen is primary.
        groups: dict[str, dict] = {}
        for file in iter_capture_files(self.root):
            stats.scanned += 1
            rel = file.relative_to(self.root).as_posix()
            stat = file.stat()
            prior = by_path.get(rel)
            if (
                prior is not None
                and not verify
                and prior.byte_size == stat.st_size
                and prior.mtime_ns == stat.st_mtime_ns
            ):
                content_hash = prior.content_hash
            else:
                content_hash = _content_hash(file)
                stats.hashed += 1
            group = groups.setdefault(
                content_hash,
                {"path": rel, "file": file, "stat": stat, "dups": []},
            )
            if rel != group["path"]:
                group["dups"].append(rel)

        for content_hash, group in groups.items():
            stat = group["stat"]
            prior = existing.get(content_hash)
            if prior is None:
                scan = _scan_capture(group["file"])
                record = CaptureRecord(
                    content_hash=content_hash,
                    path=group["path"],
                    byte_size=stat.st_size,
                    mtime_ns=stat.st_mtime_ns,
                    duplicate_paths=tuple(group["dups"]),
                    **scan,
                )
                stats.added += 1
                if record.status != "ok":
                    stats.failed += 1
                self._write(record)
                continue
            # Same content: the scan fields are still valid by
            # construction; only location/stat metadata can drift.
            record = replace(
                prior,
                path=group["path"],
                byte_size=stat.st_size,
                mtime_ns=stat.st_mtime_ns,
                duplicate_paths=tuple(group["dups"]),
            )
            if record.status != "ok":
                stats.failed += 1
            if record == prior:
                stats.unchanged += 1
            else:
                stats.updated += 1
                self._write(record)

        for content_hash in set(existing) - set(groups):
            try:
                self._record_path(content_hash).unlink()
            except OSError:
                continue
            stats.removed += 1
        return stats

    # -- writing -----------------------------------------------------------

    def _write(self, record: CaptureRecord) -> None:
        CampaignStore._atomic_write_json(
            self._record_path(record.content_hash), record.to_payload()
        )

    def note_analysis(self, content_hash: str, analysis_key: str) -> None:
        """Record that ``analysis_key`` has a stored report for a capture."""
        record = self.get(content_hash)
        if record is None or analysis_key in record.analyses:
            return
        self._write(
            replace(
                record,
                analyses=tuple(sorted({*record.analyses, analysis_key})),
            )
        )
