"""Capture discovery: deterministic directory walks and glob expansion.

Shared by the corpus indexer and the CLI (`repro analyze dir/ '*.pcap'`).
Expansion is deterministic — results are sorted by POSIX-style relative
path — so the same arguments always produce the same capture order on
every platform, which in turn keeps batch naming and planner output
stable.
"""

from __future__ import annotations

import glob
from pathlib import Path
from typing import Iterable, Iterator

from .formats import capture_suffixes

__all__ = ["CorpusError", "iter_capture_files", "expand_captures"]

_GLOB_CHARS = frozenset("*?[")


class CorpusError(ValueError):
    """A corpus operation failed in a way the user can fix.

    Raised for empty expansions ("no captures matched"), missing paths
    and malformed queries — the CLI prints these cleanly instead of a
    traceback.
    """


def _is_capture_name(name: str) -> bool:
    return name.lower().endswith(capture_suffixes())


def iter_capture_files(root: Path) -> Iterator[Path]:
    """Capture files under ``root``, sorted by relative POSIX path.

    Hidden directories (dot-prefixed, e.g. the corpus's own
    ``.repro-corpus`` catalog) are skipped.
    """
    found: list[tuple[str, Path]] = []
    for path in root.rglob("*"):
        rel = path.relative_to(root)
        if any(part.startswith(".") for part in rel.parts):
            continue
        if path.is_file() and _is_capture_name(path.name):
            found.append((rel.as_posix(), path))
    for _, path in sorted(found):
        yield path


def expand_captures(patterns: Iterable[str | Path]) -> list[Path]:
    """Expand paths / directories / glob patterns into capture files.

    Each argument may be a capture file, a directory (searched
    recursively for known capture suffixes) or a glob pattern
    (``**`` supported).  Expansion of each argument is sorted.
    *Discovered* paths (from directories or globs) are de-duplicated
    against everything already listed, first occurrence winning; a
    plain file named explicitly is always kept — repeating a capture
    on purpose (``repro analyze a.pcap a.pcap``) is a request to
    analyze it twice, and downstream naming suffixes the repeats.
    Raises :class:`CorpusError` when an argument matches nothing.
    """
    out: list[Path] = []
    seen: set[Path] = set()

    def add(path: Path, *, explicit: bool = False) -> None:
        resolved = path.resolve()
        if explicit or resolved not in seen:
            seen.add(resolved)
            out.append(path)

    for pattern in patterns:
        text = str(pattern)
        path = Path(text)
        if path.is_dir():
            matched = list(iter_capture_files(path))
            if not matched:
                raise CorpusError(
                    f"no captures matched: directory {text!r} contains no "
                    f"capture files ({', '.join(capture_suffixes())})"
                )
            for item in matched:
                add(item)
        elif _GLOB_CHARS.intersection(text):
            matched = sorted(
                Path(m) for m in glob.glob(text, recursive=True)
                if Path(m).is_file()
            )
            if not matched:
                raise CorpusError(f"no captures matched: pattern {text!r}")
            for item in matched:
                add(item)
        elif path.is_file():
            add(path, explicit=True)
        else:
            raise CorpusError(f"capture not found: {text}")
    return out
