"""Capture-format registry: content-sniffed container identification.

Same shape as the pipeline's consumer registry — each on-disk capture
container registers a descriptor under a unique name, and everything
else (the indexer, the CLI, path expansion) asks the registry instead
of hard-coding magic bytes or suffix lists.  Registering a third
container here is all it takes for the corpus to catalogue it.

Identification is by leading bytes, never by file name: a mislabelled
``.pcap`` that actually holds snoop indexes as snoop.  Gzip is treated
as a transparent wrapper, not a format — ``detect_format`` reports
``(name, compressed)`` after peeking through the gzip header.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from pathlib import Path

from ..pcap.pcapio import _GZIP_MAGIC, _MAGIC

__all__ = [
    "CaptureFormat",
    "CAPTURE_FORMATS",
    "register_format",
    "capture_suffixes",
    "detect_format",
]

#: Leading bytes of a gzip member (RFC 1952).
GZIP_MAGIC = _GZIP_MAGIC


@dataclass(frozen=True)
class CaptureFormat:
    """One capture container the corpus can catalogue."""

    name: str
    suffix: str
    magic: bytes
    description: str


CAPTURE_FORMATS: dict[str, CaptureFormat] = {}


def register_format(fmt: CaptureFormat) -> CaptureFormat:
    if fmt.name in CAPTURE_FORMATS:
        raise ValueError(f"capture format {fmt.name!r} is already registered")
    CAPTURE_FORMATS[fmt.name] = fmt
    return fmt


register_format(
    CaptureFormat(
        name="pcap",
        suffix=".pcap",
        magic=_MAGIC.to_bytes(4, "little"),
        description="classic little-endian pcap, linktype radiotap",
    )
)
register_format(
    CaptureFormat(
        name="snoop",
        suffix=".snoop",
        magic=b"snoop\x00\x00\x00",
        description="RFC 1761 snoop, datalink radiotap (127)",
    )
)


def capture_suffixes() -> tuple[str, ...]:
    """Every suffix a capture file may carry, plain then gzipped."""
    plain = tuple(f.suffix for f in CAPTURE_FORMATS.values())
    return plain + tuple(s + ".gz" for s in plain)


def _sniff(head: bytes) -> str | None:
    for fmt in CAPTURE_FORMATS.values():
        if head.startswith(fmt.magic):
            return fmt.name
    return None


def detect_format(path: str | Path) -> tuple[str, bool]:
    """Identify ``path`` by content: ``(format name, compressed)``.

    Raises ``ValueError`` for anything no registered format claims,
    including unreadably corrupt gzip wrappers.
    """
    path = Path(path)
    with path.open("rb") as fp:
        head = fp.read(8)
    if head.startswith(GZIP_MAGIC):
        try:
            with gzip.open(path, "rb") as zp:
                inner = zp.read(8)
        except (EOFError, OSError) as error:
            raise ValueError(
                f"{path}: corrupt gzip stream "
                f"({type(error).__name__}: {error})"
            ) from error
        name = _sniff(inner)
        if name is None:
            raise ValueError(
                f"{path}: gzipped data is not a recognised capture "
                f"format (known: {sorted(CAPTURE_FORMATS)})"
            )
        return name, True
    name = _sniff(head)
    if name is None:
        raise ValueError(
            f"{path}: not a recognised capture format "
            f"(known: {sorted(CAPTURE_FORMATS)})"
        )
    return name, False
