"""RFC 1761 snoop reader/writer for radiotap-encapsulated 802.11 traces.

The second capture container the corpus understands (Solaris ``snoop``,
the other format wireless captures of the paper's era shipped in).
Produces and consumes the exact same :class:`repro.frames.Trace` schema
as :mod:`repro.pcap.pcapio` by sharing its packet codecs — a trace
written as snoop and read back is field-identical to the pcap round
trip.

Layout (all integers big-endian, RFC 1761 §2):

* file header — 8-byte ident ``b"snoop\\0\\0\\0"``, version (2),
  datalink type;
* per record — original length, included length, record length
  (header + payload + pad), cumulative drops, seconds, microseconds,
  then the payload padded to a 4-byte boundary.

RFC 1761 only assigns datalink codes 0–9; radiotap postdates it.  We
register the project extension ``IEEE_802_11_RADIOTAP = 127``,
mirroring the pcap linktype number, so the two containers agree on
what the payload is.

A ``.gz`` suffix on write — and the gzip magic on read — selects
transparent, deterministic (mtime pinned to 0) gzip streaming, same as
the pcap side.  Truncation/corruption surfaces as
:class:`TruncatedSnoopError`, a subclass of
:class:`repro.pcap.TruncatedPcapError`, after the clean prefix has
been yielded.
"""

from __future__ import annotations

import enum
import gzip
import struct
from pathlib import Path
from typing import BinaryIO

import numpy as np

from ..frames import TRACE_COLUMNS, Trace
from ..pcap.pcapio import (
    _CHUNK_BYTES,
    _GZIP_MAGIC,
    CODEC_ERRORS,
    PAPER_SNAPLEN,
    TruncatedPcapError,
    _decode_packet_parts,
    _encode_packet,
    _row_from_packet,
    _RowBuffer,
)

__all__ = [
    "SNOOP_IDENT",
    "SNOOP_VERSION",
    "SnoopDatalinkType",
    "TruncatedSnoopError",
    "write_snoop",
    "read_snoop",
    "read_snoop_batches",
]

SNOOP_IDENT = b"snoop\x00\x00\x00"
SNOOP_VERSION = 2


class SnoopDatalinkType(enum.IntEnum):
    """RFC 1761 §2 datalink codes, plus our radiotap extension."""

    #: IEEE Ethernet
    IEEE_802_3 = 0
    #: IEEE Token Bus
    IEEE_802_4 = 1
    #: IEEE Metro Net
    IEEE_802_5 = 2
    #: Ethernet II
    ETHERNET = 4
    #: High-Level Data Link Control; ISO/IEC 13239
    HDLC = 5
    #: Synchronous Data Link Control; Character Synchronous
    SDLC = 6
    #: IBM Channel-to-Channel
    FICON_CTC = 7
    #: Fiber Distributed Data Interface
    FDDI = 8
    OTHER = 9
    #: Project extension: radiotap-encapsulated 802.11, numbered to
    #: match the pcap linktype (127) — not an IANA assignment.
    IEEE_802_11_RADIOTAP = 127


_FILE_HEADER = struct.Struct(">8sLL")
_RECORD_HEADER = struct.Struct(">LLLLLL")


class TruncatedSnoopError(TruncatedPcapError):
    """A snoop capture ended mid-record or a record failed to decode.

    Subclasses :class:`repro.pcap.TruncatedPcapError` so every existing
    partial-read handler (streaming pipeline, serve daemon, batch runs,
    corpus indexing) treats both containers uniformly.
    """


def _write_snoop_stream(
    fp: BinaryIO, trace: Trace, snaplen: int, duration_fill: bool
) -> int:
    fp.write(
        _FILE_HEADER.pack(
            SNOOP_IDENT,
            SNOOP_VERSION,
            int(SnoopDatalinkType.IEEE_802_11_RADIOTAP),
        )
    )
    for row in trace.iter_rows():
        packet = _encode_packet(row, duration_fill)
        incl = packet[:snaplen]
        pad = -len(incl) % 4
        ts_sec, ts_usec = divmod(row.time_us, 1_000_000)
        fp.write(
            _RECORD_HEADER.pack(
                len(packet),
                len(incl),
                _RECORD_HEADER.size + len(incl) + pad,
                0,
                ts_sec,
                ts_usec,
            )
        )
        fp.write(incl)
        fp.write(b"\0" * pad)
    return len(trace)


def write_snoop(
    trace: Trace,
    path: str | Path,
    snaplen: int = PAPER_SNAPLEN,
    duration_fill: bool = True,
) -> int:
    """Write ``trace`` to ``path`` as RFC 1761 snoop; returns frame count.

    A ``.gz`` suffix gzip-compresses (byte-deterministic, mtime 0).
    ``snaplen``/``duration_fill`` behave as in
    :func:`repro.pcap.write_trace`.
    """
    path = Path(path)
    if path.name.lower().endswith(".gz"):
        # Deterministic member header (no path, no clock) — see
        # the matching write in repro.pcap.write_trace.
        with path.open("wb") as raw, gzip.GzipFile(
            filename="", fileobj=raw, mode="wb", mtime=0
        ) as fp:
            return _write_snoop_stream(fp, trace, snaplen, duration_fill)
    with path.open("wb") as fp:
        return _write_snoop_stream(fp, trace, snaplen, duration_fill)


def read_snoop_batches(
    path: str | Path, batch_frames: int = 131_072
):
    """Incrementally read a snoop capture as bounded-size Traces.

    Mirrors :func:`repro.pcap.read_trace_batches`: slab reads keep
    memory bounded, gzip input is detected by magic and streamed, and
    damage raises :class:`TruncatedSnoopError` only after the clean
    prefix has been yielded.  Offsets in errors are into the
    decompressed stream for ``.gz`` input.
    """
    if batch_frames <= 0:
        raise ValueError("batch_frames must be positive")
    path = Path(path)
    with path.open("rb") as fp:
        compressed = fp.read(2) == _GZIP_MAGIC
    with (gzip.open(path, "rb") if compressed else path.open("rb")) as fp:
        try:
            header = fp.read(_FILE_HEADER.size)
        except (EOFError, OSError) as error:
            raise TruncatedSnoopError(
                f"{path}: corrupt gzip stream "
                f"({type(error).__name__}: {error})",
                byte_offset=0,
                frames_read=0,
                compressed=True,
            ) from error
        if len(header) < _FILE_HEADER.size:
            raise ValueError(f"{path}: not a snoop file (too short)")
        ident, version, datalink = _FILE_HEADER.unpack(header)
        if ident != SNOOP_IDENT:
            raise ValueError(f"{path}: bad snoop ident {ident!r}")
        if version != SNOOP_VERSION:
            raise ValueError(
                f"{path}: snoop version {version}, "
                f"expected {SNOOP_VERSION}"
            )
        if datalink != SnoopDatalinkType.IEEE_802_11_RADIOTAP:
            raise ValueError(
                f"{path}: snoop datalink {datalink}, expected radiotap "
                f"({int(SnoopDatalinkType.IEEE_802_11_RADIOTAP)})"
            )

        rows = _RowBuffer()
        base = _FILE_HEADER.size  # absolute (decompressed) offset of buf[0]
        buf = b""
        frames_read = 0
        eof = False
        while not eof:
            try:
                data = fp.read(_CHUNK_BYTES)
            except (EOFError, OSError) as error:
                if not compressed:
                    raise
                if len(rows):
                    yield rows.flush()
                raise TruncatedSnoopError(
                    f"{path}: corrupt gzip stream "
                    f"({type(error).__name__}: {error})",
                    byte_offset=base + len(buf),
                    frames_read=frames_read,
                    compressed=True,
                ) from error
            if not data:
                eof = True
            else:
                buf = buf + data if buf else data
            pos = 0
            limit = len(buf)
            while pos + _RECORD_HEADER.size <= limit:
                orig_len, incl_len, rec_len, _drops, ts_sec, ts_usec = (
                    _RECORD_HEADER.unpack_from(buf, pos)
                )
                if rec_len < _RECORD_HEADER.size + incl_len:
                    if len(rows):
                        yield rows.flush()
                    raise TruncatedSnoopError(
                        f"{path}: invalid record length {rec_len} "
                        f"(included length {incl_len})",
                        byte_offset=base + pos,
                        frames_read=frames_read,
                        compressed=compressed,
                    )
                if pos + rec_len > limit:
                    break  # record longer than the slab: read more / EOF
                start = pos + _RECORD_HEADER.size
                packet = buf[start : start + incl_len]
                try:
                    radiotap, rt_len, frame = _decode_packet_parts(packet)
                except CODEC_ERRORS as error:
                    if len(rows):
                        yield rows.flush()
                    raise TruncatedSnoopError(
                        f"{path}: undecodable record "
                        f"({type(error).__name__}: {error})",
                        byte_offset=base + pos,
                        frames_read=frames_read,
                        compressed=compressed,
                    ) from error
                rows.append_row(
                    _row_from_packet(
                        radiotap,
                        rt_len,
                        frame,
                        orig_len,
                        ts_sec * 1_000_000 + ts_usec,
                    )
                )
                frames_read += 1
                if len(rows) >= batch_frames:
                    yield rows.take(batch_frames)
                pos += rec_len
            buf = buf[pos:]
            base += pos
        if buf:
            # Damage found: flush the clean prefix first so streaming
            # callers keep every frame read so far.
            if len(rows):
                yield rows.flush()
            if len(buf) < _RECORD_HEADER.size:
                raise TruncatedSnoopError(
                    f"{path}: truncated record header",
                    byte_offset=base,
                    frames_read=frames_read,
                    compressed=compressed,
                )
            raise TruncatedSnoopError(
                f"{path}: truncated record body",
                byte_offset=base + _RECORD_HEADER.size,
                frames_read=frames_read,
                compressed=compressed,
            )
        if len(rows):
            yield rows.flush()


def read_snoop(path: str | Path) -> Trace:
    """Read a snoop capture (optionally gzipped) into a Trace."""
    batches = list(read_snoop_batches(path))
    if not batches:
        return Trace.empty()
    if len(batches) == 1:
        return batches[0]
    return Trace(
        {
            name: np.concatenate([b.column(name) for b in batches])
            for name in TRACE_COLUMNS
        }
    )
