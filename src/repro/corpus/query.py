"""Catalog queries: predicate strings answered from records alone.

A query is whitespace-separated ``key<op>value`` clauses, implicitly
AND-ed, evaluated against :class:`~repro.corpus.index.CaptureRecord`
fields — never against capture files.  Trailing commas on clauses are
ignored, so prose-adjacent spellings work::

    channel=6, frames>10k, overlaps=13:00-14:00
    format=snoop status=ok path=*/day2/*

Keys:

``channel``
    ``=``/``!=`` against the record's channel inventory; a comma list
    (``channel=1,6,11``) matches any member.
``frames``
    frame count; all comparison ops; ``k``/``M`` suffixes.
``format``
    container name (``pcap``/``snoop``, compression-agnostic) or the
    compressed variant explicitly (``pcap.gz``); ``=``/``!=``.
``status``
    ``ok``/``truncated``/``unreadable``; ``=``/``!=``.
``path``
    :mod:`fnmatch` glob over the primary and duplicate relative paths.
``start`` / ``end``
    the capture's first/last timestamp in absolute µs (or seconds with
    an ``s`` suffix); all comparison ops.
``overlaps``
    a window ``lo-hi``.  ``HH:MM[:SS]`` endpoints compare by time of
    day (wraparound-aware: both a window and a capture span may cross
    midnight); bare µs or ``s``-suffixed endpoints compare absolutely.

Malformed clauses and unknown keys raise
:class:`~repro.corpus.paths.CorpusError` with a did-you-mean hint; an
empty query matches every record.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Iterable, Mapping

from .._suggest import unknown_name_message
from .formats import CAPTURE_FORMATS
from .index import CaptureRecord
from .paths import CorpusError

__all__ = ["Query", "parse_query", "filter_records"]

_DAY_US = 24 * 3600 * 1_000_000

#: Longest first, so ``>=`` is never misread as ``>``.
_OPS = (">=", "<=", "!=", "=", ">", "<")

_ORDER_OPS = frozenset(_OPS)
_EQ_OPS = frozenset(("=", "!="))


def _compare(op: str, left, right) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == ">":
        return left > right
    if op == "<":
        return left < right
    if op == ">=":
        return left >= right
    return left <= right


def _parse_count(text: str) -> int:
    scale = 1
    suffix = text[-1:].lower()
    if suffix == "k":
        scale, text = 1_000, text[:-1]
    elif suffix == "m":
        scale, text = 1_000_000, text[:-1]
    try:
        return int(float(text) * scale) if "." in text else int(text) * scale
    except ValueError:
        raise CorpusError(f"not a frame count: {text!r}") from None


def _parse_abs_us(text: str) -> int:
    if text.lower().endswith("s"):
        try:
            return int(float(text[:-1]) * 1_000_000)
        except ValueError:
            raise CorpusError(f"not a time: {text!r}") from None
    try:
        return int(text)
    except ValueError:
        raise CorpusError(f"not a time: {text!r}") from None


def _parse_tod_us(text: str) -> int:
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise CorpusError(f"not a time of day: {text!r}")
    try:
        numbers = [int(p) for p in parts]
    except ValueError:
        raise CorpusError(f"not a time of day: {text!r}") from None
    hour, minute = numbers[0], numbers[1]
    second = numbers[2] if len(numbers) == 3 else 0
    if not (0 <= hour < 24 and 0 <= minute < 60 and 0 <= second < 60):
        raise CorpusError(f"not a time of day: {text!r}")
    return ((hour * 60 + minute) * 60 + second) * 1_000_000


def _parse_window(text: str) -> tuple[str, int, int]:
    """``lo-hi`` → ``(kind, lo_us, hi_us)`` with kind abs|tod."""
    normalized = text.replace("–", "-")  # accept the en dash
    lo_text, sep, hi_text = normalized.partition("-")
    if not sep or not lo_text or not hi_text:
        raise CorpusError(f"not a window (expected lo-hi): {text!r}")
    tod = ":" in lo_text or ":" in hi_text
    if tod and not (":" in lo_text and ":" in hi_text):
        raise CorpusError(
            f"window mixes time-of-day and absolute endpoints: {text!r}"
        )
    if tod:
        return "tod", _parse_tod_us(lo_text), _parse_tod_us(hi_text)
    return "abs", _parse_abs_us(lo_text), _parse_abs_us(hi_text)


def _tod_intervals(start_us: int, end_us: int) -> list[tuple[int, int]]:
    """A closed absolute span as half-open time-of-day intervals."""
    length = end_us - start_us + 1
    if length >= _DAY_US:
        return [(0, _DAY_US)]
    lo = start_us % _DAY_US
    hi = lo + length
    if hi <= _DAY_US:
        return [(lo, hi)]
    return [(lo, _DAY_US), (0, hi - _DAY_US)]


def _window_intervals(lo: int, hi: int) -> list[tuple[int, int]]:
    if lo == hi:
        return [(lo, lo + 1)]  # an instant
    if lo < hi:
        return [(lo, hi)]
    return [(lo, _DAY_US), (0, hi)]  # crosses midnight


def _overlaps(record: CaptureRecord, kind: str, lo: int, hi: int) -> bool:
    if record.time_start_us is None or record.time_end_us is None:
        return False
    if kind == "abs":
        if lo > hi:
            raise CorpusError(f"empty window: {lo}-{hi}")
        return record.time_start_us <= hi and record.time_end_us >= lo
    spans = _tod_intervals(record.time_start_us, record.time_end_us)
    windows = _window_intervals(lo, hi)
    return any(
        s_lo < w_hi and w_lo < s_hi
        for s_lo, s_hi in spans
        for w_lo, w_hi in windows
    )


@dataclass(frozen=True)
class _Clause:
    key: str
    op: str
    value: object

    def matches(self, record: CaptureRecord) -> bool:
        if self.key == "channel":
            hit = any(ch in record.channels for ch in self.value)
            return hit if self.op == "=" else not hit
        if self.key == "frames":
            return _compare(self.op, record.n_frames, self.value)
        if self.key == "format":
            name, compressed = self.value
            hit = record.file_format == name and (
                compressed is None or record.compressed == compressed
            )
            return hit if self.op == "=" else not hit
        if self.key == "status":
            return _compare(self.op, record.status, self.value)
        if self.key == "path":
            hit = any(
                fnmatchcase(path, self.value)
                for path in (record.path, *record.duplicate_paths)
            )
            return hit if self.op == "=" else not hit
        if self.key == "start":
            if record.time_start_us is None:
                return False
            return _compare(self.op, record.time_start_us, self.value)
        if self.key == "end":
            if record.time_end_us is None:
                return False
            return _compare(self.op, record.time_end_us, self.value)
        kind, lo, hi = self.value  # overlaps
        return _overlaps(record, kind, lo, hi)


_KEY_OPS = {
    "channel": _EQ_OPS,
    "frames": _ORDER_OPS,
    "format": _EQ_OPS,
    "status": _EQ_OPS,
    "path": _EQ_OPS,
    "start": _ORDER_OPS,
    "end": _ORDER_OPS,
    "overlaps": frozenset(("=",)),
}

_STATUSES = ("ok", "truncated", "unreadable")


def _parse_value(key: str, raw: str):
    if key == "channel":
        try:
            return tuple(int(ch) for ch in raw.split(",") if ch)
        except ValueError:
            raise CorpusError(f"not a channel list: {raw!r}") from None
    if key == "frames":
        return _parse_count(raw)
    if key == "format":
        name, compressed = raw, None
        if raw.endswith(".gz"):
            name, compressed = raw[:-3], True
        if name not in CAPTURE_FORMATS:
            raise CorpusError(
                unknown_name_message(
                    "capture format",
                    raw,
                    sorted(CAPTURE_FORMATS)
                    + [f"{n}.gz" for n in sorted(CAPTURE_FORMATS)],
                )
            )
        return name, compressed
    if key == "status":
        if raw not in _STATUSES:
            raise CorpusError(
                unknown_name_message("status", raw, _STATUSES)
            )
        return raw
    if key == "path":
        return raw
    if key in ("start", "end"):
        return _parse_abs_us(raw)
    return _parse_window(raw)  # overlaps


@dataclass(frozen=True)
class Query:
    """A parsed predicate; ``matches`` consults records only."""

    text: str
    clauses: tuple[_Clause, ...]

    def matches(self, record: CaptureRecord) -> bool:
        return all(clause.matches(record) for clause in self.clauses)


def parse_query(text: str | None) -> Query:
    """Parse a ``where`` string; empty/None matches everything."""
    clauses: list[_Clause] = []
    for token in (text or "").split():
        token = token.rstrip(",")
        if not token:
            continue
        for op in _OPS:
            key, sep, raw = token.partition(op)
            if sep:
                break
        else:
            raise CorpusError(
                f"malformed clause {token!r} (expected key<op>value, "
                f"ops: {' '.join(_OPS)})"
            )
        if key not in _KEY_OPS:
            raise CorpusError(
                unknown_name_message("query key", key, sorted(_KEY_OPS))
            )
        if op not in _KEY_OPS[key]:
            raise CorpusError(
                f"operator {op!r} not valid for {key!r} "
                f"(valid: {' '.join(sorted(_KEY_OPS[key]))})"
            )
        if not raw:
            raise CorpusError(f"clause {token!r} has no value")
        clauses.append(_Clause(key, op, _parse_value(key, raw)))
    return Query(text=text or "", clauses=tuple(clauses))


def filter_records(
    records: "Iterable[CaptureRecord] | Mapping[str, CaptureRecord]",
    where: str | Query | None,
) -> list[CaptureRecord]:
    """Records matching ``where``, sorted by primary path.

    Accepts the hash-keyed mapping :meth:`CorpusIndex.records` returns
    or any iterable of records.
    """
    if isinstance(records, Mapping):
        records = records.values()
    query = where if isinstance(where, Query) else parse_query(where)
    return sorted(
        (record for record in records if query.matches(record)),
        key=lambda record: record.path,
    )
