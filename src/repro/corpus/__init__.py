"""Trace corpus: capture interchange, catalog, queries and planning.

The paper's analyses ran over real capture *libraries* — multi-sniffer,
multi-day, mixed formats — not single files.  This package makes that
the unit of work:

* :mod:`~repro.corpus.snoop` — RFC 1761 snoop interchange sharing the
  pcap layer's packet codecs (plus gzip streaming on both containers);
* :mod:`~repro.corpus.formats` — the capture-format registry and
  content sniffing;
* :mod:`~repro.corpus.paths` — deterministic capture discovery
  (directories, globs);
* :mod:`~repro.corpus.index` — the content-addressed on-disk catalog;
* :mod:`~repro.corpus.query` — predicates answered from the catalog
  without opening capture files;
* :mod:`~repro.corpus.plan` — query-planned, cache-skipping,
  largest-first batch analysis.
"""

from .formats import CAPTURE_FORMATS, CaptureFormat, capture_suffixes, detect_format
from .index import CaptureRecord, CorpusIndex, RefreshStats
from .paths import CorpusError, expand_captures, iter_capture_files
from .plan import (
    AnalysisStore,
    CorpusAnalysis,
    analysis_key,
    analyze_corpus,
    plan_analysis,
)
from .query import Query, filter_records, parse_query
from .snoop import (
    SnoopDatalinkType,
    TruncatedSnoopError,
    read_snoop,
    read_snoop_batches,
    write_snoop,
)

__all__ = [
    "CAPTURE_FORMATS",
    "CaptureFormat",
    "capture_suffixes",
    "detect_format",
    "CaptureRecord",
    "CorpusIndex",
    "RefreshStats",
    "CorpusError",
    "expand_captures",
    "iter_capture_files",
    "AnalysisStore",
    "CorpusAnalysis",
    "analysis_key",
    "analyze_corpus",
    "plan_analysis",
    "Query",
    "filter_records",
    "parse_query",
    "SnoopDatalinkType",
    "TruncatedSnoopError",
    "read_snoop",
    "read_snoop_batches",
    "write_snoop",
]
