"""Query-planned batch analysis over an indexed corpus.

The planner turns "analyze everything matching this query" into the
smallest possible :func:`repro.pipeline.run_batch` call:

* captures whose ``(content hash, consumer set, code salt)`` already
  has a stored report are **skipped** — their report is served from the
  analysis store, so a warm re-run dispatches zero work (the same
  content-addressing trick :class:`repro.campaign.CampaignStore` uses
  for simulation cells, including the code-version salt that
  invalidates results when the analysis source changes);
* the remainder is dispatched **largest file first**, so the process
  pool never ends a run idling on one straggler that happened to sort
  last (classic LPT scheduling; ``run_batch``'s pool preserves
  submission order).

Stored reports live next to the capture catalog under
``<root>/.repro-corpus/analyses/`` — a JSON record (the commit point)
plus a gzip-pickled report sidecar per key, both written atomically.
Failures are deliberately **not** stored: a truncated download fixed
in place, or a flaky worker, retries on the next run.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..campaign.store import CampaignStore, _canonical, code_version_salt
from ..core.report import CongestionReport
from ..core.timing import DOT11B_TIMING, TimingParameters
from .index import INDEX_DIRNAME, CaptureRecord, CorpusIndex
from .query import Query, filter_records

__all__ = [
    "ANALYSIS_FORMAT",
    "analysis_key",
    "AnalysisStore",
    "AnalysisPlan",
    "plan_analysis",
    "CorpusAnalysis",
    "analyze_corpus",
]

ANALYSIS_FORMAT = 1

#: The consumer set a full-report corpus run computes.  Corpus analysis
#: always stores complete :class:`CongestionReport`s (subsets would
#: fragment the cache); the tuple still participates in the key so a
#: future subset mode cannot collide with full reports.
REPORT_CONSUMERS = ("report",)


def analysis_key(
    content_hash: str,
    *,
    consumers: tuple[str, ...] = REPORT_CONSUMERS,
    timing: TimingParameters = DOT11B_TIMING,
    min_count: int = 1,
    salt: str | None = None,
) -> str:
    """Content-addressed key for one capture's stored analysis.

    Everything that can change the report participates: the capture's
    content hash, the consumer set, the timing parameters, the minimum
    sample count, and the code-version salt.
    """
    payload = {
        "capture": content_hash,
        "consumers": list(consumers),
        "timing": _canonical(timing),
        "min_count": min_count,
        "salt": salt if salt is not None else code_version_salt(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class AnalysisStore:
    """Stored per-capture reports under ``<root>/.repro-corpus/analyses``."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.store_dir = self.root / INDEX_DIRNAME / "analyses"

    def _record_path(self, key: str) -> Path:
        return self.store_dir / key[:2] / f"{key}.json"

    def _report_path(self, key: str) -> Path:
        return self.store_dir / key[:2] / f"{key}.report.pkl.gz"

    def get(self, key: str) -> CongestionReport | None:
        """The stored report for ``key``, or None (recompute)."""
        payload = CampaignStore._read_json(self._record_path(key))
        if payload is None or payload.get("kind") != "analysis":
            return None
        try:
            with gzip.open(self._report_path(key), "rb") as fp:
                report = pickle.load(fp)
        except (OSError, EOFError, pickle.UnpicklingError):
            return None
        return report if isinstance(report, CongestionReport) else None

    def put(
        self, key: str, content_hash: str, path: str, report: CongestionReport
    ) -> None:
        """Store ``report``; the JSON record is the commit point."""
        report_path = self._report_path(key)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=report_path.parent, prefix=report_path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as raw, gzip.GzipFile(
                filename="", fileobj=raw, mode="wb", mtime=0
            ) as zipped:
                pickle.dump(report, zipped, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, report_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        CampaignStore._atomic_write_json(
            self._record_path(key),
            {
                "format": ANALYSIS_FORMAT,
                "kind": "analysis",
                "key": key,
                "capture": content_hash,
                "path": path,
            },
        )

    def drop(self, key: str) -> None:
        for path in (self._record_path(key), self._report_path(key)):
            try:
                path.unlink()
            except OSError:
                pass


@dataclass(frozen=True)
class AnalysisPlan:
    """What a corpus analysis will and will not dispatch."""

    #: (record, key, stored report) — served without dispatch.
    cached: tuple[tuple[CaptureRecord, str, CongestionReport], ...]
    #: (record, key) — dispatched, largest capture first.
    to_run: tuple[tuple[CaptureRecord, str], ...]
    #: path → status for matched records that cannot be analyzed.
    skipped: dict[str, str]


def plan_analysis(
    store: AnalysisStore,
    records: list[CaptureRecord],
    *,
    timing: TimingParameters = DOT11B_TIMING,
    min_count: int = 1,
    salt: str | None = None,
) -> AnalysisPlan:
    """Partition matched records into cached / to-run / skipped."""
    resolved_salt = salt if salt is not None else code_version_salt()
    cached: list[tuple[CaptureRecord, str, CongestionReport]] = []
    to_run: list[tuple[CaptureRecord, str]] = []
    skipped: dict[str, str] = {}
    for record in records:
        if record.status != "ok":
            skipped[record.path] = record.status
            continue
        key = analysis_key(
            record.content_hash,
            timing=timing,
            min_count=min_count,
            salt=resolved_salt,
        )
        report = store.get(key)
        if report is not None:
            cached.append((record, key, report))
        else:
            to_run.append((record, key))
    to_run.sort(key=lambda item: (-item[0].byte_size, item[0].path))
    return AnalysisPlan(
        cached=tuple(cached), to_run=tuple(to_run), skipped=skipped
    )


@dataclass(frozen=True)
class CorpusAnalysis:
    """The outcome of one query-planned corpus analysis."""

    root: Path
    where: str
    matched: int  # records the query selected
    cached: int  # served from the analysis store
    dispatched: int  # actually analyzed this run
    reports: dict[str, CongestionReport]  # path → report (cached + fresh)
    failures: dict = field(default_factory=dict)  # path → FailedAnalysis
    skipped: dict[str, str] = field(default_factory=dict)  # path → status

    @property
    def results(self) -> dict:
        """Reports and failures merged, in sorted path order."""
        merged: dict = {**self.reports, **self.failures}
        return {path: merged[path] for path in sorted(merged)}


def analyze_corpus(
    root: str | Path,
    where: str | Query | None = None,
    *,
    workers: int | None = None,
    chunk_frames: int | None = None,
    timing: TimingParameters = DOT11B_TIMING,
    min_count: int = 1,
    refresh: bool = True,
    verify: bool = False,
    salt: str | None = None,
    on_error: str = "capture",
) -> CorpusAnalysis:
    """Analyze every catalogued capture matching ``where``.

    Refreshes the index (unless ``refresh=False``), filters records
    with the query, serves already-stored reports, and dispatches only
    the remainder through :func:`repro.pipeline.run_batch` —
    largest capture first.  Fresh reports are stored and noted on the
    capture records, so an immediately repeated call dispatches
    nothing.
    """
    from ..pipeline import DEFAULT_CHUNK_FRAMES, FailedAnalysis, run_batch

    index = CorpusIndex(root)
    if refresh:
        index.refresh(verify=verify)
    records = filter_records(index.records().values(), where)
    store = AnalysisStore(index.root)
    resolved_salt = salt if salt is not None else code_version_salt()
    plan = plan_analysis(
        store,
        records,
        timing=timing,
        min_count=min_count,
        salt=resolved_salt,
    )

    reports = {record.path: report for record, _, report in plan.cached}
    failures: dict = {}
    if plan.to_run:
        keys = {record.path: key for record, key in plan.to_run}
        hashes = {record.path: record.content_hash for record, _ in plan.to_run}
        sources = {
            record.path: index.root / record.path for record, _ in plan.to_run
        }
        results = run_batch(
            sources,
            max_workers=workers,
            timing=timing,
            min_count=min_count,
            chunk_frames=(
                chunk_frames if chunk_frames is not None
                else DEFAULT_CHUNK_FRAMES
            ),
            on_error=on_error,
        )
        for path, result in results.items():
            if isinstance(result, FailedAnalysis):
                failures[path] = result
                continue
            reports[path] = result
            store.put(keys[path], hashes[path], path, result)
            index.note_analysis(hashes[path], keys[path])

    where_text = where.text if isinstance(where, Query) else (where or "")
    return CorpusAnalysis(
        root=index.root,
        where=where_text,
        matched=len(records),
        cached=len(plan.cached),
        dispatched=len(plan.to_run),
        reports=reports,
        failures=failures,
        skipped=plan.skipped,
    )
