"""JSON shape of a rolling :class:`~repro.core.report.CongestionReport`.

The daemon's ``/feeds/<id>/report`` endpoint and the CI equivalence
smoke both build their payload here, so "the served report equals the
batch report" is a byte comparison of two calls to the same function —
one over the daemon's snapshot, one over a local ``run_all``.

This is a *view*, not an interchange format: scalars and per-second
series only, floats rounded to a fixed precision so the comparison is
stable across JSON round trips.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.report import CongestionReport

__all__ = ["report_to_jsonable"]

_FLOAT_DIGITS = 6


def _round(value: float) -> float:
    return round(float(value), _FLOAT_DIGITS)


def report_to_jsonable(report: "CongestionReport") -> dict[str, object]:
    """The report as plain JSON-serialisable scalars and lists."""
    empty = report.summary.n_frames == 0
    payload: dict[str, object] = {
        "name": report.name,
        "summary": report.summary.as_row(),
        "thresholds": {
            "low": _round(report.thresholds.low),
            "high": _round(report.thresholds.high),
        },
        "level_occupancy": {
            level.label: _round(fraction)
            for level, fraction in report.level_occupancy.items()
        },
        "utilization": {
            "start_us": int(report.utilization.start_us),
            "n_seconds": len(report.utilization.percent),
            "percent": [_round(p) for p in report.utilization.percent],
        },
        "unrecorded": {
            "captured_frames": int(report.unrecorded.captured_frames),
            "missing_data": int(report.unrecorded.missing_data),
            "missing_rts": int(report.unrecorded.missing_rts),
            "missing_cts": int(report.unrecorded.missing_cts),
            "unrecorded_percent": _round(report.unrecorded.unrecorded_percent),
        },
    }
    # headline() divides by zero-frame aggregates on an empty report;
    # an empty feed still answers with its (empty) summary.
    payload["headline"] = (
        {}
        if empty
        else {key: _round(value) for key, value in report.headline().items()}
    )
    return payload
